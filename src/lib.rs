//! # pcc — Performance-oriented Congestion Control
//!
//! A complete Rust reproduction of *PCC: Re-architecting Congestion Control
//! for Consistent High Performance* (Dong, Li, Zarchy, Godfrey, Schapira —
//! NSDI 2015): the PCC algorithm itself, every TCP and rate-based baseline
//! the paper compares against, a deterministic packet-level network
//! simulator to run them on, every evaluation scenario from §4, and a
//! harness that regenerates every table and figure.
//!
//! All control intelligence speaks one API —
//! [`transport::CongestionControl`] — and all of it is constructible by
//! name through [`transport::registry`] (see [`install_registry`]), so the
//! same algorithm object runs on the simulator *and* on real UDP sockets.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `pcc-core` | monitor intervals, utility functions, the learning controller, the game-theoretic fluid model |
//! | [`simnet`] | `pcc-simnet` | deterministic discrete-event network simulator |
//! | [`transport`] | `pcc-transport` | SACK scoreboard, the unified `CongestionControl` API, the one `CcSender` engine, the algorithm registry |
//! | [`tcp`] | `pcc-tcp` | New Reno, CUBIC, Illinois, Hybla, Vegas, BIC, Westwood (plus `-paced` variants) |
//! | [`rate`] | `pcc-rate` | SABUL/UDT-style and PCP-style rate control |
//! | [`bbr`] | `pcc-bbr` | BBR-style model-based control — the reference *hybrid* (rate + cwnd) algorithm |
//! | [`scenarios`] | `pcc-scenarios` | every §4 evaluation scenario as a reusable builder |
//! | [`experiments`] | `pcc-experiments` | per-figure/table regeneration harness |
//! | [`udp`] | `pcc-udp` | real-network datapath: any algorithm over std UDP sockets |
//!
//! ## Quick start
//!
//! ```
//! use pcc::prelude::*;
//!
//! // One PCC flow on a 100 Mbps / 30 ms dumbbell for five simulated
//! // seconds. Everything is deterministic: same seed, same bytes.
//! let mut net = NetworkBuilder::new(SimConfig::default());
//! let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
//! let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
//! let pcc = PccController::new(PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)));
//! let flow = net.add_flow(FlowSpec {
//!     sender: Box::new(CcSender::new(CcSenderConfig::default(), Box::new(pcc))),
//!     receiver: Box::new(SackReceiver::new()),
//!     fwd_path: path.fwd,
//!     rev_path: path.rev,
//!     start_at: SimTime::ZERO,
//! });
//! let report = net.build().run_until(SimTime::from_secs(5));
//! assert!(report.avg_throughput_mbps(flow, SimTime::from_secs(3), SimTime::from_secs(5)) > 80.0);
//! ```
//!
//! Or resolve any algorithm by name and run it on the same engine:
//!
//! ```
//! use pcc::prelude::*;
//!
//! pcc::install_registry();
//! let cc = pcc::transport::registry::by_name("cubic", &CcParams::default()).unwrap();
//! let sender = CcSender::new(CcSenderConfig::default(), cc);
//! # let _ = sender;
//! ```
//!
//! Or play a protocol over a bundled time-varying trace (LTE-like here;
//! see `pcc::simnet::trace` for the format and
//! `pcc::scenarios::vary` for the harness):
//!
//! ```
//! use pcc::prelude::*;
//!
//! let trace = LinkTrace::builtin("lte").unwrap();
//! let run = run_trace(
//!     Protocol::Tcp("cubic"),
//!     &trace,
//!     SimDuration::from_secs(5),
//!     1,
//!     ShaperConfig::default(),
//! );
//! assert!(run.utilization() > 0.0);
//! ```

pub use pcc_bbr as bbr;
pub use pcc_core as core;
pub use pcc_experiments as experiments;
pub use pcc_rate as rate;
pub use pcc_scenarios as scenarios;
pub use pcc_simnet as simnet;
pub use pcc_tcp as tcp;
pub use pcc_transport as transport;
pub use pcc_udp as udp;

/// Install every algorithm in the workspace into
/// [`transport::registry`]. Idempotent; delegates to
/// [`scenarios::install_registry`].
pub fn install_registry() {
    pcc_scenarios::install_registry();
}

/// Everything needed for typical simulation-based use.
pub mod prelude {
    pub use pcc_bbr::Bbr;
    pub use pcc_core::{
        LatencySensitive, LossResilient, MiTiming, PccConfig, PccController, SafeSigmoid,
        UtilityFunction,
    };
    pub use pcc_rate::{Pcp, Sabul};
    pub use pcc_scenarios::vary::{run_trace, TraceRun};
    pub use pcc_scenarios::{
        install_registry, run_dumbbell, run_single, FlowPlan, LinkSetup, Protocol, QueueKind,
        UtilityKind,
    };
    pub use pcc_simnet::prelude::*;
    pub use pcc_tcp::{by_name as tcp_by_name, Cubic, Hybla, Illinois, NewReno};
    pub use pcc_transport::{
        CcParams, CcSender, CcSenderConfig, CongestionControl, FlowSize, InvalidParam,
        SackReceiver, SpecError, TransportConfig, UnknownAlgorithm,
    };
}
