//! Data-center incast (§4.1.8): many synchronized senders, one receiver,
//! one shallow switch port.
//!
//! TCP's goodput collapses once the senders' bursts overwhelm the port
//! buffer — whole window tails get lost and recovery is RTO-bound at a
//! 200 ms minimum on a 200 µs RTT. PCC keeps its pacing near the fair
//! share and sails through.
//!
//! ```text
//! cargo run --release --example datacenter_incast
//! ```

use pcc::scenarios::incast::{run_incast, INCAST_RTT};
use pcc::scenarios::Protocol;

fn main() {
    let block = 256 * 1024;
    println!("Incast: N senders each push 256 KB to one receiver (1 Gbps, 200 us RTT)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "senders", "tcp [Mbps]", "pcc [Mbps]", "pcc/tcp"
    );
    for n in [2, 4, 8, 16, 24, 33] {
        let tcp = run_incast(|| Protocol::Tcp("newreno"), n, block, 11);
        let pcc = run_incast(|| Protocol::pcc_default(INCAST_RTT), n, block, 11);
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>9.1}x   (tcp {}/{} done, pcc {}/{} done)",
            n,
            tcp.goodput_mbps,
            pcc.goodput_mbps,
            pcc.goodput_mbps / tcp.goodput_mbps.max(0.01),
            tcp.completed,
            n,
            pcc.completed,
            n,
        );
    }
    println!("\nTCP collapses as senders multiply; PCC's goodput keeps climbing.");
}
