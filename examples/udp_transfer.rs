//! Real data over real sockets: any congestion-control algorithm pacing a
//! UDP transfer across loopback — the paper's "user-space implementation
//! that can deliver real data today" (§1), in Rust, generalized to the
//! whole algorithm registry.
//!
//! ```text
//! cargo run --release --example udp_transfer                       # PCC (default)
//! cargo run --release --example udp_transfer -- cubic              # any registered name
//! cargo run --release --example udp_transfer -- "cubic:iw=32"      # parameterized spec
//! cargo run --release --example udp_transfer -- "pcc:eps=0.05,util=latency"
//! cargo run --release --example udp_transfer -- cubic --batched    # 1-RTT batched reports
//! cargo run --release --example udp_transfer -- pcc --hosted       # brain in a shared CcHost
//! cargo run --release --example udp_transfer -- list               # registry + spec keys
//! ```
//!
//! `--batched` flips the engine from per-ACK callbacks to 1-RTT
//! aggregated measurement reports; `--hosted` additionally moves the
//! algorithm instance into a shared [`pcc::transport::CcHost`] — the
//! off-path control plane, one controller able to drive every transfer
//! in the process (see ARCHITECTURE.md's control-plane section).

use std::net::UdpSocket;
use std::thread;

use pcc::simnet::time::SimDuration;
use pcc::transport::{registry, shared_host, ReportMode};
use pcc::udp::{install_registry, receive, send_hosted, send_named, wire_mss, UdpSenderConfig};

fn main() -> std::io::Result<()> {
    install_registry();
    let mut algo = String::from("pcc");
    let mut batched = false;
    let mut hosted = false;
    let mut spec_set = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--batched" => batched = true,
            "--hosted" => hosted = true,
            other if !spec_set => {
                algo = other.to_string();
                spec_set = true;
            }
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if algo == "list" {
        println!("registered algorithms (parameterize with name:key=val,...):");
        for name in registry::names() {
            println!("  {name}");
            for p in registry::schema_of(&name).unwrap_or(&[]) {
                println!("      {}=<{}>  {}", p.key, p.kind.describe(), p.doc);
            }
        }
        return Ok(());
    }

    let rx_sock = UdpSocket::bind("127.0.0.1:0")?;
    let rx_addr = rx_sock.local_addr()?;
    let tx_sock = UdpSocket::bind("127.0.0.1:0")?;
    let path = match (hosted, batched) {
        (true, _) => " through a shared CcHost",
        (false, true) => " on 1-RTT batched reports",
        (false, false) => "",
    };
    println!("receiver on {rx_addr}, sending 16 MB of real datagrams with `{algo}`{path}...");

    let total: u64 = 16 * 1024 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 42,
        report: batched.then(ReportMode::batched_rtt),
        ..Default::default()
    };
    let rtt_hint = SimDuration::from_millis(1);
    let report = if hosted {
        let params = registry::CcParams::default()
            .with_mss(wire_mss(&cfg))
            .with_rtt_hint(rtt_hint);
        let cc = match registry::by_name(&algo, &params) {
            Ok(cc) => cc,
            Err(unknown) => {
                eprintln!("{unknown}");
                std::process::exit(2);
            }
        };
        send_hosted(&tx_sock, rx_addr, cfg, shared_host(), cc)?
    } else {
        match send_named(&tx_sock, rx_addr, cfg, &algo, rtt_hint)? {
            Ok(report) => report,
            Err(unknown) => {
                eprintln!("{unknown}");
                std::process::exit(2);
            }
        }
    };
    let rx_report = rx.join().expect("receiver thread")?;

    println!("transfer complete:");
    println!("  elapsed        : {:?}", report.elapsed);
    println!("  goodput        : {:.1} Mbps", report.goodput_mbps);
    println!("  datagrams sent : {}", report.sent);
    println!("  losses detected: {}", report.losses);
    println!("  duplicates     : {}", rx_report.duplicates);
    if report.final_rate_bps > 0.0 {
        println!("  final rate     : {:.1} Mbps", report.final_rate_bps / 1e6);
    }
    if report.final_cwnd_pkts > 0.0 {
        println!("  final cwnd     : {:.1} pkts", report.final_cwnd_pkts);
    }
    Ok(())
}
