//! Real data over real sockets: PCC pacing a UDP transfer across loopback
//! — the paper's "user-space implementation that can deliver real data
//! today" (§1), in Rust.
//!
//! ```text
//! cargo run --release --example udp_transfer
//! ```

use pcc::core::PccConfig;
use pcc::simnet::time::SimDuration;
use pcc::udp::{receive, send_pcc, UdpSenderConfig};
use tokio::net::UdpSocket;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").await?;
    let rx_addr = rx_sock.local_addr()?;
    let tx_sock = UdpSocket::bind("127.0.0.1:0").await?;
    println!("receiver on {rx_addr}, sending 16 MB of real datagrams...");

    let total: u64 = 16 * 1024 * 1024;
    let rx = tokio::spawn(async move { receive(&rx_sock, total).await });

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 42,
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(1));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).await?;
    let rx_report = rx.await.expect("receiver task")?;

    println!("transfer complete:");
    println!("  elapsed        : {:?}", report.elapsed);
    println!("  goodput        : {:.1} Mbps", report.goodput_mbps);
    println!("  datagrams sent : {}", report.sent);
    println!("  losses detected: {}", report.losses);
    println!("  duplicates     : {}", rx_report.duplicates);
    println!("  final PCC rate : {:.1} Mbps", report.final_rate_bps / 1e6);
    Ok(())
}
