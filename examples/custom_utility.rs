//! Pluggable objectives (§2.4/§4.4): the same PCC machinery optimizing
//! three different goals on the same lossy, fair-queued link.
//!
//! * the safe utility caps loss near 5% — it refuses to push through a 30%
//!   random-loss link;
//! * the loss-resilient utility `T·(1−L)` drives straight through it;
//! * a custom closure can encode anything (here: throughput but with a
//!   hard personal rate cap, e.g. a tenant's billing limit).
//!
//! The first two need no code at all: they are registry *specs*
//! (`"pcc"`, `"pcc:util=lossresilient"`) — the same strings work on the
//! command line of `udp_transfer` and `pcc-experiments sweep`. Only the
//! closure objective requires constructing a controller by hand.
//!
//! ```text
//! cargo run --release --example custom_utility
//! ```

use pcc::core::{CustomUtility, MiMetrics, PccConfig, PccController};
use pcc::prelude::*;
use pcc::scenarios::Protocol;

fn run_with(label: &str, sender: Box<dyn Endpoint>) -> f64 {
    let mut net = NetworkBuilder::new(SimConfig::default());
    let setup = LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000);
    let _ = setup;
    let mut db = Dumbbell::new(
        &mut net,
        BottleneckSpec::new(100e6, 375_000)
            .with_loss(0.30)
            .with_queue(Box::new(FairQueue::new(375_000))),
    );
    let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
    let flow = net.add_flow(FlowSpec {
        sender,
        receiver: Box::new(SackReceiver::new()),
        fwd_path: path.fwd,
        rev_path: path.rev,
        start_at: SimTime::ZERO,
    });
    let report = net.build().run_until(SimTime::from_secs(40));
    let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(10), SimTime::from_secs(40));
    println!("  {label:<28} {tput:7.2} Mbps");
    tput
}

fn main() {
    println!("100 Mbps FQ link with 30% random loss — one PCC flow, three objectives:\n");
    let rtt = SimDuration::from_millis(30);
    let cfg = PccConfig::paper().with_rtt_hint(rtt);

    // 1. The safe utility: loss-capped, as everywhere in §4.1. A plain
    //    registry name (the RTT hint rides on build_sender_hinted).
    let safe = Protocol::Named("pcc".into())
        .build_sender_hinted(FlowSize::Infinite, 1500, rtt)
        .expect("pcc builds");
    let t_safe = run_with("safe sigmoid (loss-capped)", safe);

    // 2. The §4.4.2 loss-resilient utility — one spec string away.
    let resilient = Protocol::Named("pcc:util=lossresilient".into())
        .build_sender_hinted(FlowSize::Infinite, 1500, rtt)
        .expect("spec builds");
    let t_res = run_with("pcc:util=lossresilient", resilient);

    // 3. A custom application objective: loss-resilient, but never above a
    //    personal 25 Mbps budget (e.g. a metered tenant).
    let capped = CustomUtility::new("capped-25mbps", |m: &MiMetrics| {
        let over = (m.x_mbps() - 25.0).max(0.0);
        m.t_mbps() * (1.0 - m.loss_rate) - 10.0 * over * over
    });
    let ctrl = PccController::with_utility(cfg, Box::new(capped));
    let sender = Box::new(CcSender::new(CcSenderConfig::default(), Box::new(ctrl)));
    let t_cap = run_with("custom: resilient, cap 25 Mbps", sender);

    println!();
    assert!(
        t_res > 5.0 * t_safe,
        "resilience objective must punch through"
    );
    assert!(t_cap < 30.0, "custom cap respected");
    println!(
        "Same control machinery, three behaviours: {t_safe:.1} / {t_res:.1} / {t_cap:.1} Mbps.\n\
         No TCP variant can express any of this without a new kernel patch."
    );
}
