//! Quickstart: one PCC flow on a clean 100 Mbps / 30 ms path.
//!
//! Shows the three-layer API — build a network, plug a PCC sender into a
//! flow, run, and read the report. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcc::prelude::*;

fn main() {
    // 1. A deterministic network: same seed ⇒ bit-identical run.
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: SimDuration::from_millis(500),
        seed: 42,
    });

    // 2. Topology: a 100 Mbps bottleneck with a 64 KB drop-tail buffer and
    //    a 30 ms round trip.
    let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
    let path = db.attach_flow(&mut net, SimDuration::from_millis(30));

    // 3. A PCC sender (paper defaults: safe utility, RCTs, ε = 1%-5%).
    let pcc = PccController::new(PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)));
    let flow = net.add_flow(FlowSpec {
        sender: Box::new(CcSender::new(CcSenderConfig::default(), Box::new(pcc))),
        receiver: Box::new(SackReceiver::new()),
        fwd_path: path.fwd,
        rev_path: path.rev,
        start_at: SimTime::ZERO,
    });

    // 4. Run 20 simulated seconds and inspect.
    let report = net.build().run_until(SimTime::from_secs(20));
    let stats = &report.flows[flow.index()];

    println!("PCC on 100 Mbps / 30 ms for 20 s:");
    println!("  packets sent      : {}", stats.sent_packets);
    println!("  losses detected   : {}", stats.detected_losses);
    println!(
        "  mean RTT          : {:.2} ms",
        stats.mean_rtt().map(|d| d.as_millis_f64()).unwrap_or(0.0)
    );
    println!("  throughput by 500 ms window:");
    for (i, chunk) in stats.series.throughput_mbps.chunks(8).enumerate() {
        let row: Vec<String> = chunk.iter().map(|v| format!("{v:6.1}")).collect();
        println!("    t={:>2}s  {}", i * 4, row.join(" "));
    }
    let steady = report.avg_throughput_mbps(flow, SimTime::from_secs(5), SimTime::from_secs(20));
    println!("  steady-state throughput: {steady:.1} Mbps of 100");
    assert!(steady > 90.0, "PCC should fill the pipe");
    println!("OK");
}
