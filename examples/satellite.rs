//! Satellite-link shoot-out (the paper's §4.1.3 motivation): PCC vs the
//! TCP variants engineered for exactly this link — on exactly this link.
//!
//! Emulates the WINDS satellite Internet system: 800 ms RTT, 42 Mbps,
//! 0.74% random loss, shallow 7.5 KB bottleneck buffer.
//!
//! ```text
//! cargo run --release --example satellite
//! ```

use pcc::scenarios::links::{run_satellite, SATELLITE_RTT};
use pcc::scenarios::Protocol;
use pcc::simnet::time::{SimDuration, SimTime};

fn main() {
    let buffer = 7_500; // five packets — the paper's highlighted point
    let dur = SimDuration::from_secs(60);
    println!("WINDS satellite link: 42 Mbps, 800 ms RTT, 0.74% loss, {buffer} B buffer");
    println!("(steady state measured over the last 30 s of a 60 s run)\n");
    let contenders = [
        Protocol::pcc_default(SATELLITE_RTT),
        Protocol::Tcp("hybla"),
        Protocol::Tcp("illinois"),
        Protocol::Tcp("cubic"),
        Protocol::Tcp("newreno"),
    ];
    let mut results = Vec::new();
    for proto in contenders {
        let label = proto.label();
        let r = run_satellite(proto, buffer, dur, 7);
        let tput = r.throughput_in(0, SimTime::from_secs(30), SimTime::from_secs(60));
        results.push((label, tput));
    }
    let pcc_tput = results[0].1;
    for (label, tput) in &results {
        let vs = if *tput > 0.01 {
            pcc_tput / tput
        } else {
            f64::INFINITY
        };
        println!("  {label:<10} {tput:7.2} Mbps   (PCC is {vs:5.1}x)");
    }
    println!(
        "\nPCC reaches {:.0}% of the satellite capacity; the specially\n\
         engineered TCPs never recover from random loss plus the tiny buffer.",
        100.0 * pcc_tput / 42.0
    );
}
