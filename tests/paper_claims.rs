//! Cross-crate integration tests: the paper's headline claims, verified
//! end-to-end through the facade crate at scaled-down durations.
//!
//! These complement the per-crate unit/property tests: each test here spans
//! simulator + transport + controller + scenario layers at once.

use pcc::prelude::*;
use pcc::scenarios::links::{run_lossy, run_satellite, run_shallow, SATELLITE_RTT};
use pcc::scenarios::power::{pcc_interactive, pcc_loss_resilient, run_high_loss, run_power};
use pcc::scenarios::{run_dumbbell, FlowPlan, LinkSetup, Protocol, QueueKind};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// §4.1.4 / Fig. 7: PCC holds near-capacity at 1% random loss where CUBIC
/// collapses by an order of magnitude.
#[test]
fn claim_random_loss_resilience() {
    let dur = SimDuration::from_secs(20);
    let pcc = run_lossy(
        Protocol::pcc_default(SimDuration::from_millis(30)),
        0.01,
        dur,
        1,
    );
    let cubic = run_lossy(Protocol::Tcp("cubic"), 0.01, dur, 1);
    let t_pcc = pcc.throughput_in(0, secs(8), secs(20));
    let t_cubic = cubic.throughput_in(0, secs(8), secs(20));
    assert!(t_pcc > 80.0, "PCC ≈ capacity at 1% loss: {t_pcc:.1}");
    assert!(t_pcc > 8.0 * t_cubic, "CUBIC collapses: {t_cubic:.1}");
}

/// §4.1.3 / Fig. 6: on the satellite link with a 5-packet buffer, PCC
/// dwarfs the satellite-engineered Hybla.
#[test]
fn claim_satellite() {
    let dur = SimDuration::from_secs(60);
    let pcc = run_satellite(Protocol::pcc_default(SATELLITE_RTT), 7_500, dur, 2);
    let hybla = run_satellite(Protocol::Tcp("hybla"), 7_500, dur, 2);
    let t_pcc = pcc.throughput_in(0, secs(30), secs(60));
    let t_hybla = hybla.throughput_in(0, secs(30), secs(60));
    assert!(t_pcc > 25.0, "PCC most of 42 Mbps: {t_pcc:.1}");
    assert!(t_pcc > 3.0 * t_hybla, "Hybla far behind: {t_hybla:.1}");
}

/// §4.1.6 / Fig. 9: PCC needs only a 6-packet buffer for high utilization.
#[test]
fn claim_shallow_buffer() {
    let dur = SimDuration::from_secs(15);
    let pcc = run_shallow(
        Protocol::pcc_default(SimDuration::from_millis(30)),
        9_000,
        dur,
        3,
    );
    let t = pcc.throughput_in(0, secs(5), secs(15));
    assert!(t > 60.0, "PCC with 9 KB buffer on 100 Mbps: {t:.1}");
}

/// §2.2 / Fig. 12: two selfish PCC flows converge to a fair, stable split.
#[test]
fn claim_fair_convergence() {
    let rtt = SimDuration::from_millis(30);
    let setup = LinkSetup::new(50e6, rtt, 187_500);
    let r = run_dumbbell(
        setup,
        vec![
            FlowPlan::new(Protocol::pcc_default(rtt), rtt),
            FlowPlan::new(Protocol::pcc_default(rtt), rtt).starting_at(secs(10)),
        ],
        secs(140),
        4,
    );
    let t0 = r.throughput_in(0, secs(100), secs(140));
    let t1 = r.throughput_in(1, secs(100), secs(140));
    assert!(t0 + t1 > 42.0, "link stays utilized: {t0:.1}+{t1:.1}");
    let ratio = t0.max(t1) / t0.min(t1).max(0.01);
    assert!(ratio < 1.6, "near-fair split: {t0:.1} vs {t1:.1}");
}

/// §4.4.1 / Fig. 17: with the latency utility, PCC's power is the same
/// with and without CoDel — the AQM has nothing left to do.
#[test]
fn claim_aqm_agnostic_power() {
    let dur = SimDuration::from_secs(30);
    let codel = run_power(pcc_interactive(), QueueKind::FqCodel, dur, 5);
    let bloat = run_power(pcc_interactive(), QueueKind::Bufferbloat, dur, 5);
    let ratio = codel.power / bloat.power.max(1e-9);
    assert!(
        (0.4..2.5).contains(&ratio),
        "power parity: codel {:.0} vs bloat {:.0}",
        codel.power,
        bloat.power
    );
}

/// §4.4.2: the loss-resilient utility pushes through 30% random loss.
#[test]
fn claim_extreme_loss_with_fq() {
    let dur = SimDuration::from_secs(25);
    let frac = run_high_loss(pcc_loss_resilient(), 0.3, dur, 6);
    assert!(frac > 0.6, "≥60% of achievable at 30% loss: {frac:.2}");
}

/// Determinism across the whole stack: same seed ⇒ identical bytes.
#[test]
fn claim_deterministic_replay() {
    let run = |seed| {
        let r = run_lossy(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            0.02,
            SimDuration::from_secs(5),
            seed,
        );
        (
            r.report.flows[0].delivered_bytes,
            r.report.flows[0].detected_losses,
            r.report.events_processed,
        )
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

/// The full protocol zoo moves data on a plain link through the facade.
#[test]
fn claim_all_protocols_functional() {
    let rtt = SimDuration::from_millis(20);
    for proto in [
        Protocol::pcc_default(rtt),
        Protocol::Tcp("newreno"),
        Protocol::Tcp("cubic"),
        Protocol::Tcp("illinois"),
        Protocol::Tcp("hybla"),
        Protocol::Tcp("vegas"),
        Protocol::Tcp("bic"),
        Protocol::Tcp("westwood"),
        Protocol::TcpPaced("newreno"),
        Protocol::Sabul,
        Protocol::Pcp,
    ] {
        let label = proto.label();
        let r = pcc::scenarios::run_single(
            proto,
            LinkSetup::new(20e6, rtt, 75_000),
            SimDuration::from_secs(10),
            11,
        );
        let t = r.throughput_in(0, secs(4), secs(10));
        assert!(t > 2.0, "{label} moves data: {t:.2} Mbps");
    }
}
