//! Conformance suite for the unified `CongestionControl` API: every
//! algorithm in the registry — the PCC×utility family, all seven TCP
//! baselines (plain and `-paced`), SABUL, PCP, and the BBR-style hybrid —
//! is driven through the same scripted event sequence and the same
//! end-to-end simulation, and must uphold the API contract:
//!
//! * construction by name succeeds and the initial operating point is sane
//!   (a positive finite rate and/or a window ≥ 1 packet);
//! * behaviour is deterministic under a fixed `SimRng` seed;
//! * requested rates never fall below the 1 bps floor (and windows never
//!   below 1 packet), no matter how hostile the event stream;
//! * timers are redelivered with the token the algorithm armed;
//! * the algorithm actually moves data through the one `CcSender` engine.

use pcc::prelude::*;
use pcc::transport::cc::{
    AckEvent, CongestionControl, Ctx, Effects, LossEvent, LossKind, SentEvent,
};
use pcc::transport::registry;

fn params() -> CcParams {
    CcParams::default().with_rtt_hint(SimDuration::from_millis(30))
}

fn all_names() -> Vec<String> {
    pcc::install_registry();
    let names = registry::names();
    assert!(
        names.len() >= 12,
        "registry spans PCC×utilities, 7 TCPs, SABUL, PCP, BBR: {names:?}"
    );
    assert!(
        names.contains(&"bbr".to_string()),
        "the hybrid is registered: {names:?}"
    );
    names
}

/// A scripted pseudo-engine: feeds a deterministic event sequence and logs
/// every effect the algorithm requests.
struct Script {
    cc: Box<dyn CongestionControl>,
    rng: SimRng,
    fx: Effects,
    now: SimTime,
    /// Armed timers (time, token), fired in order.
    timers: Vec<(SimTime, u64)>,
    /// Every applied effect, stringified for comparison.
    log: Vec<String>,
    rate: Option<f64>,
    cwnd: Option<f64>,
    next_seq: u64,
}

impl Script {
    fn new(name: &str, seed: u64) -> Script {
        let cc = registry::by_name(name, &params()).expect("registered");
        Script {
            cc,
            rng: SimRng::new(seed),
            fx: Effects::default(),
            now: SimTime::ZERO,
            timers: Vec::new(),
            log: Vec::new(),
            rate: None,
            cwnd: None,
            next_seq: 0,
        }
    }

    fn apply(&mut self) {
        let d = self.fx.drain();
        if let Some(r) = d.rate {
            assert!(r >= 1.0 && r.is_finite(), "rate floor respected: {r}");
            self.rate = Some(r);
            self.log.push(format!("rate={r:.3}"));
        }
        if let Some(w) = d.cwnd {
            assert!(w >= 1.0 && w.is_finite(), "cwnd floor respected: {w}");
            self.cwnd = Some(w);
            self.log.push(format!("cwnd={w:.3}"));
        }
        if let Some(m) = d.mode {
            self.log.push(format!("mode={m:?}"));
        }
        if let Some(ri) = d.report_in {
            self.log.push(format!("report_in={}", ri.as_nanos()));
        }
        for (at, token) in d.timers {
            self.log.push(format!("timer@{}#{token}", at.as_nanos()));
            self.timers.push((at, token));
        }
    }

    fn start(&mut self) {
        {
            let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
            self.cc.on_start(&mut ctx);
        }
        self.apply();
    }

    /// Fire every timer due at or before `t`, redelivering tokens.
    fn advance_to(&mut self, t: SimTime) {
        loop {
            self.timers.sort_by_key(|&(at, _)| at);
            let Some(&(at, token)) = self.timers.first() else {
                break;
            };
            if at > t {
                break;
            }
            self.timers.remove(0);
            self.now = at;
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_timer(token, &mut ctx);
            }
            self.apply();
        }
        self.now = t;
    }

    /// Send `n` packets and resolve them: `acked` delivered, the rest lost.
    fn traffic(&mut self, n: u64, acked: u64, rtt_ms: u64) {
        let rtt = SimDuration::from_millis(rtt_ms);
        for i in 0..n {
            let ev = SentEvent {
                now: self.now,
                seq: self.next_seq + i,
                bytes: 1500,
                retx: false,
                in_flight: i + 1,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_sent(&ev, &mut ctx);
            }
            self.apply();
        }
        for i in 0..acked {
            let seq = self.next_seq + i;
            let ack = AckEvent {
                now: self.now,
                seq,
                rtt,
                sampled: true,
                srtt: rtt,
                min_rtt: rtt,
                max_rtt: rtt,
                recv_at: self.now + SimDuration::from_micros(i * 120),
                probe_train: self.cc.probe_tag(),
                of_retx: false,
                cum_ack: seq + 1,
                newly_acked: 1,
                in_flight: n - i,
                mss: 1500,
                in_recovery: false,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_ack(&ack, &mut ctx);
            }
            self.apply();
        }
        if acked < n {
            let lost: Vec<u64> = (self.next_seq + acked..self.next_seq + n).collect();
            let ev = LossEvent {
                now: self.now,
                seqs: &lost,
                kind: if lost.len() as u64 == n {
                    LossKind::Timeout
                } else {
                    LossKind::Detected
                },
                new_episode: true,
                in_flight: 0,
                mss: 1500,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_loss(&ev, &mut ctx);
            }
            self.apply();
        }
        self.next_seq += n;
    }

    /// The full scripted session: clean growth, partial loss, total loss,
    /// recovery — every event kind the API defines.
    fn run_session(&mut self) {
        self.start();
        self.advance_to(SimTime::from_millis(40));
        self.traffic(10, 10, 30);
        self.advance_to(SimTime::from_millis(200));
        self.traffic(20, 18, 30); // partial loss
        self.advance_to(SimTime::from_millis(600));
        self.traffic(8, 0, 30); // total loss (timeout-style)
        self.advance_to(SimTime::from_secs(2));
        self.traffic(30, 30, 35);
        self.advance_to(SimTime::from_secs(4));
    }
}

#[test]
fn initial_operating_point_is_sane() {
    for name in all_names() {
        let mut s = Script::new(&name, 11);
        s.start();
        assert!(
            s.rate.is_some() || s.cwnd.is_some(),
            "{name}: on_start must set a rate and/or a cwnd"
        );
        if let Some(r) = s.rate {
            assert!((1.0..1e12).contains(&r), "{name}: initial rate sane: {r}");
        }
        if let Some(w) = s.cwnd {
            assert!((1.0..1e6).contains(&w), "{name}: initial cwnd sane: {w}");
        }
    }
}

#[test]
fn deterministic_under_fixed_seed() {
    for name in all_names() {
        let mut a = Script::new(&name, 42);
        let mut b = Script::new(&name, 42);
        a.run_session();
        b.run_session();
        assert_eq!(a.log, b.log, "{name}: same seed, same effect stream");
    }
}

#[test]
fn floors_hold_under_hostile_loss() {
    for name in all_names() {
        let mut s = Script::new(&name, 3);
        s.start();
        // A barrage of pure-loss rounds; the `apply` asserts enforce the
        // rate/cwnd floors on every requested effect.
        for round in 0..30u64 {
            s.advance_to(SimTime::from_millis(100 * (round + 1)));
            s.traffic(5, 0, 30);
        }
        if let Some(r) = s.rate {
            assert!(r >= 1.0, "{name}: rate floored after loss barrage: {r}");
        }
        if let Some(w) = s.cwnd {
            assert!(w >= 1.0, "{name}: cwnd floored after loss barrage: {w}");
        }
    }
}

#[test]
fn timers_are_redelivered_with_their_token() {
    // The scripted driver redelivers armed timers verbatim; an algorithm
    // that mismatches tokens would misbehave or panic. Additionally check
    // the tokens stay within the engine's 56-bit passthrough budget.
    for name in all_names() {
        let mut s = Script::new(&name, 9);
        s.start();
        for &(_, token) in &s.timers {
            assert!(
                token < (1u64 << 56),
                "{name}: token {token} fits the engine's passthrough tag"
            );
        }
        s.run_session();
    }
}

mod hybrid_enforcement {
    //! When an algorithm sets *both* effects, each engine must enforce
    //! both: a closed window blocks sends even when pacing is due, and a
    //! due pacing gap blocks sends even when the window is open. This is
    //! the path BBR-style hybrids depend on.

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use pcc::prelude::*;
    use pcc::transport::cc::{AckEvent, CongestionControl, Ctx, LossEvent};

    /// Fixed hybrid operating point that records the largest in-flight
    /// count the engine ever let it reach.
    struct HybridProbe {
        rate_bps: f64,
        cwnd_pkts: f64,
        max_in_flight: Arc<AtomicU64>,
    }

    impl CongestionControl for HybridProbe {
        fn name(&self) -> &'static str {
            "hybrid-probe"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(self.rate_bps);
            ctx.set_cwnd(self.cwnd_pkts);
        }
        fn on_sent(&mut self, ev: &pcc::transport::cc::SentEvent, _ctx: &mut Ctx) {
            self.max_in_flight
                .fetch_max(ev.in_flight, Ordering::Relaxed);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
    }

    fn run_sim(rate_bps: f64, cwnd_pkts: f64, max_in_flight: Arc<AtomicU64>) -> f64 {
        let mut net = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 7,
        });
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 1 << 20));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(
                CcSenderConfig::default(),
                Box::new(HybridProbe {
                    rate_bps,
                    cwnd_pkts,
                    max_in_flight,
                }),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(5));
        report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(5))
    }

    #[test]
    fn cc_sender_window_gates_pacing() {
        // 100 Mbps pacing against a 6-packet window on a 30 ms path: the
        // engine must never exceed the window, pinning throughput at
        // ~cwnd/RTT (2.4 Mbps) despite a due pacer.
        let peak = Arc::new(AtomicU64::new(0));
        let tput = run_sim(100e6, 6.0, Arc::clone(&peak));
        assert!(
            peak.load(Ordering::Relaxed) <= 6,
            "in-flight capped by the window: {}",
            peak.load(Ordering::Relaxed)
        );
        assert!(tput < 4.0, "window caps the paced rate: {tput} Mbps");
        assert!(tput > 0.5, "data still flows: {tput} Mbps");
    }

    #[test]
    fn cc_sender_pacing_gates_window() {
        // A 4 Mbps pacing rate under a huge window: the pacer, not the
        // window, must set the throughput.
        let peak = Arc::new(AtomicU64::new(0));
        let tput = run_sim(4e6, 10_000.0, peak);
        assert!(
            (tput - 4.0).abs() < 0.5,
            "pacing caps an open window: {tput} Mbps"
        );
    }

    #[test]
    fn udp_engine_window_gates_pacing() {
        // Same contract on real sockets: a gigabit pacing rate with a
        // 4-packet window must never have more than 4 datagrams in
        // flight.
        let (rx_sock, tx_sock, rx_addr) = udp_sockets();
        let total: u64 = 256 * 1024;
        let rx = std::thread::spawn(move || pcc::udp::receive(&rx_sock, total));
        let peak = Arc::new(AtomicU64::new(0));
        let cc = HybridProbe {
            rate_bps: 1e9,
            cwnd_pkts: 4.0,
            max_in_flight: Arc::clone(&peak),
        };
        let cfg = pcc::udp::UdpSenderConfig {
            payload: 1200,
            total_bytes: total,
            seed: 2,
            ..Default::default()
        };
        let report = pcc::udp::send_with(&tx_sock, rx_addr, cfg, Box::new(cc)).expect("send");
        rx.join().expect("join").expect("receive");
        assert!(
            peak.load(Ordering::Relaxed) <= 4,
            "UDP engine honours the window even with pacing due: {}",
            peak.load(Ordering::Relaxed)
        );
        assert!(report.final_cwnd_pkts > 0.0 && report.final_rate_bps > 0.0);
    }

    #[test]
    fn udp_engine_pacing_gates_window() {
        // And the converse: a huge window with a 16 Mbps pacing rate must
        // take at least the paced duration (512 KB wire ≈ 0.26 s) — if
        // the engine ignored the rate, loopback would finish in
        // milliseconds. Lower bound only, so CI jitter can't flake it.
        let (rx_sock, tx_sock, rx_addr) = udp_sockets();
        let total: u64 = 512 * 1024;
        let rx = std::thread::spawn(move || pcc::udp::receive(&rx_sock, total));
        let peak = Arc::new(AtomicU64::new(0));
        let cc = HybridProbe {
            rate_bps: 16e6,
            cwnd_pkts: 10_000.0,
            max_in_flight: peak,
        };
        let cfg = pcc::udp::UdpSenderConfig {
            payload: 1200,
            total_bytes: total,
            seed: 3,
            ..Default::default()
        };
        // lint: allow(L002) — this test times a real loopback UDP transfer; wall clock is the thing under test, not a simulation input
        let t0 = std::time::Instant::now();
        pcc::udp::send_with(&tx_sock, rx_addr, cfg, Box::new(cc)).expect("send");
        let elapsed = t0.elapsed();
        rx.join().expect("join").expect("receive");
        assert!(
            elapsed.as_secs_f64() > 0.1,
            "pacing throttles an open window: {elapsed:?}"
        );
    }

    fn udp_sockets() -> (
        std::net::UdpSocket,
        std::net::UdpSocket,
        std::net::SocketAddr,
    ) {
        let rx_sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let rx_addr = rx_sock.local_addr().expect("addr");
        let tx_sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        (rx_sock, tx_sock, rx_addr)
    }
}

/// Parameterized specs covering ≥1 tunable of every algorithm family —
/// the conformance battery runs over these exactly as over bare names.
const PARAMETERIZED_SPECS: &[&str] = &[
    "pcc:eps=0.05",
    "pcc:eps=0.02,util=latency,alpha=50",
    "pcc-lossresilient:tm=1.5,rct=false",
    "cubic:beta=0.7,iw=32",
    "cubic-paced:iw=4",
    "vegas:alpha=3,beta=6",
    "bbr:probe_rtt_ms=5000,cwnd_gain=2.5",
    "sabul:syn_ms=20,decrease=0.8",
    "pcp:train=4,poll_ms=50",
];

#[test]
fn parameterized_specs_run_the_conformance_battery() {
    // The sanity + determinism battery over tuned operating points: a
    // spec-built algorithm must uphold the same API contract as its
    // default-built sibling.
    pcc::install_registry();
    for spec in PARAMETERIZED_SPECS {
        let mut s = Script::new(spec, 11);
        s.start();
        assert!(
            s.rate.is_some() || s.cwnd.is_some(),
            "{spec}: on_start sets an operating point"
        );
        let mut a = Script::new(spec, 42);
        let mut b = Script::new(spec, 42);
        a.run_session();
        b.run_session();
        assert_eq!(a.log, b.log, "{spec}: same seed, same effect stream");
    }
}

#[test]
fn parameterized_specs_move_data_end_to_end() {
    // Both datapaths resolve specs: this drives the simulator engine for
    // every table entry (the UDP datapath's spec transfers live in
    // crates/udp/tests/loopback.rs, which CI also runs).
    pcc::install_registry();
    for spec in PARAMETERIZED_SPECS {
        let r = pcc::scenarios::run_single(
            pcc::scenarios::Protocol::Named(spec.to_string()),
            LinkSetup::new(20e6, SimDuration::from_millis(20), 75_000),
            SimDuration::from_secs(4),
            17,
        );
        let tput = r.throughput_in(0, SimTime::from_secs(1), SimTime::from_secs(4));
        assert!(tput > 0.5, "{spec}: moves data: {tput:.2} Mbps");
    }
}

#[test]
fn parameterized_specs_transfer_on_the_udp_datapath() {
    // The same spec strings on the *real-socket* engine: tuned cubic and
    // tuned PCC each deliver a loopback transfer end-to-end (the sim
    // datapath's half of this contract is the test above).
    for spec in ["cubic:beta=0.7,iw=32", "pcc:eps=0.05"] {
        let rx_sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let rx_addr = rx_sock.local_addr().expect("addr");
        let tx_sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        let total: u64 = 256 * 1024;
        let rx = std::thread::spawn(move || pcc::udp::receive(&rx_sock, total));
        let cfg = pcc::udp::UdpSenderConfig {
            payload: 1200,
            total_bytes: total,
            seed: 23,
            ..Default::default()
        };
        let report =
            pcc::udp::send_named(&tx_sock, rx_addr, cfg, spec, SimDuration::from_millis(2))
                .expect("io")
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
        let rx_report = rx.join().expect("join").expect("receive");
        assert!(
            rx_report.unique_bytes >= total,
            "{spec}: all payload arrived"
        );
        assert!(report.sent >= total / 1200, "{spec}: sender accounted");
    }
}

#[test]
fn spec_tuning_reaches_the_engine() {
    // `cubic:iw=32` is not merely accepted — the initial window the
    // engine sees IS 32 (and the default stays IW10).
    pcc::install_registry();
    let mut tuned = Script::new("cubic:iw=32", 7);
    tuned.start();
    assert_eq!(tuned.cwnd, Some(32.0), "iw=32 is the initial window");
    let mut stock = Script::new("cubic", 7);
    stock.start();
    assert_eq!(stock.cwnd, Some(10.0), "default stays IW10");
}

#[test]
fn invalid_specs_are_typed_errors_never_panics() {
    pcc::install_registry();
    for bad in [
        "pcc:eps=banana",
        "pcc:nope=1",
        "cubic:iw=0",
        "cubic:beta",
        "bbr:cwnd_gain=99",
        "nosuch:eps=0.05",
        ":::",
        "pcc:,",
    ] {
        let err = match registry::by_name(bad, &params()) {
            Ok(_) => panic!("{bad} must not resolve"),
            Err(e) => e,
        };
        assert!(!err.to_string().is_empty(), "{bad}: displayable error");
    }
    // And the error for a bad key lists the valid ones (self-documenting).
    let err = match registry::by_name("cubic:wrong=1", &params()) {
        Ok(_) => panic!("must fail"),
        Err(pcc::transport::registry::SpecError::InvalidParam(e)) => e,
        Err(other) => panic!("expected InvalidParam: {other}"),
    };
    assert!(
        err.valid.iter().any(|k| k.contains("beta")) && err.valid.iter().any(|k| k.contains("iw")),
        "valid keys listed: {:?}",
        err.valid
    );
}

#[test]
fn empty_param_list_is_the_plain_name() {
    // `"pcc:"` ≡ `"pcc"` on the registry surface.
    pcc::install_registry();
    let a = registry::by_name("pcc:", &params()).expect("trailing colon resolves");
    let b = registry::by_name("pcc", &params()).expect("plain resolves");
    assert_eq!(a.name(), b.name());
}

#[test]
fn every_algorithm_moves_data_end_to_end() {
    // The same engine, every algorithm, a clean 20 Mbps path: each must
    // deliver a meaningful share of the link within 4 s.
    for name in all_names() {
        let r = pcc::scenarios::run_single(
            pcc::scenarios::Protocol::Named(name.clone()),
            LinkSetup::new(20e6, SimDuration::from_millis(20), 75_000),
            SimDuration::from_secs(4),
            17,
        );
        let tput = r.throughput_in(0, SimTime::from_secs(1), SimTime::from_secs(4));
        assert!(
            tput > 0.5,
            "{name}: moves data through CcSender: {tput:.2} Mbps"
        );
    }
}

/// Every registered algorithm certified on the off-path control plane:
/// driven end-to-end with 1-RTT batched [`MeasurementReport`]s instead of
/// per-ACK callbacks (`every_algorithm_moves_data_with_batched_reports`
/// runs this exact list). A registered algorithm missing from this list
/// fails `batched_conformance_list_matches_the_registry` below — and the
/// in-repo `pcc-lint` L008 rule cross-checks the literal entries against
/// every `register_*` call site, so the list cannot silently rot.
const BATCHED_CONFORMANCE: &[&str] = &[
    "bbr",
    "bic",
    "bic-paced",
    "cubic",
    "cubic-paced",
    "hybla",
    "hybla-paced",
    "illinois",
    "illinois-paced",
    "newreno",
    "newreno-paced",
    "pcc",
    "pcc-latency",
    "pcc-lossresilient",
    "pcc-simple",
    "pcp",
    "rate-then-window",
    "reno",
    "sabul",
    "vegas",
    "vegas-paced",
    "westwood",
    "westwood-paced",
];

#[test]
fn batched_conformance_list_matches_the_registry() {
    // Set equality, both directions: a newly registered algorithm must be
    // added to BATCHED_CONFORMANCE (and thereby certified batched), and a
    // removed one must be pruned from it.
    use std::collections::BTreeSet;
    let registered: BTreeSet<String> = all_names().into_iter().collect();
    let listed: BTreeSet<String> = BATCHED_CONFORMANCE.iter().map(|s| s.to_string()).collect();
    let missing: Vec<_> = registered.difference(&listed).collect();
    let stale: Vec<_> = listed.difference(&registered).collect();
    assert!(
        missing.is_empty(),
        "registered but not batched-certified (add to BATCHED_CONFORMANCE \
         and make the batched battery pass): {missing:?}"
    );
    assert!(
        stale.is_empty(),
        "listed but no longer registered: {stale:?}"
    );
}

#[test]
fn every_algorithm_moves_data_with_batched_reports() {
    // The tentpole acceptance gate: the identical end-to-end scenario as
    // `every_algorithm_moves_data_end_to_end`, but the engine withholds
    // per-ACK callbacks and delivers one aggregated report per RTT. Every
    // algorithm — including the rate→window mode switcher — must still
    // move a meaningful share of the link.
    use pcc::transport::cc::ReportMode;
    pcc::install_registry();
    let rtt = SimDuration::from_millis(20);
    for name in BATCHED_CONFORMANCE {
        let r = pcc::scenarios::run_dumbbell(
            LinkSetup::new(20e6, rtt, 75_000),
            vec![pcc::scenarios::FlowPlan::new(
                pcc::scenarios::Protocol::Named(name.to_string()),
                rtt,
            )
            .reporting(ReportMode::batched_rtt())],
            SimTime::from_secs(4),
            17,
        );
        let tput = r.throughput_in(0, SimTime::from_secs(1), SimTime::from_secs(4));
        assert!(
            tput > 0.5,
            "{name}: moves data on batched reports: {tput:.2} Mbps"
        );
    }
}

#[test]
fn batched_reports_are_deterministic_end_to_end() {
    // Same seed, same batched run, bit-identical results — the off-path
    // report machinery must not introduce any nondeterminism.
    use pcc::transport::cc::ReportMode;
    pcc::install_registry();
    let rtt = SimDuration::from_millis(20);
    let run = || {
        pcc::scenarios::run_dumbbell(
            LinkSetup::new(20e6, rtt, 75_000),
            vec![
                pcc::scenarios::FlowPlan::new(pcc::scenarios::Protocol::Named("pcc".into()), rtt)
                    .reporting(ReportMode::batched_rtt()),
            ],
            SimTime::from_secs(4),
            17,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report.events_processed, b.report.events_processed);
    assert_eq!(
        a.report.flows[0].delivered_bytes,
        b.report.flows[0].delivered_bytes
    );
    assert_eq!(
        a.report.flows[0].sent_packets,
        b.report.flows[0].sent_packets
    );
}
