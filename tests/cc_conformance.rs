//! Conformance suite for the unified `CongestionControl` API: every
//! algorithm in the registry — the PCC×utility family, all seven TCP
//! baselines (plain and `-paced`), SABUL, and PCP — is driven through the
//! same scripted event sequence and the same end-to-end simulation, and
//! must uphold the API contract:
//!
//! * construction by name succeeds and the initial operating point is sane
//!   (a positive finite rate and/or a window ≥ 1 packet);
//! * behaviour is deterministic under a fixed `SimRng` seed;
//! * requested rates never fall below the 1 bps floor (and windows never
//!   below 1 packet), no matter how hostile the event stream;
//! * timers are redelivered with the token the algorithm armed;
//! * the algorithm actually moves data through the one `CcSender` engine.

use pcc::prelude::*;
use pcc::transport::cc::{
    AckEvent, CongestionControl, Ctx, Effects, LossEvent, LossKind, SentEvent,
};
use pcc::transport::registry;

fn params() -> CcParams {
    CcParams::default().with_rtt_hint(SimDuration::from_millis(30))
}

fn all_names() -> Vec<String> {
    pcc::install_registry();
    let names = registry::names();
    assert!(
        names.len() >= 11,
        "registry spans PCC×utilities, 7 TCPs, SABUL, PCP: {names:?}"
    );
    names
}

/// A scripted pseudo-engine: feeds a deterministic event sequence and logs
/// every effect the algorithm requests.
struct Script {
    cc: Box<dyn CongestionControl>,
    rng: SimRng,
    fx: Effects,
    now: SimTime,
    /// Armed timers (time, token), fired in order.
    timers: Vec<(SimTime, u64)>,
    /// Every applied effect, stringified for comparison.
    log: Vec<String>,
    rate: Option<f64>,
    cwnd: Option<f64>,
    next_seq: u64,
}

impl Script {
    fn new(name: &str, seed: u64) -> Script {
        let cc = registry::by_name(name, &params()).expect("registered");
        Script {
            cc,
            rng: SimRng::new(seed),
            fx: Effects::default(),
            now: SimTime::ZERO,
            timers: Vec::new(),
            log: Vec::new(),
            rate: None,
            cwnd: None,
            next_seq: 0,
        }
    }

    fn apply(&mut self) {
        let (rate, cwnd, timers) = self.fx.drain();
        if let Some(r) = rate {
            assert!(r >= 1.0 && r.is_finite(), "rate floor respected: {r}");
            self.rate = Some(r);
            self.log.push(format!("rate={r:.3}"));
        }
        if let Some(w) = cwnd {
            assert!(w >= 1.0 && w.is_finite(), "cwnd floor respected: {w}");
            self.cwnd = Some(w);
            self.log.push(format!("cwnd={w:.3}"));
        }
        for (at, token) in timers {
            self.log.push(format!("timer@{}#{token}", at.as_nanos()));
            self.timers.push((at, token));
        }
    }

    fn start(&mut self) {
        {
            let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
            self.cc.on_start(&mut ctx);
        }
        self.apply();
    }

    /// Fire every timer due at or before `t`, redelivering tokens.
    fn advance_to(&mut self, t: SimTime) {
        loop {
            self.timers.sort_by_key(|&(at, _)| at);
            let Some(&(at, token)) = self.timers.first() else {
                break;
            };
            if at > t {
                break;
            }
            self.timers.remove(0);
            self.now = at;
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_timer(token, &mut ctx);
            }
            self.apply();
        }
        self.now = t;
    }

    /// Send `n` packets and resolve them: `acked` delivered, the rest lost.
    fn traffic(&mut self, n: u64, acked: u64, rtt_ms: u64) {
        let rtt = SimDuration::from_millis(rtt_ms);
        for i in 0..n {
            let ev = SentEvent {
                now: self.now,
                seq: self.next_seq + i,
                bytes: 1500,
                retx: false,
                in_flight: i + 1,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_sent(&ev, &mut ctx);
            }
            self.apply();
        }
        for i in 0..acked {
            let seq = self.next_seq + i;
            let ack = AckEvent {
                now: self.now,
                seq,
                rtt,
                sampled: true,
                srtt: rtt,
                min_rtt: rtt,
                max_rtt: rtt,
                recv_at: self.now + SimDuration::from_micros(i * 120),
                probe_train: self.cc.probe_tag(),
                of_retx: false,
                cum_ack: seq + 1,
                newly_acked: 1,
                in_flight: n - i,
                mss: 1500,
                in_recovery: false,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_ack(&ack, &mut ctx);
            }
            self.apply();
        }
        if acked < n {
            let lost: Vec<u64> = (self.next_seq + acked..self.next_seq + n).collect();
            let ev = LossEvent {
                now: self.now,
                seqs: &lost,
                kind: if lost.len() as u64 == n {
                    LossKind::Timeout
                } else {
                    LossKind::Detected
                },
                new_episode: true,
                in_flight: 0,
                mss: 1500,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_loss(&ev, &mut ctx);
            }
            self.apply();
        }
        self.next_seq += n;
    }

    /// The full scripted session: clean growth, partial loss, total loss,
    /// recovery — every event kind the API defines.
    fn run_session(&mut self) {
        self.start();
        self.advance_to(SimTime::from_millis(40));
        self.traffic(10, 10, 30);
        self.advance_to(SimTime::from_millis(200));
        self.traffic(20, 18, 30); // partial loss
        self.advance_to(SimTime::from_millis(600));
        self.traffic(8, 0, 30); // total loss (timeout-style)
        self.advance_to(SimTime::from_secs(2));
        self.traffic(30, 30, 35);
        self.advance_to(SimTime::from_secs(4));
    }
}

#[test]
fn initial_operating_point_is_sane() {
    for name in all_names() {
        let mut s = Script::new(&name, 11);
        s.start();
        assert!(
            s.rate.is_some() || s.cwnd.is_some(),
            "{name}: on_start must set a rate and/or a cwnd"
        );
        if let Some(r) = s.rate {
            assert!((1.0..1e12).contains(&r), "{name}: initial rate sane: {r}");
        }
        if let Some(w) = s.cwnd {
            assert!((1.0..1e6).contains(&w), "{name}: initial cwnd sane: {w}");
        }
    }
}

#[test]
fn deterministic_under_fixed_seed() {
    for name in all_names() {
        let mut a = Script::new(&name, 42);
        let mut b = Script::new(&name, 42);
        a.run_session();
        b.run_session();
        assert_eq!(a.log, b.log, "{name}: same seed, same effect stream");
    }
}

#[test]
fn floors_hold_under_hostile_loss() {
    for name in all_names() {
        let mut s = Script::new(&name, 3);
        s.start();
        // A barrage of pure-loss rounds; the `apply` asserts enforce the
        // rate/cwnd floors on every requested effect.
        for round in 0..30u64 {
            s.advance_to(SimTime::from_millis(100 * (round + 1)));
            s.traffic(5, 0, 30);
        }
        if let Some(r) = s.rate {
            assert!(r >= 1.0, "{name}: rate floored after loss barrage: {r}");
        }
        if let Some(w) = s.cwnd {
            assert!(w >= 1.0, "{name}: cwnd floored after loss barrage: {w}");
        }
    }
}

#[test]
fn timers_are_redelivered_with_their_token() {
    // The scripted driver redelivers armed timers verbatim; an algorithm
    // that mismatches tokens would misbehave or panic. Additionally check
    // the tokens stay within the engine's 56-bit passthrough budget.
    for name in all_names() {
        let mut s = Script::new(&name, 9);
        s.start();
        for &(_, token) in &s.timers {
            assert!(
                token < (1u64 << 56),
                "{name}: token {token} fits the engine's passthrough tag"
            );
        }
        s.run_session();
    }
}

#[test]
fn every_algorithm_moves_data_end_to_end() {
    // The same engine, every algorithm, a clean 20 Mbps path: each must
    // deliver a meaningful share of the link within 4 s.
    for name in all_names() {
        let r = pcc::scenarios::run_single(
            pcc::scenarios::Protocol::Named(name.clone()),
            LinkSetup::new(20e6, SimDuration::from_millis(20), 75_000),
            SimDuration::from_secs(4),
            17,
        );
        let tput = r.throughput_in(0, SimTime::from_secs(1), SimTime::from_secs(4));
        assert!(
            tput > 0.5,
            "{name}: moves data through CcSender: {tput:.2} Mbps"
        );
    }
}
