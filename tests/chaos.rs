//! Chaos conformance battery: every registered algorithm through every
//! canonical fault script (`pcc_scenarios::chaos`) — a mid-flow
//! bottleneck flap, an ACK-path blackout spanning several backed-off
//! RTOs, a core-switch failure under a k=4 fat-tree, and a corruption
//! storm.
//!
//! The contract each (algorithm × script) cell must uphold:
//!
//! * **no panic** — faults, re-routes, and budget aborts never unwind;
//! * **no wedge** — the flow either delivers every byte within the
//!   horizon or aborts as a typed `Stalled` on the dead-time budget;
//! * **monotone cum-ack and bounded memory** — the engine's debug
//!   invariants (cumulative ACK never regresses; the scoreboard never
//!   tracks more than ~2× the in-flight cap) are armed in these debug
//!   test builds and fire on violation; the report aggregator is
//!   counters-only by construction, so it cannot grow with loss volume;
//! * **bit-identical reruns** — the same seed reproduces the same
//!   counter fingerprint, script by script.

use pcc::scenarios::chaos::{run_chaos, ChaosScript};
use pcc::scenarios::Protocol;
use pcc::transport::registry;

fn all_names() -> Vec<String> {
    pcc::install_registry();
    let names = registry::names();
    assert!(
        names.len() >= 12,
        "registry spans PCC×utilities, 7 TCPs, SABUL, PCP, BBR: {names:?}"
    );
    names
}

#[test]
fn every_algorithm_survives_every_chaos_script() {
    for name in all_names() {
        for script in ChaosScript::all() {
            let proto = Protocol::Named(name.clone());
            let o = run_chaos(&proto, script, 0xC4A05);
            assert!(
                o.completed || o.stalled,
                "{name} × {}: neither completed nor stalled within the \
                 horizon (wedged: goodput {} Mbps)",
                script.label(),
                o.goodput_mbps
            );
            assert!(
                !(o.completed && o.stalled),
                "{name} × {}: a completed flow must not also report a stall",
                script.label()
            );
            assert!(
                o.goodput_mbps > 0.0,
                "{name} × {}: some forward progress before/after the fault",
                script.label()
            );
            let rerun = run_chaos(&proto, script, 0xC4A05);
            assert_eq!(
                o.fingerprint,
                rerun.fingerprint,
                "{name} × {}: rerun is bit-identical",
                script.label()
            );
        }
    }
}

#[test]
fn flap_and_spine_recover_rather_than_stall() {
    // The survivable scripts (half-second flap; spine death with three
    // live cores to re-route over) must end in completion for the two
    // headline algorithms, with observable post-repair recovery.
    for name in ["pcc", "cubic"] {
        for script in [ChaosScript::LinkFlap, ChaosScript::SpineFailure] {
            let o = run_chaos(&Protocol::Named(name.into()), script, 0xC4A05);
            assert!(
                o.completed && !o.stalled,
                "{name} × {}: survivable fault completes",
                script.label()
            );
            if let Some(r) = o.recovery_ms {
                assert!(
                    r < 10_000.0,
                    "{name} × {}: post-repair recovery prompt: {r} ms",
                    script.label()
                );
            }
        }
    }
}
