//! Chaos conformance battery: every registered algorithm through every
//! canonical fault script (`pcc_scenarios::chaos`) — a mid-flow
//! bottleneck flap, an ACK-path blackout spanning several backed-off
//! RTOs, a core-switch failure under a k=4 fat-tree, and a corruption
//! storm.
//!
//! The contract each (algorithm × script) cell must uphold:
//!
//! * **no panic** — faults, re-routes, and budget aborts never unwind;
//! * **no wedge** — the flow either delivers every byte within the
//!   horizon or aborts as a typed `Stalled` on the dead-time budget;
//! * **monotone cum-ack and bounded memory** — the engine's debug
//!   invariants (cumulative ACK never regresses; the scoreboard never
//!   tracks more than ~2× the in-flight cap) are armed in these debug
//!   test builds and fire on violation; the report aggregator is
//!   counters-only by construction, so it cannot grow with loss volume;
//! * **bit-identical reruns** — the same seed reproduces the same
//!   counter fingerprint, script by script.

use pcc::scenarios::chaos::{run_chaos, ChaosScript};
use pcc::scenarios::workload::{run_churn, Arrival, ChurnConfig, SizeCdf};
use pcc::scenarios::{LinkSetup, Protocol};
use pcc::simnet::time::SimDuration;
use pcc::transport::registry;

fn all_names() -> Vec<String> {
    pcc::install_registry();
    let names = registry::names();
    assert!(
        names.len() >= 12,
        "registry spans PCC×utilities, 7 TCPs, SABUL, PCP, BBR: {names:?}"
    );
    names
}

#[test]
fn every_algorithm_survives_every_chaos_script() {
    for name in all_names() {
        for script in ChaosScript::all() {
            let proto = Protocol::Named(name.clone());
            let o = run_chaos(&proto, script, 0xC4A05);
            assert!(
                o.completed || o.stalled,
                "{name} × {}: neither completed nor stalled within the \
                 horizon (wedged: goodput {} Mbps)",
                script.label(),
                o.goodput_mbps
            );
            assert!(
                !(o.completed && o.stalled),
                "{name} × {}: a completed flow must not also report a stall",
                script.label()
            );
            assert!(
                o.goodput_mbps > 0.0,
                "{name} × {}: some forward progress before/after the fault",
                script.label()
            );
            let rerun = run_chaos(&proto, script, 0xC4A05);
            assert_eq!(
                o.fingerprint,
                rerun.fingerprint,
                "{name} × {}: rerun is bit-identical",
                script.label()
            );
        }
    }
}

#[test]
fn churn_survives_a_mid_run_link_flap() {
    // Churn under fault: the bottleneck flaps (down at 1 s for 0.5 s)
    // while an open-loop workload of 300 heavy-tailed flows is arriving
    // and retiring through the recycling slot arena. The contract:
    //
    // * no wedge — the run reaches its horizon with every admitted flow
    //   accounted for (arrivals = completions + stalls + live-at-horizon);
    // * the fault costs flows, not invariants — stale packets/timers from
    //   flows retired mid-flap are discarded, never billed to a slot's
    //   next tenant;
    // * bit-identical reruns, fault and all.
    let mk = || {
        let cdf = SizeCdf::builtin("cache-follower").expect("bundled CDF");
        let link = LinkSetup::new(100e6, SimDuration::from_millis(20), 250_000);
        let arrival = Arrival::poisson_for_load(0.5, 100e6, cdf.mean_bytes());
        ChurnConfig::new(Protocol::Tcp("cubic"), link, cdf, arrival, 300, 0xC4A05)
            .with_fault_script("1 down 0 0.5")
    };
    let r = run_churn(mk());
    let c = r.churn;
    assert_eq!(c.arrivals, 300, "every flow admitted");
    assert_eq!(
        c.arrivals,
        c.completions + c.stalls + c.live_at_end,
        "accounting conserved across the flap: {c:?}"
    );
    assert!(
        c.completions > 200,
        "the bulk of the workload survives a half-second flap: {c:?}"
    );
    assert_eq!(
        r.samples.len() as u64,
        c.completions + c.stalls,
        "every retired flow harvested exactly once"
    );
    assert!(
        c.peak_live < c.arrivals,
        "slots recycle under fault: peak {} of {}",
        c.peak_live,
        c.arrivals
    );
    let rerun = run_churn(mk());
    assert_eq!(
        r.fingerprint(),
        rerun.fingerprint(),
        "churn-under-fault rerun is bit-identical"
    );
}

#[test]
fn flap_and_spine_recover_rather_than_stall() {
    // The survivable scripts (half-second flap; spine death with three
    // live cores to re-route over) must end in completion for the two
    // headline algorithms, with observable post-repair recovery.
    for name in ["pcc", "cubic"] {
        for script in [ChaosScript::LinkFlap, ChaosScript::SpineFailure] {
            let o = run_chaos(&Protocol::Named(name.into()), script, 0xC4A05);
            assert!(
                o.completed && !o.stalled,
                "{name} × {}: survivable fault completes",
                script.label()
            );
            if let Some(r) = o.recovery_ms {
                assert!(
                    r < 10_000.0,
                    "{name} × {}: post-repair recovery prompt: {r} ms",
                    script.label()
                );
            }
        }
    }
}
