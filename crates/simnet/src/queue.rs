//! Queue disciplines for bottleneck links.
//!
//! Four disciplines cover everything the paper's evaluation needs:
//!
//! * [`DropTail`] — plain FIFO with a byte or packet limit (all of §4.1).
//! * [`FairQueue`] — per-flow deficit round robin with longest-queue drop
//!   (the FQ of §4.4).
//! * [`Codel`] — the CoDel AQM per RFC 8289 (Fig. 17).
//! * [`FqCodel`] — DRR with per-flow CoDel state (Fig. 17's "CoDel + FQ").
//!
//! "Bufferbloat" in Fig. 17 is simply a [`DropTail`] with a very deep buffer.
//!
//! Accounting invariant (checked by property tests): every packet offered to
//! a queue is either rejected at the door (`dropped_tail`), dropped after
//! acceptance by AQM/eviction (`dropped_aqm`), handed to the link
//! (`dequeued`), or still queued — so `enqueued == dequeued + dropped_aqm +
//! len_pkts` at all times.

use std::collections::VecDeque;

use crate::ids::FlowId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// Lifetime counters every queue maintains.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets handed to the link.
    pub dequeued: u64,
    /// Packets rejected at enqueue (tail drops; never counted in `enqueued`).
    pub dropped_tail: u64,
    /// Packets dropped after acceptance (AQM drops, fair-queue evictions).
    pub dropped_aqm: u64,
    /// Total bytes dropped (both kinds).
    pub dropped_bytes: u64,
    /// Peak backlog in bytes.
    pub max_backlog_bytes: u64,
}

impl QueueStats {
    /// All drops, regardless of where they happened.
    pub fn dropped(&self) -> u64 {
        self.dropped_tail + self.dropped_aqm
    }
}

/// A queue discipline attached to a link's egress.
pub trait Queue: Send {
    /// Offer `pkt` to the queue at time `now`. Returns `false` if `pkt`
    /// itself was dropped (other packets may be evicted in its favor and are
    /// accounted in [`QueueStats::dropped_aqm`]).
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> bool;

    /// Remove the next packet to serialize. AQM disciplines may drop packets
    /// internally here; drops show up in [`Queue::stats`].
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Current backlog in bytes.
    fn len_bytes(&self) -> u64;

    /// Current backlog in packets.
    fn len_pkts(&self) -> usize;

    /// Lifetime counters.
    fn stats(&self) -> QueueStats;

    /// True if no packet is waiting.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }
}

/// Buffer capacity expressed in bytes or packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferLimit {
    /// Capacity in bytes (the paper quotes buffer sizes in KB).
    Bytes(u64),
    /// Capacity in whole packets.
    Packets(usize),
}

impl BufferLimit {
    fn admits(&self, cur_bytes: u64, cur_pkts: usize, incoming_bytes: u32) -> bool {
        match *self {
            BufferLimit::Bytes(b) => cur_bytes + incoming_bytes as u64 <= b,
            BufferLimit::Packets(p) => cur_pkts < p,
        }
    }
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

/// FIFO queue with tail drop.
pub struct DropTail {
    q: VecDeque<Packet>,
    bytes: u64,
    limit: BufferLimit,
    stats: QueueStats,
}

impl DropTail {
    /// FIFO limited to `limit_bytes` bytes.
    pub fn bytes(limit_bytes: u64) -> Self {
        Self::new(BufferLimit::Bytes(limit_bytes))
    }

    /// FIFO limited to `limit_pkts` packets.
    pub fn packets(limit_pkts: usize) -> Self {
        Self::new(BufferLimit::Packets(limit_pkts))
    }

    /// FIFO with an explicit [`BufferLimit`]. The backing ring is
    /// pre-sized from the limit (capped — a bufferbloat buffer must not
    /// allocate megabytes up front), so steady-state enqueues never
    /// reallocate.
    pub fn new(limit: BufferLimit) -> Self {
        let hint = match limit {
            BufferLimit::Bytes(b) => (b / 1500 + 1).min(1024) as usize,
            BufferLimit::Packets(p) => p.min(1024),
        };
        DropTail {
            q: VecDeque::with_capacity(hint),
            bytes: 0,
            limit,
            stats: QueueStats::default(),
        }
    }

    /// A very deep FIFO modelling a bufferbloated router (Fig. 17).
    pub fn bufferbloat() -> Self {
        Self::bytes(16 * 1024 * 1024)
    }
}

impl Queue for DropTail {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> bool {
        if !self.limit.admits(self.bytes, self.q.len(), pkt.bytes) {
            self.stats.dropped_tail += 1;
            self.stats.dropped_bytes += pkt.bytes as u64;
            return false;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.bytes as u64;
        self.q.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        true
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.bytes as u64;
        self.stats.dequeued += 1;
        Some(pkt)
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.q.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Deficit Round Robin fair queue (optionally with per-flow CoDel)
// ---------------------------------------------------------------------------

struct DrrFlow {
    flow: FlowId,
    q: VecDeque<Packet>,
    bytes: u64,
    deficit: i64,
    codel: Option<CodelState>,
}

/// Per-flow fair queueing via deficit round robin (DRR).
///
/// A shared byte budget is policed by dropping from the *longest* per-flow
/// queue on overflow (as in Linux `fq_codel`), which protects low-rate flows
/// from aggressive ones — the isolation property §4.4 relies on. With
/// [`FairQueue::with_codel`] each per-flow queue additionally runs the CoDel
/// drop law (FQ-CoDel).
pub struct FairQueue {
    flows: Vec<DrrFlow>,
    active: VecDeque<usize>,
    quantum: u32,
    limit_bytes: u64,
    bytes: u64,
    pkts: usize,
    stats: QueueStats,
    codel_params: Option<CodelParams>,
}

impl FairQueue {
    /// DRR fair queue with a shared `limit_bytes` buffer.
    pub fn new(limit_bytes: u64) -> Self {
        FairQueue {
            flows: Vec::new(),
            active: VecDeque::new(),
            quantum: 1514,
            limit_bytes,
            bytes: 0,
            pkts: 0,
            stats: QueueStats::default(),
            codel_params: None,
        }
    }

    /// DRR fair queue with per-flow CoDel (FQ-CoDel).
    pub fn with_codel(limit_bytes: u64, params: CodelParams) -> Self {
        let mut fq = Self::new(limit_bytes);
        fq.codel_params = Some(params);
        fq
    }

    fn flow_slot(&mut self, flow: FlowId) -> usize {
        if let Some(i) = self.flows.iter().position(|f| f.flow == flow) {
            return i;
        }
        self.flows.push(DrrFlow {
            flow,
            q: VecDeque::new(),
            bytes: 0,
            deficit: 0,
            codel: self.codel_params.map(CodelState::new),
        });
        self.flows.len() - 1
    }

    fn longest_slot(&self) -> Option<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.q.is_empty())
            .max_by_key(|(_, f)| f.bytes)
            .map(|(i, _)| i)
    }

    fn pop_tail(&mut self, slot: usize) -> Packet {
        let victim = self.flows[slot].q.pop_back().expect("non-empty");
        self.flows[slot].bytes -= victim.bytes as u64;
        self.bytes -= victim.bytes as u64;
        self.pkts -= 1;
        victim
    }

    fn drop_head(&mut self, slot: usize) {
        let victim = self.flows[slot].q.pop_front().expect("non-empty");
        self.flows[slot].bytes -= victim.bytes as u64;
        self.bytes -= victim.bytes as u64;
        self.pkts -= 1;
        self.stats.dropped_aqm += 1;
        self.stats.dropped_bytes += victim.bytes as u64;
    }
}

impl Queue for FairQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> bool {
        pkt.enqueued_at = now;
        let slot = self.flow_slot(pkt.flow);
        let was_empty = self.flows[slot].q.is_empty();
        let pkt_bytes = pkt.bytes as u64;
        self.flows[slot].q.push_back(pkt);
        self.flows[slot].bytes += pkt_bytes;
        self.bytes += pkt_bytes;
        self.pkts += 1;
        self.stats.enqueued += 1;
        if was_empty {
            self.flows[slot].deficit = 0;
            self.active.push_back(slot);
        }
        // Police the shared budget: evict from the longest queue's tail. The
        // new packet sits at the tail of `slot` until something evicts it, so
        // "victim is the new packet" is exactly "victim slot == slot and the
        // new packet hasn't been evicted yet".
        let mut new_in_queue = true;
        while self.bytes > self.limit_bytes {
            let Some(victim_slot) = self.longest_slot() else {
                break;
            };
            let victim = self.pop_tail(victim_slot);
            self.stats.dropped_bytes += victim.bytes as u64;
            if victim_slot == slot && new_in_queue {
                new_in_queue = false;
                // Semantically a tail drop of the offered packet.
                self.stats.enqueued -= 1;
                self.stats.dropped_tail += 1;
            } else {
                self.stats.dropped_aqm += 1;
            }
        }
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        new_in_queue
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        loop {
            let slot = *self.active.front()?;
            if self.flows[slot].q.is_empty() {
                self.active.pop_front();
                continue;
            }
            let head_bytes = self.flows[slot].q.front().expect("non-empty").bytes as i64;
            if self.flows[slot].deficit < head_bytes {
                self.flows[slot].deficit += self.quantum as i64;
                self.active.rotate_left(1);
                continue;
            }
            // CoDel pass (FQ-CoDel): may shed head packets of this flow.
            if self.flows[slot].codel.is_some() {
                while let Some(head) = self.flows[slot].q.front().copied() {
                    let backlog = self.flows[slot].bytes;
                    let verdict = self.flows[slot]
                        .codel
                        .as_mut()
                        .expect("checked")
                        .on_dequeue(now, head.enqueued_at, backlog);
                    if verdict == CodelVerdict::Drop {
                        self.drop_head(slot);
                        continue;
                    }
                    break;
                }
                if self.flows[slot].q.is_empty() {
                    self.active.pop_front();
                    continue;
                }
            }
            let pkt = self.flows[slot].q.pop_front().expect("non-empty");
            self.flows[slot].bytes -= pkt.bytes as u64;
            self.flows[slot].deficit -= pkt.bytes as i64;
            self.bytes -= pkt.bytes as u64;
            self.pkts -= 1;
            self.stats.dequeued += 1;
            if self.flows[slot].q.is_empty() {
                self.active.pop_front();
            }
            return Some(pkt);
        }
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

/// CoDel parameters (defaults per RFC 8289: 5 ms target, 100 ms interval).
#[derive(Clone, Copy, Debug)]
pub struct CodelParams {
    /// Acceptable standing-queue sojourn time.
    pub target: SimDuration,
    /// Sliding window over which sojourn must exceed target before dropping.
    pub interval: SimDuration,
    /// Don't drop when the backlog is at or below this many bytes.
    pub min_backlog_bytes: u64,
}

impl Default for CodelParams {
    fn default() -> Self {
        CodelParams {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            min_backlog_bytes: 1514,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CodelVerdict {
    Pass,
    Drop,
}

/// The CoDel control-law state machine, shared by [`Codel`] and [`FairQueue`]
/// (FQ-CoDel). One instance per (sub-)queue.
#[derive(Clone, Copy, Debug)]
struct CodelState {
    params: CodelParams,
    first_above_time: Option<SimTime>,
    drop_next: SimTime,
    count: u32,
    last_count: u32,
    dropping: bool,
}

impl CodelState {
    fn new(params: CodelParams) -> Self {
        CodelState {
            params,
            first_above_time: None,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
            dropping: false,
        }
    }

    fn control_law(&self, t: SimTime) -> SimTime {
        t + self
            .params
            .interval
            .mul_f64(1.0 / (self.count.max(1) as f64).sqrt())
    }

    /// Decide the fate of the packet at the head of the queue.
    fn on_dequeue(
        &mut self,
        now: SimTime,
        enqueued_at: SimTime,
        backlog_bytes: u64,
    ) -> CodelVerdict {
        let sojourn = now.saturating_since(enqueued_at);
        let ok_to_drop = self.update_sojourn(now, sojourn, backlog_bytes);
        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
                return CodelVerdict::Pass;
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drop_next = self.control_law(self.drop_next);
                return CodelVerdict::Drop;
            }
            CodelVerdict::Pass
        } else if ok_to_drop {
            self.dropping = true;
            // Resume close to the previous drop rate if we were dropping
            // recently (RFC 8289 §5.4).
            let delta = self.count.saturating_sub(self.last_count);
            self.count = if delta > 1 && now < self.drop_next + self.params.interval * 16 {
                delta
            } else {
                1
            };
            self.last_count = self.count;
            self.drop_next = self.control_law(now);
            CodelVerdict::Drop
        } else {
            CodelVerdict::Pass
        }
    }

    fn update_sojourn(&mut self, now: SimTime, sojourn: SimDuration, backlog_bytes: u64) -> bool {
        if sojourn < self.params.target || backlog_bytes <= self.params.min_backlog_bytes {
            self.first_above_time = None;
            false
        } else {
            match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + self.params.interval);
                    false
                }
                Some(fat) => now >= fat,
            }
        }
    }
}

/// Single-FIFO CoDel queue.
pub struct Codel {
    q: VecDeque<Packet>,
    bytes: u64,
    limit: BufferLimit,
    state: CodelState,
    stats: QueueStats,
}

impl Codel {
    /// CoDel with default parameters and `limit_bytes` of physical buffer.
    pub fn bytes(limit_bytes: u64) -> Self {
        Self::new(BufferLimit::Bytes(limit_bytes), CodelParams::default())
    }

    /// CoDel with explicit parameters.
    pub fn new(limit: BufferLimit, params: CodelParams) -> Self {
        Codel {
            q: VecDeque::new(),
            bytes: 0,
            limit,
            state: CodelState::new(params),
            stats: QueueStats::default(),
        }
    }
}

impl Queue for Codel {
    fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> bool {
        if !self.limit.admits(self.bytes, self.q.len(), pkt.bytes) {
            self.stats.dropped_tail += 1;
            self.stats.dropped_bytes += pkt.bytes as u64;
            return false;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.bytes as u64;
        self.q.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        loop {
            let head = *self.q.front()?;
            match self.state.on_dequeue(now, head.enqueued_at, self.bytes) {
                CodelVerdict::Drop => {
                    self.q.pop_front();
                    self.bytes -= head.bytes as u64;
                    self.stats.dropped_aqm += 1;
                    self.stats.dropped_bytes += head.bytes as u64;
                }
                CodelVerdict::Pass => {
                    self.q.pop_front();
                    self.bytes -= head.bytes as u64;
                    self.stats.dequeued += 1;
                    return Some(head);
                }
            }
        }
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.q.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// FQ-CoDel: DRR fair queueing with per-flow CoDel (Linux `fq_codel`).
pub type FqCodel = FairQueue;

/// Convenience constructor for FQ-CoDel with default CoDel parameters.
pub fn fq_codel(limit_bytes: u64) -> FairQueue {
    FairQueue::with_codel(limit_bytes, CodelParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;

    fn pkt(flow: u32, seq: u64, bytes: u32) -> Packet {
        Packet::data(FlowId(flow), seq, bytes, SimTime::ZERO, false)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn assert_conserved(q: &dyn Queue) {
        let st = q.stats();
        assert_eq!(
            st.enqueued,
            st.dequeued + st.dropped_aqm + q.len_pkts() as u64,
            "queue conservation"
        );
    }

    #[test]
    fn droptail_respects_byte_limit() {
        let mut q = DropTail::bytes(3000);
        assert!(q.enqueue(pkt(0, 0, 1500), t(0)));
        assert!(q.enqueue(pkt(0, 1, 1500), t(0)));
        assert!(!q.enqueue(pkt(0, 2, 1500), t(0)), "third must tail-drop");
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.len_bytes(), 3000);
        assert_eq!(q.stats().dropped_tail, 1);
        assert_conserved(&q);
    }

    #[test]
    fn droptail_respects_packet_limit() {
        let mut q = DropTail::packets(1);
        assert!(q.enqueue(pkt(0, 0, 100), t(0)));
        assert!(!q.enqueue(pkt(0, 1, 100), t(0)));
        assert_eq!(q.dequeue(t(1)).unwrap().as_data().unwrap().seq, 0);
        assert!(q.dequeue(t(1)).is_none());
    }

    #[test]
    fn droptail_fifo_order() {
        let mut q = DropTail::bytes(1 << 20);
        for s in 0..10 {
            q.enqueue(pkt(0, s, 1500), t(0));
        }
        for s in 0..10 {
            assert_eq!(q.dequeue(t(1)).unwrap().as_data().unwrap().seq, s);
        }
    }

    #[test]
    fn droptail_sets_enqueue_timestamp() {
        let mut q = DropTail::bytes(1 << 20);
        q.enqueue(pkt(0, 0, 1500), t(7));
        assert_eq!(q.dequeue(t(8)).unwrap().enqueued_at, t(7));
    }

    #[test]
    fn drr_alternates_between_flows() {
        let mut q = FairQueue::new(1 << 20);
        for s in 0..4 {
            q.enqueue(pkt(1, s, 1500), t(0));
        }
        for s in 0..4 {
            q.enqueue(pkt(2, s, 1500), t(0));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue(t(1)))
            .map(|p| p.flow.0)
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn drr_fair_in_bytes_with_unequal_sizes() {
        // Flow 1 sends 300-byte packets, flow 2 sends 1500-byte packets.
        // Over a long run each should get ~equal bytes of service.
        let mut q = FairQueue::new(1 << 24);
        for s in 0..500 {
            q.enqueue(pkt(1, s, 300), t(0));
        }
        for s in 0..100 {
            q.enqueue(pkt(2, s, 1500), t(0));
        }
        let mut bytes = [0u64; 2];
        for _ in 0..240 {
            let p = q.dequeue(t(1)).unwrap();
            bytes[(p.flow.0 - 1) as usize] += p.bytes as u64;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((0.8..1.25).contains(&ratio), "byte fairness ratio {ratio}");
    }

    #[test]
    fn drr_drops_from_longest_queue() {
        let mut q = FairQueue::new(6000);
        for s in 0..4 {
            assert!(q.enqueue(pkt(1, s, 1500), t(0)));
        }
        // Flow 2's first packet overflows the shared buffer; the victim must
        // come from flow 1 (the longest queue), not flow 2.
        assert!(q.enqueue(pkt(2, 0, 1500), t(0)));
        assert_eq!(q.stats().dropped_aqm, 1);
        assert_eq!(q.stats().dropped_tail, 0);
        let mut flows_seen = [0u32; 3];
        while let Some(p) = q.dequeue(t(1)) {
            flows_seen[p.flow.0 as usize] += 1;
        }
        assert_eq!(flows_seen[2], 1, "flow 2's packet survived");
        assert_eq!(flows_seen[1], 3, "flow 1 lost one packet");
    }

    #[test]
    fn drr_rejects_new_packet_when_own_queue_longest() {
        let mut q = FairQueue::new(4500);
        assert!(q.enqueue(pkt(1, 0, 1500), t(0)));
        assert!(q.enqueue(pkt(1, 1, 1500), t(0)));
        assert!(q.enqueue(pkt(1, 2, 1500), t(0)));
        // Flow 1 is the only (hence longest) queue: its own new packet is
        // the eviction victim, i.e. a tail drop.
        assert!(!q.enqueue(pkt(1, 3, 1500), t(0)));
        assert_eq!(q.stats().dropped_tail, 1);
        assert_eq!(q.len_pkts(), 3);
        assert_conserved(&q);
    }

    #[test]
    fn codel_no_drops_below_target() {
        let mut q = Codel::bytes(1 << 20);
        // Sojourn stays at 1 ms << 5 ms target: CoDel never drops.
        let mut now = t(0);
        for s in 0..1000u64 {
            q.enqueue(pkt(0, s, 1500), now);
            now += SimDuration::from_millis(1);
            assert!(q.dequeue(now).is_some());
        }
        assert_eq!(q.stats().dropped(), 0);
    }

    #[test]
    fn codel_drops_on_persistent_queue() {
        let mut q = Codel::bytes(1 << 20);
        // Build a standing queue, then dequeue slowly: sojourn stays far
        // above the 5 ms target for longer than the 100 ms interval.
        let mut now = t(0);
        for seq in 0..400u64 {
            q.enqueue(pkt(0, seq, 1500), now);
            now += SimDuration::from_micros(250);
        }
        for _ in 0..300 {
            now += SimDuration::from_millis(2);
            let _ = q.dequeue(now);
        }
        assert!(
            q.stats().dropped_aqm > 0,
            "CoDel should drop under standing queue"
        );
        assert_conserved(&q);
    }

    #[test]
    fn codel_recovers_when_queue_drains() {
        let mut q = Codel::bytes(1 << 20);
        let mut now = t(0);
        for s in 0..200u64 {
            q.enqueue(pkt(0, s, 1500), now);
        }
        for _ in 0..150 {
            now += SimDuration::from_millis(3);
            let _ = q.dequeue(now);
        }
        assert!(q.stats().dropped_aqm > 0);
        while q.dequeue(now).is_some() {}
        let drops_after_drain = q.stats().dropped_aqm;
        // Low-latency phase: no more drops.
        for s in 0..100u64 {
            q.enqueue(pkt(0, 1000 + s, 1500), now);
            now += SimDuration::from_micros(500);
            assert!(q.dequeue(now).is_some());
        }
        assert_eq!(q.stats().dropped_aqm, drops_after_drain);
    }

    #[test]
    fn fq_codel_constructor_works() {
        let mut q = fq_codel(1 << 20);
        q.enqueue(pkt(0, 0, 1500), t(0));
        assert_eq!(q.len_pkts(), 1);
        assert!(q.dequeue(t(0)).is_some());
    }

    #[test]
    fn fq_codel_drops_only_in_bloated_flow() {
        let mut q = fq_codel(1 << 22);
        let mut now = t(0);
        // Flow 1 bloats its queue; flow 2 trickles.
        for s in 0..2000u64 {
            q.enqueue(pkt(1, s, 1500), now);
            if s % 50 == 0 {
                q.enqueue(pkt(2, s, 1500), now);
            }
            now += SimDuration::from_micros(100);
        }
        let mut delivered = [0u64; 3];
        for _ in 0..800 {
            now += SimDuration::from_millis(1);
            if let Some(p) = q.dequeue(now) {
                delivered[p.flow.0 as usize] += 1;
            }
        }
        assert!(q.stats().dropped_aqm > 0, "codel active on bloated flow");
        assert!(delivered[2] >= 35, "sparse flow served: {delivered:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ids::FlowId;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Enq { flow: u32, bytes: u32 },
        Deq,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..4, 40u32..2000).prop_map(|(flow, bytes)| Op::Enq { flow, bytes }),
            Just(Op::Deq),
        ]
    }

    fn run_ops(q: &mut dyn Queue, ops: &[Op], step: SimDuration) {
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        for op in ops {
            now += step;
            match *op {
                Op::Enq { flow, bytes } => {
                    q.enqueue(Packet::data(FlowId(flow), seq, bytes, now, false), now);
                    seq += 1;
                }
                Op::Deq => {
                    let _ = q.dequeue(now);
                }
            }
        }
    }

    fn conservation_holds(q: &dyn Queue, offered: u64) -> bool {
        let st = q.stats();
        st.enqueued == st.dequeued + st.dropped_aqm + q.len_pkts() as u64
            && st.enqueued + st.dropped_tail == offered
    }

    proptest! {
        #[test]
        fn droptail_conservation(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut q = DropTail::bytes(8000);
            let offered = ops.iter().filter(|o| matches!(o, Op::Enq { .. })).count() as u64;
            run_ops(&mut q, &ops, SimDuration::from_micros(37));
            prop_assert!(conservation_holds(&q, offered));
        }

        #[test]
        fn fairqueue_conservation(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut q = FairQueue::new(8000);
            let offered = ops.iter().filter(|o| matches!(o, Op::Enq { .. })).count() as u64;
            run_ops(&mut q, &ops, SimDuration::from_micros(37));
            prop_assert!(conservation_holds(&q, offered));
            prop_assert!(q.len_bytes() <= 8000 + 2000, "buffer limit respected");
        }

        #[test]
        fn fq_codel_conservation(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut q = fq_codel(8000);
            let offered = ops.iter().filter(|o| matches!(o, Op::Enq { .. })).count() as u64;
            run_ops(&mut q, &ops, SimDuration::from_millis(3));
            prop_assert!(conservation_holds(&q, offered));
        }

        #[test]
        fn codel_conservation(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut q = Codel::bytes(8000);
            let offered = ops.iter().filter(|o| matches!(o, Op::Enq { .. })).count() as u64;
            run_ops(&mut q, &ops, SimDuration::from_millis(3));
            prop_assert!(conservation_holds(&q, offered));
        }

        /// Byte accounting never goes negative or exceeds what's possible.
        #[test]
        fn byte_accounting(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut q = DropTail::bytes(12_000);
            run_ops(&mut q, &ops, SimDuration::from_micros(11));
            prop_assert!(q.len_bytes() <= 12_000);
            let sum: u64 = (0..q.len_pkts()).map(|_| 0u64).sum();
            let _ = sum; // len_bytes consistency is implied by per-op bookkeeping
        }
    }
}
