//! Per-flow measurement and post-run analysis.
//!
//! The simulation samples each flow at a fixed interval, producing aligned
//! time series of throughput, goodput, control rate, RTT, and loss. The
//! analysis helpers compute the paper's metrics: Jain's fairness index
//! (Fig. 13), convergence time and post-convergence standard deviation
//! (Fig. 16), and flow completion times (Fig. 15).

use crate::time::{SimDuration, SimTime};

/// Aligned per-flow time series, one sample per [`sample interval`].
#[derive(Clone, Debug, Default)]
pub struct FlowSeries {
    /// Receiver-side delivery rate per sample, Mbit/s (includes duplicates).
    pub throughput_mbps: Vec<f64>,
    /// Unique-data delivery rate per sample, Mbit/s.
    pub goodput_mbps: Vec<f64>,
    /// Most recent control decision (sending rate) at each sample, Mbit/s.
    /// For window-based protocols this is cwnd/RTT.
    pub rate_mbps: Vec<f64>,
    /// Mean RTT over each sample window, milliseconds (NaN when no sample).
    pub rtt_ms: Vec<f64>,
    /// Sender-detected losses per sample window.
    pub losses: Vec<u64>,
}

/// How a flow stalled out: recorded when a sender's dead-time budget
/// elapsed with no forward progress and it aborted the transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StallInfo {
    /// When the sender declared the stall.
    pub at: SimTime,
    /// How long the flow went without forward progress before aborting.
    pub dark: SimDuration,
    /// Consecutive RTO fires observed during the dark period.
    pub timeouts: u64,
}

/// Everything measured about one flow.
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Data bytes arriving at the receiver (wire bytes, includes retx).
    pub delivered_bytes: u64,
    /// Unique data bytes accepted by the receiver.
    pub goodput_bytes: u64,
    /// Data packets the sender put on the wire.
    pub sent_packets: u64,
    /// Data packets arriving at the receiver.
    pub delivered_packets: u64,
    /// Losses detected by the sender (SACK reordering or RTO).
    pub detected_losses: u64,
    /// Sum/count of sender RTT samples (for lifetime mean).
    pub rtt_sum_ns: u64,
    /// Number of RTT samples.
    pub rtt_samples: u64,
    /// When the flow started.
    pub started_at: SimTime,
    /// Completion time, for sized flows that finished.
    pub completed_at: Option<SimTime>,
    /// Set when the sender aborted the transfer on its dead-time budget
    /// (graceful degradation instead of retrying forever).
    pub stalled: Option<StallInfo>,
    /// Sampled series.
    pub series: FlowSeries,
    /// Sparse log of control-rate changes `(when, bits/sec)`.
    pub rate_log: Vec<(SimTime, f64)>,
}

impl FlowStats {
    /// Mean RTT over the flow's lifetime.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        self.rtt_sum_ns
            .checked_div(self.rtt_samples)
            .map(SimDuration::from_nanos)
    }

    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|t| t.saturating_since(self.started_at))
    }

    /// Average delivered throughput in Mbit/s over `[from, to]`.
    ///
    /// Uses the sampled series, so resolution is the sample interval.
    pub fn avg_throughput_mbps(
        &self,
        sample_interval: SimDuration,
        from: SimTime,
        to: SimTime,
    ) -> f64 {
        window_mean(&self.series.throughput_mbps, sample_interval, from, to)
    }

    /// Average goodput in Mbit/s over `[from, to]`.
    pub fn avg_goodput_mbps(
        &self,
        sample_interval: SimDuration,
        from: SimTime,
        to: SimTime,
    ) -> f64 {
        window_mean(&self.series.goodput_mbps, sample_interval, from, to)
    }

    /// Loss rate observed by the sender over the whole run.
    pub fn loss_rate(&self) -> f64 {
        if self.sent_packets == 0 {
            0.0
        } else {
            self.detected_losses as f64 / self.sent_packets as f64
        }
    }
}

fn sample_index(interval: SimDuration, t: SimTime) -> usize {
    if interval.is_zero() {
        return 0;
    }
    (t.as_nanos() / interval.as_nanos()) as usize
}

/// Mean of `series` over the sample range covering `[from, to]`.
pub fn window_mean(series: &[f64], interval: SimDuration, from: SimTime, to: SimTime) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let lo = sample_index(interval, from).min(series.len());
    let hi = sample_index(interval, to).min(series.len());
    if hi <= lo {
        return 0.0;
    }
    let window = &series[lo..hi];
    window.iter().sum::<f64>() / window.len() as f64
}

/// Jain's fairness index of `values`: `(Σx)² / (n·Σx²)`.
///
/// Equals 1 for perfectly equal allocations and `1/n` for a single hog.
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Jain's index computed over coarse time bins (the "time scale" axis of
/// Fig. 13): each flow's throughput is averaged over bins of `scale`
/// samples, the index computed per bin (over *all* flows — an idle flow is
/// maximal unfairness), then averaged over bins with any activity.
///
/// Callers should pass series trimmed to the window where all flows are
/// supposed to be active, as the paper does for its convergence experiment.
pub fn jain_index_at_scale(series: &[&[f64]], scale: usize) -> f64 {
    if series.is_empty() || scale == 0 {
        return 1.0;
    }
    let len = series.iter().map(|s| s.len()).min().unwrap_or(0);
    if len == 0 {
        return 1.0;
    }
    let mut indices = Vec::new();
    let mut bin_start = 0;
    while bin_start + scale <= len {
        let bin: Vec<f64> = series
            .iter()
            .map(|s| s[bin_start..bin_start + scale].iter().sum::<f64>() / scale as f64)
            .collect();
        if bin.iter().any(|&v| v > 1e-9) {
            indices.push(jain_index(&bin));
        }
        bin_start += scale;
    }
    if indices.is_empty() {
        1.0
    } else {
        indices.iter().sum::<f64>() / indices.len() as f64
    }
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    var.sqrt()
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// `p`-th percentile (0..=100) by nearest-rank on a sorted copy.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The paper's "forward-looking" convergence-time definition (§4.2.2): the
/// convergence time of a flow is the smallest sample index `t` such that
/// every sample in `[t, t + window)` is within `±tolerance` of `target`.
/// Returns `None` if the flow never converges.
pub fn convergence_time(
    series: &[f64],
    target: f64,
    tolerance: f64,
    window: usize,
) -> Option<usize> {
    if series.len() < window || window == 0 {
        return None;
    }
    let lo = target * (1.0 - tolerance);
    let hi = target * (1.0 + tolerance);
    let within: Vec<bool> = series.iter().map(|&v| v >= lo && v <= hi).collect();
    // Scan with a running count of in-range samples.
    let mut run = 0usize;
    for (i, &ok) in within.iter().enumerate() {
        if ok {
            run += 1;
            if run >= window {
                return Some(i + 1 - window);
            }
        } else {
            run = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_and_zero() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_at_scale_smooths_alternation() {
        // Two flows alternating 10/0 and 0/10: unfair at scale 1, perfectly
        // fair at scale 2.
        let a: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 10.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 1 { 10.0 } else { 0.0 })
            .collect();
        let fine = jain_index_at_scale(&[&a, &b], 1);
        let coarse = jain_index_at_scale(&[&a, &b], 2);
        assert!(fine < 0.6, "fine-scale unfair: {fine}");
        assert!((coarse - 1.0).abs() < 1e-12, "coarse-scale fair: {coarse}");
    }

    #[test]
    fn std_dev_known() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Sample stddev of this classic set is ~2.138.
        assert!((std_dev(&v) - 2.138).abs() < 0.01);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        let med = percentile(&v, 50.0);
        assert!((49.0..=51.0).contains(&med));
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_tolerates_nan_instead_of_panicking() {
        // The comparator used to be `partial_cmp(..).expect("no NaNs")`,
        // which turned one NaN sample (e.g. 0/0 from an empty-interval
        // rate) into a panic mid-table. `total_cmp` sorts NaN above every
        // finite value, so finite percentiles of a mostly-finite series
        // stay meaningful and nothing crashes.
        let v = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        let p67 = percentile(&v, 67.0);
        assert_eq!(p67, 3.0, "finite ranks unaffected by the NaN tail");
        assert!(percentile(&v, 100.0).is_nan(), "NaN sorts last");
    }

    #[test]
    fn convergence_found() {
        // Ramp up, then stable around 10.
        let mut s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        s.extend(std::iter::repeat_n(10.0, 20));
        let t = convergence_time(&s, 10.0, 0.25, 5).expect("converges");
        assert_eq!(t, 8, "samples 8,9 are within 25% of 10");
    }

    #[test]
    fn convergence_never() {
        let s: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { 20.0 })
            .collect();
        assert_eq!(convergence_time(&s, 10.0, 0.25, 5), None);
    }

    #[test]
    fn convergence_requires_full_window() {
        let s = vec![10.0, 10.0, 10.0];
        assert_eq!(
            convergence_time(&s, 10.0, 0.25, 5),
            None,
            "series shorter than window"
        );
    }

    #[test]
    fn window_mean_bounds() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        let iv = SimDuration::from_secs(1);
        let m = window_mean(&s, iv, SimTime::from_secs(1), SimTime::from_secs(3));
        assert!((m - 2.5).abs() < 1e-12);
        // Degenerate windows.
        assert_eq!(
            window_mean(&s, iv, SimTime::from_secs(3), SimTime::from_secs(3)),
            0.0
        );
        assert_eq!(
            window_mean(&[], iv, SimTime::ZERO, SimTime::from_secs(10)),
            0.0
        );
    }

    #[test]
    fn flow_stats_helpers() {
        let mut fs = FlowStats::default();
        assert!(fs.mean_rtt().is_none());
        fs.rtt_sum_ns = 30_000_000;
        fs.rtt_samples = 2;
        assert_eq!(fs.mean_rtt().unwrap().as_millis_f64(), 15.0);
        fs.started_at = SimTime::from_secs(1);
        fs.completed_at = Some(SimTime::from_secs(3));
        assert_eq!(fs.fct().unwrap().as_secs_f64(), 2.0);
        fs.sent_packets = 100;
        fs.detected_losses = 7;
        assert!((fs.loss_rate() - 0.07).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Jain's index is always in [1/n, 1] for non-negative inputs.
        #[test]
        fn jain_bounds(values in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            let idx = jain_index(&values);
            let n = values.len() as f64;
            prop_assert!(idx <= 1.0 + 1e-9);
            prop_assert!(idx >= 1.0 / n - 1e-9);
        }

        /// Scaling all inputs leaves the index unchanged.
        #[test]
        fn jain_scale_invariant(values in proptest::collection::vec(0.1f64..1e3, 2..20), k in 0.1f64..100.0) {
            let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
            prop_assert!((jain_index(&values) - jain_index(&scaled)).abs() < 1e-9);
        }

        /// Percentile is monotone in p.
        #[test]
        fn percentile_monotone(values in proptest::collection::vec(-1e3f64..1e3, 1..100),
                               p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-12);
        }

        /// std_dev is translation invariant.
        #[test]
        fn stddev_translation_invariant(values in proptest::collection::vec(-1e3f64..1e3, 2..50), c in -1e3f64..1e3) {
            let shifted: Vec<f64> = values.iter().map(|v| v + c).collect();
            prop_assert!((std_dev(&values) - std_dev(&shifted)).abs() < 1e-6);
        }
    }
}
