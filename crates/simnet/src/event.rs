//! The discrete-event queue.
//!
//! A binary heap of `(time, sequence)`-ordered entries. The monotonically
//! increasing sequence number breaks ties deterministically: two events
//! scheduled for the same instant fire in scheduling order, which makes every
//! run with the same seed bit-identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::{FlowId, LinkId, Side};
use crate::packet::Packet;
use crate::time::SimTime;

/// Everything that can happen in the simulator.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Event {
    /// A link finished serializing the packet at the head of its queue.
    TxComplete { link: LinkId },
    /// A packet finished propagating and arrives at the next hop (or the
    /// endpoint, if it was the last hop).
    Arrive { packet: Packet },
    /// An endpoint timer fires. `token` is opaque to the simulator; `gen`
    /// is the flow slot's generation when the timer was armed — a timer
    /// whose generation no longer matches (the slot was recycled under
    /// churn) is discarded instead of firing into the new tenant.
    Timer {
        flow: FlowId,
        side: Side,
        token: u64,
        gen: u32,
    },
    /// A flow's sender should start transmitting.
    FlowStart { flow: FlowId },
    /// The churn driver's next flow arrival is due. One event admits every
    /// arrival batched at the same timestamp, then re-arms for the next
    /// distinct arrival instant.
    ChurnArrival,
    /// Apply step `step` of a link's time-varying parameter schedule.
    LinkUpdate { link: LinkId, step: usize },
    /// Apply entry `index` of the fault plane's compiled schedule.
    Fault { index: usize },
    /// Periodic statistics sampling tick.
    Sample,
}

struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first ordering.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    scheduled: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Create an empty queue pre-sized for `capacity` pending events (the
    /// simulation derives a hint from its topology so the heap never
    /// reallocates mid-run).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Event::Sample);
        q.schedule(t(10), Event::Sample);
        q.schedule(t(20), Event::Sample);
        let times: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(at, _)| at).collect();
        assert_eq!(times, vec![t(10), t(20), t(30)]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(
                t(1),
                Event::LinkUpdate {
                    link: LinkId(i),
                    step: 0,
                },
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::LinkUpdate { link, .. } => link.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(5), Event::Sample);
        q.schedule(t(2), Event::Sample);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.total_scheduled(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in non-decreasing time order, and same-time
        /// events pop in scheduling order.
        #[test]
        fn ordering_invariant(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ms) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(ms), Event::LinkUpdate {
                    link: LinkId(i as u32), step: 0,
                });
            }
            let mut last: Option<(SimTime, u32)> = None;
            while let Some((at, e)) = q.pop() {
                let id = match e { Event::LinkUpdate { link, .. } => link.0, _ => unreachable!() };
                if let Some((lt, lid)) = last {
                    prop_assert!(at >= lt);
                    if at == lt {
                        prop_assert!(id > lid, "same-time events must pop in schedule order");
                    }
                }
                last = Some((at, id));
            }
        }
    }
}
