//! Packet representation shared by the simulator and the transport layer.
//!
//! The simulator is packet-level but content-free: a packet carries transport
//! metadata (sequence numbers, timestamps, SACK summary) but no payload bytes.

use crate::ids::{Direction, FlowId};
use crate::time::SimTime;

/// Default data packet size in bytes (MSS + headers), matching the 1.5 KB
/// packets used throughout the paper's evaluation.
pub const DEFAULT_DATA_BYTES: u32 = 1500;
/// Default ACK packet size in bytes.
pub const DEFAULT_ACK_BYTES: u32 = 40;

/// Transport metadata carried by a data packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataInfo {
    /// Transport sequence number (packet-granularity, 0-based).
    pub seq: u64,
    /// True if this transmission is a retransmission of `seq`.
    pub retx: bool,
    /// Time the packet left the sender (echoed back in the ACK for RTT).
    pub sent_at: SimTime,
    /// Marks the packet as part of a probe train (used by PCP-style probing).
    pub probe_train: Option<u32>,
}

/// Transport metadata carried by an ACK (models TCP SACK feedback).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AckInfo {
    /// The data sequence number this ACK acknowledges (selective ACK).
    pub acked_seq: u64,
    /// Cumulative ACK: all sequences `< cum_ack` have been received.
    pub cum_ack: u64,
    /// Echo of the data packet's `sent_at` (gives the sender an exact RTT).
    pub echo_sent_at: SimTime,
    /// Receiver timestamp when the data packet arrived (for dispersion-based
    /// bandwidth probing, e.g. PCP packet trains).
    pub recv_at: SimTime,
    /// Total data bytes the receiver has accepted so far (goodput counter).
    pub recv_bytes: u64,
    /// Echo of the data packet's probe-train tag.
    pub probe_train: Option<u32>,
    /// Whether the acked packet was a retransmission.
    pub of_retx: bool,
}

/// What a packet is, transport-wise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PacketKind {
    /// A data segment.
    Data(DataInfo),
    /// A (selective) acknowledgement.
    Ack(AckInfo),
}

/// A simulated packet.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Direction relative to the flow (data = forward, ACK = reverse).
    pub dir: Direction,
    /// Index of the next link along the packet's path (maintained by the
    /// simulation loop as the packet hops).
    pub hop: u16,
    /// Generation of the owning flow's slot when the packet was sent
    /// (stamped by the simulation loop, like `flow`/`dir`). Flow slots are
    /// recycled under churn; a packet whose generation no longer matches
    /// its slot belongs to a retired flow and is dropped on arrival instead
    /// of bleeding into the slot's new tenant. Always 0 for statically
    /// registered flows.
    pub gen: u32,
    /// Wire size in bytes (includes all headers).
    pub bytes: u32,
    /// Time this packet was enqueued at its current queue (set by queues;
    /// used by CoDel for sojourn time).
    pub enqueued_at: SimTime,
    /// Transport metadata.
    pub kind: PacketKind,
}

impl Packet {
    /// Build a data packet for `flow` with sequence `seq`.
    pub fn data(flow: FlowId, seq: u64, bytes: u32, now: SimTime, retx: bool) -> Packet {
        Packet {
            flow,
            dir: Direction::Forward,
            hop: 0,
            gen: 0,
            bytes,
            enqueued_at: now,
            kind: PacketKind::Data(DataInfo {
                seq,
                retx,
                sent_at: now,
                probe_train: None,
            }),
        }
    }

    /// Build an ACK packet for `flow`.
    pub fn ack(flow: FlowId, info: AckInfo, now: SimTime) -> Packet {
        Packet {
            flow,
            dir: Direction::Reverse,
            hop: 0,
            gen: 0,
            bytes: DEFAULT_ACK_BYTES,
            enqueued_at: now,
            kind: PacketKind::Ack(info),
        }
    }

    /// The data metadata, if this is a data packet.
    pub fn as_data(&self) -> Option<&DataInfo> {
        match &self.kind {
            PacketKind::Data(d) => Some(d),
            PacketKind::Ack(_) => None,
        }
    }

    /// The ACK metadata, if this is an ACK.
    pub fn as_ack(&self) -> Option<&AckInfo> {
        match &self.kind {
            PacketKind::Ack(a) => Some(a),
            PacketKind::Data(_) => None,
        }
    }

    /// True for data packets.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_construction() {
        let p = Packet::data(FlowId(1), 42, 1500, SimTime::from_millis(5), false);
        assert!(p.is_data());
        assert_eq!(p.dir, Direction::Forward);
        let d = p.as_data().unwrap();
        assert_eq!(d.seq, 42);
        assert!(!d.retx);
        assert_eq!(d.sent_at, SimTime::from_millis(5));
        assert!(p.as_ack().is_none());
    }

    #[test]
    fn ack_packet_construction() {
        let info = AckInfo {
            acked_seq: 7,
            cum_ack: 8,
            echo_sent_at: SimTime::from_millis(1),
            recv_at: SimTime::from_millis(2),
            recv_bytes: 12_000,
            probe_train: None,
            of_retx: false,
        };
        let p = Packet::ack(FlowId(0), info, SimTime::from_millis(2));
        assert!(!p.is_data());
        assert_eq!(p.dir, Direction::Reverse);
        assert_eq!(p.bytes, DEFAULT_ACK_BYTES);
        assert_eq!(p.as_ack().unwrap().acked_seq, 7);
    }
}
