//! Simulation time primitives.
//!
//! The simulator measures time in integer nanoseconds since simulation start.
//! Integer time makes event ordering exact and runs deterministic; helpers
//! convert to and from floating-point seconds for rate arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from floating-point seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from floating-point seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Multiply by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

/// Time to serialize `bytes` onto a link of `rate_bps` bits per second.
///
/// Returns [`SimDuration::ZERO`] for non-positive or non-finite rates so an
/// "infinite-rate" link degenerates to a pure-delay element.
pub fn tx_time(bytes: u64, rate_bps: f64) -> SimDuration {
    if !rate_bps.is_finite() || rate_bps <= 0.0 {
        return SimDuration::ZERO;
    }
    let secs = (bytes as f64 * 8.0) / rate_bps;
    SimDuration::from_secs_f64(secs)
}

/// Rate in bits/sec that delivers `bytes` in `dur`. Returns `f64::INFINITY`
/// for a zero duration.
pub fn rate_bps(bytes: u64, dur: SimDuration) -> f64 {
    if dur.is_zero() {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / dur.as_secs_f64()
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_arith() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(12);
        assert_eq!((a + b).as_nanos(), 42 * NANOS_PER_MILLI);
        assert_eq!((a - b).as_nanos(), 18 * NANOS_PER_MILLI);
        assert_eq!((b - a).as_nanos(), 0, "saturating");
        assert_eq!((a * 2).as_millis_f64(), 60.0);
        assert_eq!((a / 3).as_millis_f64(), 10.0);
    }

    #[test]
    fn time_duration_interplay() {
        let t0 = SimTime::from_millis(100);
        let t1 = t0 + SimDuration::from_millis(50);
        assert_eq!((t1 - t0).as_millis_f64(), 50.0);
        assert_eq!(t1.saturating_since(t0).as_millis_f64(), 50.0);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    fn tx_time_basic() {
        // 1500 bytes at 100 Mbps = 120 microseconds.
        let d = tx_time(1500, 100e6);
        assert_eq!(d.as_nanos(), 120_000);
        // Infinite / zero rate => zero serialization time.
        assert_eq!(tx_time(1500, 0.0), SimDuration::ZERO);
        assert_eq!(tx_time(1500, f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn rate_bps_inverse_of_tx_time() {
        let d = tx_time(125_000, 10e6); // 0.1 s
        let r = rate_bps(125_000, d);
        assert!((r - 10e6).abs() / 10e6 < 1e-9);
        assert!(rate_bps(1, SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn mul_f64_rounds() {
        let rtt = SimDuration::from_millis(30);
        assert_eq!(rtt.mul_f64(1.7).as_nanos(), 51 * NANOS_PER_MILLI);
        assert_eq!(rtt.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(7)), "7ns");
    }
}
