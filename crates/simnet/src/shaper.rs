//! Per-link impairment stage: stochastic jitter, bounded reordering, and
//! token-bucket policing.
//!
//! A [`LinkShaper`] composes onto the existing link/queue path (see
//! [`crate::link::Link`]) without touching the event loop:
//!
//! * **Policing** happens at link ingress, *before* the queue: a token
//!   bucket of `rate_bps` with `burst_bytes` of depth; non-conforming
//!   packets are dropped and counted ([`crate::link::LinkStats::policed`]).
//!   This is a classic policer — it never queues, so it works on
//!   pure-delay links too.
//! * **Jitter** happens at link egress, *after* serialization and loss:
//!   each delivery gets an extra delay drawn uniformly from
//!   `[0, max]` out of the shaper's own [`SimRng`] stream. Deliveries are
//!   clamped to be non-decreasing in arrival time, so jitter alone never
//!   reorders (a FIFO jitter buffer).
//! * **Reordering** is opt-in and *bounded*: with probability
//!   `reorder_prob` a delivery skips its jitter and is scheduled at its
//!   un-jittered arrival time — it may overtake packets delivered just
//!   before it, but never more than `reorder_depth` of them, and nothing
//!   older (the shaper tracks a high-water mark of arrivals that have
//!   left the window and floors rushed deliveries at it). The shaper
//!   itself never drops a packet; only the policer does, and those drops
//!   are accounted.
//!
//! Every draw comes from a stream derived from the link's RNG, so runs
//! stay bit-deterministic per seed and enabling a shaper on one link
//! never perturbs another link's loss process.

use std::collections::VecDeque;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Jitter / bounded-reordering parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitterConfig {
    /// Maximum extra per-packet delay; each delivery draws uniformly
    /// from `[0, max]`.
    pub max: SimDuration,
    /// Probability that a delivery is "rushed" past recent ones
    /// (reordered). `0` keeps strict FIFO.
    pub reorder_prob: f64,
    /// Upper bound on how many earlier deliveries a rushed packet may
    /// overtake. `0` disables reordering regardless of `reorder_prob`.
    pub reorder_depth: usize,
}

impl JitterConfig {
    /// Jitter only: uniform extra delay in `[0, max]`, strict FIFO.
    pub fn uniform(max: SimDuration) -> Self {
        JitterConfig {
            max,
            reorder_prob: 0.0,
            reorder_depth: 0,
        }
    }

    /// Enable bounded reordering: with probability `prob` a delivery may
    /// overtake up to `depth` earlier ones.
    pub fn with_reordering(mut self, prob: f64, depth: usize) -> Self {
        self.reorder_prob = prob;
        self.reorder_depth = depth;
        self
    }
}

/// Token-bucket policer parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicerConfig {
    /// Long-term conforming rate in bits/sec.
    pub rate_bps: f64,
    /// Bucket depth in bytes (the largest conforming burst).
    pub burst_bytes: u64,
}

impl PolicerConfig {
    /// A policer of `rate_bps` with `burst_bytes` of burst tolerance.
    pub fn new(rate_bps: f64, burst_bytes: u64) -> Self {
        PolicerConfig {
            rate_bps,
            burst_bytes,
        }
    }
}

/// Which impairments a link's shaper applies. The default is a no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShaperConfig {
    /// Per-packet jitter and bounded reordering at egress.
    pub jitter: Option<JitterConfig>,
    /// Token-bucket policing at ingress.
    pub policer: Option<PolicerConfig>,
}

impl ShaperConfig {
    /// True if no impairment is configured (the shaper is a no-op and
    /// draws no randomness).
    pub fn is_noop(&self) -> bool {
        self.jitter.is_none() && self.policer.is_none()
    }

    /// Add jitter/reordering.
    pub fn with_jitter(mut self, jitter: JitterConfig) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// Add a token-bucket policer.
    pub fn with_policer(mut self, policer: PolicerConfig) -> Self {
        self.policer = Some(policer);
        self
    }
}

/// Runtime state of one link's impairment stage.
#[derive(Debug)]
pub struct LinkShaper {
    config: ShaperConfig,
    rng: SimRng,
    // Token bucket (bytes). Refilled lazily on each admission test.
    tokens: f64,
    refilled_at: SimTime,
    // Reordering window: arrival times of the last `reorder_depth`
    // deliveries, plus the high-water mark of everything older.
    recent: VecDeque<SimTime>,
    old_max: SimTime,
    // Running max of all scheduled arrivals: the FIFO floor for
    // non-rushed deliveries.
    last_arrival: SimTime,
}

impl LinkShaper {
    /// Build a shaper. `rng` must be an independent stream for this link
    /// (links derive one from their own stream, so shaper draws never
    /// perturb the loss process).
    pub fn new(config: ShaperConfig, rng: SimRng) -> Self {
        if let Some(j) = &config.jitter {
            assert!(
                (0.0..=1.0).contains(&j.reorder_prob),
                "reorder probability must be in [0,1]"
            );
        }
        if let Some(p) = &config.policer {
            assert!(
                p.rate_bps.is_finite() && p.rate_bps > 0.0,
                "policer rate must be positive"
            );
        }
        let tokens = config.policer.map(|p| p.burst_bytes as f64).unwrap_or(0.0);
        LinkShaper {
            config,
            rng,
            tokens,
            refilled_at: SimTime::ZERO,
            recent: VecDeque::new(),
            old_max: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
        }
    }

    /// The configuration this shaper was built with.
    pub fn config(&self) -> &ShaperConfig {
        &self.config
    }

    /// Token-bucket admission test at ingress: `true` admits the packet,
    /// `false` polices it (the caller drops and accounts it).
    pub fn admit(&mut self, bytes: u32, now: SimTime) -> bool {
        let Some(p) = self.config.policer else {
            return true;
        };
        let elapsed = now.saturating_since(self.refilled_at).as_secs_f64();
        self.refilled_at = now;
        self.tokens = (self.tokens + elapsed * p.rate_bps / 8.0).min(p.burst_bytes as f64);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Shape one delivery: given the un-impaired arrival time `nominal`,
    /// return when the packet actually arrives. Returns the arrival plus
    /// whether this delivery was rushed (reordered ahead of jittered
    /// ones). Never drops; arrival is always `>= nominal`'s propagation
    /// floor minus nothing (rushed packets keep their nominal time).
    pub fn arrival(&mut self, nominal: SimTime) -> (SimTime, bool) {
        let Some(j) = self.config.jitter else {
            return (nominal, false);
        };
        let rush = j.reorder_depth > 0 && self.rng.chance(j.reorder_prob);
        let arrival = if rush {
            // Rushed: no jitter, but never overtake anything older than
            // the last `reorder_depth` deliveries.
            nominal.max(self.old_max)
        } else {
            let extra =
                SimDuration::from_secs_f64(self.rng.range_f64(0.0, j.max.as_secs_f64().max(0.0)));
            (nominal + extra).max(self.last_arrival)
        };
        self.last_arrival = self.last_arrival.max(arrival);
        self.recent.push_back(arrival);
        while self.recent.len() > j.reorder_depth {
            let left = self.recent.pop_front().expect("non-empty");
            self.old_max = self.old_max.max(left);
        }
        (arrival, rush && arrival < self.last_arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shaper(config: ShaperConfig) -> LinkShaper {
        LinkShaper::new(config, SimRng::new(7))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn noop_shaper_passes_through() {
        let mut s = shaper(ShaperConfig::default());
        assert!(s.config().is_noop());
        assert!(s.admit(1500, t(0)));
        assert_eq!(s.arrival(t(5)), (t(5), false));
    }

    #[test]
    fn policer_enforces_rate_and_burst() {
        // 12 Mbps, 3 KB burst: two 1500 B packets pass at t=0, the third
        // is policed; after 1 ms (1500 B of tokens) one more passes.
        let mut s = shaper(ShaperConfig::default().with_policer(PolicerConfig::new(12e6, 3000)));
        assert!(s.admit(1500, t(0)));
        assert!(s.admit(1500, t(0)));
        assert!(!s.admit(1500, t(0)), "burst exhausted");
        assert!(s.admit(1500, t(1)), "refilled at line rate");
        assert!(!s.admit(1500, t(1)));
    }

    #[test]
    fn policer_long_term_rate_converges() {
        // Offer 3000 packets at 30 Mbps against a 10 Mbps policer: about
        // one third must conform.
        let mut s = shaper(ShaperConfig::default().with_policer(PolicerConfig::new(10e6, 15_000)));
        let spacing_ns = 400_000u64; // 1500 B / 400 us = 30 Mbps
        let admitted = (0..3000u64)
            .filter(|i| s.admit(1500, SimTime::from_nanos(i * spacing_ns)))
            .count();
        let rate = admitted as f64 / 3000.0;
        assert!(
            (rate - 1.0 / 3.0).abs() < 0.05,
            "conforming fraction {rate}"
        );
    }

    #[test]
    fn jitter_is_fifo_without_reordering() {
        let mut s = shaper(
            ShaperConfig::default()
                .with_jitter(JitterConfig::uniform(SimDuration::from_millis(10))),
        );
        let mut last = SimTime::ZERO;
        for i in 0..1000u64 {
            let nominal = SimTime::from_nanos(i * 100_000); // 0.1 ms apart
            let (a, rushed) = s.arrival(nominal);
            assert!(a >= nominal, "jitter only adds delay");
            // The draw is bounded by max jitter; the FIFO clamp can only
            // raise it to the previous arrival, never past it.
            assert!(
                a <= last.max(nominal + SimDuration::from_millis(10)),
                "jitter magnitude bounded"
            );
            assert!(a >= last, "FIFO: arrivals non-decreasing");
            assert!(!rushed);
            last = a;
        }
    }

    #[test]
    fn reordering_happens_and_is_bounded() {
        let depth = 3usize;
        let mut s = shaper(ShaperConfig::default().with_jitter(
            JitterConfig::uniform(SimDuration::from_millis(5)).with_reordering(0.2, depth),
        ));
        let arrivals: Vec<SimTime> = (0..2000u64)
            .map(|i| s.arrival(SimTime::from_nanos(i * 200_000)).0)
            .collect();
        // Some actual reordering occurred...
        let inversions = arrivals.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(inversions > 0, "reordering configured but never happened");
        // ...but each packet overtakes at most `depth` earlier ones.
        for (i, &a) in arrivals.iter().enumerate() {
            let overtaken = arrivals[..i].iter().filter(|&&b| b > a).count();
            assert!(
                overtaken <= depth,
                "packet {i} overtook {overtaken} > depth {depth}"
            );
        }
    }

    #[test]
    fn depth_zero_disables_reordering_even_with_probability() {
        let mut s = shaper(ShaperConfig::default().with_jitter(
            JitterConfig::uniform(SimDuration::from_millis(5)).with_reordering(1.0, 0),
        ));
        let mut last = SimTime::ZERO;
        for i in 0..500u64 {
            let (a, rushed) = s.arrival(SimTime::from_nanos(i * 200_000));
            assert!(a >= last);
            assert!(!rushed);
            last = a;
        }
    }

    #[test]
    fn same_seed_same_impairments() {
        let run = || {
            let mut s = LinkShaper::new(
                ShaperConfig::default().with_jitter(
                    JitterConfig::uniform(SimDuration::from_millis(8)).with_reordering(0.3, 4),
                ),
                SimRng::new(99),
            );
            (0..200u64)
                .map(|i| s.arrival(SimTime::from_nanos(i * 500_000)).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The shaper never drops and never reorders beyond the
        /// configured depth: for every delivery, the number of earlier
        /// deliveries it overtakes is at most `depth`, for any seed, any
        /// jitter magnitude, any packet spacing.
        #[test]
        fn reordering_is_bounded_and_lossless(
            seed in 0u64..1_000,
            depth in 0usize..8,
            prob in 0.0f64..1.0,
            jitter_ms in 0u64..20,
            gaps in proptest::collection::vec(1u64..2_000_000, 10..300),
        ) {
            let mut s = LinkShaper::new(
                ShaperConfig::default().with_jitter(
                    JitterConfig::uniform(SimDuration::from_millis(jitter_ms))
                        .with_reordering(prob, depth),
                ),
                SimRng::new(seed),
            );
            let mut now = SimTime::ZERO;
            let mut arrivals = Vec::with_capacity(gaps.len());
            for gap in &gaps {
                now += SimDuration::from_nanos(*gap);
                let (a, _) = s.arrival(now);
                // Lossless and causal: every packet gets an arrival, at
                // or after its nominal time.
                prop_assert!(a >= now);
                arrivals.push(a);
            }
            for (i, &a) in arrivals.iter().enumerate() {
                let overtaken = arrivals[..i].iter().filter(|&&b| b > a).count();
                prop_assert!(
                    overtaken <= depth,
                    "packet {} overtook {} > depth {}", i, overtaken, depth
                );
            }
        }

        /// The policer admits exactly what the bucket allows: cumulative
        /// admitted bytes never exceed burst + rate·elapsed, and it never
        /// polices a packet the bucket could cover.
        #[test]
        fn policer_conforms_to_rate_plus_burst(
            rate_mbps in 1.0f64..200.0,
            burst_kb in 2u64..64,
            gaps in proptest::collection::vec(0u64..3_000_000, 10..300),
        ) {
            let burst = burst_kb * 1024;
            let mut s = LinkShaper::new(
                ShaperConfig::default()
                    .with_policer(PolicerConfig::new(rate_mbps * 1e6, burst)),
                SimRng::new(1),
            );
            let mut now = SimTime::ZERO;
            let mut admitted_bytes = 0u64;
            for gap in &gaps {
                now += SimDuration::from_nanos(*gap);
                if s.admit(1500, now) {
                    admitted_bytes += 1500;
                }
                let bound = burst as f64 + rate_mbps * 1e6 / 8.0 * now.as_secs_f64();
                prop_assert!(
                    admitted_bytes as f64 <= bound + 1.0,
                    "admitted {} > bound {}", admitted_bytes, bound
                );
            }
        }
    }
}
