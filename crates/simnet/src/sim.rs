//! The simulation engine: wires flows onto link paths and runs the event
//! loop to a horizon.
//!
//! Construction goes through [`NetworkBuilder`]: add links, add flows (each
//! with a boxed sender and receiver [`Endpoint`] and explicit forward/reverse
//! link paths), then [`NetworkBuilder::build`] and [`Simulation::run_until`].
//! The run produces a [`SimReport`] with per-flow statistics and series.

use crate::endpoint::{Action, Endpoint, EndpointCtx};
use crate::event::{Event, EventQueue};
use crate::fault::FaultPlane;
use crate::ids::{Direction, FlowId, LinkId, Side};
use crate::link::{Link, LinkConfig, LinkOutcome, LinkStats};
use crate::packet::Packet;
use crate::queue::QueueStats;
use crate::rng::SimRng;
use crate::stats::{FlowStats, StallInfo};
use crate::time::{SimDuration, SimTime};

/// Salt deriving the fault plane's master RNG stream from the simulation
/// seed (`"FAUL"`); per-fault streams derive from it by schedule index.
const FAULT_RNG_SALT: u64 = 0x4641_554C;

/// Global simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Statistics sampling interval (throughput/RTT series resolution).
    pub sample_interval: SimDuration,
    /// Master seed; all per-link and per-flow streams derive from it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 0x5043_4331, // "PCC1"
        }
    }
}

/// A dynamically arriving flow supplied by a [`ChurnDriver`].
///
/// Unlike a [`FlowSpec`], a churn flow has no `start_at`: it starts the
/// instant it is admitted. The `tag` is opaque to the engine and handed back
/// in [`ChurnDriver::on_flow_complete`] so the driver can key its own
/// per-flow records (e.g. the flow's size) without the engine keeping a map.
pub struct ChurnFlow {
    /// Sender endpoint (drives data transmission).
    pub sender: Box<dyn Endpoint>,
    /// Receiver endpoint (generates ACKs).
    pub receiver: Box<dyn Endpoint>,
    /// Links traversed by data packets, in order.
    pub fwd_path: Vec<LinkId>,
    /// Links traversed by ACKs, in order.
    pub rev_path: Vec<LinkId>,
    /// Opaque driver-owned tag, echoed back on completion.
    pub tag: u64,
}

/// Supplies an open-loop workload of dynamically arriving flows and
/// receives their final statistics back as they retire.
///
/// The engine pulls arrivals lazily — one look-ahead flow at a time — so a
/// driver can generate millions of arrivals without materializing them. All
/// arrivals due at the same instant are admitted in a single event. When a
/// churn flow finishes (or stalls on its dead-time budget), its slot is
/// harvested: the stats are passed to [`ChurnDriver::on_flow_complete`] and
/// the dense [`FlowId`] goes onto a free list for the next arrival,
/// bounding live state by the number of *concurrent* flows.
pub trait ChurnDriver {
    /// The next flow arrival at or after `now`, or `None` when the workload
    /// is exhausted. Arrival times must be non-decreasing; an arrival in
    /// the past is admitted immediately.
    fn next_arrival(&mut self, now: SimTime) -> Option<(SimTime, ChurnFlow)>;

    /// Called when a churn flow retires (completed or stalled). `stats` is
    /// the flow's final harvested state; `tag` is the [`ChurnFlow::tag`]
    /// it was admitted with.
    fn on_flow_complete(&mut self, tag: u64, stats: &FlowStats, now: SimTime);
}

/// Engine-level churn accounting, all zeros when no driver is installed.
///
/// The conservation invariant `arrivals == completions + stalls +
/// live_at_end` holds at any horizon; `peak_live` vs `arrivals` is the
/// free-list recycling ratio (peak concurrent slots, not total flows, bound
/// memory).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Flows admitted by the churn driver.
    pub arrivals: u64,
    /// Churn flows that finished and were harvested.
    pub completions: u64,
    /// Churn flows that aborted on their dead-time budget.
    pub stalls: u64,
    /// Churn flows still live when the run ended.
    pub live_at_end: u64,
    /// Peak concurrently live flows (including statically registered ones).
    pub peak_live: u64,
    /// Slot allocations served by the free list instead of growing the arena.
    pub recycled: u64,
    /// Packets dropped on arrival because their flow had already retired.
    pub stale_packets: u64,
    /// Timers discarded because their flow had already retired.
    pub stale_timers: u64,
}

/// A flow being added to the network.
pub struct FlowSpec {
    /// Sender endpoint (drives data transmission).
    pub sender: Box<dyn Endpoint>,
    /// Receiver endpoint (generates ACKs).
    pub receiver: Box<dyn Endpoint>,
    /// Links traversed by data packets, in order.
    pub fwd_path: Vec<LinkId>,
    /// Links traversed by ACKs, in order.
    pub rev_path: Vec<LinkId>,
    /// When the sender's `start` fires.
    pub start_at: SimTime,
}

struct FlowRuntime {
    sender: Box<dyn Endpoint>,
    receiver: Box<dyn Endpoint>,
    fwd_path: Vec<LinkId>,
    rev_path: Vec<LinkId>,
    start_at: SimTime,
    sender_rng: SimRng,
    receiver_rng: SimRng,
    stats: FlowStats,
    // Sampling accumulators (reset every sample tick).
    window_delivered_bytes: u64,
    window_goodput_bytes: u64,
    window_rtt_sum_ns: u64,
    window_rtt_count: u64,
    window_losses: u64,
    last_rate_bps: f64,
    finished: bool,
    /// True for driver-admitted flows: retire (harvest stats, recycle the
    /// slot) on finish or stall instead of lingering to the horizon.
    churn: bool,
    /// Driver-owned tag echoed back on harvest.
    tag: u64,
}

/// One arena slot: a generation counter plus the current tenant, if any.
/// The generation increments on every retire, so packets and timers stamped
/// with an older generation can never alias the slot's next tenant.
struct FlowSlot {
    gen: u32,
    rt: Option<FlowRuntime>,
}

impl FlowSlot {
    /// The live tenant, or `None` for a retired (free-listed) slot.
    fn live(&self) -> Option<&FlowRuntime> {
        self.rt.as_ref()
    }

    fn live_mut(&mut self) -> Option<&mut FlowRuntime> {
        self.rt.as_mut()
    }
}

/// Per-link summary in the final report.
#[derive(Clone, Copy, Debug)]
pub struct LinkReport {
    /// Link id.
    pub id: LinkId,
    /// Link counters (offered/transmitted/egress loss).
    pub stats: LinkStats,
    /// Queue counters (drops, peak backlog).
    pub queue: QueueStats,
}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-flow statistics, indexed by `FlowId`.
    pub flows: Vec<FlowStats>,
    /// Per-link statistics, indexed by `LinkId`.
    pub links: Vec<LinkReport>,
    /// The sampling interval the series were recorded at.
    pub sample_interval: SimDuration,
    /// When the run ended.
    pub ended_at: SimTime,
    /// Total events processed (for performance accounting).
    pub events_processed: u64,
    /// Churn-engine accounting (all zeros unless a [`ChurnDriver`] ran).
    pub churn: ChurnStats,
}

impl SimReport {
    /// Average delivered throughput of `flow` in Mbit/s over `[from, to]`.
    pub fn avg_throughput_mbps(&self, flow: FlowId, from: SimTime, to: SimTime) -> f64 {
        self.flows[flow.index()].avg_throughput_mbps(self.sample_interval, from, to)
    }

    /// Average goodput of `flow` in Mbit/s over `[from, to]`.
    pub fn avg_goodput_mbps(&self, flow: FlowId, from: SimTime, to: SimTime) -> f64 {
        self.flows[flow.index()].avg_goodput_mbps(self.sample_interval, from, to)
    }

    /// Whole-run average delivered throughput of `flow` in Mbit/s, measured
    /// from the flow's start to the run end (or completion).
    pub fn flow_throughput_mbps(&self, flow: FlowId) -> f64 {
        let st = &self.flows[flow.index()];
        let end = st.completed_at.unwrap_or(self.ended_at);
        let dur = end.saturating_since(st.started_at).as_secs_f64();
        if dur <= 0.0 {
            return 0.0;
        }
        st.delivered_bytes as f64 * 8.0 / dur / 1e6
    }
}

/// Builder for a [`Simulation`].
pub struct NetworkBuilder {
    config: SimConfig,
    links: Vec<Link>,
    flows: Vec<FlowSlot>,
    fault: Option<FaultPlane>,
    driver: Option<Box<dyn ChurnDriver>>,
    record_series: bool,
    rng: SimRng,
}

impl NetworkBuilder {
    /// Start building a network with the given config.
    pub fn new(config: SimConfig) -> Self {
        let rng = SimRng::new(config.seed);
        NetworkBuilder {
            config,
            links: Vec::new(),
            flows: Vec::new(),
            fault: None,
            driver: None,
            record_series: true,
            rng,
        }
    }

    /// Attach a fault plane; its compiled schedule is fired as
    /// [`Event::Fault`] events during the run.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.fault = Some(plane);
    }

    /// Attach a churn driver supplying an open-loop flow-arrival workload.
    pub fn set_churn_driver(&mut self, driver: Box<dyn ChurnDriver>) {
        self.driver = Some(driver);
    }

    /// Enable or disable per-flow sampled series (on by default). Churn
    /// runs over O(100k) flows turn this off: aggregate stats and FCTs are
    /// still recorded, but the five per-flow series stay empty, keeping
    /// steady-state memory proportional to *concurrent* flows only.
    pub fn set_record_series(&mut self, record: bool) {
        self.record_series = record;
    }

    /// Add a link; returns its id.
    pub fn add_link(&mut self, config: LinkConfig) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        let rng = self.rng.derive(0x4C49_4E4B_0000 + id.0 as u64);
        self.links.push(Link::new(id, config, rng));
        id
    }

    /// Add a flow; returns its id.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        assert!(
            !spec.fwd_path.is_empty(),
            "flow needs at least one forward link"
        );
        assert!(
            !spec.rev_path.is_empty(),
            "flow needs at least one reverse link"
        );
        let sender_rng = self.rng.derive(0x534E_4400_0000 + id.0 as u64);
        let receiver_rng = self.rng.derive(0x5243_5600_0000 + id.0 as u64);
        let stats = FlowStats {
            started_at: spec.start_at,
            ..Default::default()
        };
        self.flows.push(FlowSlot {
            gen: 0,
            rt: Some(FlowRuntime {
                sender: spec.sender,
                receiver: spec.receiver,
                fwd_path: spec.fwd_path,
                rev_path: spec.rev_path,
                start_at: spec.start_at,
                sender_rng,
                receiver_rng,
                stats,
                window_delivered_bytes: 0,
                window_goodput_bytes: 0,
                window_rtt_sum_ns: 0,
                window_rtt_count: 0,
                window_losses: 0,
                last_rate_bps: 0.0,
                finished: false,
                churn: false,
                tag: 0,
            }),
        });
        id
    }

    /// Finalize into a runnable [`Simulation`].
    pub fn build(self) -> Simulation {
        // Pending events scale with packets in flight: per flow roughly a
        // window of arrivals plus a handful of timers, per link a
        // serialization completion. 512 events per flow comfortably covers
        // every BDP in the evaluation; the cap keeps incast-style
        // many-flow scenarios from pre-allocating megabytes.
        let hint = (self.flows.len() * 512 + self.links.len() * 2).clamp(1024, 65_536);
        // Deriving is consumption-independent, so taking the fault stream
        // unconditionally leaves every other stream untouched.
        let fault_rng = self.rng.derive(FAULT_RNG_SALT);
        let live = self.flows.len() as u64;
        let has_driver = self.driver.is_some();
        Simulation {
            now: SimTime::ZERO,
            events: EventQueue::with_capacity(hint),
            links: self.links,
            flows: self.flows,
            free_slots: Vec::new(),
            config: self.config,
            fault: self.fault,
            fault_rng,
            rng: self.rng,
            driver: self.driver,
            pending_arrival: None,
            pending_harvest: Vec::new(),
            churn_seq: 0,
            churn: ChurnStats {
                // Zeros (the documented no-churn state) unless a driver runs.
                peak_live: if has_driver { live } else { 0 },
                ..ChurnStats::default()
            },
            live_count: live,
            record_series: self.record_series,
            scratch: Vec::new(),
            events_processed: 0,
            started: false,
        }
    }
}

/// A runnable simulation.
pub struct Simulation {
    now: SimTime,
    events: EventQueue,
    links: Vec<Link>,
    flows: Vec<FlowSlot>,
    /// Retired slot indices awaiting reuse (the churn free list).
    free_slots: Vec<u32>,
    config: SimConfig,
    fault: Option<FaultPlane>,
    fault_rng: SimRng,
    /// Master stream; per-arrival endpoint streams derive from it.
    rng: SimRng,
    driver: Option<Box<dyn ChurnDriver>>,
    /// One-arrival look-ahead pulled from the driver but not yet due.
    pending_arrival: Option<(SimTime, ChurnFlow)>,
    /// Harvests that retired while the driver was checked out (see
    /// `admit_arrivals`), delivered as soon as it returns.
    pending_harvest: Vec<(u64, FlowStats)>,
    /// Monotone arrival counter, salting per-churn-flow RNG streams so a
    /// recycled slot never replays its previous tenant's randomness.
    churn_seq: u64,
    churn: ChurnStats,
    live_count: u64,
    record_series: bool,
    scratch: Vec<Action>,
    events_processed: u64,
    started: bool,
}

impl Simulation {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn bootstrap(&mut self) {
        for (i, slot) in self.flows.iter().enumerate() {
            if let Some(f) = slot.live() {
                self.events.schedule(
                    f.start_at,
                    Event::FlowStart {
                        flow: FlowId(i as u32),
                    },
                );
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if let Some(step) = l.schedule().step(0) {
                self.events.schedule(
                    step.at,
                    Event::LinkUpdate {
                        link: LinkId(i as u32),
                        step: 0,
                    },
                );
            }
        }
        if let Some(plane) = &self.fault {
            for (i, &(at, _)) in plane.entries().iter().enumerate() {
                self.events.schedule(at, Event::Fault { index: i });
            }
        }
        self.events
            .schedule(SimTime::ZERO + self.config.sample_interval, Event::Sample);
        if let Some(driver) = &mut self.driver {
            if let Some((at, flow)) = driver.next_arrival(SimTime::ZERO) {
                self.pending_arrival = Some((at, flow));
                self.events.schedule(at, Event::ChurnArrival);
            }
        }
        self.started = true;
    }

    /// Run until `horizon` (inclusive), then produce the report.
    pub fn run_until(mut self, horizon: SimTime) -> SimReport {
        if !self.started {
            self.bootstrap();
            // The horizon fixes the series lengths exactly; reserve once.
            let samples = (horizon.as_nanos() / self.config.sample_interval.as_nanos().max(1))
                .min(1 << 24) as usize;
            if self.record_series {
                for slot in &mut self.flows {
                    if let Some(rt) = slot.live_mut() {
                        let s = &mut rt.stats.series;
                        s.throughput_mbps.reserve_exact(samples);
                        s.goodput_mbps.reserve_exact(samples);
                        s.rate_mbps.reserve_exact(samples);
                        s.rtt_ms.reserve_exact(samples);
                        s.losses.reserve_exact(samples);
                    }
                }
            }
        }
        while let Some((at, event)) = self.events.pop() {
            if at > horizon {
                break;
            }
            self.now = at;
            self.events_processed += 1;
            self.dispatch(event, horizon);
        }
        self.now = horizon;
        self.finalize()
    }

    fn dispatch(&mut self, event: Event, horizon: SimTime) {
        match event {
            Event::FlowStart { flow } => {
                self.call_endpoint(flow, Side::Sender, |e, ctx| e.start(ctx));
                self.call_endpoint(flow, Side::Receiver, |e, ctx| e.start(ctx));
            }
            Event::Timer {
                flow,
                side,
                token,
                gen,
            } => {
                let slot = &self.flows[flow.index()];
                if slot.gen != gen || slot.rt.is_none() {
                    // The slot was recycled after this timer was armed: it
                    // belongs to a retired flow, never to the new tenant.
                    self.churn.stale_timers += 1;
                } else {
                    self.call_endpoint(flow, side, |e, ctx| e.on_timer(token, ctx));
                }
            }
            Event::TxComplete { link } => {
                let res = self.links[link.index()].tx_complete(self.now);
                if let Some(next) = res.next_tx_done {
                    self.events.schedule(next, Event::TxComplete { link });
                }
                if let Some((mut pkt, arrive_at)) = res.delivered {
                    pkt.hop += 1;
                    self.events
                        .schedule(arrive_at, Event::Arrive { packet: pkt });
                }
                if let Some((mut pkt, arrive_at)) = res.duplicate {
                    pkt.hop += 1;
                    self.events
                        .schedule(arrive_at, Event::Arrive { packet: pkt });
                }
            }
            Event::Arrive { packet } => {
                self.route(packet);
            }
            Event::LinkUpdate { link, step } => {
                if let Some(next_at) = self.links[link.index()].apply_step(step) {
                    self.events.schedule(
                        next_at,
                        Event::LinkUpdate {
                            link,
                            step: step + 1,
                        },
                    );
                }
            }
            Event::Fault { index } => {
                self.apply_fault(index);
            }
            Event::ChurnArrival => {
                self.admit_arrivals();
            }
            Event::Sample => {
                self.take_sample();
                let next = self.now + self.config.sample_interval;
                if next <= horizon {
                    self.events.schedule(next, Event::Sample);
                }
            }
        }
    }

    /// Apply one fault-plane schedule entry: link state changes, per-fault
    /// corruption/duplication streams, and post-failure ECMP re-resolution.
    fn apply_fault(&mut self, index: usize) {
        let Some(mut plane) = self.fault.take() else {
            return;
        };
        let change = plane.transition(index);
        // Out-of-range targets (a script written for a different topology)
        // are ignored rather than panicking: the fault plane must never be
        // able to crash a run.
        let n = self.links.len();
        for link in change.link_down {
            if link.index() < n {
                self.links[link.index()].set_down(self.now);
            }
        }
        for link in change.link_up {
            if link.index() < n {
                self.links[link.index()].set_up();
            }
        }
        for (link, prob) in change.corrupt {
            if link.index() < n {
                let fault = prob.map(|p| (p, self.fault_rng.derive(index as u64)));
                self.links[link.index()].set_fault_corrupt(fault);
            }
        }
        for (link, prob) in change.duplicate {
            if link.index() < n {
                let fault = prob.map(|p| (p, self.fault_rng.derive(index as u64)));
                self.links[link.index()].set_fault_duplicate(fault);
            }
        }
        if change.reroute {
            for (flow, fwd, rev) in plane.reroute() {
                if flow.index() < self.flows.len() {
                    if let Some(rt) = self.flows[flow.index()].live_mut() {
                        rt.fwd_path = fwd;
                        rt.rev_path = rev;
                    }
                }
            }
        }
        self.fault = Some(plane);
    }

    /// Admit every driver arrival due at the current instant (batched into
    /// this one event), then re-arm for the next distinct arrival time.
    fn admit_arrivals(&mut self) {
        // Take the driver out so admitting (which calls endpoints) doesn't
        // alias the `&mut self` borrow — the apply_fault idiom.
        let Some(mut driver) = self.driver.take() else {
            return;
        };
        loop {
            let Some((at, flow)) = self.pending_arrival.take() else {
                break;
            };
            if at > self.now {
                self.pending_arrival = Some((at, flow));
                self.events.schedule(at, Event::ChurnArrival);
                break;
            }
            self.spawn_churn_flow(flow);
            self.pending_arrival = driver.next_arrival(self.now);
        }
        for (tag, stats) in self.pending_harvest.drain(..) {
            driver.on_flow_complete(tag, &stats, self.now);
        }
        self.driver = Some(driver);
    }

    /// Allocate a slot (recycling the free list when possible) and start a
    /// driver-admitted flow right now.
    fn spawn_churn_flow(&mut self, flow: ChurnFlow) {
        assert!(
            !flow.fwd_path.is_empty() && !flow.rev_path.is_empty(),
            "churn flow needs at least one link each way"
        );
        let k = self.churn_seq;
        self.churn_seq += 1;
        self.churn.arrivals += 1;
        // Per-arrival streams are salted by the monotone arrival index, not
        // the slot id, so a recycled slot never replays its previous
        // tenant's randomness. The high bits ("WLSD"/"WLRC") keep these
        // tags disjoint from the builder's per-slot and per-link streams.
        let sender_rng = self.rng.derive(0x574C_5344_0000_0000_u64.wrapping_add(k));
        let receiver_rng = self.rng.derive(0x574C_5243_0000_0000_u64.wrapping_add(k));
        let rt = FlowRuntime {
            sender: flow.sender,
            receiver: flow.receiver,
            fwd_path: flow.fwd_path,
            rev_path: flow.rev_path,
            start_at: self.now,
            sender_rng,
            receiver_rng,
            stats: FlowStats {
                started_at: self.now,
                ..Default::default()
            },
            window_delivered_bytes: 0,
            window_goodput_bytes: 0,
            window_rtt_sum_ns: 0,
            window_rtt_count: 0,
            window_losses: 0,
            last_rate_bps: 0.0,
            finished: false,
            churn: true,
            tag: flow.tag,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.churn.recycled += 1;
                i as usize
            }
            None => {
                self.flows.push(FlowSlot { gen: 0, rt: None });
                self.flows.len() - 1
            }
        };
        debug_assert!(self.flows[idx].rt.is_none(), "allocated an occupied slot");
        self.flows[idx].rt = Some(rt);
        self.live_count += 1;
        self.churn.peak_live = self.churn.peak_live.max(self.live_count);
        let id = FlowId(idx as u32);
        self.call_endpoint(id, Side::Sender, |e, ctx| e.start(ctx));
        self.call_endpoint(id, Side::Receiver, |e, ctx| e.start(ctx));
    }

    /// Harvest a terminal churn flow: hand its stats to the driver, bump the
    /// slot generation (orphaning any in-flight packets/timers), and free
    /// the slot for reuse.
    fn retire_flow(&mut self, flow: FlowId) {
        let slot = &mut self.flows[flow.index()];
        let Some(rt) = slot.rt.take() else {
            return;
        };
        slot.gen = slot.gen.wrapping_add(1);
        self.live_count -= 1;
        if rt.stats.completed_at.is_some() {
            self.churn.completions += 1;
        } else {
            self.churn.stalls += 1;
        }
        self.free_slots.push(flow.0);
        match &mut self.driver {
            Some(driver) => driver.on_flow_complete(rt.tag, &rt.stats, self.now),
            // The driver is momentarily out while admit_arrivals runs (a
            // flow can go terminal inside its own start); buffer the
            // harvest and deliver it when the driver is re-installed.
            None => self.pending_harvest.push((rt.tag, rt.stats)),
        }
    }

    /// Move `pkt` along its path: offer to the next link, or deliver to the
    /// destination endpoint if all links are traversed.
    fn route(&mut self, mut pkt: Packet) {
        let slot = &self.flows[pkt.flow.index()];
        let Some(flow) = slot.live() else {
            self.churn.stale_packets += 1;
            return;
        };
        if slot.gen != pkt.gen {
            // Sent by a retired tenant of this (recycled) slot.
            self.churn.stale_packets += 1;
            return;
        }
        let path = match pkt.dir {
            Direction::Forward => &flow.fwd_path,
            Direction::Reverse => &flow.rev_path,
        };
        let hop = pkt.hop as usize;
        if hop >= path.len() {
            self.deliver(pkt);
            return;
        }
        let link_id = path[hop];
        let link = &mut self.links[link_id.index()];
        if link.rate_bps().is_none() {
            // Pure-delay link: police at ingress (offer also black-holes
            // and accounts for downed links), apply counted loss, then
            // propagate through the impairment stage. Fault rolls draw
            // from their own streams after the loss roll.
            if link.offer(pkt, self.now) == LinkOutcome::Dropped {
                return;
            }
            if !link.roll_loss_counted() && !link.roll_corrupt() {
                let at = link.shape_arrival(link.propagate(self.now));
                pkt.hop += 1;
                self.events.schedule(at, Event::Arrive { packet: pkt });
                if link.roll_duplicate() {
                    self.events.schedule(at, Event::Arrive { packet: pkt });
                }
            }
            return;
        }
        match link.offer(pkt, self.now) {
            LinkOutcome::Accepted {
                start_tx: Some(done),
            } => {
                self.events
                    .schedule(done, Event::TxComplete { link: link_id });
            }
            LinkOutcome::Accepted { start_tx: None } => {}
            LinkOutcome::Dropped => {}
        }
    }

    /// Hand a fully propagated packet to its destination endpoint.
    fn deliver(&mut self, pkt: Packet) {
        let flow_id = pkt.flow;
        // The generation check comes before any stats update: a packet from
        // a retired tenant must not bleed bytes into the slot's new flow.
        let slot = &mut self.flows[flow_id.index()];
        if slot.gen != pkt.gen || slot.rt.is_none() {
            self.churn.stale_packets += 1;
            return;
        }
        let side = match pkt.dir {
            Direction::Forward => Side::Receiver,
            Direction::Reverse => Side::Sender,
        };
        if pkt.is_data() {
            let rt = slot.live_mut().expect("checked live above");
            rt.stats.delivered_bytes += pkt.bytes as u64;
            rt.stats.delivered_packets += 1;
            rt.window_delivered_bytes += pkt.bytes as u64;
        }
        self.call_endpoint(flow_id, side, |e, ctx| e.on_packet(&pkt, ctx));
    }

    /// Invoke an endpoint callback and apply the actions it emitted.
    fn call_endpoint(
        &mut self,
        flow: FlowId,
        side: Side,
        f: impl FnOnce(&mut dyn Endpoint, &mut EndpointCtx),
    ) {
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        {
            let Some(rt) = self.flows[flow.index()].live_mut() else {
                self.scratch = actions;
                return;
            };
            let (endpoint, rng) = match side {
                Side::Sender => (&mut rt.sender, &mut rt.sender_rng),
                Side::Receiver => (&mut rt.receiver, &mut rt.receiver_rng),
            };
            let mut ctx = EndpointCtx::new(self.now, flow, side, rng, &mut actions);
            f(endpoint.as_mut(), &mut ctx);
        }
        // Apply actions outside the endpoint borrow.
        for action in actions.drain(..) {
            self.apply_action(flow, side, action);
        }
        self.scratch = actions;
        // Retire terminal churn flows only after the whole action batch is
        // applied, so trailing Record* actions still land on this flow.
        let terminal = self.flows[flow.index()]
            .live()
            .is_some_and(|rt| rt.churn && (rt.finished || rt.stats.stalled.is_some()));
        if terminal {
            self.retire_flow(flow);
        }
    }

    fn apply_action(&mut self, flow: FlowId, side: Side, action: Action) {
        match action {
            Action::Send(mut pkt) => {
                pkt.flow = flow;
                pkt.dir = match side {
                    Side::Sender => Direction::Forward,
                    Side::Receiver => Direction::Reverse,
                };
                pkt.hop = 0;
                pkt.gen = self.flows[flow.index()].gen;
                if side == Side::Sender && pkt.is_data() {
                    if let Some(rt) = self.flows[flow.index()].live_mut() {
                        rt.stats.sent_packets += 1;
                    }
                }
                self.route(pkt);
            }
            Action::SetTimer { at, token } => {
                let at = if at < self.now { self.now } else { at };
                let gen = self.flows[flow.index()].gen;
                self.events.schedule(
                    at,
                    Event::Timer {
                        flow,
                        side,
                        token,
                        gen,
                    },
                );
            }
            Action::RecordRate(bps) => {
                let Some(rt) = self.flows[flow.index()].live_mut() else {
                    return;
                };
                rt.last_rate_bps = bps;
                // Downsample to at most one entry per sample interval
                // (keeping the latest decision in the window, like the
                // sampled series does): per-ACK rate reporters would
                // otherwise grow this log without bound on long runs.
                let interval = self.config.sample_interval.as_nanos().max(1);
                match rt.stats.rate_log.last_mut() {
                    Some(last)
                        if last.0.as_nanos() / interval == self.now.as_nanos() / interval =>
                    {
                        *last = (self.now, bps);
                    }
                    _ => rt.stats.rate_log.push((self.now, bps)),
                }
            }
            Action::RecordRtt(rtt) => {
                let Some(rt) = self.flows[flow.index()].live_mut() else {
                    return;
                };
                rt.stats.rtt_sum_ns += rtt.as_nanos();
                rt.stats.rtt_samples += 1;
                rt.window_rtt_sum_ns += rtt.as_nanos();
                rt.window_rtt_count += 1;
            }
            Action::RecordLoss(n) => {
                let Some(rt) = self.flows[flow.index()].live_mut() else {
                    return;
                };
                rt.stats.detected_losses += n;
                rt.window_losses += n;
            }
            Action::RecordGoodput(bytes) => {
                let Some(rt) = self.flows[flow.index()].live_mut() else {
                    return;
                };
                rt.stats.goodput_bytes += bytes;
                rt.window_goodput_bytes += bytes;
            }
            Action::Stall { dark, timeouts } => {
                let Some(rt) = self.flows[flow.index()].live_mut() else {
                    return;
                };
                if rt.stats.stalled.is_none() {
                    rt.stats.stalled = Some(StallInfo {
                        at: self.now,
                        dark,
                        timeouts,
                    });
                }
            }
            Action::Finish => {
                let Some(rt) = self.flows[flow.index()].live_mut() else {
                    return;
                };
                if !rt.finished {
                    rt.finished = true;
                    rt.stats.completed_at = Some(self.now);
                }
            }
        }
    }

    fn take_sample(&mut self) {
        let dt = self.config.sample_interval.as_secs_f64();
        let record = self.record_series;
        for slot in &mut self.flows {
            let Some(rt) = slot.live_mut() else {
                continue;
            };
            if record {
                let tput = rt.window_delivered_bytes as f64 * 8.0 / dt / 1e6;
                let goodput = rt.window_goodput_bytes as f64 * 8.0 / dt / 1e6;
                let rtt_ms = if rt.window_rtt_count > 0 {
                    (rt.window_rtt_sum_ns as f64 / rt.window_rtt_count as f64) / 1e6
                } else {
                    f64::NAN
                };
                rt.stats.series.throughput_mbps.push(tput);
                rt.stats.series.goodput_mbps.push(goodput);
                rt.stats.series.rate_mbps.push(rt.last_rate_bps / 1e6);
                rt.stats.series.rtt_ms.push(rtt_ms);
                rt.stats.series.losses.push(rt.window_losses);
            }
            rt.window_delivered_bytes = 0;
            rt.window_goodput_bytes = 0;
            rt.window_rtt_sum_ns = 0;
            rt.window_rtt_count = 0;
            rt.window_losses = 0;
        }
    }

    fn finalize(mut self) -> SimReport {
        self.churn.live_at_end = self
            .flows
            .iter()
            .filter(|s| s.live().is_some_and(|rt| rt.churn))
            .count() as u64;
        SimReport {
            // A retired slot reports default (empty) stats: its real stats
            // were harvested through the driver when the flow retired.
            flows: self
                .flows
                .into_iter()
                .map(|s| s.rt.map(|f| f.stats).unwrap_or_default())
                .collect(),
            links: self
                .links
                .iter()
                .map(|l| LinkReport {
                    id: l.id(),
                    stats: l.stats(),
                    queue: l.queue_stats(),
                })
                .collect(),
            sample_interval: self.config.sample_interval,
            ended_at: self.now,
            events_processed: self.events_processed,
            churn: self.churn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AckInfo;

    /// A sender that emits `count` packets at fixed spacing, one per timer.
    struct TickSender {
        next_seq: u64,
        count: u64,
        spacing: SimDuration,
        acked: u64,
    }

    impl Endpoint for TickSender {
        fn start(&mut self, ctx: &mut EndpointCtx) {
            ctx.set_timer(ctx.now, 0);
        }
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
            let ack = pkt.as_ack().expect("sender gets ACKs");
            self.acked += 1;
            ctx.record_rtt(ctx.now.saturating_since(ack.echo_sent_at));
            if self.acked == self.count {
                ctx.finish();
            }
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut EndpointCtx) {
            if self.next_seq < self.count {
                ctx.send_data(self.next_seq, 1500, false);
                self.next_seq += 1;
                ctx.set_timer(ctx.now + self.spacing, 0);
            }
        }
    }

    /// A receiver that ACKs every data packet.
    struct EchoReceiver {
        received: u64,
    }

    impl Endpoint for EchoReceiver {
        fn start(&mut self, _ctx: &mut EndpointCtx) {}
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
            let d = pkt.as_data().expect("receiver gets data");
            self.received += 1;
            ctx.record_goodput(pkt.bytes as u64);
            ctx.send_ack(AckInfo {
                acked_seq: d.seq,
                cum_ack: self.received,
                echo_sent_at: d.sent_at,
                recv_at: ctx.now,
                recv_bytes: self.received * 1500,
                probe_train: d.probe_train,
                of_retx: d.retx,
            });
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
    }

    fn two_way_net(rate_bps: f64, one_way: SimDuration) -> (NetworkBuilder, LinkId, LinkId) {
        let mut nb = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 7,
        });
        let fwd = nb.add_link(LinkConfig::bottleneck(rate_bps, one_way, 64_000));
        let rev = nb.add_link(LinkConfig::delay_only(one_way));
        (nb, fwd, rev)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(10));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 100,
                spacing: SimDuration::from_millis(2),
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(2));
        let st = &report.flows[flow.index()];
        assert_eq!(st.sent_packets, 100);
        assert_eq!(st.delivered_packets, 100);
        assert_eq!(st.delivered_bytes, 150_000);
        assert_eq!(st.goodput_bytes, 150_000);
        assert!(st.completed_at.is_some(), "all ACKs received => finished");
        // RTT = 10ms fwd prop + 1.2ms serialization + 10ms rev = ~21.2ms.
        let rtt = st.mean_rtt().expect("rtt measured");
        assert!(
            (rtt.as_millis_f64() - 21.2).abs() < 0.5,
            "rtt={}",
            rtt.as_millis_f64()
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut nb = NetworkBuilder::new(SimConfig {
                sample_interval: SimDuration::from_millis(50),
                seed,
            });
            let fwd = nb.add_link(
                LinkConfig::bottleneck(5e6, SimDuration::from_millis(5), 20_000).with_loss(0.05),
            );
            let rev = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(5)));
            nb.add_flow(FlowSpec {
                sender: Box::new(TickSender {
                    next_seq: 0,
                    count: 500,
                    // Below the 5 Mbps bottleneck (1500 B / 3 ms = 4 Mbps),
                    // so the delivered count reflects the random-loss
                    // pattern rather than a deterministic queue-drain rate.
                    spacing: SimDuration::from_millis(3),
                    acked: 0,
                }),
                receiver: Box::new(EchoReceiver { received: 0 }),
                fwd_path: vec![fwd],
                rev_path: vec![rev],
                start_at: SimTime::ZERO,
            });
            let r = nb.build().run_until(SimTime::from_secs(2));
            (
                r.flows[0].delivered_packets,
                r.flows[0].delivered_bytes,
                r.events_processed,
            )
        };
        assert_eq!(run(42), run(42), "same seed, identical run");
        assert_ne!(
            run(42),
            run(43),
            "different seed, different loss pattern (with overwhelming probability)"
        );
    }

    #[test]
    fn egress_loss_reduces_delivery() {
        let mut nb = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 3,
        });
        let fwd = nb.add_link(
            LinkConfig::bottleneck(100e6, SimDuration::from_millis(1), 1 << 20).with_loss(0.5),
        );
        let rev = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(1)));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 2000,
                spacing: SimDuration::from_micros(200),
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(2));
        let st = &report.flows[flow.index()];
        let delivery = st.delivered_packets as f64 / st.sent_packets as f64;
        assert!(
            (delivery - 0.5).abs() < 0.05,
            "~50% delivery, got {delivery}"
        );
        assert_eq!(
            report.links[fwd.index()].stats.egress_lost
                + report.flows[flow.index()].delivered_packets,
            2000
        );
    }

    #[test]
    fn bottleneck_paces_delivery_rate() {
        // Sender injects at 30 Mbps into a 10 Mbps bottleneck with a large
        // buffer: delivery rate must equal the bottleneck rate.
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(5));
        let _ = rev;
        let rev2 = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(5)));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 100_000,
                spacing: SimDuration::from_micros(400), // 1500B/400us = 30 Mbps
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev2],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(3));
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(3));
        assert!(
            (tput - 10.0).abs() < 0.5,
            "delivery pinned at bottleneck: {tput} Mbps"
        );
        // The queue must have dropped the excess.
        assert!(report.links[fwd.index()].queue.dropped_tail > 0);
    }

    #[test]
    fn sample_series_lengths_match() {
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(5));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 10,
                spacing: SimDuration::from_millis(1),
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(1));
        let s = &report.flows[flow.index()].series;
        // 1s horizon, 100ms sampling => 10 samples.
        assert_eq!(s.throughput_mbps.len(), 10);
        assert_eq!(s.goodput_mbps.len(), 10);
        assert_eq!(s.rate_mbps.len(), 10);
        assert_eq!(s.rtt_ms.len(), 10);
        assert_eq!(s.losses.len(), 10);
    }

    #[test]
    fn rate_log_is_downsampled_to_the_sample_interval() {
        // Regression: a sender that reports a rate on every tick used to
        // grow `rate_log` without bound (one entry per RecordRate forever);
        // the log must stay ≤ one entry per sample interval, keeping the
        // latest decision in each window.
        struct Chatty {
            n: u64,
        }
        impl Endpoint for Chatty {
            fn start(&mut self, ctx: &mut EndpointCtx) {
                ctx.set_timer(ctx.now, 0);
            }
            fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut EndpointCtx) {
                self.n += 1;
                ctx.record_rate(self.n as f64 * 1e6);
                if self.n < 2000 {
                    ctx.set_timer(ctx.now + SimDuration::from_millis(1), 0);
                }
            }
        }
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(5));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(Chatty { n: 0 }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(2));
        let log = &report.flows[flow.index()].rate_log;
        // 2 s at one bucket per 100 ms sample interval: ≤ 21 entries, not
        // the 2000 raw RecordRate calls.
        assert!(
            !log.is_empty() && log.len() <= 21,
            "bounded log, got {} entries",
            log.len()
        );
        // The latest decision in the run survives, and stamps ascend.
        assert_eq!(log.last().expect("non-empty").1, 2000e6);
        assert!(log.windows(2).all(|w| w[0].0 < w[1].0), "ascending stamps");
    }

    #[test]
    fn link_flap_drops_are_counted_not_silent() {
        use crate::fault::{FaultEvent, FaultPlane, FaultScript};
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(5));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 300,
                spacing: SimDuration::from_millis(2),
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let mut script = FaultScript::new();
        script.push(
            SimTime::from_millis(100),
            FaultEvent::LinkDown { link: fwd },
        );
        script.push(SimTime::from_millis(200), FaultEvent::LinkUp { link: fwd });
        nb.set_fault_plane(FaultPlane::new(script));
        let report = nb.build().run_until(SimTime::from_secs(2));
        let st = &report.flows[flow.index()];
        let ls = report.links[fwd.index()].stats;
        assert!(ls.fault_dropped > 0, "the flap killed something");
        // Conservation: every sent packet is delivered or accounted as a
        // fault drop (no random loss, ample buffer => nothing else).
        assert_eq!(
            st.sent_packets,
            st.delivered_packets + ls.fault_dropped,
            "no silent drops"
        );
        // Delivery resumed after repair: everything sent post-repair lands.
        assert!(st.delivered_packets > 200, "flow recovered after the flap");
    }

    #[test]
    fn duplicate_and_corrupt_faults_are_counted() {
        use crate::fault::{FaultEvent, FaultPlane, FaultScript};
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(5));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 500,
                spacing: SimDuration::from_millis(2),
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let mut script = FaultScript::new();
        script.push(
            SimTime::from_millis(100),
            FaultEvent::DuplicateOn {
                link: fwd,
                prob: 0.5,
            },
        );
        script.push(
            SimTime::from_millis(400),
            FaultEvent::DuplicateOff { link: fwd },
        );
        script.push(
            SimTime::from_millis(500),
            FaultEvent::CorruptOn {
                link: fwd,
                prob: 1.0,
            },
        );
        script.push(
            SimTime::from_millis(600),
            FaultEvent::CorruptOff { link: fwd },
        );
        nb.set_fault_plane(FaultPlane::new(script));
        let report = nb.build().run_until(SimTime::from_secs(2));
        let st = &report.flows[flow.index()];
        let ls = report.links[fwd.index()].stats;
        assert!(ls.fault_duplicated > 0, "duplication fault fired");
        assert!(ls.fault_corrupted > 0, "corruption fault fired");
        // Conservation with duplicates counted as extra deliveries.
        assert_eq!(
            st.sent_packets + ls.fault_duplicated,
            st.delivered_packets + ls.fault_corrupted,
            "every packet delivered, duplicated-and-delivered, or corrupted"
        );
    }

    #[test]
    fn node_failure_reroutes_live_flow_onto_survivor() {
        use crate::fault::{FaultEvent, FaultPlane, FaultScript};
        use crate::topo::{ecmp_key, Topology};
        // Two equal-cost switch paths between two hosts.
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        let s1 = topo.add_switch();
        let s2 = topo.add_switch();
        let cfg = || LinkConfig::bottleneck(10e6, SimDuration::from_millis(2), 64_000);
        for &s in &[s1, s2] {
            topo.add_duplex(a, s, cfg(), cfg());
            topo.add_duplex(s, b, cfg(), cfg());
        }
        let mut nb = NetworkBuilder::new(SimConfig::default());
        topo.install(&mut nb);
        let key = ecmp_key(11, 0);
        let path = topo.flow_path(a, b, key);
        // Which middle switch does the forward path transit? Its first hop
        // link leaves host `a` toward that switch.
        let via = topo
            .edge_endpoints(
                (0..topo.num_edges() as u32)
                    .map(crate::ids::EdgeId)
                    .find(|&e| topo.link_of(e) == path.fwd[0])
                    .expect("first hop edge"),
            )
            .1;
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 400,
                spacing: SimDuration::from_millis(2),
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let mut script = FaultScript::new();
        script.push(
            SimTime::from_millis(200),
            FaultEvent::NodeDown { node: via },
        );
        let mut plane = FaultPlane::new(script);
        plane.attach_topology(&topo);
        plane.register_flow(flow, a, b, key);
        nb.set_fault_plane(plane);
        let report = nb.build().run_until(SimTime::from_secs(2));
        let st = &report.flows[flow.index()];
        // The switch never comes back, yet delivery continues over the
        // surviving equal-cost path; only the handful of packets in flight
        // at the failure instant die (this sender never retransmits), and
        // every one of them is accounted as a fault drop.
        assert_eq!(st.sent_packets, 400);
        assert!(
            st.delivered_packets >= 395,
            "rerouted onto the survivor: {} delivered",
            st.delivered_packets
        );
        let fault_drops: u64 = report.links.iter().map(|l| l.stats.fault_dropped).sum();
        assert!(fault_drops > 0, "the failure killed the in-flight packets");
        assert!(
            st.sent_packets - st.delivered_packets <= fault_drops,
            "every undelivered data packet is accounted as a fault drop"
        );
    }

    /// Shared collector for churn-driver tests: records each harvested
    /// flow's tag and final stats.
    type Harvest = std::rc::Rc<std::cell::RefCell<Vec<(u64, u64, u64, bool)>>>;

    /// A driver admitting `count` flows at a fixed interval, each a
    /// `TickSender` sending `pkts` packets. Tags are arrival indices.
    struct IntervalDriver {
        next_at: SimTime,
        interval: SimDuration,
        admitted: u64,
        count: u64,
        pkts: u64,
        fwd: LinkId,
        rev: LinkId,
        harvest: Harvest,
    }

    impl IntervalDriver {
        fn flow(&self, tag: u64) -> ChurnFlow {
            ChurnFlow {
                sender: Box::new(TickSender {
                    next_seq: 0,
                    count: self.pkts,
                    spacing: SimDuration::from_millis(1),
                    acked: 0,
                }),
                receiver: Box::new(EchoReceiver { received: 0 }),
                fwd_path: vec![self.fwd],
                rev_path: vec![self.rev],
                tag,
            }
        }
    }

    impl ChurnDriver for IntervalDriver {
        fn next_arrival(&mut self, _now: SimTime) -> Option<(SimTime, ChurnFlow)> {
            if self.admitted >= self.count {
                return None;
            }
            let tag = self.admitted;
            let at = self.next_at;
            self.admitted += 1;
            self.next_at = at + self.interval;
            Some((at, self.flow(tag)))
        }

        fn on_flow_complete(&mut self, tag: u64, stats: &FlowStats, _now: SimTime) {
            self.harvest.borrow_mut().push((
                tag,
                stats.delivered_bytes,
                stats.goodput_bytes,
                stats.completed_at.is_some(),
            ));
        }
    }

    #[test]
    fn churn_recycles_slots_and_conserves_accounting() {
        let (mut nb, fwd, rev) = two_way_net(100e6, SimDuration::from_millis(2));
        let harvest: Harvest = Default::default();
        nb.set_churn_driver(Box::new(IntervalDriver {
            next_at: SimTime::ZERO,
            interval: SimDuration::from_millis(25),
            admitted: 0,
            count: 200,
            pkts: 5,
            fwd,
            rev,
            harvest: harvest.clone(),
        }));
        let report = nb.build().run_until(SimTime::from_secs(6));
        let c = report.churn;
        assert_eq!(c.arrivals, 200);
        assert_eq!(
            c.completions + c.stalls + c.live_at_end,
            c.arrivals,
            "accounting conserved: {c:?}"
        );
        assert_eq!(c.completions, 200, "every short flow finishes: {c:?}");
        // Each flow lives ~9 ms against a 25 ms inter-arrival gap: the arena
        // never needs more than a couple of slots for 200 flows.
        assert!(c.peak_live <= 3, "peak slots ≪ total flows: {c:?}");
        assert!(
            report.flows.len() as u64 <= c.peak_live,
            "arena bounded by peak, not arrivals: {} slots",
            report.flows.len()
        );
        assert!(
            c.recycled >= 197,
            "free list served the steady state: {c:?}"
        );
        // Harvested stats are per-flow, uncontaminated: every flow delivered
        // exactly its own 5 packets.
        let h = harvest.borrow();
        assert_eq!(h.len(), 200);
        for &(tag, delivered, goodput, done) in h.iter() {
            assert!(tag < 200);
            assert_eq!(delivered, 5 * 1500, "flow {tag} delivered its bytes");
            assert_eq!(goodput, 5 * 1500);
            assert!(done);
        }
    }

    #[test]
    fn same_instant_arrivals_are_batched_and_all_admitted() {
        // The buffer must absorb the synchronized 100-packet burst: this
        // sender never retransmits, so a tail drop would leave its flow
        // incomplete (and the completions assert below is exact).
        let mut nb = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 7,
        });
        let fwd = nb.add_link(LinkConfig::bottleneck(
            100e6,
            SimDuration::from_millis(2),
            1 << 20,
        ));
        let rev = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(2)));
        let harvest: Harvest = Default::default();
        // Zero interval: all 50 arrivals land at the same instant and must
        // be admitted by the single ChurnArrival event.
        nb.set_churn_driver(Box::new(IntervalDriver {
            next_at: SimTime::from_millis(10),
            interval: SimDuration::ZERO,
            admitted: 0,
            count: 50,
            pkts: 2,
            fwd,
            rev,
            harvest: harvest.clone(),
        }));
        let report = nb.build().run_until(SimTime::from_secs(2));
        let c = report.churn;
        assert_eq!(c.arrivals, 50);
        assert_eq!(c.completions, 50);
        assert_eq!(c.peak_live, 50, "all concurrent");
        assert_eq!(harvest.borrow().len(), 50);
    }

    /// A sender that fires two packets back-to-back but finishes on the
    /// first ACK, deliberately leaving its second packet (and that packet's
    /// ACK) in flight past its own retirement.
    struct EagerFinisher;

    impl Endpoint for EagerFinisher {
        fn start(&mut self, ctx: &mut EndpointCtx) {
            ctx.send_data(0, 1500, false);
            ctx.send_data(1, 1500, false);
        }
        fn on_packet(&mut self, _pkt: &Packet, ctx: &mut EndpointCtx) {
            ctx.finish();
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
    }

    struct TwoFlowDriver {
        admitted: u32,
        fwd: LinkId,
        rev: LinkId,
        harvest: Harvest,
    }

    impl ChurnDriver for TwoFlowDriver {
        fn next_arrival(&mut self, _now: SimTime) -> Option<(SimTime, ChurnFlow)> {
            self.admitted += 1;
            match self.admitted {
                1 => Some((
                    SimTime::ZERO,
                    ChurnFlow {
                        sender: Box::new(EagerFinisher),
                        receiver: Box::new(EchoReceiver { received: 0 }),
                        fwd_path: vec![self.fwd],
                        rev_path: vec![self.rev],
                        tag: 1,
                    },
                )),
                2 => Some((
                    // Long after flow 1's leftovers have drained out of the
                    // network — but its slot (and any stale events) remain.
                    SimTime::from_millis(200),
                    ChurnFlow {
                        sender: Box::new(TickSender {
                            next_seq: 0,
                            count: 3,
                            spacing: SimDuration::from_millis(1),
                            acked: 0,
                        }),
                        receiver: Box::new(EchoReceiver { received: 0 }),
                        fwd_path: vec![self.fwd],
                        rev_path: vec![self.rev],
                        tag: 2,
                    },
                )),
                _ => None,
            }
        }

        fn on_flow_complete(&mut self, tag: u64, stats: &FlowStats, _now: SimTime) {
            self.harvest.borrow_mut().push((
                tag,
                stats.delivered_bytes,
                stats.goodput_bytes,
                stats.completed_at.is_some(),
            ));
        }
    }

    #[test]
    fn recycled_slot_never_aliases_retired_flow() {
        // Regression against cross-flow stat bleed: flow 1 retires with a
        // data packet still in flight; flow 2 reuses the same slot. The
        // stale packet must be dropped by the generation check, not
        // credited to flow 2's delivered bytes.
        //
        // The reverse path is much faster than the forward one, so the
        // first ACK (and with it Finish) beats the second data packet:
        // pkt0 lands at 11.2 ms, its ACK finishes the flow at 12.2 ms,
        // and pkt1 arrives stale at 12.4 ms.
        let mut nb = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 7,
        });
        let fwd = nb.add_link(LinkConfig::bottleneck(
            10e6,
            SimDuration::from_millis(10),
            64_000,
        ));
        let rev = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(1)));
        let harvest: Harvest = Default::default();
        nb.set_churn_driver(Box::new(TwoFlowDriver {
            admitted: 0,
            fwd,
            rev,
            harvest: harvest.clone(),
        }));
        let report = nb.build().run_until(SimTime::from_secs(1));
        let c = report.churn;
        assert_eq!(c.arrivals, 2);
        assert_eq!(c.completions, 2);
        assert_eq!(c.recycled, 1, "flow 2 reused flow 1's slot");
        assert!(
            c.stale_packets >= 1,
            "flow 1's in-flight leftovers were dropped, not delivered: {c:?}"
        );
        let h = harvest.borrow();
        // Flow 1 finished on its first ACK: exactly one packet delivered.
        let f1 = h.iter().find(|e| e.0 == 1).expect("flow 1 harvested");
        assert_eq!(f1.1, 1500, "flow 1 credited only its pre-retire delivery");
        // Flow 2's stats contain flow 2's packets only — no bleed.
        let f2 = h.iter().find(|e| e.0 == 2).expect("flow 2 harvested");
        assert_eq!(f2.1, 3 * 1500, "no cross-flow stat bleed: {f2:?}");
        assert_eq!(f2.2, 3 * 1500);
    }

    /// A sender that arms a long timer, then behaves like a 1-packet flow;
    /// its timer outlives its own retirement.
    struct TimerLeaker;

    impl Endpoint for TimerLeaker {
        fn start(&mut self, ctx: &mut EndpointCtx) {
            ctx.set_timer(ctx.now + SimDuration::from_millis(300), 99);
            ctx.send_data(0, 1500, false);
        }
        fn on_packet(&mut self, _pkt: &Packet, ctx: &mut EndpointCtx) {
            ctx.finish();
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {
            panic!("stale timer fired into a retired flow");
        }
    }

    /// Counts its own timer fires; panics if it sees token 99 (the
    /// leaker's), which would mean a stale timer crossed tenants.
    struct TimerCounter {
        fires: u64,
        done: bool,
    }

    impl Endpoint for TimerCounter {
        fn start(&mut self, ctx: &mut EndpointCtx) {
            ctx.set_timer(ctx.now + SimDuration::from_millis(10), 1);
        }
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
        fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
            assert_ne!(token, 99, "previous tenant's timer leaked across");
            self.fires += 1;
            if !self.done {
                self.done = true;
                ctx.set_timer(ctx.now + SimDuration::from_millis(10), 1);
            } else {
                ctx.finish();
            }
        }
    }

    struct LeakDriver {
        admitted: u32,
        fwd: LinkId,
        rev: LinkId,
    }

    impl ChurnDriver for LeakDriver {
        fn next_arrival(&mut self, _now: SimTime) -> Option<(SimTime, ChurnFlow)> {
            self.admitted += 1;
            match self.admitted {
                1 => Some((
                    SimTime::ZERO,
                    ChurnFlow {
                        sender: Box::new(TimerLeaker),
                        receiver: Box::new(EchoReceiver { received: 0 }),
                        fwd_path: vec![self.fwd],
                        rev_path: vec![self.rev],
                        tag: 1,
                    },
                )),
                2 => Some((
                    SimTime::from_millis(100),
                    ChurnFlow {
                        sender: Box::new(TimerCounter {
                            fires: 0,
                            done: false,
                        }),
                        receiver: Box::new(EchoReceiver { received: 0 }),
                        fwd_path: vec![self.fwd],
                        rev_path: vec![self.rev],
                        tag: 2,
                    },
                )),
                _ => None,
            }
        }

        fn on_flow_complete(&mut self, _tag: u64, _stats: &FlowStats, _now: SimTime) {}
    }

    #[test]
    fn stale_timer_never_fires_into_new_tenant() {
        let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(5));
        nb.set_churn_driver(Box::new(LeakDriver {
            admitted: 0,
            fwd,
            rev,
        }));
        let report = nb.build().run_until(SimTime::from_secs(1));
        let c = report.churn;
        assert_eq!(c.completions, 2);
        assert_eq!(c.recycled, 1, "tenant 2 reused tenant 1's slot");
        // Tenant 1's 300 ms timer fires at a time when tenant 2 owns the
        // slot; the generation check must discard it (either endpoint would
        // panic if it fired).
        assert!(c.stale_timers >= 1, "leaked timer was discarded: {c:?}");
    }

    #[test]
    fn record_series_opt_out_keeps_aggregates() {
        let run = |record| {
            let (mut nb, fwd, rev) = two_way_net(10e6, SimDuration::from_millis(10));
            nb.set_record_series(record);
            let flow = nb.add_flow(FlowSpec {
                sender: Box::new(TickSender {
                    next_seq: 0,
                    count: 100,
                    spacing: SimDuration::from_millis(2),
                    acked: 0,
                }),
                receiver: Box::new(EchoReceiver { received: 0 }),
                fwd_path: vec![fwd],
                rev_path: vec![rev],
                start_at: SimTime::ZERO,
            });
            let r = nb.build().run_until(SimTime::from_secs(2));
            (
                r.flows[flow.index()].delivered_bytes,
                r.flows[flow.index()].goodput_bytes,
                r.flows[flow.index()].series.throughput_mbps.len(),
                r.events_processed,
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0, off.0, "aggregates identical");
        assert_eq!(on.1, off.1);
        assert_eq!(on.3, off.3, "event stream identical");
        assert_eq!(on.2, 20, "series recorded by default");
        assert_eq!(off.2, 0, "series empty when opted out");
    }

    #[test]
    fn link_schedule_changes_rate_mid_run() {
        use crate::link::{LinkSchedule, LinkStep};
        let mut sched = LinkSchedule::new();
        sched.push(LinkStep {
            at: SimTime::from_secs(1),
            rate_bps: Some(2e6),
            delay: None,
            loss: None,
        });
        let mut nb = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 5,
        });
        let fwd = nb.add_link(
            LinkConfig::bottleneck(10e6, SimDuration::from_millis(5), 1 << 20).with_schedule(sched),
        );
        let rev = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(5)));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(TickSender {
                next_seq: 0,
                count: 100_000,
                spacing: SimDuration::from_micros(1500), // 8 Mbps injection
                acked: 0,
            }),
            receiver: Box::new(EchoReceiver { received: 0 }),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(3));
        let before =
            report.avg_throughput_mbps(flow, SimTime::from_millis(200), SimTime::from_secs(1));
        let after = report.avg_throughput_mbps(flow, SimTime::from_secs(2), SimTime::from_secs(3));
        assert!((before - 8.0).abs() < 0.5, "pre-change ~8 Mbps: {before}");
        assert!(
            (after - 2.0).abs() < 0.3,
            "post-change pinned at 2 Mbps: {after}"
        );
    }
}
