//! Deterministic randomness for the simulator.
//!
//! A single master seed fans out into independent per-component streams via
//! SplitMix64, so adding a component (a new link's loss process, a new flow's
//! monitor-interval jitter) never perturbs the random stream of any other
//! component. Runs with the same master seed are bit-identical.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64 — no external crates, so the byte stream is stable
//! across toolchains and builds.

/// SplitMix64 step; used to derive independent stream seeds from a master
/// seed combined with a component tag, and to expand a 64-bit seed into the
/// generator's 256-bit state. Public as [`mix64`] for stateless hashing
/// (e.g. the topology subsystem's per-flow ECMP choice).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 mixing step: a stateless 64-bit bijective hash.
///
/// The deterministic mixer behind `SimRng::derive`, exposed for components
/// that need an order-independent hash rather than a stream — notably the
/// per-flow ECMP path choice in [`crate::topo`].
pub fn mix64(z: u64) -> u64 {
    splitmix64(z)
}

/// A deterministic random stream (xoshiro256++).
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Create a stream from a seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state via SplitMix64, the
        // initialization the xoshiro authors recommend. The state is never
        // all-zero because splitmix64 is a bijection chain seeded off
        // distinct offsets.
        let mut s = [0u64; 4];
        let mut z = seed;
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        SimRng { seed, state: s }
    }

    /// Derive an independent child stream tagged by `tag`.
    ///
    /// The child depends only on this stream's seed and `tag`, not on how
    /// much of this stream has been consumed.
    pub fn derive(&self, tag: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(tag.wrapping_add(1))))
    }

    /// The seed of this stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the densest uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        // Multiply-shift bounded generation (Lemire) without the rejection
        // step: the bias is < 2^-64 per draw, far below anything a
        // simulation statistic can resolve.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // 1 − uniform() ∈ (0, 1]; ln of it is finite and ≤ 0.
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A random boolean (fair coin).
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 0
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={:#x})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn derive_is_independent_of_consumption() {
        let mut a = SimRng::new(7);
        let b = SimRng::new(7);
        // Consume some of `a`, then derive: children must match.
        for _ in 0..10 {
            a.uniform();
        }
        let mut ca = a.derive(3);
        let mut cb = b.derive(3);
        for _ in 0..20 {
            assert_eq!(ca.uniform().to_bits(), cb.uniform().to_bits());
        }
    }

    #[test]
    fn derive_different_tags_differ() {
        let root = SimRng::new(1);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let s1: Vec<u64> = (0..8).map(|_| c1.uniform().to_bits()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.uniform().to_bits()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_correct() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn range_degenerate() {
        let mut r = SimRng::new(17);
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
        assert_eq!(r.range_u64(9, 9), 9);
    }

    #[test]
    fn range_u64_within_bounds() {
        let mut r = SimRng::new(23);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let mut r = SimRng::new(29);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
