//! Deterministic randomness for the simulator.
//!
//! A single master seed fans out into independent per-component streams via
//! SplitMix64, so adding a component (a new link's loss process, a new flow's
//! monitor-interval jitter) never perturbs the random stream of any other
//! component. Runs with the same master seed are bit-identical.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64 step; used to derive independent stream seeds from a master
/// seed combined with a component tag.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream.
pub struct SimRng {
    seed: u64,
    rng: StdRng,
}

impl SimRng {
    /// Create a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream tagged by `tag`.
    ///
    /// The child depends only on this stream's seed and `tag`, not on how
    /// much of this stream has been consumed.
    pub fn derive(&self, tag: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(tag.wrapping_add(1))))
    }

    /// The seed of this stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random_range(0.0..1.0)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.rng.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.rng.random_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.random_bool(p)
        }
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// A random boolean (fair coin).
    pub fn coin(&mut self) -> bool {
        self.rng.random_bool(0.5)
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={:#x})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn derive_is_independent_of_consumption() {
        let mut a = SimRng::new(7);
        let b = SimRng::new(7);
        // Consume some of `a`, then derive: children must match.
        for _ in 0..10 {
            a.uniform();
        }
        let mut ca = a.derive(3);
        let mut cb = b.derive(3);
        for _ in 0..20 {
            assert_eq!(ca.uniform().to_bits(), cb.uniform().to_bits());
        }
    }

    #[test]
    fn derive_different_tags_differ() {
        let root = SimRng::new(1);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let s1: Vec<u64> = (0..8).map(|_| c1.uniform().to_bits()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.uniform().to_bits()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_correct() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn range_degenerate() {
        let mut r = SimRng::new(17);
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
        assert_eq!(r.range_u64(9, 9), 9);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
