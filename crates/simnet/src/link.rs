//! Link model: serialization rate, propagation delay, random loss, and an
//! attached queue discipline.
//!
//! Two flavors:
//!
//! * **Rated links** serialize packets at `rate_bps` through their queue —
//!   these are bottlenecks.
//! * **Pure-delay links** (`rate_bps == None`) forward instantly after a
//!   fixed propagation delay — used as per-flow RTT shims so different flows
//!   sharing a bottleneck can have different RTTs.
//!
//! Loss is applied at link *egress* (after serialization, before
//! propagation), which models corruption on the wire rather than drops in
//! the buffer; buffer drops come from the queue discipline. Each link owns an
//! independent RNG stream, so loss processes do not interfere across links.
//!
//! A [`LinkSchedule`] makes the link parameters time-varying — the substrate
//! for the paper's "rapidly changing network" experiment (Fig. 11).

use crate::ids::LinkId;
use crate::packet::Packet;
use crate::queue::{DropTail, Queue, QueueStats};
use crate::rng::SimRng;
use crate::shaper::{LinkShaper, ShaperConfig};
use crate::time::{tx_time, SimDuration, SimTime};

/// One step of a time-varying link schedule.
#[derive(Clone, Copy, Debug)]
pub struct LinkStep {
    /// When this step takes effect.
    pub at: SimTime,
    /// New serialization rate in bits/sec (`None` keeps the current rate).
    pub rate_bps: Option<f64>,
    /// New one-way propagation delay (`None` keeps the current delay).
    pub delay: Option<SimDuration>,
    /// New random loss probability (`None` keeps the current loss).
    pub loss: Option<f64>,
}

/// A time-ordered sequence of parameter changes.
#[derive(Clone, Debug, Default)]
pub struct LinkSchedule {
    steps: Vec<LinkStep>,
}

impl LinkSchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a step; steps must be added in non-decreasing time order.
    pub fn push(&mut self, step: LinkStep) {
        if let Some(last) = self.steps.last() {
            assert!(step.at >= last.at, "schedule steps must be time-ordered");
        }
        self.steps.push(step);
    }

    /// The step at `index`, if any.
    pub fn step(&self, index: usize) -> Option<&LinkStep> {
        self.steps.get(index)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Configuration for building a [`Link`].
pub struct LinkConfig {
    /// Serialization rate in bits/sec; `None` = pure-delay (infinite rate).
    pub rate_bps: Option<f64>,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Bernoulli random loss probability at egress, in `[0, 1]`.
    pub loss: f64,
    /// Queue discipline (ignored for pure-delay links).
    pub queue: Box<dyn Queue>,
    /// Optional time-varying parameter schedule.
    pub schedule: LinkSchedule,
    /// Impairment stage: jitter, bounded reordering, token-bucket
    /// policing (default: none).
    pub shaper: ShaperConfig,
}

impl LinkConfig {
    /// A bottleneck: `rate_bps` bits/sec, `delay` one-way, drop-tail queue of
    /// `buffer_bytes`.
    pub fn bottleneck(rate_bps: f64, delay: SimDuration, buffer_bytes: u64) -> Self {
        LinkConfig {
            rate_bps: Some(rate_bps),
            delay,
            loss: 0.0,
            queue: Box::new(DropTail::bytes(buffer_bytes)),
            schedule: LinkSchedule::new(),
            shaper: ShaperConfig::default(),
        }
    }

    /// A pure-delay element (infinite rate, no queueing, no loss).
    pub fn delay_only(delay: SimDuration) -> Self {
        LinkConfig {
            rate_bps: None,
            delay,
            loss: 0.0,
            queue: Box::new(DropTail::bytes(u64::MAX)),
            schedule: LinkSchedule::new(),
            shaper: ShaperConfig::default(),
        }
    }

    /// Set the random loss rate.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Replace the queue discipline.
    pub fn with_queue(mut self, queue: Box<dyn Queue>) -> Self {
        self.queue = queue;
        self
    }

    /// Attach a time-varying schedule.
    pub fn with_schedule(mut self, schedule: LinkSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Attach an impairment stage (jitter / reordering / policing).
    pub fn with_shaper(mut self, shaper: ShaperConfig) -> Self {
        self.shaper = shaper;
        self
    }
}

/// What a link does with a packet offered to it.
#[derive(Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum LinkOutcome {
    /// Packet queued or started serializing; `tx_done` tells the simulation
    /// when to fire `TxComplete` (only when serialization started now).
    Accepted { start_tx: Option<SimTime> },
    /// Packet dropped by the queue discipline.
    Dropped,
}

/// The result of completing one serialization.
#[derive(Debug)]
pub struct TxResult {
    /// The packet that finished serializing, if it survived egress loss, and
    /// the time it will arrive at the next hop.
    pub delivered: Option<(Packet, SimTime)>,
    /// The packet was killed by random egress loss.
    pub egress_lost: bool,
    /// A fault-injected duplicate of the delivered packet, arriving at the
    /// same nominal time (the event queue's tie-break keeps it right behind
    /// the original).
    pub duplicate: Option<(Packet, SimTime)>,
    /// If another packet is waiting, when its serialization completes.
    pub next_tx_done: Option<SimTime>,
}

/// Per-link lifetime counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets that completed serialization.
    pub transmitted: u64,
    /// Packets killed by random egress loss.
    pub egress_lost: u64,
    /// Bytes that completed serialization.
    pub transmitted_bytes: u64,
    /// Packets dropped by the ingress token-bucket policer.
    pub policed: u64,
    /// Deliveries the shaper rushed ahead of an already-scheduled one
    /// (actual out-of-order arrivals).
    pub reordered: u64,
    /// Packets killed by an injected fault: offered to (or completing on) a
    /// downed link, or purged from its queue when the link went down.
    pub fault_dropped: u64,
    /// Packets killed by an injected corruption fault at egress.
    pub fault_corrupted: u64,
    /// Extra deliveries created by an injected duplication fault.
    pub fault_duplicated: u64,
}

/// Injected-fault state attached to a link, present only while the fault
/// plane has ever touched it (a fault-free link pays one `Option` check).
#[derive(Debug)]
struct FaultState {
    /// False while the link is administratively down.
    up: bool,
    /// Corruption fault: kill probability and its dedicated RNG stream.
    corrupt: Option<(f64, SimRng)>,
    /// Duplication fault: duplicate probability and its dedicated stream.
    duplicate: Option<(f64, SimRng)>,
}

impl FaultState {
    fn new() -> Self {
        FaultState {
            up: true,
            corrupt: None,
            duplicate: None,
        }
    }
}

/// A simulated link.
pub struct Link {
    id: LinkId,
    rate_bps: Option<f64>,
    delay: SimDuration,
    loss: f64,
    queue: Box<dyn Queue>,
    /// Packet currently being serialized (rated links only).
    in_flight: Option<Packet>,
    schedule: LinkSchedule,
    /// Impairment stage, present only when configured (a no-op config
    /// costs nothing on the hot path).
    shaper: Option<LinkShaper>,
    /// Injected-fault state, allocated only once the fault plane first
    /// touches this link (no-fault runs never allocate it).
    fault: Option<Box<FaultState>>,
    rng: SimRng,
    stats: LinkStats,
}

impl Link {
    /// Build a link. `rng` must be an independent stream for this link.
    pub fn new(id: LinkId, config: LinkConfig, rng: SimRng) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.loss),
            "loss probability must be in [0,1]"
        );
        // The shaper draws from its own derived stream, so configuring
        // one never perturbs this link's loss process (derive depends
        // only on the seed, not on stream consumption).
        let shaper = (!config.shaper.is_noop())
            .then(|| LinkShaper::new(config.shaper, rng.derive(0x5348_4150_4552)));
        Link {
            id,
            rate_bps: config.rate_bps,
            delay: config.delay,
            loss: config.loss,
            queue: config.queue,
            in_flight: None,
            schedule: config.schedule,
            shaper,
            fault: None,
            rng,
            stats: LinkStats::default(),
        }
    }

    /// The link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Current serialization rate (`None` = pure delay).
    pub fn rate_bps(&self) -> Option<f64> {
        self.rate_bps
    }

    /// Current one-way propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Current random loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// The attached schedule (empty if none).
    pub fn schedule(&self) -> &LinkSchedule {
        &self.schedule
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Current queue backlog in bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.queue.len_bytes()
    }

    /// Offer a packet to the link at `now`.
    ///
    /// Pure-delay links deliver directly: the caller should schedule an
    /// arrival at the returned `start_tx` time (which doubles as the arrival
    /// time for them; egress loss is still applied via [`Link::roll_loss`]).
    pub fn offer(&mut self, pkt: Packet, now: SimTime) -> LinkOutcome {
        self.stats.offered += 1;
        // A downed link black-holes everything offered to it; the drop is
        // accounted so no fault loss is ever silent.
        if !self.is_up() {
            self.stats.fault_dropped += 1;
            return LinkOutcome::Dropped;
        }
        // Policing happens at ingress, before any queueing — a policer
        // never buffers, it only passes or drops.
        if let Some(shaper) = &mut self.shaper {
            if !shaper.admit(pkt.bytes, now) {
                self.stats.policed += 1;
                return LinkOutcome::Dropped;
            }
        }
        match self.rate_bps {
            None => {
                // Pure delay: no queue, no serialization.
                LinkOutcome::Accepted {
                    start_tx: Some(now),
                }
            }
            Some(rate) => {
                if self.in_flight.is_none() && self.queue.is_empty() {
                    // Link idle: start serializing immediately.
                    let done = now + tx_time(pkt.bytes as u64, rate);
                    self.in_flight = Some(pkt);
                    LinkOutcome::Accepted {
                        start_tx: Some(done),
                    }
                } else if self.queue.enqueue(pkt, now) {
                    LinkOutcome::Accepted { start_tx: None }
                } else {
                    LinkOutcome::Dropped
                }
            }
        }
    }

    /// Complete the in-flight serialization at `now`; returns the delivered
    /// packet (if it survives egress loss) and schedules the next one.
    pub fn tx_complete(&mut self, now: SimTime) -> TxResult {
        let rate = self.rate_bps.expect("tx_complete on pure-delay link");
        let pkt = self
            .in_flight
            .take()
            .expect("tx_complete with nothing in flight");
        // A packet whose serialization completes while the link is down is
        // killed (the queue behind it was already purged, so nothing
        // chains). It never counts as transmitted.
        if !self.is_up() {
            self.stats.fault_dropped += 1;
            return TxResult {
                delivered: None,
                egress_lost: false,
                duplicate: None,
                next_tx_done: None,
            };
        }
        self.stats.transmitted += 1;
        self.stats.transmitted_bytes += pkt.bytes as u64;
        let egress_lost = self.roll_loss();
        if egress_lost {
            self.stats.egress_lost += 1;
        }
        // Fault rolls draw from their own derived streams *after* the
        // link's loss roll, so activating a fault never shifts the link's
        // base loss process.
        let corrupted = !egress_lost && self.roll_corrupt();
        let delivered = if egress_lost || corrupted {
            None
        } else {
            let arrive = self.shape_arrival(now + self.delay);
            Some((pkt, arrive))
        };
        let duplicate = match delivered {
            Some(d) if self.roll_duplicate() => Some(d),
            _ => None,
        };
        // Pull the next packet from the queue, if any.
        let next_tx_done = self.queue.dequeue(now).map(|next| {
            let done = now + tx_time(next.bytes as u64, rate);
            self.in_flight = Some(next);
            done
        });
        TxResult {
            delivered,
            egress_lost,
            duplicate,
            next_tx_done,
        }
    }

    /// Bernoulli egress-loss trial with the link's current loss probability.
    pub fn roll_loss(&mut self) -> bool {
        self.rng.chance(self.loss)
    }

    /// [`Link::roll_loss`], but a hit is also counted in
    /// [`LinkStats::egress_lost`] — the accounting entry point the
    /// simulation loop uses for pure-delay links, so no random loss is ever
    /// silent.
    pub fn roll_loss_counted(&mut self) -> bool {
        let lost = self.roll_loss();
        if lost {
            self.stats.egress_lost += 1;
        }
        lost
    }

    /// True unless an injected fault has taken the link down.
    pub fn is_up(&self) -> bool {
        self.fault.as_ref().is_none_or(|f| f.up)
    }

    /// Take the link down: everything queued is purged (counted in
    /// [`LinkStats::fault_dropped`]) and everything offered or completing
    /// while down is killed. Idempotent.
    pub fn set_down(&mut self, now: SimTime) {
        let fault = self.fault_state();
        if !fault.up {
            return;
        }
        fault.up = false;
        while self.queue.dequeue(now).is_some() {
            self.stats.fault_dropped += 1;
        }
    }

    /// Bring the link back up. The in-flight slot is idle (anything
    /// serializing when the link went down was killed at its completion
    /// event), so the next offered packet serializes immediately. Idempotent.
    pub fn set_up(&mut self) {
        self.fault_state().up = true;
    }

    /// Install or clear an egress corruption fault: each surviving packet
    /// is killed with probability `prob`, rolled on the fault's own RNG
    /// stream.
    pub fn set_fault_corrupt(&mut self, fault: Option<(f64, SimRng)>) {
        self.fault_state().corrupt = fault;
    }

    /// Install or clear a duplication fault: each delivered packet is
    /// delivered twice with probability `prob`, rolled on the fault's own
    /// RNG stream.
    pub fn set_fault_duplicate(&mut self, fault: Option<(f64, SimRng)>) {
        self.fault_state().duplicate = fault;
    }

    /// Corruption trial for a packet about to be delivered; counts a hit in
    /// [`LinkStats::fault_corrupted`]. Always false without an active
    /// corruption fault.
    pub fn roll_corrupt(&mut self) -> bool {
        let hit = match self.fault.as_deref_mut().and_then(|f| f.corrupt.as_mut()) {
            Some((prob, rng)) => {
                let p = *prob;
                rng.chance(p)
            }
            None => false,
        };
        if hit {
            self.stats.fault_corrupted += 1;
        }
        hit
    }

    /// Duplication trial for a delivered packet; counts a hit in
    /// [`LinkStats::fault_duplicated`]. Always false without an active
    /// duplication fault.
    pub fn roll_duplicate(&mut self) -> bool {
        let hit = match self.fault.as_deref_mut().and_then(|f| f.duplicate.as_mut()) {
            Some((prob, rng)) => {
                let p = *prob;
                rng.chance(p)
            }
            None => false,
        };
        if hit {
            self.stats.fault_duplicated += 1;
        }
        hit
    }

    fn fault_state(&mut self) -> &mut FaultState {
        self.fault
            .get_or_insert_with(|| Box::new(FaultState::new()))
    }

    /// Arrival time through a pure-delay link (un-shaped; the simulation
    /// loop applies [`Link::shape_arrival`] on top).
    pub fn propagate(&self, now: SimTime) -> SimTime {
        now + self.delay
    }

    /// Run a delivery through the impairment stage: jitter and bounded
    /// reordering may move the nominal arrival time. Identity when no
    /// shaper is configured.
    pub fn shape_arrival(&mut self, nominal: SimTime) -> SimTime {
        match &mut self.shaper {
            Some(shaper) => {
                let (arrive, reordered) = shaper.arrival(nominal);
                if reordered {
                    self.stats.reordered += 1;
                }
                arrive
            }
            None => nominal,
        }
    }

    /// Apply schedule step `index`; returns the time of the next step.
    pub fn apply_step(&mut self, index: usize) -> Option<SimTime> {
        let step = *self.schedule.step(index)?;
        if let Some(rate) = step.rate_bps {
            // Only meaningful for rated links; keep pure-delay links pure.
            if self.rate_bps.is_some() {
                self.rate_bps = Some(rate);
            }
        }
        if let Some(delay) = step.delay {
            self.delay = delay;
        }
        if let Some(loss) = step.loss {
            self.loss = loss.clamp(0.0, 1.0);
        }
        self.schedule.step(index + 1).map(|s| s.at)
    }

    /// True if the link is mid-serialization.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;

    fn data(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, 1500, SimTime::ZERO, false)
    }

    fn mk_link(cfg: LinkConfig) -> Link {
        Link::new(LinkId(0), cfg, SimRng::new(1))
    }

    #[test]
    fn idle_link_serializes_immediately() {
        // 1500 B at 12 Mbps = 1 ms serialization.
        let mut l = mk_link(LinkConfig::bottleneck(
            12e6,
            SimDuration::from_millis(10),
            64_000,
        ));
        let out = l.offer(data(0), SimTime::ZERO);
        match out {
            LinkOutcome::Accepted { start_tx: Some(t) } => {
                assert_eq!(t, SimTime::from_millis(1));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(l.is_busy());
        let res = l.tx_complete(SimTime::from_millis(1));
        let (pkt, arrive) = res.delivered.expect("no loss configured");
        assert_eq!(pkt.as_data().unwrap().seq, 0);
        assert_eq!(arrive, SimTime::from_millis(11), "1ms tx + 10ms prop");
        assert!(res.next_tx_done.is_none());
        assert!(!l.is_busy());
    }

    #[test]
    fn busy_link_queues_and_chains() {
        let mut l = mk_link(LinkConfig::bottleneck(
            12e6,
            SimDuration::from_millis(0),
            64_000,
        ));
        assert!(matches!(
            l.offer(data(0), SimTime::ZERO),
            LinkOutcome::Accepted { start_tx: Some(_) }
        ));
        assert!(matches!(
            l.offer(data(1), SimTime::ZERO),
            LinkOutcome::Accepted { start_tx: None }
        ));
        let res = l.tx_complete(SimTime::from_millis(1));
        assert!(res.delivered.is_some());
        assert_eq!(
            res.next_tx_done,
            Some(SimTime::from_millis(2)),
            "second packet tx-completes 1 ms later"
        );
    }

    #[test]
    fn full_queue_drops() {
        let mut l = mk_link(LinkConfig::bottleneck(
            12e6,
            SimDuration::ZERO,
            1500, // room for exactly one queued packet
        ));
        assert!(matches!(
            l.offer(data(0), SimTime::ZERO),
            LinkOutcome::Accepted { .. }
        )); // in flight
        assert!(matches!(
            l.offer(data(1), SimTime::ZERO),
            LinkOutcome::Accepted { .. }
        )); // queued
        assert_eq!(l.offer(data(2), SimTime::ZERO), LinkOutcome::Dropped);
    }

    #[test]
    fn pure_delay_link() {
        let mut l = mk_link(LinkConfig::delay_only(SimDuration::from_millis(25)));
        let out = l.offer(data(0), SimTime::from_millis(5));
        assert!(
            matches!(out, LinkOutcome::Accepted { start_tx: Some(t) } if t == SimTime::from_millis(5))
        );
        assert_eq!(
            l.propagate(SimTime::from_millis(5)),
            SimTime::from_millis(30)
        );
    }

    #[test]
    fn loss_rate_statistics() {
        let mut l =
            mk_link(LinkConfig::bottleneck(1e9, SimDuration::ZERO, 1 << 20).with_loss(0.25));
        let n = 100_000;
        let losses = (0..n).filter(|_| l.roll_loss()).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "measured loss {rate}");
    }

    #[test]
    fn schedule_application() {
        let mut sched = LinkSchedule::new();
        sched.push(LinkStep {
            at: SimTime::from_secs(5),
            rate_bps: Some(50e6),
            delay: Some(SimDuration::from_millis(20)),
            loss: Some(0.01),
        });
        sched.push(LinkStep {
            at: SimTime::from_secs(10),
            rate_bps: Some(10e6),
            delay: None,
            loss: None,
        });
        let mut l = mk_link(
            LinkConfig::bottleneck(100e6, SimDuration::from_millis(10), 64_000)
                .with_schedule(sched),
        );
        let next = l.apply_step(0);
        assert_eq!(l.rate_bps(), Some(50e6));
        assert_eq!(l.delay(), SimDuration::from_millis(20));
        assert!((l.loss() - 0.01).abs() < 1e-12);
        assert_eq!(next, Some(SimTime::from_secs(10)));
        let next = l.apply_step(1);
        assert_eq!(l.rate_bps(), Some(10e6));
        assert_eq!(l.delay(), SimDuration::from_millis(20), "unchanged");
        assert_eq!(next, None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn schedule_rejects_unordered_steps() {
        let mut sched = LinkSchedule::new();
        sched.push(LinkStep {
            at: SimTime::from_secs(5),
            rate_bps: None,
            delay: None,
            loss: None,
        });
        sched.push(LinkStep {
            at: SimTime::from_secs(1),
            rate_bps: None,
            delay: None,
            loss: None,
        });
    }
}
