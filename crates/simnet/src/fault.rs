//! Deterministic fault-injection plane: scheduled link/node failures,
//! corruption, and duplication.
//!
//! A [`FaultScript`] is a plain-text schedule (same spirit as
//! [`crate::trace::LinkTrace`]: one event per line, `#` comments,
//! line-attributed parse errors) compiled into time-ordered
//! [`FaultEvent`]s. A [`FaultPlane`] owns the compiled schedule plus an
//! optional routing snapshot of the [`Topology`] the simulation was built
//! from; the simulation fires one [`crate::event::Event::Fault`] per entry
//! and applies it through the plane.
//!
//! Script format — `time_s event target [args]`, targets are simulator
//! link / node indexes:
//!
//! ```text
//! # t     event      target  args
//! 0.5     down       3       0.25        # link 3 down for 0.25 s
//! 1.0     up         4                   # explicit repair
//! 1.5     node_down  2       1.0         # node 2 (and adjacent links) down for 1 s
//! 2.0     node_up    5
//! 3.0     corrupt    3       0.5  0.2    # kill 20% of link 3's packets for 0.5 s
//! 3.0     duplicate  4       0.5  0.1    # duplicate 10% of link 4's packets
//! ```
//!
//! Semantics:
//!
//! * **Link down** purges the queue and black-holes everything offered
//!   (every kill counted in [`crate::link::LinkStats::fault_dropped`] — no
//!   fault loss is ever silent). Downing a reverse-path link is the
//!   asymmetric ACK-path blackout: data flows, ACKs die.
//! * **Node down** takes every adjacent link down and — when a topology
//!   snapshot is attached — re-resolves every registered flow's ECMP path
//!   over the surviving graph with the exact hash routing uses, so flows
//!   shift to surviving equal-cost paths deterministically. Flows with no
//!   surviving path keep their (dead) path and stall against it; repair
//!   restores the original routing because ECMP is a pure function of
//!   `(key, graph)`.
//! * **Corrupt / duplicate** roll per-packet on dedicated
//!   [`crate::rng::SimRng::derive`] streams salted by the fault's schedule index, so
//!   activating a fault never perturbs any other random process and runs
//!   stay bit-identical per seed at any `--jobs`.
//!
//! In-flight packets are grandfathered onto a rewritten path at their
//! current hop index: the plane models routing-table updates, not
//! per-packet tunnels.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::ids::{FlowId, LinkId, NodeId};
use crate::rng::mix64;
use crate::time::SimTime;
use crate::topo::{NodeKind, Topology, ECMP_SALT};

/// A fault-script parse error, attributed to its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault script line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for FaultError {}

fn err(line: usize, reason: impl Into<String>) -> FaultError {
    FaultError {
        line,
        reason: reason.into(),
    }
}

/// One schedulable fault transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Take a link down (queue purged, offers black-holed).
    LinkDown {
        /// The link to fail.
        link: LinkId,
    },
    /// Bring a link back up.
    LinkUp {
        /// The link to repair.
        link: LinkId,
    },
    /// Fail a node: every adjacent link goes down and registered flows are
    /// re-routed over the surviving graph.
    NodeDown {
        /// The node to fail.
        node: NodeId,
    },
    /// Repair a node: adjacent links to live peers come back (unless still
    /// held down by an explicit link fault) and flows re-route.
    NodeUp {
        /// The node to repair.
        node: NodeId,
    },
    /// Start killing a fraction of the link's surviving packets at egress.
    CorruptOn {
        /// The link to corrupt.
        link: LinkId,
        /// Per-packet kill probability in `[0, 1]`.
        prob: f64,
    },
    /// Stop the corruption fault on a link.
    CorruptOff {
        /// The link to restore.
        link: LinkId,
    },
    /// Start delivering a fraction of the link's packets twice.
    DuplicateOn {
        /// The link to duplicate on.
        link: LinkId,
        /// Per-packet duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Stop the duplication fault on a link.
    DuplicateOff {
        /// The link to restore.
        link: LinkId,
    },
}

/// Default corruption/duplication probability when a script omits one.
pub const DEFAULT_FAULT_PROB: f64 = 0.5;

/// A parsed, compiled fault schedule: `(time, event)` pairs.
///
/// Build one with [`FaultScript::parse`] or programmatically with
/// [`FaultScript::push`]; [`FaultPlane::new`] stable-sorts entries by time,
/// so same-time events apply in insertion (source-line) order.
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    entries: Vec<(SimTime, FaultEvent)>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Append an event (programmatic construction; any time order).
    pub fn push(&mut self, at: SimTime, event: FaultEvent) {
        self.entries.push((at, event));
    }

    /// The raw entries, in construction order.
    pub fn entries(&self) -> &[(SimTime, FaultEvent)] {
        &self.entries
    }

    /// Number of compiled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the script has no events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse the plain-text format (see the module docs). Lines must be in
    /// non-decreasing start-time order; durations compile into a paired
    /// repair/stop event.
    pub fn parse(text: &str) -> Result<FaultScript, FaultError> {
        let mut script = FaultScript::new();
        let mut last_start = None::<f64>;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() < 3 {
                return Err(err(lineno, "expected `time_s event target [args]`"));
            }
            let num = |field: &str, what: &str| -> Result<f64, FaultError> {
                field
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or_else(|| err(lineno, format!("{what} is not a finite number: {field}")))
            };
            let t = num(cols[0], "time")?;
            if t < 0.0 {
                return Err(err(lineno, format!("time must be >= 0, got {t}")));
            }
            if let Some(prev) = last_start {
                if t < prev {
                    return Err(err(
                        lineno,
                        format!("start times must be non-decreasing ({t} after {prev})"),
                    ));
                }
            }
            last_start = Some(t);
            let target = cols[2]
                .parse::<u32>()
                .map_err(|_| err(lineno, format!("target is not an index: {}", cols[2])))?;
            let at = SimTime::from_secs_f64(t);
            let duration = |idx: usize| -> Result<Option<SimTime>, FaultError> {
                match cols.get(idx) {
                    None => Ok(None),
                    Some(d) => {
                        let d = num(d, "duration")?;
                        if d <= 0.0 {
                            return Err(err(lineno, format!("duration must be > 0, got {d}")));
                        }
                        Ok(Some(SimTime::from_secs_f64(t + d)))
                    }
                }
            };
            let prob = |idx: usize| -> Result<f64, FaultError> {
                match cols.get(idx) {
                    None => Ok(DEFAULT_FAULT_PROB),
                    Some(p) => {
                        let p = num(p, "probability")?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(err(
                                lineno,
                                format!("probability must be in [0, 1], got {p}"),
                            ));
                        }
                        Ok(p)
                    }
                }
            };
            match cols[1] {
                "down" => {
                    let link = LinkId(target);
                    script.push(at, FaultEvent::LinkDown { link });
                    if let Some(end) = duration(3)? {
                        script.push(end, FaultEvent::LinkUp { link });
                    }
                }
                "up" => {
                    if cols.len() > 3 {
                        return Err(err(lineno, "`up` takes no arguments after the target"));
                    }
                    script.push(
                        at,
                        FaultEvent::LinkUp {
                            link: LinkId(target),
                        },
                    );
                }
                "node_down" => {
                    let node = NodeId(target);
                    script.push(at, FaultEvent::NodeDown { node });
                    if let Some(end) = duration(3)? {
                        script.push(end, FaultEvent::NodeUp { node });
                    }
                }
                "node_up" => {
                    if cols.len() > 3 {
                        return Err(err(lineno, "`node_up` takes no arguments after the target"));
                    }
                    script.push(
                        at,
                        FaultEvent::NodeUp {
                            node: NodeId(target),
                        },
                    );
                }
                "corrupt" => {
                    let link = LinkId(target);
                    let end =
                        duration(3)?.ok_or_else(|| err(lineno, "`corrupt` requires a duration"))?;
                    script.push(
                        at,
                        FaultEvent::CorruptOn {
                            link,
                            prob: prob(4)?,
                        },
                    );
                    script.push(end, FaultEvent::CorruptOff { link });
                }
                "duplicate" => {
                    let link = LinkId(target);
                    let end = duration(3)?
                        .ok_or_else(|| err(lineno, "`duplicate` requires a duration"))?;
                    script.push(
                        at,
                        FaultEvent::DuplicateOn {
                            link,
                            prob: prob(4)?,
                        },
                    );
                    script.push(end, FaultEvent::DuplicateOff { link });
                }
                other => {
                    return Err(err(lineno, format!("unknown event `{other}`")));
                }
            }
        }
        Ok(script)
    }
}

/// A registered flow the plane can re-route after node failures.
#[derive(Clone, Copy, Debug)]
struct FlowReg {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    key: u64,
}

/// Routing snapshot of the topology the simulation was built from.
struct FaultGraph {
    kinds: Vec<NodeKind>,
    /// `(src, dst, realizing link)` per edge, in edge-id order.
    edges: Vec<(NodeId, NodeId, LinkId)>,
    /// Out-edge indexes per node, insertion order.
    out: Vec<Vec<usize>>,
    /// In-edge indexes per node (for the reverse BFS).
    inn: Vec<Vec<usize>>,
    alive: Vec<bool>,
    flows: Vec<FlowReg>,
}

/// The net effect of applying one fault entry (consumed by the simulation).
#[derive(Debug, Default)]
pub(crate) struct FaultChange {
    /// Links to take down.
    pub(crate) link_down: Vec<LinkId>,
    /// Links to bring back up.
    pub(crate) link_up: Vec<LinkId>,
    /// Corruption faults to install (`Some(prob)`) or clear (`None`).
    pub(crate) corrupt: Vec<(LinkId, Option<f64>)>,
    /// Duplication faults to install or clear.
    pub(crate) duplicate: Vec<(LinkId, Option<f64>)>,
    /// True when registered flows must be re-routed.
    pub(crate) reroute: bool,
}

/// The fault plane: a compiled schedule plus the state needed to apply it
/// (explicit link faults, node liveness, and the routing snapshot used to
/// re-resolve ECMP after node failures).
///
/// Attach to a simulation via
/// [`crate::sim::NetworkBuilder::set_fault_plane`]. Without
/// [`FaultPlane::attach_topology`], node events are ignored (there is no
/// graph to reason about) and link events still work.
pub struct FaultPlane {
    entries: Vec<(SimTime, FaultEvent)>,
    explicit_down: BTreeSet<LinkId>,
    graph: Option<FaultGraph>,
}

impl FaultPlane {
    /// Build a plane from a script (entries stable-sorted by time).
    pub fn new(script: FaultScript) -> Self {
        let mut entries = script.entries;
        entries.sort_by_key(|&(at, _)| at);
        FaultPlane {
            entries,
            explicit_down: BTreeSet::new(),
            graph: None,
        }
    }

    /// Snapshot `topo`'s graph (node kinds, edges, realizing links) so node
    /// failures can re-route flows. Every edge must already be installed
    /// into the builder this plane will be attached to.
    ///
    /// # Panics
    /// If an edge has not been installed yet.
    pub fn attach_topology(&mut self, topo: &Topology) {
        let n = topo.num_nodes();
        let mut edges = Vec::with_capacity(topo.num_edges());
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..topo.num_edges() {
            let edge = crate::ids::EdgeId(i as u32);
            let (src, dst) = topo.edge_endpoints(edge);
            edges.push((src, dst, topo.link_of(edge)));
            out[src.index()].push(i);
            inn[dst.index()].push(i);
        }
        self.graph = Some(FaultGraph {
            kinds: (0..n).map(|i| topo.kind(NodeId(i as u32))).collect(),
            edges,
            out,
            inn,
            alive: vec![true; n],
            flows: Vec::new(),
        });
    }

    /// Register a flow for post-failure re-routing: the simulator flow id,
    /// its endpoint nodes, and the ECMP key its paths were resolved with.
    ///
    /// # Panics
    /// If no topology snapshot is attached.
    pub fn register_flow(&mut self, flow: FlowId, src: NodeId, dst: NodeId, key: u64) {
        let graph = self
            .graph
            .as_mut()
            .expect("attach_topology before register_flow");
        graph.flows.push(FlowReg {
            flow,
            src,
            dst,
            key,
        });
    }

    /// The compiled schedule, time-sorted.
    pub(crate) fn entries(&self) -> &[(SimTime, FaultEvent)] {
        &self.entries
    }

    /// Compute the net effect of schedule entry `index`.
    pub(crate) fn transition(&mut self, index: usize) -> FaultChange {
        let mut change = FaultChange::default();
        let Some(&(_, event)) = self.entries.get(index) else {
            return change;
        };
        match event {
            FaultEvent::LinkDown { link } => {
                self.explicit_down.insert(link);
                change.link_down.push(link);
            }
            FaultEvent::LinkUp { link } => {
                self.explicit_down.remove(&link);
                if self.endpoints_alive(link) {
                    change.link_up.push(link);
                }
            }
            FaultEvent::NodeDown { node } => {
                if let Some(g) = self.graph.as_mut() {
                    if node.index() < g.alive.len() && g.alive[node.index()] {
                        g.alive[node.index()] = false;
                        for &(src, dst, link) in &g.edges {
                            if src == node || dst == node {
                                change.link_down.push(link);
                            }
                        }
                        change.reroute = true;
                    }
                }
            }
            FaultEvent::NodeUp { node } => {
                if let Some(g) = self.graph.as_mut() {
                    if node.index() < g.alive.len() && !g.alive[node.index()] {
                        g.alive[node.index()] = true;
                        for &(src, dst, link) in &g.edges {
                            let other = if src == node {
                                dst
                            } else if dst == node {
                                src
                            } else {
                                continue;
                            };
                            if g.alive[other.index()] && !self.explicit_down.contains(&link) {
                                change.link_up.push(link);
                            }
                        }
                        change.reroute = true;
                    }
                }
            }
            FaultEvent::CorruptOn { link, prob } => change.corrupt.push((link, Some(prob))),
            FaultEvent::CorruptOff { link } => change.corrupt.push((link, None)),
            FaultEvent::DuplicateOn { link, prob } => change.duplicate.push((link, Some(prob))),
            FaultEvent::DuplicateOff { link } => change.duplicate.push((link, None)),
        }
        change
    }

    /// Re-resolve every registered flow's forward/reverse paths over the
    /// surviving graph. Flows with no surviving path (or a dead endpoint)
    /// are omitted — they keep their existing paths and stall against the
    /// downed links.
    pub(crate) fn reroute(&self) -> Vec<(FlowId, Vec<LinkId>, Vec<LinkId>)> {
        let Some(g) = self.graph.as_ref() else {
            return Vec::new();
        };
        let mut updates = Vec::new();
        for reg in &g.flows {
            let (Some(fwd), Some(rev)) = (
                surviving_path(g, reg.src, reg.dst, reg.key),
                surviving_path(g, reg.dst, reg.src, reg.key),
            ) else {
                continue;
            };
            updates.push((reg.flow, fwd, rev));
        }
        updates
    }

    /// True when both endpoints of `link`'s edge are alive (or no graph is
    /// attached, in which case node liveness cannot hold it down).
    fn endpoints_alive(&self, link: LinkId) -> bool {
        let Some(g) = self.graph.as_ref() else {
            return true;
        };
        for &(src, dst, l) in &g.edges {
            if l == link {
                return g.alive[src.index()] && g.alive[dst.index()];
            }
        }
        true
    }
}

/// Shortest ECMP path over the alive subgraph, with the exact hop hash
/// [`Topology::path_edges`] uses — when every node is alive this returns
/// the identical path, which is what makes repair restore original routing.
fn surviving_path(g: &FaultGraph, src: NodeId, dst: NodeId, key: u64) -> Option<Vec<LinkId>> {
    let n = g.kinds.len();
    if src.index() >= n || dst.index() >= n {
        return None;
    }
    if !g.alive[src.index()] || !g.alive[dst.index()] {
        return None;
    }
    // Reverse BFS from the destination over alive nodes; hosts never
    // transit (may source or sink only).
    let mut dist = vec![u32::MAX; n];
    dist[dst.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(dst);
    while let Some(u) = queue.pop_front() {
        if g.kinds[u.index()] == NodeKind::Host && u != dst {
            continue;
        }
        let du = dist[u.index()];
        for &ei in &g.inn[u.index()] {
            let v = g.edges[ei].0;
            if g.alive[v.index()] && dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    if dist[src.index()] == u32::MAX {
        return None;
    }
    let mut path = Vec::with_capacity(dist[src.index()] as usize);
    let mut cur = src;
    while cur != dst {
        let du = dist[cur.index()];
        let mut choices: Vec<usize> = g.out[cur.index()]
            .iter()
            .copied()
            .filter(|&ei| {
                let w = g.edges[ei].1;
                g.alive[w.index()]
                    && (w == dst || g.kinds[w.index()] == NodeKind::Switch)
                    && dist[w.index()] == du - 1
            })
            .collect();
        if choices.is_empty() {
            return None;
        }
        choices.sort_by_key(|&ei| (g.edges[ei].1, ei));
        let picked = choices
            [(mix64(key ^ ECMP_SALT ^ ((cur.0 as u64) << 32)) % choices.len() as u64) as usize];
        path.push(g.edges[picked].2);
        cur = g.edges[picked].1;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::{NetworkBuilder, SimConfig};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn parses_all_events_and_compiles_durations() {
        let s = FaultScript::parse(
            "# chaos\n\
             0.5  down      3  0.25\n\
             1.0  up        4\n\
             1.5  node_down 2  1.0\n\
             2.0  node_up   5\n\
             3.0  corrupt   3  0.5 0.2\n\
             3.0  duplicate 4  0.5\n",
        )
        .expect("valid script");
        // 6 lines, 4 with paired end events... down+up, node_down+node_up,
        // corrupt on/off, duplicate on/off.
        assert_eq!(s.len(), 10);
        let plane = FaultPlane::new(s);
        let times: Vec<f64> = plane
            .entries()
            .iter()
            .map(|(at, _)| at.as_secs_f64())
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "sorted by time: {times:?}"
        );
        assert_eq!(
            plane.entries()[0].1,
            FaultEvent::LinkDown { link: LinkId(3) }
        );
        // The compiled repair for line 1 lands at 0.75 s.
        assert!(plane
            .entries()
            .iter()
            .any(|&(at, e)| e == FaultEvent::LinkUp { link: LinkId(3) }
                && (at.as_secs_f64() - 0.75).abs() < 1e-9));
        assert!(plane.entries().iter().any(|&(_, e)| matches!(
            e,
            FaultEvent::CorruptOn { link: LinkId(3), prob } if (prob - 0.2).abs() < 1e-12
        )));
        assert!(plane.entries().iter().any(|&(_, e)| matches!(
            e,
            FaultEvent::DuplicateOn { link: LinkId(4), prob }
                if (prob - DEFAULT_FAULT_PROB).abs() < 1e-12
        )));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("0.5 down", "expected"),
            ("0.5 explode 3", "unknown event"),
            ("nan down 3", "not a finite number"),
            ("1.0 down 3\n0.5 down 4", "non-decreasing"),
            ("0.5 corrupt 3", "requires a duration"),
            ("0.5 corrupt 3 1.0 1.5", "probability must be in"),
            ("0.5 down 3 -1", "duration must be > 0"),
            ("0.5 down x", "not an index"),
            ("0.5 up 3 9", "takes no arguments"),
        ];
        for (text, want) in cases {
            let e = FaultScript::parse(text).expect_err(text);
            assert!(
                e.to_string().contains(want),
                "{text:?} => {e} (wanted {want:?})"
            );
            assert!(e.line >= 1);
        }
        // The error Display is line-attributed.
        let e = FaultScript::parse("0.0 down 1\n\n# c\nbogus line here").expect_err("bad");
        assert_eq!(e.line, 4);
        assert!(e.to_string().starts_with("fault script line 4:"));
    }

    /// Two hosts joined via two equal-cost switches; killing the switch the
    /// flow's ECMP hash picked must re-route it onto the survivor, and
    /// repair must restore the original path.
    #[test]
    fn node_failure_reroutes_onto_survivor_and_repair_restores() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        let s1 = topo.add_switch();
        let s2 = topo.add_switch();
        for &s in &[s1, s2] {
            topo.add_duplex(
                a,
                s,
                LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000),
                LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000),
            );
            topo.add_duplex(
                s,
                b,
                LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000),
                LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000),
            );
        }
        let mut net = NetworkBuilder::new(SimConfig::default());
        topo.install(&mut net);
        let key = 7u64;
        let original = topo.flow_path(a, b, key);

        let mut script = FaultScript::new();
        script.push(SimTime::from_secs(1), FaultEvent::NodeDown { node: s1 });
        script.push(SimTime::from_secs(2), FaultEvent::NodeUp { node: s1 });
        let mut plane = FaultPlane::new(script);
        plane.attach_topology(&topo);
        plane.register_flow(FlowId(0), a, b, key);

        // Before any fault the re-resolver agrees with routing exactly.
        let routed = plane.reroute();
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].1, original.fwd);
        assert_eq!(routed[0].2, original.rev);

        // Kill the switch the original path used (find it via the graph).
        let via_s1 = original.fwd.len() == 2;
        let _ = via_s1;
        let change = plane.transition(0);
        assert!(change.reroute);
        assert_eq!(change.link_down.len(), 4, "all four s1-adjacent links");
        let rerouted = plane.reroute();
        assert_eq!(rerouted.len(), 1);
        for link in rerouted[0].1.iter().chain(rerouted[0].2.iter()) {
            assert!(
                !change.link_down.contains(link),
                "surviving path avoids dead links"
            );
        }

        // Repair: the original ECMP path comes back verbatim.
        let change = plane.transition(1);
        assert!(change.reroute);
        assert_eq!(change.link_up.len(), 4);
        let restored = plane.reroute();
        assert_eq!(restored[0].1, original.fwd);
        assert_eq!(restored[0].2, original.rev);
    }

    #[test]
    fn explicit_link_fault_survives_node_repair() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let (e0, _) = topo.add_duplex(
            a,
            s,
            LinkConfig::delay_only(SimDuration::from_micros(20)),
            LinkConfig::delay_only(SimDuration::from_micros(20)),
        );
        topo.add_duplex(
            s,
            b,
            LinkConfig::delay_only(SimDuration::from_micros(20)),
            LinkConfig::delay_only(SimDuration::from_micros(20)),
        );
        let mut net = NetworkBuilder::new(SimConfig::default());
        topo.install(&mut net);
        let l0 = topo.link_of(e0);

        let mut script = FaultScript::new();
        script.push(SimTime::from_secs(1), FaultEvent::LinkDown { link: l0 });
        script.push(SimTime::from_secs(2), FaultEvent::NodeDown { node: s });
        script.push(SimTime::from_secs(3), FaultEvent::NodeUp { node: s });
        script.push(SimTime::from_secs(4), FaultEvent::LinkUp { link: l0 });
        let mut plane = FaultPlane::new(script);
        plane.attach_topology(&topo);

        assert_eq!(plane.transition(0).link_down, vec![l0]);
        assert!(
            plane.transition(1).link_down.contains(&l0),
            "node takes it too"
        );
        let up_after_node_repair = plane.transition(2).link_up;
        assert!(
            !up_after_node_repair.contains(&l0),
            "explicitly failed link stays down across node repair"
        );
        assert_eq!(plane.transition(3).link_up, vec![l0]);
    }

    #[test]
    fn pure_delay_loss_is_counted() {
        use crate::endpoint::{Endpoint, EndpointCtx};
        use crate::packet::Packet;
        use crate::sim::FlowSpec;
        // Regression: random loss on a pure-delay shim used to vanish
        // without touching `LinkStats.egress_lost`.
        struct Blaster(u64);
        impl Endpoint for Blaster {
            fn start(&mut self, ctx: &mut EndpointCtx) {
                ctx.set_timer(ctx.now, 0);
            }
            fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut EndpointCtx) {
                if self.0 < 1000 {
                    ctx.send_data(self.0, 1500, false);
                    self.0 += 1;
                    ctx.set_timer(ctx.now + SimDuration::from_millis(1), 0);
                }
            }
        }
        struct Sink;
        impl Endpoint for Sink {
            fn start(&mut self, _ctx: &mut EndpointCtx) {}
            fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
            fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
        }
        let mut nb = NetworkBuilder::new(SimConfig::default());
        let fwd = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(5)).with_loss(0.5));
        let rev = nb.add_link(LinkConfig::delay_only(SimDuration::from_millis(5)));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(Blaster(0)),
            receiver: Box::new(Sink),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = nb.build().run_until(SimTime::from_secs(2));
        let st = &report.flows[flow.index()];
        let ls = report.links[fwd.index()].stats;
        assert_eq!(st.sent_packets, 1000);
        assert_eq!(
            ls.egress_lost + st.delivered_packets,
            1000,
            "every shim loss is counted"
        );
        assert!(ls.egress_lost > 300, "~50% loss: {}", ls.egress_lost);
    }

    #[test]
    fn node_events_without_graph_are_ignored() {
        let mut script = FaultScript::new();
        script.push(
            SimTime::from_secs(1),
            FaultEvent::NodeDown { node: NodeId(0) },
        );
        let mut plane = FaultPlane::new(script);
        let change = plane.transition(0);
        assert!(change.link_down.is_empty());
        assert!(!change.reroute);
        assert!(plane.reroute().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::endpoint::{Endpoint, EndpointCtx};
    use crate::ids::NodeId;
    use crate::link::LinkConfig;
    use crate::packet::{AckInfo, Packet};
    use crate::sim::{FlowSpec, NetworkBuilder, SimConfig};
    use crate::time::{SimDuration, SimTime};
    use crate::topo::{ecmp_key, Topology};
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A random connected switch graph: a spanning tree over `n` nodes plus
    /// random chords (same construction as the topo proptests).
    fn random_connected(n: usize, picks: &[u64]) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for v in 1..n as u32 {
            let u = picks[(v as usize - 1) % picks.len()] % v as u64;
            pairs.push((u as u32, v));
        }
        for (i, &p) in picks.iter().enumerate() {
            let a = (p % n as u64) as u32;
            let b = ((p >> 17).wrapping_add(i as u64) % n as u64) as u32;
            if a != b {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Paced sender that counts the ACKs it hears back.
    struct CountingSender {
        next_seq: u64,
        count: u64,
        spacing: SimDuration,
        acks_heard: Arc<AtomicU64>,
    }

    impl Endpoint for CountingSender {
        fn start(&mut self, ctx: &mut EndpointCtx) {
            ctx.set_timer(ctx.now, 0);
        }
        fn on_packet(&mut self, pkt: &Packet, _ctx: &mut EndpointCtx) {
            assert!(pkt.as_ack().is_some(), "sender side only hears ACKs");
            self.acks_heard.fetch_add(1, Ordering::Relaxed);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut EndpointCtx) {
            if self.next_seq < self.count {
                ctx.send_data(self.next_seq, 1500, false);
                self.next_seq += 1;
                ctx.set_timer(ctx.now + self.spacing, 0);
            }
        }
    }

    /// Receiver that ACKs every data packet and counts the ACKs it sends.
    struct CountingReceiver {
        received: u64,
        acks_sent: Arc<AtomicU64>,
    }

    impl Endpoint for CountingReceiver {
        fn start(&mut self, _ctx: &mut EndpointCtx) {}
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
            let d = pkt.as_data().expect("receiver side only hears data");
            self.received += 1;
            ctx.record_goodput(pkt.bytes as u64);
            self.acks_sent.fetch_add(1, Ordering::Relaxed);
            ctx.send_ack(AckInfo {
                acked_seq: d.seq,
                cum_ack: self.received,
                echo_sent_at: d.sent_at,
                recv_at: ctx.now,
                recv_bytes: self.received * 1500,
                probe_train: d.probe_train,
                of_retx: d.retx,
            });
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
    }

    /// Decode a raw `(kind, target, extra)` triple into a fault event. The
    /// modulus intentionally ranges past the real id space so out-of-range
    /// targets exercise the plane's ignore-don't-panic guards.
    fn decode_event(kind: u64, target: u64, extra: u64, links: u64, nodes: u64) -> FaultEvent {
        let link = crate::ids::LinkId((target % (2 * links)) as u32);
        let node = NodeId((target % (2 * nodes)) as u32);
        let prob = (extra % 101) as f64 / 100.0;
        match kind % 8 {
            0 => FaultEvent::LinkDown { link },
            1 => FaultEvent::LinkUp { link },
            2 => FaultEvent::NodeDown { node },
            3 => FaultEvent::NodeUp { node },
            4 => FaultEvent::CorruptOn { link, prob },
            5 => FaultEvent::CorruptOff { link },
            6 => FaultEvent::DuplicateOn { link, prob },
            _ => FaultEvent::DuplicateOff { link },
        }
    }

    /// Everything a chaos run can observe — compared across reruns for
    /// bit-identity and checked for packet conservation.
    #[derive(Clone, Debug, PartialEq)]
    struct Outcome {
        events_processed: u64,
        data_sent: u64,
        data_delivered: u64,
        acks_sent: u64,
        acks_heard: u64,
        duplicated: u64,
        removed: u64,
    }

    /// Build a random connected topology, run a 60-packet flow through a
    /// random fault script, and tally every packet the network touched.
    fn run_chaos(n: usize, picks: &[u64], events: &[(u64, u64, u64)], seed: u64) -> Outcome {
        let mut topo = Topology::new();
        for _ in 0..n {
            topo.add_switch();
        }
        let cfg = || LinkConfig::bottleneck(50e6, SimDuration::from_micros(100), 30_000);
        for &(a, b) in &random_connected(n, picks) {
            topo.add_duplex(NodeId(a), NodeId(b), cfg(), cfg());
        }
        let src = topo.add_host();
        let dst = topo.add_host();
        topo.add_duplex(src, NodeId((picks[0] % n as u64) as u32), cfg(), cfg());
        topo.add_duplex(
            dst,
            NodeId((picks[picks.len() - 1] % n as u64) as u32),
            cfg(),
            cfg(),
        );
        let mut nb = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed,
        });
        topo.install(&mut nb);
        let key = ecmp_key(seed, 0);
        let path = topo.flow_path(src, dst, key);
        let acks_heard = Arc::new(AtomicU64::new(0));
        let acks_sent = Arc::new(AtomicU64::new(0));
        let flow = nb.add_flow(FlowSpec {
            sender: Box::new(CountingSender {
                next_seq: 0,
                count: 60,
                spacing: SimDuration::from_millis(10),
                acks_heard: Arc::clone(&acks_heard),
            }),
            receiver: Box::new(CountingReceiver {
                received: 0,
                acks_sent: Arc::clone(&acks_sent),
            }),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let links = topo.num_edges() as u64;
        let nodes = topo.num_nodes() as u64;
        let mut script = FaultScript::new();
        for &(t, kind, rest) in events {
            let at = SimTime::from_millis(t % 1000);
            script.push(at, decode_event(kind, rest, rest >> 32, links, nodes));
        }
        let mut plane = FaultPlane::new(script);
        plane.attach_topology(&topo);
        plane.register_flow(flow, src, dst, key);
        nb.set_fault_plane(plane);
        let report = nb.build().run_until(SimTime::from_secs(4));
        let st = &report.flows[flow.index()];
        let mut duplicated = 0;
        let mut removed = 0;
        for l in &report.links {
            duplicated += l.stats.fault_duplicated;
            removed += l.stats.egress_lost
                + l.stats.fault_dropped
                + l.stats.fault_corrupted
                + l.stats.policed
                + l.queue.dropped_tail
                + l.queue.dropped_aqm;
        }
        Outcome {
            events_processed: report.events_processed,
            data_sent: st.sent_packets,
            data_delivered: st.delivered_packets,
            acks_sent: acks_sent.load(Ordering::Relaxed),
            acks_heard: acks_heard.load(Ordering::Relaxed),
            duplicated,
            removed,
        }
    }

    proptest! {
        /// Any fault script on any connected topology: routing never
        /// panics, and every packet the endpoints injected is either
        /// delivered or shows up in a loss counter — nothing vanishes
        /// silently. The run is also bit-identical when repeated.
        #[test]
        fn chaos_conserves_packets_and_is_deterministic(
            n in 2usize..10,
            picks in proptest::collection::vec(0u64..u64::MAX, 1..12),
            events in proptest::collection::vec(
                (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..12),
            seed in 0u64..u64::MAX,
        ) {
            let out = run_chaos(n, &picks, &events, seed);
            let injected = out.data_sent + out.acks_sent + out.duplicated;
            let accounted = out.data_delivered + out.acks_heard + out.removed;
            prop_assert_eq!(
                injected, accounted,
                "conservation: {:?}", out
            );
            let again = run_chaos(n, &picks, &events, seed);
            prop_assert_eq!(out, again, "chaos reruns are bit-identical");
        }
    }
}
