//! Trace-driven time-varying links: a plain-text trace format, bundled
//! synthetic profiles, and conversion to a [`LinkSchedule`].
//!
//! A *link trace* is a piecewise-constant description of a bottleneck over
//! time — capacity, and optionally one-way delay and random loss. Traces
//! are the reusable face of the simulator's time-varying machinery: a
//! [`LinkSchedule`] is an anonymous list of parameter steps wired into one
//! link; a [`LinkTrace`] is a named, loadable, loopable artifact that any
//! scenario can replay ([`LinkTrace::to_schedule`] does the expansion).
//!
//! ## Trace file format
//!
//! Plain text, one parameter sample per line (no external dependencies —
//! the format is parsed by [`LinkTrace::parse`]):
//!
//! ```text
//! # pcc-simnet link trace v1
//! # columns: time_s rate_mbps [delay_ms [loss]]
//! loop 60
//! 0.0   24.0  35  0.002
//! 0.5   18.2  40  0.004
//! 1.0   3.1   60  0.010
//! ```
//!
//! * `#` starts a comment (whole-line or trailing); blank lines are
//!   ignored.
//! * An optional `loop <period_s>` directive makes the trace repeat with
//!   that period; the period must be strictly greater than the last
//!   sample's time. Without it, the final sample holds forever.
//! * Each sample line has 2–4 columns: time in seconds (strictly
//!   increasing, first sample at `0`), capacity in Mbit/s (> 0), optional
//!   one-way delay in milliseconds, optional loss probability in `[0, 1)`.
//!   Omitted columns keep the link's current value.
//!
//! ## Bundled profiles
//!
//! Three synthetic profiles ship in-repo (under `crates/simnet/traces/`,
//! compiled in via `include_str!`, so nothing is fetched at run time):
//! `lte` (cellular-style random-walk capacity with fades), `wifi`
//! (MCS-step plateaus with contention dips), and `satellite`
//! (LEO-style beam dwells with handoff degradations). Load them with
//! [`LinkTrace::builtin`]; enumerate them with [`builtin_names`].

use crate::link::{LinkSchedule, LinkStep};
use crate::time::{SimDuration, SimTime};

/// One piecewise-constant sample of a [`LinkTrace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Offset from the start of the trace (or of the current loop cycle).
    pub at: SimDuration,
    /// Capacity in bits/sec from this point on.
    pub rate_bps: f64,
    /// One-way propagation delay from this point on (`None` keeps the
    /// link's current delay).
    pub delay: Option<SimDuration>,
    /// Random loss probability from this point on (`None` keeps the
    /// link's current loss).
    pub loss: Option<f64>,
}

/// A named, loadable, loopable piecewise-constant link description.
#[derive(Clone, Debug)]
pub struct LinkTrace {
    name: String,
    points: Vec<TracePoint>,
    period: Option<SimDuration>,
}

/// A trace file that failed to parse: the offending line and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, reason: impl Into<String>) -> TraceError {
    TraceError {
        line,
        reason: reason.into(),
    }
}

const BUILTIN: &[(&str, &str)] = &[
    ("lte", include_str!("../traces/lte.trace")),
    ("wifi", include_str!("../traces/wifi.trace")),
    ("satellite", include_str!("../traces/satellite.trace")),
];

/// Names of the bundled trace profiles, in presentation order.
pub fn builtin_names() -> Vec<&'static str> {
    BUILTIN.iter().map(|(n, _)| *n).collect()
}

impl LinkTrace {
    /// Build a trace from parts (scenario generators use this; files go
    /// through [`LinkTrace::parse`]). Points must start at offset zero
    /// and be strictly time-ordered; a `period`, if given, must exceed
    /// the last point's offset.
    pub fn from_points(
        name: &str,
        points: Vec<TracePoint>,
        period: Option<SimDuration>,
    ) -> Result<LinkTrace, TraceError> {
        if points.is_empty() {
            return Err(err(0, "trace has no samples"));
        }
        if points[0].at != SimDuration::ZERO {
            return Err(err(0, "first sample must be at time 0"));
        }
        for w in points.windows(2) {
            if w[1].at <= w[0].at {
                return Err(err(0, "sample times must be strictly increasing"));
            }
        }
        for p in &points {
            if !(p.rate_bps.is_finite() && p.rate_bps > 0.0) {
                return Err(err(0, "rate must be a positive finite number"));
            }
            if let Some(l) = p.loss {
                if !(0.0..1.0).contains(&l) {
                    return Err(err(0, "loss must be in [0, 1)"));
                }
            }
        }
        if let Some(period) = period {
            if period <= points[points.len() - 1].at {
                return Err(err(0, "loop period must exceed the last sample time"));
            }
        }
        Ok(LinkTrace {
            name: name.to_string(),
            points,
            period,
        })
    }

    /// Parse the plain-text trace format (see the module docs). Returns
    /// the first offending line on failure, never panics.
    pub fn parse(name: &str, text: &str) -> Result<LinkTrace, TraceError> {
        let mut points = Vec::new();
        let mut period = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("loop") {
                if period.is_some() {
                    return Err(err(lineno, "duplicate `loop` directive"));
                }
                let secs: f64 = rest
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, format!("bad loop period `{}`", rest.trim())))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(err(lineno, "loop period must be positive"));
                }
                period = Some(SimDuration::from_secs_f64(secs));
                continue;
            }
            let cols: Vec<&str> = line.split_whitespace().collect();
            if !(2..=4).contains(&cols.len()) {
                return Err(err(
                    lineno,
                    format!(
                        "expected 2-4 columns (time_s rate_mbps [delay_ms [loss]]), got {}",
                        cols.len()
                    ),
                ));
            }
            let num = |col: usize, what: &str| -> Result<f64, TraceError> {
                cols[col]
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or_else(|| err(lineno, format!("bad {what} `{}`", cols[col])))
            };
            let t = num(0, "time")?;
            if t < 0.0 {
                return Err(err(lineno, "time must be non-negative"));
            }
            let rate_mbps = num(1, "rate")?;
            if rate_mbps <= 0.0 {
                return Err(err(
                    lineno,
                    "rate must be positive (model outages via loss)",
                ));
            }
            let delay = if cols.len() >= 3 {
                let ms = num(2, "delay")?;
                if ms < 0.0 {
                    return Err(err(lineno, "delay must be non-negative"));
                }
                Some(SimDuration::from_secs_f64(ms / 1e3))
            } else {
                None
            };
            let loss = if cols.len() >= 4 {
                let l = num(3, "loss")?;
                if !(0.0..1.0).contains(&l) {
                    return Err(err(lineno, "loss must be in [0, 1)"));
                }
                Some(l)
            } else {
                None
            };
            let at = SimDuration::from_secs_f64(t);
            if let Some(last) = points.last() {
                let last: &TracePoint = last;
                if at <= last.at {
                    return Err(err(lineno, "sample times must be strictly increasing"));
                }
            } else if at != SimDuration::ZERO {
                return Err(err(lineno, "first sample must be at time 0"));
            }
            points.push(TracePoint {
                at,
                rate_bps: rate_mbps * 1e6,
                delay,
                loss,
            });
        }
        LinkTrace::from_points(name, points, period).map_err(|mut e| {
            // from_points re-checks structure it cannot attribute to a line.
            e.line = text.lines().count();
            e
        })
    }

    /// Load one of the bundled profiles (`lte`, `wifi`, `satellite`).
    /// `None` for unknown names — see [`builtin_names`].
    pub fn builtin(name: &str) -> Option<LinkTrace> {
        let (_, text) = BUILTIN.iter().find(|(n, _)| *n == name)?;
        Some(LinkTrace::parse(name, text).expect("bundled traces parse"))
    }

    /// The trace's name (file stem or builtin id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace's samples, time-ordered from offset zero.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The loop period, if the trace repeats.
    pub fn period(&self) -> Option<SimDuration> {
        self.period
    }

    /// The initial sample (defines the link's conditions at `t = 0`).
    pub fn initial(&self) -> TracePoint {
        self.points[0]
    }

    /// The sample in effect at offset `t` from the trace start,
    /// accounting for looping (or holding the last sample, if not
    /// looped).
    pub fn at(&self, t: SimDuration) -> TracePoint {
        let off = match self.period {
            Some(p) if p > SimDuration::ZERO => {
                SimDuration::from_nanos(t.as_nanos() % p.as_nanos())
            }
            _ => t,
        };
        *self
            .points
            .iter()
            .rev()
            .find(|p| p.at <= off)
            .expect("first sample is at offset 0")
    }

    /// Time-average of the deliverable capacity `rate · (1 − loss)` over
    /// `[0, horizon]`, in Mbit/s — the "optimal line" a protocol on this
    /// trace is measured against.
    pub fn avg_capacity_mbps(&self, horizon: SimDuration) -> f64 {
        let h = horizon.as_nanos();
        if h == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut t = 0u64;
        let mut loss = self.points[0].loss.unwrap_or(0.0);
        // Walk the expanded step sequence; between steps the capacity is
        // constant. `self.at` gives the sample, but loss columns may be
        // omitted (hold semantics), so carry the running loss explicitly.
        let mut cur = self.points[0].rate_bps * (1.0 - loss);
        for (at, p) in self.steps_until(SimTime::ZERO + horizon) {
            let upto = at.as_nanos().min(h);
            acc += cur * (upto - t) as f64;
            t = upto;
            if let Some(l) = p.loss {
                loss = l;
            }
            cur = p.rate_bps * (1.0 - loss);
        }
        acc += cur * (h - t) as f64;
        acc / h as f64 / 1e6
    }

    /// Iterate the trace's parameter changes as absolute times in
    /// `(0, horizon]`, looping as configured. The initial sample is not
    /// emitted — it describes the link's starting conditions, which the
    /// caller applies at construction.
    fn steps_until(&self, horizon: SimTime) -> impl Iterator<Item = (SimTime, TracePoint)> + '_ {
        let period = self.period;
        let mut cycle_base = SimTime::ZERO;
        let mut idx = 1usize; // skip the initial sample in the first cycle
        std::iter::from_fn(move || loop {
            if idx >= self.points.len() {
                let p = period?;
                cycle_base += p;
                idx = 0; // loop cycles re-apply the t=0 sample
            }
            let p = self.points[idx];
            let at = cycle_base + p.at;
            if at > horizon {
                return None;
            }
            idx += 1;
            if at == SimTime::ZERO {
                continue; // degenerate: zero horizon
            }
            return Some((at, p));
        })
    }

    /// Expand into a [`LinkSchedule`] covering `(0, horizon]`, looping as
    /// configured. Initial conditions come from [`LinkTrace::initial`];
    /// apply them to the link at construction.
    pub fn to_schedule(&self, horizon: SimTime) -> LinkSchedule {
        let mut schedule = LinkSchedule::new();
        for (at, p) in self.steps_until(horizon) {
            schedule.push(LinkStep {
                at,
                rate_bps: Some(p.rate_bps),
                delay: p.delay,
                loss: p.loss,
            });
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "\
# demo trace
0.0  10.0
1.0  20.0  15
2.0  5.0   30  0.01
";

    #[test]
    fn parses_columns_and_holds_omitted_values() {
        let tr = LinkTrace::parse("demo", SIMPLE).expect("parses");
        assert_eq!(tr.name(), "demo");
        assert_eq!(tr.points().len(), 3);
        let p0 = tr.initial();
        assert_eq!(p0.rate_bps, 10e6);
        assert_eq!(p0.delay, None);
        assert_eq!(p0.loss, None);
        let p2 = tr.points()[2];
        assert_eq!(p2.delay, Some(SimDuration::from_millis(30)));
        assert_eq!(p2.loss, Some(0.01));
        assert_eq!(tr.period(), None);
        // Hold-last past the end.
        assert_eq!(tr.at(SimDuration::from_secs(99)).rate_bps, 5e6);
    }

    #[test]
    fn loop_directive_repeats_the_trace() {
        let tr = LinkTrace::parse("looped", &format!("loop 3\n{SIMPLE}")).expect("parses");
        assert_eq!(tr.period(), Some(SimDuration::from_secs(3)));
        // Offset 4 s = cycle 2 offset 1 s.
        assert_eq!(tr.at(SimDuration::from_secs(4)).rate_bps, 20e6);
        // The schedule re-applies the t=0 sample at each cycle boundary.
        let sched = tr.to_schedule(SimTime::from_secs(7));
        let times: Vec<u64> = (0..sched.len())
            .map(|i| sched.step(i).unwrap().at.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(sched.step(2).unwrap().rate_bps, Some(10e6), "cycle restart");
    }

    #[test]
    fn unlooped_schedule_stops_at_the_last_sample() {
        let tr = LinkTrace::parse("demo", SIMPLE).expect("parses");
        let sched = tr.to_schedule(SimTime::from_secs(100));
        assert_eq!(sched.len(), 2, "initial sample is construction state");
    }

    #[test]
    fn avg_capacity_weights_by_time_and_loss() {
        let tr = LinkTrace::parse("demo", SIMPLE).expect("parses");
        // [0,1): 10; [1,2): 20; [2,4): 5·0.99 — over 4 s.
        let expect = (10.0 + 20.0 + 2.0 * 5.0 * 0.99) / 4.0;
        let got = tr.avg_capacity_mbps(SimDuration::from_secs(4));
        assert!((got - expect).abs() < 1e-9, "got {got}, expect {expect}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, needle) in [
            ("0.0 10\nbogus", "columns"),
            ("0.0 10\n0.5 -2", "rate must be positive"),
            ("0.0 10\n0.5 1 5 1.5", "loss must be in"),
            ("1.0 10", "first sample must be at time 0"),
            ("0.0 10\n0.0 20", "strictly increasing"),
            ("loop 0\n0.0 10", "loop period must be positive"),
            ("loop 1\nloop 2\n0.0 10", "duplicate"),
            ("loop 2\n0.0 10\n2.5 20", "exceed the last sample"),
            ("", "no samples"),
            ("0.0 nan", "bad rate"),
        ] {
            let e = LinkTrace::parse("bad", text).expect_err(text);
            assert!(e.reason.contains(needle), "{text:?} → {e}");
            assert!(e.to_string().contains("line"), "{e}");
        }
    }

    #[test]
    fn builtins_load_and_are_sane() {
        assert_eq!(builtin_names(), vec!["lte", "wifi", "satellite"]);
        for name in builtin_names() {
            let tr = LinkTrace::builtin(name).expect(name);
            assert_eq!(tr.name(), name);
            assert!(tr.points().len() >= 10, "{name} has real content");
            assert!(tr.period().is_some(), "{name} loops");
            let avg = tr.avg_capacity_mbps(tr.period().unwrap());
            assert!(
                (1.0..100.0).contains(&avg),
                "{name} avg capacity sane: {avg}"
            );
            // Every bundled sample carries explicit delay + loss columns.
            assert!(tr.points().iter().all(|p| p.delay.is_some()));
            assert!(tr.points().iter().all(|p| p.loss.is_some()));
        }
        assert!(LinkTrace::builtin("dsl").is_none());
    }

    #[test]
    fn schedule_from_builtin_is_deterministic() {
        let a = LinkTrace::builtin("lte").unwrap();
        let b = LinkTrace::builtin("lte").unwrap();
        let (sa, sb) = (
            a.to_schedule(SimTime::from_secs(120)),
            b.to_schedule(SimTime::from_secs(120)),
        );
        assert!(sa.len() > 200, "60 s loop at 0.5 s grid, two cycles");
        assert_eq!(sa.len(), sb.len());
        for i in 0..sa.len() {
            let (x, y) = (sa.step(i).unwrap(), sb.step(i).unwrap());
            assert_eq!(x.at, y.at);
            assert_eq!(x.rate_bps.map(f64::to_bits), y.rate_bps.map(f64::to_bits));
        }
    }
}
