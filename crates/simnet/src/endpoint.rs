//! The endpoint abstraction: how transport protocols plug into the
//! simulator.
//!
//! A flow has two endpoints (sender and receiver). The simulator invokes
//! them on packet arrival and on timers; endpoints respond by emitting
//! [`Action`]s through the [`EndpointCtx`] — sending packets, arming timers,
//! and recording measurements. The indirection keeps the simulator free of
//! any protocol knowledge and keeps endpoints deterministic and testable in
//! isolation.

use crate::ids::{FlowId, Side};
use crate::packet::{AckInfo, Packet};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What an endpoint asks the simulator to do.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Action {
    /// Transmit a packet (data from senders, ACKs from receivers). The
    /// simulator fixes up the flow id, direction, and hop index.
    Send(Packet),
    /// Arm a timer that fires [`Endpoint::on_timer`] with `token` at `at`.
    SetTimer { at: SimTime, token: u64 },
    /// Record the current control decision (sending rate, bits/sec).
    RecordRate(f64),
    /// Record an RTT sample.
    RecordRtt(SimDuration),
    /// Record `n` sender-detected packet losses.
    RecordLoss(u64),
    /// Record `n` unique data bytes accepted (receiver goodput).
    RecordGoodput(u64),
    /// Declare the flow stalled: the sender's dead-time budget elapsed with
    /// no forward progress and it aborted the transfer.
    Stall {
        /// How long the flow went without forward progress.
        dark: SimDuration,
        /// Consecutive RTO fires observed during the dark period.
        timeouts: u64,
    },
    /// Declare the flow complete (records the flow completion time).
    Finish,
}

/// Mutable view handed to an endpoint during a callback.
pub struct EndpointCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The flow this endpoint belongs to.
    pub flow: FlowId,
    /// Which side this endpoint is.
    pub side: Side,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action>,
}

impl<'a> EndpointCtx<'a> {
    /// Build a context (used by the simulator and by endpoint unit tests).
    pub fn new(
        now: SimTime,
        flow: FlowId,
        side: Side,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action>,
    ) -> Self {
        EndpointCtx {
            now,
            flow,
            side,
            rng,
            actions,
        }
    }

    /// Send a data packet: `seq` with `bytes` on the wire.
    pub fn send_data(&mut self, seq: u64, bytes: u32, retx: bool) {
        debug_assert_eq!(self.side, Side::Sender, "only senders send data");
        let pkt = Packet::data(self.flow, seq, bytes, self.now, retx);
        self.actions.push(Action::Send(pkt));
    }

    /// Send a data packet tagged as part of a probe train (PCP-style).
    pub fn send_probe(&mut self, seq: u64, bytes: u32, train: u32) {
        debug_assert_eq!(self.side, Side::Sender);
        let mut pkt = Packet::data(self.flow, seq, bytes, self.now, false);
        if let crate::packet::PacketKind::Data(ref mut d) = pkt.kind {
            d.probe_train = Some(train);
        }
        self.actions.push(Action::Send(pkt));
    }

    /// Send an ACK (receivers only).
    pub fn send_ack(&mut self, info: AckInfo) {
        debug_assert_eq!(self.side, Side::Receiver, "only receivers send ACKs");
        self.actions
            .push(Action::Send(Packet::ack(self.flow, info, self.now)));
    }

    /// Arm a timer.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.actions.push(Action::SetTimer { at, token });
    }

    /// Record the current sending-rate decision (bits/sec).
    pub fn record_rate(&mut self, bps: f64) {
        self.actions.push(Action::RecordRate(bps));
    }

    /// Record an RTT sample.
    pub fn record_rtt(&mut self, rtt: SimDuration) {
        self.actions.push(Action::RecordRtt(rtt));
    }

    /// Record sender-detected losses.
    pub fn record_loss(&mut self, n: u64) {
        self.actions.push(Action::RecordLoss(n));
    }

    /// Record unique data bytes accepted by the receiver.
    pub fn record_goodput(&mut self, bytes: u64) {
        self.actions.push(Action::RecordGoodput(bytes));
    }

    /// Mark the flow finished (for sized flows; records FCT).
    pub fn finish(&mut self) {
        self.actions.push(Action::Finish);
    }

    /// Declare the flow stalled: `dark` time without progress over
    /// `timeouts` consecutive RTO fires (records
    /// [`crate::stats::FlowStats::stalled`]).
    pub fn stall(&mut self, dark: SimDuration, timeouts: u64) {
        self.actions.push(Action::Stall { dark, timeouts });
    }

    /// This endpoint's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// A protocol endpoint (sender or receiver side of a flow).
pub trait Endpoint: Send {
    /// Called once when the flow starts (senders kick off transmission
    /// here; receivers usually ignore it).
    fn start(&mut self, ctx: &mut EndpointCtx);

    /// Called when a packet addressed to this endpoint arrives.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx);

    /// Called when a previously armed timer fires.
    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    #[test]
    fn ctx_collects_actions() {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut ctx = EndpointCtx::new(
            SimTime::from_millis(3),
            FlowId(7),
            Side::Sender,
            &mut rng,
            &mut actions,
        );
        ctx.send_data(0, 1500, false);
        ctx.set_timer(SimTime::from_millis(10), 42);
        ctx.record_rate(1e6);
        ctx.finish();
        assert_eq!(actions.len(), 4);
        match &actions[0] {
            Action::Send(p) => {
                assert_eq!(p.flow, FlowId(7));
                assert!(matches!(p.kind, PacketKind::Data(d) if d.seq == 0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(actions[1], Action::SetTimer { token: 42, .. }));
        assert!(matches!(actions[2], Action::RecordRate(r) if r == 1e6));
        assert!(matches!(actions[3], Action::Finish));
    }

    #[test]
    fn probe_packets_tagged() {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut ctx = EndpointCtx::new(
            SimTime::ZERO,
            FlowId(0),
            Side::Sender,
            &mut rng,
            &mut actions,
        );
        ctx.send_probe(5, 1500, 3);
        match &actions[0] {
            Action::Send(p) => {
                assert_eq!(p.as_data().unwrap().probe_train, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
