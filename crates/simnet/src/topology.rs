//! Topology helpers: canonical shapes used across the paper's evaluation.
//!
//! The workhorse is the **dumbbell**: `n` flows sharing one bottleneck link,
//! each flow with its own RTT realized as pure-delay shims on either side of
//! the bottleneck. Forward path: `bottleneck → fwd shim(RTT/2)`; reverse
//! path: `rev shim(RTT/2)`. All queueing happens at the bottleneck, exactly
//! as in the paper's Emulab setups.
//!
//! Since the [`crate::topo`] subsystem landed, [`Dumbbell`] is a thin
//! wrapper over a [`Topology`] graph: one shared source host, one middle
//! switch (the bottleneck edge between them), and one receiver host per
//! flow whose down-edge and return-edge are the RTT shims. Paths come from
//! the graph's routing, and the edge installation order reproduces the
//! historical [`crate::ids::LinkId`] assignment exactly, so pre-graph
//! experiment outputs are bit-identical.

use crate::ids::{EdgeId, LinkId, NodeId};
use crate::link::LinkConfig;
use crate::queue::{DropTail, Queue};
use crate::sim::NetworkBuilder;
use crate::time::SimDuration;
use crate::topo::Topology;

/// Paths for one flow through a topology.
#[derive(Clone, Debug)]
pub struct FlowPath {
    /// Links for data packets, in order.
    pub fwd: Vec<LinkId>,
    /// Links for ACKs, in order.
    pub rev: Vec<LinkId>,
}

/// Description of a shared bottleneck.
pub struct BottleneckSpec {
    /// Bottleneck rate in bits/sec.
    pub rate_bps: f64,
    /// Bottleneck buffer in bytes (drop-tail unless a queue is supplied).
    pub buffer_bytes: u64,
    /// Random egress loss probability on the bottleneck.
    pub loss: f64,
    /// Optional custom queue discipline (FQ, CoDel, ...).
    pub queue: Option<Box<dyn Queue>>,
}

impl BottleneckSpec {
    /// Drop-tail bottleneck with no random loss.
    pub fn new(rate_bps: f64, buffer_bytes: u64) -> Self {
        BottleneckSpec {
            rate_bps,
            buffer_bytes,
            loss: 0.0,
            queue: None,
        }
    }

    /// Set the random loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Use a custom queue discipline.
    pub fn with_queue(mut self, queue: Box<dyn Queue>) -> Self {
        self.queue = Some(queue);
        self
    }
}

/// A dumbbell under construction: one shared bottleneck, per-flow RTT shims.
pub struct Dumbbell {
    topo: Topology,
    src: NodeId,
    mid: NodeId,
    bottleneck: EdgeId,
}

impl Dumbbell {
    /// Install the shared bottleneck into `net`.
    pub fn new(net: &mut NetworkBuilder, spec: BottleneckSpec) -> Self {
        let queue: Box<dyn Queue> = spec
            .queue
            .unwrap_or_else(|| Box::new(DropTail::bytes(spec.buffer_bytes)));
        let cfg = LinkConfig {
            rate_bps: Some(spec.rate_bps),
            delay: SimDuration::ZERO,
            loss: spec.loss,
            queue,
            schedule: Default::default(),
            shaper: Default::default(),
        };
        let mut topo = Topology::new();
        let src = topo.add_host();
        let mid = topo.add_switch();
        let bottleneck = topo.add_link(src, mid, cfg);
        topo.install(net);
        Dumbbell {
            topo,
            src,
            mid,
            bottleneck,
        }
    }

    /// The shared bottleneck link.
    pub fn bottleneck(&self) -> LinkId {
        self.topo.link_of(self.bottleneck)
    }

    /// The underlying topology graph (shared sender, middle switch, one
    /// receiver host per attached flow).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Add per-flow delay shims realizing a round-trip time of `rtt`; data
    /// packets cross the bottleneck then the forward shim, ACKs cross the
    /// reverse shim only.
    pub fn attach_flow(&mut self, net: &mut NetworkBuilder, rtt: SimDuration) -> FlowPath {
        self.attach_flow_with_ack_loss(net, rtt, 0.0)
    }

    /// Like [`Dumbbell::attach_flow`] but with random loss on the reverse
    /// (ACK) path as well — satellite links lose ACKs too.
    pub fn attach_flow_with_ack_loss(
        &mut self,
        net: &mut NetworkBuilder,
        rtt: SimDuration,
        ack_loss: f64,
    ) -> FlowPath {
        let half = rtt / 2;
        let recv = self.topo.add_host();
        self.topo
            .add_link(self.mid, recv, LinkConfig::delay_only(half));
        self.topo.add_link(
            recv,
            self.src,
            LinkConfig::delay_only(rtt - half).with_loss(ack_loss),
        );
        self.topo.install(net);
        // Single-path by construction, so the ECMP key is irrelevant.
        self.topo.flow_path(self.src, recv, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;

    #[test]
    fn dumbbell_wires_paths() {
        let mut net = NetworkBuilder::new(SimConfig::default());
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
        let p1 = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let p2 = db.attach_flow(&mut net, SimDuration::from_millis(60));
        assert_eq!(p1.fwd[0], db.bottleneck(), "data crosses bottleneck first");
        assert_eq!(p2.fwd[0], db.bottleneck());
        assert_ne!(p1.fwd[1], p2.fwd[1], "per-flow shims are distinct");
        assert_eq!(p1.fwd.len(), 2);
        assert_eq!(p1.rev.len(), 1);
    }

    #[test]
    fn dumbbell_link_ids_match_pre_graph_layout() {
        // The historical layout: bottleneck first, then per flow the
        // forward shim followed by the reverse shim. Determinism of every
        // pre-graph experiment depends on this exact assignment.
        let mut net = NetworkBuilder::new(SimConfig::default());
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
        let p1 = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let p2 = db.attach_flow(&mut net, SimDuration::from_millis(60));
        assert_eq!(p1.fwd, vec![LinkId(0), LinkId(1)]);
        assert_eq!(p1.rev, vec![LinkId(2)]);
        assert_eq!(p2.fwd, vec![LinkId(0), LinkId(3)]);
        assert_eq!(p2.rev, vec![LinkId(4)]);
    }

    #[test]
    fn rtt_split_covers_odd_nanos() {
        let mut net = NetworkBuilder::new(SimConfig::default());
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(1e6, 1 << 16));
        // Odd RTT: halves must sum exactly.
        let rtt = SimDuration::from_nanos(30_000_001);
        let _ = db.attach_flow(&mut net, rtt);
        let half = rtt / 2;
        assert_eq!(half + (rtt - half), rtt);
    }
}
