//! Small typed identifiers for simulator entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into dense per-entity vectors.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a link in the simulated topology.
    LinkId
);
id_type!(
    /// Identifies a flow (sender/receiver endpoint pair).
    FlowId
);
id_type!(
    /// Identifies a node (host or switch) in a [`crate::topo::Topology`].
    NodeId
);
id_type!(
    /// Identifies a directed edge in a [`crate::topo::Topology`]; maps to
    /// one simulator [`LinkId`] once the topology is installed.
    EdgeId
);

/// Which side of a flow an event or action refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Side {
    /// The data sender.
    Sender,
    /// The data receiver.
    Receiver,
}

/// Direction of a packet relative to its flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Direction {
    /// Sender -> receiver (data path).
    Forward,
    /// Receiver -> sender (ACK path).
    Reverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(format!("{:?}", LinkId(3)), "LinkId(3)");
        assert_eq!(format!("{}", FlowId(9)), "9");
        assert_eq!(LinkId(7).index(), 7);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Reverse.flip(), Direction::Forward);
    }
}
