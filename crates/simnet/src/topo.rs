//! Topology graph + routing: multi-hop networks over the existing link
//! machinery.
//!
//! [`Topology`] is a directed multigraph whose nodes are hosts or switches
//! and whose every edge owns a full [`LinkConfig`] — so queue disciplines,
//! schedules, traces, shapers, and random loss compose on any fabric edge
//! exactly as they do on a dumbbell bottleneck. [`Routes`] precomputes
//! per-destination shortest-path next-hop *edge* sets by BFS (hosts never
//! transit traffic); equal-cost choices are resolved per hop by a
//! deterministic hash of the flow's key (parsimon-style ECMP), so a flow's
//! path depends only on the graph shape and the key — never on edge
//! insertion order, and never on any RNG stream the simulation consumes.
//!
//! [`Topology::flow_path`] expands a `(src, dst)` host pair into the
//! [`FlowPath`]`{ fwd, rev }` the simulator consumes, which makes the
//! dumbbell builder in [`crate::topology`] (and every scenario runner on
//! top of it) a thin wrapper over this module.
//!
//! Canonical datacenter shapes are provided as builders: [`fat_tree`]
//! (k-ary Clos, `k³/4` hosts at full bisection) and [`leaf_spine`] (two
//! tiers with an explicit oversubscription knob).
//!
//! ```
//! use pcc_simnet::prelude::*;
//! use pcc_simnet::topo::Topology;
//!
//! // Two hosts joined by two equal-cost 2-switch paths.
//! let mut topo = Topology::new();
//! let (a, b) = (topo.add_host(), topo.add_host());
//! let (s1, s2) = (topo.add_switch(), topo.add_switch());
//! let mut duplex = |u, v| {
//!     topo.add_duplex(
//!         u,
//!         v,
//!         LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000),
//!         LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000),
//!     );
//! };
//! duplex(a, s1);
//! duplex(a, s2);
//! duplex(s1, b);
//! duplex(s2, b);
//! let mut net = NetworkBuilder::new(SimConfig::default());
//! topo.install(&mut net);
//! let path = topo.flow_path(a, b, 7);
//! assert_eq!(path.fwd.len(), 2, "a → s? → b");
//! assert_eq!(path.rev.len(), 2, "b → s? → a");
//! ```

use std::collections::VecDeque;

use crate::ids::{EdgeId, LinkId, NodeId};
use crate::link::LinkConfig;
use crate::queue::QueueStats;
use crate::rng::mix64;
use crate::sim::{NetworkBuilder, SimReport};
use crate::time::{SimDuration, SimTime};
use crate::topology::FlowPath;

/// What a topology node is. Only switches carry transit traffic: a host can
/// source or sink a path but is never an intermediate hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An endpoint: sources and sinks flows, never forwards.
    Host,
    /// A forwarding element.
    Switch,
}

struct EdgeRec {
    src: NodeId,
    dst: NodeId,
    /// Serialization rate recorded before the config is consumed, so
    /// utilization accounting survives installation.
    rate_bps: Option<f64>,
    /// Present until [`Topology::install`] moves it into the simulator.
    config: Option<LinkConfig>,
    /// The simulator link realizing this edge, once installed.
    link: Option<LinkId>,
}

/// A node/edge graph where every directed edge owns a [`LinkConfig`].
///
/// Build nodes and edges, [`install`](Topology::install) into a
/// [`NetworkBuilder`] (edges become simulator links in edge-id order), then
/// expand host pairs into [`FlowPath`]s via [`flow_path`](Topology::flow_path).
/// Routes are computed lazily and cached; adding an edge invalidates them.
#[derive(Default)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    edges: Vec<EdgeRec>,
    /// Out-edges per node, in insertion order.
    out: Vec<Vec<EdgeId>>,
    routes: Option<Routes>,
    /// First edge not yet moved into a builder (supports incremental
    /// installation, which the dumbbell wrapper uses).
    next_install: usize,
}

impl Topology {
    /// An empty graph.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node of the given kind.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.out.push(Vec::new());
        id
    }

    /// Add a host (endpoint) node.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    /// Add a switch (forwarding) node.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(NodeKind::Switch)
    }

    /// Add a directed edge `src → dst` realized by `config`.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, config: LinkConfig) -> EdgeId {
        assert!(src.index() < self.kinds.len(), "unknown src node {src:?}");
        assert!(dst.index() < self.kinds.len(), "unknown dst node {dst:?}");
        assert_ne!(src, dst, "self-loop edges are not allowed");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRec {
            src,
            dst,
            rate_bps: config.rate_bps,
            config: Some(config),
            link: None,
        });
        self.out[src.index()].push(id);
        self.routes = None;
        id
    }

    /// Add a duplex pair of edges `a → b` and `b → a`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        ab: LinkConfig,
        ba: LinkConfig,
    ) -> (EdgeId, EdgeId) {
        (self.add_link(a, b, ab), self.add_link(b, a, ba))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// The `(src, dst)` endpoints of `edge`.
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.src, e.dst)
    }

    /// The serialization rate `edge` was configured with (`None` =
    /// pure-delay shim). Available before and after installation.
    pub fn edge_rate_bps(&self, edge: EdgeId) -> Option<f64> {
        self.edges[edge.index()].rate_bps
    }

    /// Install every not-yet-installed edge into `net`, in edge-id order,
    /// consuming each edge's [`LinkConfig`]. May be called repeatedly as
    /// the graph grows; each call installs only the new edges.
    pub fn install(&mut self, net: &mut NetworkBuilder) {
        for e in &mut self.edges[self.next_install..] {
            let config = e.config.take().expect("pending edge has its config");
            e.link = Some(net.add_link(config));
        }
        self.next_install = self.edges.len();
    }

    /// The simulator link realizing `edge`.
    ///
    /// # Panics
    /// If the edge has not been installed yet.
    pub fn link_of(&self, edge: EdgeId) -> LinkId {
        self.edges[edge.index()]
            .link
            .unwrap_or_else(|| panic!("{edge:?} not installed; call Topology::install first"))
    }

    /// The precomputed routing tables (computed on first use, cached until
    /// the graph changes).
    pub fn routes(&mut self) -> &Routes {
        if self.routes.is_none() {
            self.routes = Some(Routes::compute(&self.kinds, &self.edges, &self.out));
        }
        self.routes.as_ref().expect("just computed")
    }

    /// The edges of the path `src → dst` selected for flow key `key`.
    ///
    /// Each hop picks among the equal-cost next-hop edges by a
    /// deterministic hash of `(key, current node)`; the walk follows
    /// strictly decreasing BFS distance, so the path is loop-free and of
    /// shortest length by construction.
    ///
    /// # Panics
    /// If `dst` is unreachable from `src`.
    pub fn path_edges(&mut self, src: NodeId, dst: NodeId, key: u64) -> Vec<EdgeId> {
        self.routes();
        let routes = self.routes.as_ref().expect("routes cached");
        let mut path = Vec::with_capacity(routes.distance(src, dst).unwrap_or_else(|| {
            panic!("no route from {src:?} to {dst:?}");
        }) as usize);
        let mut cur = src;
        while cur != dst {
            let choices = routes.next_hops(cur, dst);
            let picked = choices
                [(mix64(key ^ ECMP_SALT ^ ((cur.0 as u64) << 32)) % choices.len() as u64) as usize];
            path.push(picked);
            cur = self.edges[picked.index()].dst;
        }
        path
    }

    /// Like [`Topology::path_edges`], resolved to simulator links.
    pub fn path_links(&mut self, src: NodeId, dst: NodeId, key: u64) -> Vec<LinkId> {
        self.path_edges(src, dst, key)
            .into_iter()
            .map(|e| self.link_of(e))
            .collect()
    }

    /// Expand a host pair into the forward/reverse link paths a
    /// [`crate::sim::FlowSpec`] consumes. Forward and reverse directions
    /// are routed independently (each hop hashes its own node), both under
    /// the same flow key.
    pub fn flow_path(&mut self, src: NodeId, dst: NodeId, key: u64) -> FlowPath {
        FlowPath {
            fwd: self.path_links(src, dst, key),
            rev: self.path_links(dst, src, key),
        }
    }
}

/// Salt folded into every ECMP hop hash (`"ECMP"`). Shared with the fault
/// plane so post-failure re-resolution picks the exact path routing would.
pub(crate) const ECMP_SALT: u64 = 0x4543_4D50;

/// Combine an experiment seed and a flow index into a flow key for
/// [`Topology::path_edges`]: deterministic, and distinct flows land on
/// decorrelated hash streams.
pub fn ecmp_key(seed: u64, flow: u64) -> u64 {
    mix64(seed ^ mix64(flow))
}

/// Precomputed next-hop routing tables: for every `(node, destination)`
/// pair, the BFS distance and the set of equal-cost out-edges that make
/// progress toward the destination.
///
/// Hosts never transit: a path may start or end at a host but BFS refuses
/// to route *through* one. Choice sets are sorted by `(next-hop node,
/// edge id)`, so the node sequence a flow takes is independent of the
/// order edges were inserted in.
pub struct Routes {
    n: usize,
    /// `dist[dst * n + node]` = hops from `node` to `dst` (`u32::MAX` =
    /// unreachable).
    dist: Vec<u32>,
    /// `choices[dst * n + node]` = equal-cost next-hop edges.
    choices: Vec<Vec<EdgeId>>,
}

impl Routes {
    fn compute(kinds: &[NodeKind], edges: &[EdgeRec], out: &[Vec<EdgeId>]) -> Routes {
        let n = kinds.len();
        // Reverse adjacency for the per-destination BFS.
        let mut inn: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            inn[e.dst.index()].push(EdgeId(i as u32));
        }
        let mut dist = vec![u32::MAX; n * n];
        let mut choices = vec![Vec::new(); n * n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let base = dst * n;
            dist[base + dst] = 0;
            queue.clear();
            queue.push_back(NodeId(dst as u32));
            while let Some(u) = queue.pop_front() {
                // A host sources or sinks traffic but never forwards it.
                if kinds[u.index()] == NodeKind::Host && u.index() != dst {
                    continue;
                }
                let du = dist[base + u.index()];
                for &e in &inn[u.index()] {
                    let v = edges[e.index()].src;
                    if dist[base + v.index()] == u32::MAX {
                        dist[base + v.index()] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
            // Next-hop choice sets: out-edges one hop closer to dst whose
            // target is allowed to carry the traffic onward.
            for u in 0..n {
                let du = dist[base + u];
                if du == u32::MAX || du == 0 {
                    continue;
                }
                let mut set: Vec<EdgeId> = out[u]
                    .iter()
                    .copied()
                    .filter(|&e| {
                        let w = edges[e.index()].dst;
                        (w.index() == dst || kinds[w.index()] == NodeKind::Switch)
                            && dist[base + w.index()] == du - 1
                    })
                    .collect();
                set.sort_by_key(|&e| (edges[e.index()].dst, e));
                choices[base + u] = set;
            }
        }
        Routes { n, dist, choices }
    }

    /// Hop count from `from` to `to`, if reachable.
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        let d = self.dist[to.index() * self.n + from.index()];
        (d != u32::MAX).then_some(d)
    }

    /// The equal-cost next-hop edges out of `from` toward `to` (empty when
    /// unreachable or already there), sorted by `(next-hop node, edge id)`.
    pub fn next_hops(&self, from: NodeId, to: NodeId) -> &[EdgeId] {
        &self.choices[to.index() * self.n + from.index()]
    }
}

/// Rate/delay/buffer triple describing one class of datacenter link; every
/// edge built from it gets a fresh drop-tail [`LinkConfig`].
#[derive(Clone, Copy, Debug)]
pub struct DcLinkSpec {
    /// Serialization rate, bits/sec.
    pub rate_bps: f64,
    /// One-way propagation delay per hop.
    pub delay: SimDuration,
    /// Drop-tail buffer, bytes.
    pub buffer_bytes: u64,
}

impl DcLinkSpec {
    /// A new spec.
    pub fn new(rate_bps: f64, delay: SimDuration, buffer_bytes: u64) -> Self {
        DcLinkSpec {
            rate_bps,
            delay,
            buffer_bytes,
        }
    }

    /// One fresh link configuration from this spec.
    pub fn config(&self) -> LinkConfig {
        LinkConfig::bottleneck(self.rate_bps, self.delay, self.buffer_bytes)
    }
}

/// A k-ary fat-tree (Clos): `k` pods of `k/2` ToR + `k/2` aggregation
/// switches, `(k/2)²` cores, `k/2` hosts per ToR — `k³/4` hosts at full
/// bisection bandwidth.
pub struct FatTree {
    /// The graph (install it, then route flows between [`FatTree::hosts`]).
    pub topo: Topology,
    /// All hosts, rack-major: hosts `[t·k/2, (t+1)·k/2)` hang off ToR `t`.
    pub hosts: Vec<NodeId>,
    /// Top-of-rack (edge) switches, pod-major.
    pub tors: Vec<NodeId>,
    /// Aggregation switches, pod-major.
    pub aggs: Vec<NodeId>,
    /// Core switches.
    pub cores: Vec<NodeId>,
    /// Per host: the `(host → ToR, ToR → host)` edge pair. The down-link
    /// is where rack-scale incast queues.
    pub host_edges: Vec<(EdgeId, EdgeId)>,
    k: usize,
}

impl FatTree {
    /// The arity the tree was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Hosts per rack (`k/2`).
    pub fn hosts_per_rack(&self) -> usize {
        self.k / 2
    }

    /// The ToR serving host index `h`.
    pub fn tor_of(&self, h: usize) -> NodeId {
        self.tors[h / self.hosts_per_rack()]
    }

    /// The pod containing host index `h`.
    pub fn pod_of(&self, h: usize) -> usize {
        h / (self.hosts_per_rack() * self.hosts_per_rack())
    }

    /// The ToR → host down-link edge of host index `h`.
    pub fn down_edge(&self, h: usize) -> EdgeId {
        self.host_edges[h].1
    }
}

/// Build a k-ary fat-tree. `host_link` configures host↔ToR edges,
/// `fabric_link` everything above (ToR↔agg, agg↔core). `k` must be even
/// and ≥ 2.
pub fn fat_tree(k: usize, host_link: DcLinkSpec, fabric_link: DcLinkSpec) -> FatTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even, got {k}"
    );
    let half = k / 2;
    let mut topo = Topology::new();
    let cores: Vec<NodeId> = (0..half * half).map(|_| topo.add_switch()).collect();
    let mut aggs = Vec::with_capacity(k * half);
    let mut tors = Vec::with_capacity(k * half);
    for _pod in 0..k {
        for _ in 0..half {
            aggs.push(topo.add_switch());
        }
        for _ in 0..half {
            tors.push(topo.add_switch());
        }
    }
    let mut hosts = Vec::with_capacity(k * half * half);
    let mut host_edges = Vec::with_capacity(k * half * half);
    for &tor in &tors {
        for _ in 0..half {
            let h = topo.add_host();
            host_edges.push(topo.add_duplex(h, tor, host_link.config(), host_link.config()));
            hosts.push(h);
        }
    }
    for pod in 0..k {
        for t in 0..half {
            for a in 0..half {
                topo.add_duplex(
                    tors[pod * half + t],
                    aggs[pod * half + a],
                    fabric_link.config(),
                    fabric_link.config(),
                );
            }
        }
        for a in 0..half {
            for c in 0..half {
                topo.add_duplex(
                    aggs[pod * half + a],
                    cores[a * half + c],
                    fabric_link.config(),
                    fabric_link.config(),
                );
            }
        }
    }
    FatTree {
        topo,
        hosts,
        tors,
        aggs,
        cores,
        host_edges,
        k,
    }
}

/// A two-tier leaf-spine fabric with an explicit oversubscription knob.
pub struct LeafSpine {
    /// The graph.
    pub topo: Topology,
    /// All hosts, leaf-major: hosts `[l·per, (l+1)·per)` hang off leaf `l`.
    pub hosts: Vec<NodeId>,
    /// Leaf (ToR) switches.
    pub leaves: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Per host: the `(host → leaf, leaf → host)` edge pair.
    pub host_edges: Vec<(EdgeId, EdgeId)>,
    hosts_per_leaf: usize,
}

impl LeafSpine {
    /// Hosts per leaf.
    pub fn hosts_per_leaf(&self) -> usize {
        self.hosts_per_leaf
    }

    /// The leaf serving host index `h`.
    pub fn leaf_of(&self, h: usize) -> NodeId {
        self.leaves[h / self.hosts_per_leaf]
    }
}

/// Build a leaf-spine fabric: `leaves` ToRs each serving `hosts_per_leaf`
/// hosts on `host_link`, every leaf connected to every one of `spines`
/// spines. The uplink rate is sized so aggregate host bandwidth exceeds
/// aggregate uplink bandwidth by `oversubscription` (1.0 = non-blocking,
/// 4.0 = classic 4:1 oversubscribed core); uplink buffers scale with the
/// rate ratio.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    host_link: DcLinkSpec,
    oversubscription: f64,
) -> LeafSpine {
    assert!(leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1);
    assert!(oversubscription >= 1.0, "oversubscription is ≥ 1.0");
    let uplink_rate =
        host_link.rate_bps * hosts_per_leaf as f64 / (spines as f64 * oversubscription);
    let uplink = DcLinkSpec {
        rate_bps: uplink_rate,
        delay: host_link.delay,
        buffer_bytes: ((host_link.buffer_bytes as f64 * uplink_rate / host_link.rate_bps) as u64)
            .max(host_link.buffer_bytes),
    };
    let mut topo = Topology::new();
    let spine_nodes: Vec<NodeId> = (0..spines).map(|_| topo.add_switch()).collect();
    let leaf_nodes: Vec<NodeId> = (0..leaves).map(|_| topo.add_switch()).collect();
    let mut hosts = Vec::with_capacity(leaves * hosts_per_leaf);
    let mut host_edges = Vec::with_capacity(leaves * hosts_per_leaf);
    for &leaf in &leaf_nodes {
        for _ in 0..hosts_per_leaf {
            let h = topo.add_host();
            host_edges.push(topo.add_duplex(h, leaf, host_link.config(), host_link.config()));
            hosts.push(h);
        }
    }
    for &leaf in &leaf_nodes {
        for &spine in &spine_nodes {
            topo.add_duplex(leaf, spine, uplink.config(), uplink.config());
        }
    }
    LeafSpine {
        topo,
        hosts,
        leaves: leaf_nodes,
        spines: spine_nodes,
        host_edges,
        hosts_per_leaf,
    }
}

/// Post-run utilization/queue summary of one installed rated edge.
#[derive(Clone, Copy, Debug)]
pub struct LinkUse {
    /// The topology edge.
    pub edge: EdgeId,
    /// The simulator link realizing it.
    pub link: LinkId,
    /// Edge source node.
    pub src: NodeId,
    /// Edge destination node.
    pub dst: NodeId,
    /// Configured rate, bits/sec.
    pub rate_bps: f64,
    /// Transmitted bits divided by capacity over the measured interval.
    pub utilization: f64,
    /// Queue counters (drops, peak backlog).
    pub queue: QueueStats,
}

/// Per-edge utilization over `[0, until]` for every rated edge of an
/// installed topology, in edge-id order.
pub fn link_usage(topo: &Topology, report: &SimReport, until: SimTime) -> Vec<LinkUse> {
    let secs = until.as_secs_f64().max(f64::MIN_POSITIVE);
    (0..topo.num_edges())
        .filter_map(|i| {
            let edge = EdgeId(i as u32);
            let rate_bps = topo.edge_rate_bps(edge)?;
            let link = topo.link_of(edge);
            let lr = &report.links[link.index()];
            let (src, dst) = topo.edge_endpoints(edge);
            Some(LinkUse {
                edge,
                link,
                src,
                dst,
                rate_bps,
                utilization: lr.stats.transmitted_bytes as f64 * 8.0 / (rate_bps * secs),
                queue: lr.queue,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;

    fn cfg() -> LinkConfig {
        LinkConfig::bottleneck(1e9, SimDuration::from_micros(20), 64_000)
    }

    fn shim() -> LinkConfig {
        LinkConfig::delay_only(SimDuration::from_micros(20))
    }

    #[test]
    fn line_graph_routes_end_to_end() {
        let mut t = Topology::new();
        let a = t.add_host();
        let s = t.add_switch();
        let b = t.add_host();
        t.add_duplex(a, s, cfg(), cfg());
        t.add_duplex(s, b, cfg(), shim());
        let mut net = NetworkBuilder::new(SimConfig::default());
        t.install(&mut net);
        let p = t.flow_path(a, b, 1);
        assert_eq!(p.fwd.len(), 2);
        assert_eq!(p.rev.len(), 2);
        assert_eq!(t.routes().distance(a, b), Some(2));
        assert_eq!(t.routes().distance(b, a), Some(2));
        assert_eq!(t.routes().distance(a, a), Some(0));
    }

    #[test]
    fn hosts_never_transit() {
        // s1 and s2 are joined through a host h and through a switch x:
        // only the switch path is a legal route.
        let mut t = Topology::new();
        let s1 = t.add_switch();
        let s2 = t.add_switch();
        let h = t.add_host();
        let x = t.add_switch();
        t.add_duplex(s1, h, cfg(), cfg());
        t.add_duplex(h, s2, cfg(), cfg());
        t.add_duplex(s1, x, cfg(), cfg());
        t.add_duplex(x, s2, cfg(), cfg());
        let routes = t.routes();
        assert_eq!(routes.distance(s1, s2), Some(2));
        let hops = routes.next_hops(s1, s2).to_vec();
        assert_eq!(hops.len(), 1, "only the switch path is usable");
        assert_eq!(t.edge_endpoints(hops[0]).1, x);
        // h itself can still originate and sink traffic.
        assert_eq!(t.routes().distance(h, s2), Some(1));
        assert_eq!(t.routes().distance(s2, h), Some(1));
    }

    #[test]
    fn unreachable_is_reported() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        let s = t.add_switch();
        t.add_link(a, s, cfg());
        t.add_link(s, b, cfg());
        // No reverse direction: b cannot reach a.
        assert_eq!(t.routes().distance(a, b), Some(2));
        assert_eq!(t.routes().distance(b, a), None);
        assert!(t.routes().next_hops(b, a).is_empty());
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn path_to_unreachable_panics() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        let mut net = NetworkBuilder::new(SimConfig::default());
        t.install(&mut net);
        let _ = t.path_edges(a, b, 0);
    }

    #[test]
    fn ecmp_spreads_flows_and_is_deterministic() {
        // Two equal-cost middle switches: different keys should (with
        // overwhelming probability over 64 keys) use both, and the same
        // key must always pick the same path.
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        let s1 = t.add_switch();
        let s2 = t.add_switch();
        for &s in &[s1, s2] {
            t.add_duplex(a, s, cfg(), cfg());
            t.add_duplex(s, b, cfg(), cfg());
        }
        let mut seen = std::collections::BTreeSet::new();
        for f in 0..64u64 {
            let key = ecmp_key(9, f);
            let p1 = t.path_edges(a, b, key);
            let p2 = t.path_edges(a, b, key);
            assert_eq!(p1, p2, "same key, same path");
            seen.insert(p1);
        }
        assert_eq!(seen.len(), 2, "both equal-cost paths used across keys");
    }

    #[test]
    fn fat_tree_shape() {
        let ft = fat_tree(
            4,
            DcLinkSpec::new(1e9, SimDuration::from_micros(20), 256_000),
            DcLinkSpec::new(1e9, SimDuration::from_micros(20), 256_000),
        );
        assert_eq!(ft.hosts.len(), 16);
        assert_eq!(ft.tors.len(), 8);
        assert_eq!(ft.aggs.len(), 8);
        assert_eq!(ft.cores.len(), 4);
        // 16 host duplexes + 8 pods·(2·2) tor-agg + 4·(2·2) agg-core.
        assert_eq!(ft.topo.num_edges(), 2 * (16 + 16 + 16));
        assert_eq!(ft.pod_of(0), 0);
        assert_eq!(ft.pod_of(15), 3);
        assert_eq!(ft.tor_of(3), ft.tors[1]);
    }

    #[test]
    fn fat_tree_distances() {
        let mut ft = fat_tree(
            4,
            DcLinkSpec::new(1e9, SimDuration::from_micros(20), 256_000),
            DcLinkSpec::new(1e9, SimDuration::from_micros(20), 256_000),
        );
        let (h, t, a, c) = (ft.hosts[0], ft.hosts[1], ft.hosts[2], ft.hosts[15]);
        let routes = ft.topo.routes();
        assert_eq!(routes.distance(h, t), Some(2), "same rack: via ToR");
        assert_eq!(routes.distance(h, a), Some(4), "same pod: via agg");
        assert_eq!(routes.distance(h, c), Some(6), "cross pod: via core");
        // Cross-pod ECMP width at the ToR: k/2 aggs.
        assert_eq!(routes.next_hops(ft.tors[0], c).len(), 2);
    }

    #[test]
    fn leaf_spine_oversubscription_sizes_uplinks() {
        let ls = leaf_spine(
            4,
            2,
            8,
            DcLinkSpec::new(1e9, SimDuration::from_micros(20), 256_000),
            4.0,
        );
        assert_eq!(ls.hosts.len(), 32);
        // 8 Gbps of hosts over 2 spines at 4:1 → 1 Gbps per uplink.
        let uplink = EdgeId((2 * 32) as u32); // first edge after host duplexes
        assert_eq!(ls.topo.edge_rate_bps(uplink), Some(1e9));
        assert_eq!(ls.leaf_of(9), ls.leaves[1]);
        let mut topo = ls.topo;
        assert_eq!(topo.routes().distance(ls.hosts[0], ls.hosts[31]), Some(4));
    }

    #[test]
    fn install_is_incremental_and_ordered() {
        let mut t = Topology::new();
        let a = t.add_host();
        let s = t.add_switch();
        let e0 = t.add_link(a, s, cfg());
        let mut net = NetworkBuilder::new(SimConfig::default());
        t.install(&mut net);
        let b = t.add_host();
        let e1 = t.add_link(s, b, cfg());
        let e2 = t.add_link(b, a, shim());
        t.install(&mut net);
        assert_eq!(t.link_of(e0), LinkId(0));
        assert_eq!(t.link_of(e1), LinkId(1));
        assert_eq!(t.link_of(e2), LinkId(2));
        assert_eq!(t.edge_rate_bps(e2), None, "shim rate survives install");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random connected switch graph: a spanning tree over `n` nodes plus
    /// `extra` random duplex chords. Returns the duplex node pairs.
    fn random_connected(n: usize, picks: &[u64]) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for v in 1..n as u32 {
            let u = picks[(v as usize - 1) % picks.len()] % v as u64;
            pairs.push((u as u32, v));
        }
        for (i, &p) in picks.iter().enumerate() {
            let a = (p % n as u64) as u32;
            let b = ((p >> 17).wrapping_add(i as u64) % n as u64) as u32;
            if a != b {
                pairs.push((a, b));
            }
        }
        pairs
    }

    fn build(n: usize, pairs: &[(u32, u32)]) -> Topology {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_switch();
        }
        for &(a, b) in pairs {
            t.add_duplex(
                NodeId(a),
                NodeId(b),
                LinkConfig::bottleneck(1e9, SimDuration::from_micros(10), 64_000),
                LinkConfig::bottleneck(1e9, SimDuration::from_micros(10), 64_000),
            );
        }
        t
    }

    /// The node sequence of a path (for insertion-order comparisons).
    fn node_seq(t: &mut Topology, src: NodeId, dst: NodeId, key: u64) -> Vec<NodeId> {
        let mut seq = vec![src];
        for e in t.path_edges(src, dst, key) {
            seq.push(t.edge_endpoints(e).1);
        }
        seq
    }

    proptest! {
        /// Every computed path is loop-free, hop-connected, reaches its
        /// destination, and has shortest length.
        #[test]
        fn paths_are_loop_free_and_reach(
            n in 2usize..16,
            picks in proptest::collection::vec(0u64..u64::MAX, 1..24),
            src in 0u64..16, dst in 0u64..16, key in 0u64..u64::MAX,
        ) {
            let (src, dst) = (NodeId((src % n as u64) as u32), NodeId((dst % n as u64) as u32));
            let mut t = build(n, &random_connected(n, &picks));
            let path = t.path_edges(src, dst, key);
            prop_assert_eq!(path.len() as u32, t.routes().distance(src, dst).expect("connected"));
            let mut cur = src;
            let mut seen = std::collections::BTreeSet::new();
            prop_assert!(seen.insert(cur));
            for e in &path {
                let (a, b) = t.edge_endpoints(*e);
                prop_assert_eq!(a, cur, "hops are connected");
                prop_assert!(seen.insert(b), "no node repeats");
                cur = b;
            }
            prop_assert_eq!(cur, dst, "path reaches its destination");
        }

        /// The ECMP choice is a function of (key, graph shape) only:
        /// re-adding the duplex pairs in reverse order leaves every flow's
        /// node sequence unchanged.
        #[test]
        fn ecmp_is_insertion_order_independent(
            n in 2usize..12,
            picks in proptest::collection::vec(0u64..u64::MAX, 1..16),
            src in 0u64..12, dst in 0u64..12, flow in 0u64..1024, seed in 0u64..u64::MAX,
        ) {
            let (src, dst) = (NodeId((src % n as u64) as u32), NodeId((dst % n as u64) as u32));
            // Dedup pairs: parallel duplexes would make edge identity (not
            // node choice) depend on insertion order.
            let mut pairs = random_connected(n, &picks);
            pairs.sort_unstable();
            pairs.dedup();
            let key = ecmp_key(seed, flow);
            let mut fwd = build(n, &pairs);
            let mut rev_pairs = pairs.clone();
            rev_pairs.reverse();
            let mut rev = build(n, &rev_pairs);
            prop_assert_eq!(
                node_seq(&mut fwd, src, dst, key),
                node_seq(&mut rev, src, dst, key),
                "same key, same node sequence, any insertion order"
            );
        }
    }
}
