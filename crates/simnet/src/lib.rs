//! # pcc-simnet — deterministic packet-level network simulator
//!
//! The experiment substrate for the PCC (NSDI'15) reproduction. A
//! discrete-event simulator in the spirit of event-driven network stacks:
//! single-threaded, allocation-light, and **bit-deterministic** — every run
//! with the same seed produces the identical event sequence, which makes
//! every experiment in the paper reproducible to the byte.
//!
//! ## Architecture
//!
//! * [`event::EventQueue`] — binary-heap scheduler with deterministic
//!   tie-breaking.
//! * [`link::Link`] — serialization rate + propagation delay + Bernoulli
//!   egress loss, with an attached [`queue::Queue`] discipline and optional
//!   time-varying [`link::LinkSchedule`].
//! * [`queue`] — DropTail, DRR [`queue::FairQueue`], RFC 8289
//!   [`queue::Codel`], and FQ-CoDel.
//! * [`shaper::LinkShaper`] — per-link impairment stage: stochastic
//!   jitter, bounded reordering, and token-bucket policing.
//! * [`trace::LinkTrace`] — trace-driven time-varying capacity: a
//!   plain-text trace format with bundled LTE/WiFi/satellite profiles,
//!   expanded into a [`link::LinkSchedule`].
//! * [`endpoint::Endpoint`] — the protocol plug-in trait; transport
//!   implementations (PCC, TCP variants, SABUL, PCP) live in sibling crates.
//! * [`sim::Simulation`] — the event loop; [`sim::NetworkBuilder`] wires
//!   links, paths, and flows.
//! * [`stats`] — per-flow series plus the paper's metrics (Jain's index,
//!   convergence time, percentiles).
//! * [`topo`] — topology graph + routing: BFS next-hop tables with
//!   deterministic per-flow ECMP, datacenter fabric builders
//!   ([`topo::fat_tree`], [`topo::leaf_spine`]), per-link utilization.
//! * [`fault`] — deterministic fault-injection plane: scripted link/node
//!   failures, corruption, and duplication ([`fault::FaultScript`] →
//!   [`fault::FaultPlane`]), with post-failure ECMP re-resolution.
//!
//! ## Example
//!
//! ```
//! use pcc_simnet::prelude::*;
//!
//! // Endpoints come from transport crates; here a trivial no-op pair.
//! struct Quiet;
//! impl Endpoint for Quiet {
//!     fn start(&mut self, _ctx: &mut EndpointCtx) {}
//!     fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
//! }
//!
//! let mut net = NetworkBuilder::new(SimConfig::default());
//! let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
//! let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
//! net.add_flow(FlowSpec {
//!     sender: Box::new(Quiet),
//!     receiver: Box::new(Quiet),
//!     fwd_path: path.fwd,
//!     rev_path: path.rev,
//!     start_at: SimTime::ZERO,
//! });
//! let report = net.build().run_until(SimTime::from_secs(1));
//! assert_eq!(report.flows.len(), 1);
//! ```

pub mod endpoint;
pub mod event;
pub mod fault;
pub mod ids;
pub mod link;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod shaper;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topo;
pub mod topology;
pub mod trace;

/// Convenient glob-import of the simulator's main types.
pub mod prelude {
    pub use crate::endpoint::{Action, Endpoint, EndpointCtx};
    pub use crate::fault::{FaultError, FaultEvent, FaultPlane, FaultScript};
    pub use crate::ids::{Direction, EdgeId, FlowId, LinkId, NodeId, Side};
    pub use crate::link::{LinkConfig, LinkSchedule, LinkStep};
    pub use crate::packet::{AckInfo, DataInfo, Packet, PacketKind};
    pub use crate::queue::{fq_codel, BufferLimit, Codel, CodelParams, DropTail, FairQueue, Queue};
    pub use crate::rng::SimRng;
    pub use crate::shaper::{JitterConfig, PolicerConfig, ShaperConfig};
    pub use crate::sim::{
        ChurnDriver, ChurnFlow, ChurnStats, FlowSpec, LinkReport, NetworkBuilder, SimConfig,
        SimReport, Simulation,
    };
    pub use crate::stats::{
        convergence_time, jain_index, jain_index_at_scale, mean, percentile, std_dev, FlowStats,
        StallInfo,
    };
    pub use crate::time::{rate_bps, tx_time, SimDuration, SimTime};
    pub use crate::topo::{
        ecmp_key, fat_tree, leaf_spine, link_usage, DcLinkSpec, FatTree, LeafSpine, LinkUse,
        NodeKind, Routes, Topology,
    };
    pub use crate::topology::{BottleneckSpec, Dumbbell, FlowPath};
    pub use crate::trace::{builtin_names, LinkTrace, TracePoint};
}
