//! Minimal property-testing shim with (a subset of) the `proptest` API.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This in-repo stand-in implements exactly the
//! surface the workspace's property tests use — range/tuple/vec strategies,
//! `prop_map`, `prop_oneof!`, `Just`, and the `proptest!`/`prop_assert!`
//! macros — over a deterministic SplitMix64-seeded xorshift generator.
//! Each `proptest!` test runs a fixed number of generated cases (256 by
//! default, override with `PROPTEST_CASES`); failures report the case
//! index so a run is reproducible by construction (the stream depends only
//! on the test's name).
//!
//! It is intentionally *not* a full replacement: no shrinking, no
//! persistence, no `prop_compose!`. If the real crate ever becomes
//! available, deleting this package restores it with no source changes.

/// Deterministic generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name (stable across runs and platforms).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The object-safe core of the shim.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`] / `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among equally weighted alternatives (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + rng.below(span.saturating_add(1)) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Something that can serve as a vector length specification.
    pub trait IntoSizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of generated cases per `proptest!` test.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The everything-you-need import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, Strategy,
    };
}

/// Run each declared test over generated inputs.
///
/// Mirrors `proptest! { #[test] fn name(arg in strategy, ...) { body } }`.
/// Each test draws [`cases`] input tuples from a stream seeded by the
/// test's own name, so failures are reproducible without a persistence
/// file.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::cases() {
                    let __run = |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        $body
                    };
                    if let Err(msg) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| __run(&mut __rng)))
                        .map_err(|e| {
                            e.downcast_ref::<String>().cloned().or_else(
                                || e.downcast_ref::<&str>().map(|s| s.to_string()),
                            )
                            .unwrap_or_else(|| "<non-string panic>".into())
                        })
                    {
                        panic!("property failed at case {}/{}: {}", __case + 1, $crate::cases(), msg);
                    }
                }
            }
        )+
    };
}

/// `prop_assert!` — plain assert in this shim (the `proptest!` driver
/// reports the failing case index).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among alternatives: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u32),
        B,
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -2.0f64..2.0, b in 0u8..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(b < 4);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u32..100, 2..5), w in collection::vec(0u32..9, 3usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![(1u32..5).prop_map(Op::A), Just(Op::B)]) {
            match op {
                Op::A(n) => prop_assert!((1..5).contains(&n)),
                Op::B => {}
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
