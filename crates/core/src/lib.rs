//! # pcc-core — Performance-oriented Congestion Control
//!
//! The primary contribution of *PCC: Re-architecting Congestion Control for
//! Consistent High Performance* (Dong, Li, Zarchy, Godfrey, Schapira —
//! NSDI 2015), implemented as a [`pcc_transport::RateController`]:
//!
//! * [`monitor`] — monitor intervals (§3.1): continuous measurement windows
//!   aggregating SACK feedback into `(rate → throughput, loss, RTT)` facts.
//! * [`utility`] — pluggable utility functions (§2.2, §4.4): the provably
//!   safe sigmoid objective plus latency-sensitive and loss-resilient ones.
//! * [`control`] — the online learning control algorithm (§3.2): Starting /
//!   Decision-Making (randomized controlled trials) / Rate-Adjusting.
//! * [`fluid`] — the game-theoretic model behind Theorems 1–2, with
//!   numerical verification in its test-suite.
//!
//! ## Quick start (simulation)
//!
//! ```
//! use pcc_core::{PccConfig, PccController};
//! use pcc_simnet::prelude::*;
//! use pcc_transport::{RateSender, RateSenderConfig, SackReceiver};
//!
//! let mut net = NetworkBuilder::new(SimConfig::default());
//! let db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
//! let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
//! let pcc = PccController::new(
//!     PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)),
//! );
//! let flow = net.add_flow(FlowSpec {
//!     sender: Box::new(RateSender::new(RateSenderConfig::default(), Box::new(pcc))),
//!     receiver: Box::new(SackReceiver::new()),
//!     fwd_path: path.fwd,
//!     rev_path: path.rev,
//!     start_at: SimTime::ZERO,
//! });
//! let report = net.build().run_until(SimTime::from_secs(5));
//! let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(3), SimTime::from_secs(5));
//! assert!(tput > 80.0, "PCC fills the pipe: {tput} Mbps");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod fluid;
pub mod monitor;
pub mod utility;

pub use config::{MiTiming, PccConfig};
pub use control::{PccController, PccStats};
pub use fluid::FluidModel;
pub use monitor::Monitor;
pub use utility::{
    sigmoid, CustomUtility, LatencyGradient, LatencySensitive, LossResilient, MiMetrics,
    SafeSigmoid, SimpleThroughputLoss, UtilityFunction,
};
