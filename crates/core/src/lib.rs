//! # pcc-core — Performance-oriented Congestion Control
//!
//! The primary contribution of *PCC: Re-architecting Congestion Control for
//! Consistent High Performance* (Dong, Li, Zarchy, Godfrey, Schapira —
//! NSDI 2015), implemented as a rate-driving
//! [`pcc_transport::CongestionControl`]:
//!
//! * [`monitor`] — monitor intervals (§3.1): continuous measurement windows
//!   aggregating SACK feedback into `(rate → throughput, loss, RTT)` facts.
//! * [`utility`] — pluggable utility functions (§2.2, §4.4): the provably
//!   safe sigmoid objective plus latency-sensitive and loss-resilient ones.
//! * [`control`] — the online learning control algorithm (§3.2): Starting /
//!   Decision-Making (randomized controlled trials) / Rate-Adjusting.
//! * [`fluid`] — the game-theoretic model behind Theorems 1–2, with
//!   numerical verification in its test-suite.
//!
//! Because [`PccController`] speaks the unified congestion-control API, the
//! *same object* drives the deterministic simulator
//! ([`pcc_transport::CcSender`]) and the real-UDP datapath (`pcc-udp`).
//! [`register_algorithms`] installs the PCC×utility family (`pcc`,
//! `pcc-simple`, `pcc-lossresilient`, `pcc-latency`) into the
//! [`pcc_transport::registry`].
//!
//! ## Quick start (simulation)
//!
//! ```
//! use pcc_core::{PccConfig, PccController};
//! use pcc_simnet::prelude::*;
//! use pcc_transport::{CcSender, CcSenderConfig, SackReceiver};
//!
//! let mut net = NetworkBuilder::new(SimConfig::default());
//! let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
//! let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
//! let pcc = PccController::new(
//!     PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)),
//! );
//! let flow = net.add_flow(FlowSpec {
//!     sender: Box::new(CcSender::new(CcSenderConfig::default(), Box::new(pcc))),
//!     receiver: Box::new(SackReceiver::new()),
//!     fwd_path: path.fwd,
//!     rev_path: path.rev,
//!     start_at: SimTime::ZERO,
//! });
//! let report = net.build().run_until(SimTime::from_secs(5));
//! let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(3), SimTime::from_secs(5));
//! assert!(tput > 80.0, "PCC fills the pipe: {tput} Mbps");
//! ```

pub mod config;
pub mod control;
pub mod fluid;
pub mod monitor;
pub mod utility;

pub use config::{MiTiming, PccConfig};
pub use control::{PccController, PccStats};
pub use fluid::FluidModel;
pub use monitor::Monitor;
pub use utility::{
    sigmoid, CustomUtility, LatencyGradient, LatencySensitive, LossResilient, MiMetrics,
    SafeSigmoid, SimpleThroughputLoss, UtilityFunction,
};

use pcc_transport::registry::{self, CcParams};
use pcc_transport::spec::{ParamKind, ParamSpec, Schema};

/// The PCC family's spec-parameter schema (`pcc:eps=0.05,util=latency`):
/// the §3.2 control constants, the MI timing/resolution policy, the
/// utility choice, and the chosen utility's exponents. Shared by all four
/// registered variants — a variant is just a different `util` default.
pub const PCC_SCHEMA: Schema = &[
    ParamSpec {
        key: "eps",
        kind: ParamKind::Float {
            min: 1e-4,
            max: 0.5,
        },
        doc: "minimum experiment granularity ε (paper: 0.01)",
    },
    ParamSpec {
        key: "eps_max",
        kind: ParamKind::Float {
            min: 1e-4,
            max: 0.5,
        },
        doc: "ε escalation ceiling (paper: 0.05; raised to ε when below it)",
    },
    ParamSpec {
        key: "tm",
        kind: ParamKind::Float {
            min: 0.5,
            max: 10.0,
        },
        doc: "fixed MI duration in RTT multiples (replaces the randomized 1.7–2.2 timing)",
    },
    ParamSpec {
        key: "slack",
        kind: ParamKind::Float {
            min: 0.5,
            max: 20.0,
        },
        doc: "MI-resolution deadline slack, in SRTT multiples (paper-era default 2.5)",
    },
    ParamSpec {
        key: "mi_pkts",
        kind: ParamKind::Int {
            min: 1,
            max: 10_000,
        },
        doc: "minimum packets per MI (paper: 10)",
    },
    ParamSpec {
        key: "rct",
        kind: ParamKind::Bool,
        doc: "randomized controlled trials: two ±ε pairs instead of one",
    },
    ParamSpec {
        key: "util",
        kind: ParamKind::Choice(&[
            "safe",
            "simple",
            "lossresilient",
            "latency",
            "latency-gradient",
        ]),
        doc: "utility function (overrides the variant's default objective)",
    },
    ParamSpec {
        key: "alpha",
        kind: ParamKind::Float { min: 1.0, max: 1e4 },
        doc: "sigmoid steepness α of the utility (paper: 100)",
    },
    ParamSpec {
        key: "cutoff",
        kind: ParamKind::Float {
            min: 1e-3,
            max: 0.5,
        },
        doc: "loss knee of the utility (paper: 0.05)",
    },
    ParamSpec {
        key: "slope_penalty",
        kind: ParamKind::Float { min: 0.0, max: 1e4 },
        doc: "RTT-slope penalty β of the latency-sensitive utility",
    },
];

/// Build a [`PccController`] from registry construction parameters,
/// applying any validated spec keys (see [`PCC_SCHEMA`]) over the paper
/// defaults. `default_util` names the objective used when the spec sets
/// no `util` key — it is what distinguishes the four registered variants.
///
/// The spec bag is pre-validated by the registry, so this never fails; a
/// spec-set ε above the default ε ceiling raises the ceiling rather than
/// violating the `eps_min ≤ eps_max` invariant.
pub fn controller_from_params(params: &CcParams, default_util: &str) -> PccController {
    let s = &params.spec;
    let mut cfg = PccConfig::paper().with_rtt_hint(params.rtt_hint);
    if let Some(eps) = s.f64("eps") {
        cfg.eps_min = eps;
    }
    if let Some(eps_max) = s.f64("eps_max") {
        cfg.eps_max = eps_max;
    }
    cfg.eps_max = cfg.eps_max.max(cfg.eps_min);
    if let Some(tm) = s.f64("tm") {
        cfg.mi_timing = MiTiming::FixedRttMultiple(tm);
    }
    if let Some(slack) = s.f64("slack") {
        cfg.deadline_rtts = slack;
    }
    if let Some(n) = s.u64("mi_pkts") {
        cfg.mi_min_packets = n;
    }
    if let Some(rct) = s.bool("rct") {
        cfg.rct = rct;
    }
    let alpha = s.f64("alpha");
    let cutoff = s.f64("cutoff");
    let utility: Box<dyn UtilityFunction> = match s.choice("util").unwrap_or(default_util) {
        "simple" => Box::new(SimpleThroughputLoss),
        "lossresilient" => Box::new(LossResilient),
        "latency" => {
            let mut u = LatencySensitive::default();
            u.alpha = alpha.unwrap_or(u.alpha);
            u.loss_cutoff = cutoff.unwrap_or(u.loss_cutoff);
            u.slope_penalty = s.f64("slope_penalty").unwrap_or(u.slope_penalty);
            Box::new(u)
        }
        "latency-gradient" => {
            let mut u = LatencyGradient::default();
            u.alpha = alpha.unwrap_or(u.alpha);
            u.loss_cutoff = cutoff.unwrap_or(u.loss_cutoff);
            Box::new(u)
        }
        _ => {
            let mut u = SafeSigmoid::default();
            u.alpha = alpha.unwrap_or(u.alpha);
            u.loss_cutoff = cutoff.unwrap_or(u.loss_cutoff);
            Box::new(u)
        }
    };
    PccController::with_utility(cfg, utility).with_mss(params.mss)
}

/// The utility-exponent keys each objective actually reads. A spec that
/// sets an exponent its (explicit or variant-default) utility ignores is
/// rejected with a typed error — sweeping `pcc-simple:alpha=…` would
/// otherwise run N identical simulations and report them as a sweep.
fn utility_reads(util: &str, key: &str) -> bool {
    match util {
        // No constants at all: `T − x·L` and `T·(1−L)`.
        "simple" | "lossresilient" => false,
        // Sigmoid objectives read α and the loss knee; only the
        // Vivace-style latency utility also has the slope penalty β.
        "latency" => true,
        _ => key != "slope_penalty",
    }
}

/// Register the PCC×utility family with the workspace-wide
/// [`pcc_transport::registry`]:
///
/// * `pcc` — the §2.2 safe sigmoid objective (the default everywhere);
/// * `pcc-simple` — the naive `T − x·L` starting point;
/// * `pcc-lossresilient` — §4.4.2's `T·(1−L)` for extreme-loss links;
/// * `pcc-latency` — §4.4.1's latency-sensitive power objective.
///
/// Every variant carries [`PCC_SCHEMA`], so all of them accept
/// parameterized specs (`"pcc:eps=0.05,util=latency"`,
/// `"pcc-latency:slope_penalty=50"`), plus a cross-key check that
/// rejects utility exponents the effective objective ignores
/// (`"pcc-simple:alpha=50"` is a typed error, not a silent no-op).
/// Idempotent.
pub fn register_algorithms() {
    for (name, util) in [
        ("pcc", "safe"),
        ("pcc-simple", "simple"),
        ("pcc-lossresilient", "lossresilient"),
        ("pcc-latency", "latency"),
    ] {
        registry::register_with_schema_checked(
            name,
            PCC_SCHEMA,
            Box::new(move |bag| {
                let effective = bag.choice("util").unwrap_or(util);
                for key in ["alpha", "cutoff", "slope_penalty"] {
                    if bag.f64(key).is_some() && !utility_reads(effective, key) {
                        return Err((
                            key.to_string(),
                            format!("has no effect with util={effective}"),
                        ));
                    }
                }
                // An escalation ceiling below ε would be silently raised
                // back to ε — reject it instead, like any other
                // parameter that cannot take effect. (ε *above* the
                // default ceiling raises the ceiling deliberately, so a
                // lone `eps=0.2` stays valid.)
                let eps = bag.f64("eps").unwrap_or(PccConfig::paper().eps_min);
                if let Some(eps_max) = bag.f64("eps_max") {
                    if eps_max < eps {
                        return Err((
                            "eps_max".to_string(),
                            format!(
                                "has no effect below eps ({eps}) — the ceiling is raised to eps"
                            ),
                        ));
                    }
                }
                Ok(())
            }),
            Box::new(move |p| Box::new(controller_from_params(p, util))),
        );
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use pcc_simnet::time::SimDuration;
    use pcc_transport::spec;

    #[test]
    fn pcc_family_registers() {
        register_algorithms();
        let params = CcParams::default();
        for name in ["pcc", "pcc-simple", "pcc-lossresilient", "pcc-latency"] {
            let cc = registry::by_name(name, &params).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(cc.name(), "pcc");
        }
    }

    fn bag(pairs: &[(&str, &str)]) -> CcParams {
        let raw: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        CcParams::default()
            .with_rtt_hint(SimDuration::from_millis(30))
            .with_spec(spec::validate("pcc", PCC_SCHEMA, &raw).expect("valid"))
    }

    #[test]
    fn spec_keys_tune_the_controller() {
        let c = controller_from_params(
            &bag(&[
                ("eps", "0.05"),
                ("tm", "1.5"),
                ("slack", "4"),
                ("mi_pkts", "20"),
                ("rct", "false"),
            ]),
            "safe",
        );
        let cfg = c.config();
        assert_eq!(cfg.eps_min, 0.05);
        assert_eq!(cfg.eps_max, 0.05, "ceiling raised to ε, no panic");
        assert_eq!(cfg.mi_timing, MiTiming::FixedRttMultiple(1.5));
        assert_eq!(cfg.deadline_rtts, 4.0);
        assert_eq!(cfg.mi_min_packets, 20);
        assert!(!cfg.rct);
        assert_eq!(cfg.rtt_hint, SimDuration::from_millis(30));
    }

    #[test]
    fn util_key_overrides_the_variant_default() {
        let c = controller_from_params(&bag(&[("util", "latency")]), "safe");
        assert_eq!(c.utility_name(), "latency-sensitive");
        let c = controller_from_params(&bag(&[]), "lossresilient");
        assert_eq!(c.utility_name(), "loss-resilient");
        let c = controller_from_params(&bag(&[("util", "latency-gradient")]), "safe");
        assert_eq!(c.utility_name(), "latency-gradient");
    }

    #[test]
    fn registry_rejects_bad_pcc_specs_with_typed_errors() {
        register_algorithms();
        let params = CcParams::default();
        for spec_str in ["pcc:eps=0.9", "pcc:util=fastest", "pcc:nope=1"] {
            let err = match registry::by_name(spec_str, &params) {
                Ok(_) => panic!("{spec_str} must fail"),
                Err(e) => e,
            };
            let msg = err.to_string();
            assert!(msg.contains("eps=<"), "{spec_str}: lists keys: {msg}");
        }
        // And a valid spec constructs.
        assert!(registry::by_name("pcc:eps=0.05,util=latency", &params).is_ok());
    }

    #[test]
    fn ineffective_utility_exponents_are_rejected() {
        register_algorithms();
        let params = CcParams::default();
        // Exponents the effective utility ignores are typed errors, not
        // silent no-ops (the variant default counts as the utility).
        for bad in [
            "pcc:util=simple,alpha=50",
            "pcc-simple:alpha=50",
            "pcc-lossresilient:cutoff=0.2",
            "pcc:slope_penalty=5",
            "pcc:util=latency-gradient,slope_penalty=5",
        ] {
            let err = match registry::by_name(bad, &params) {
                Ok(_) => panic!("{bad} must fail"),
                Err(e) => e,
            };
            assert!(err.to_string().contains("has no effect"), "{bad}: {err}");
        }
        // The same keys are accepted where the objective reads them.
        for good in [
            "pcc:alpha=50,cutoff=0.1",
            "pcc:util=latency,slope_penalty=5",
            "pcc-latency:alpha=50,slope_penalty=5",
            "pcc-simple:util=latency,alpha=50",
            "pcc:util=latency-gradient,alpha=50",
        ] {
            assert!(registry::by_name(good, &params).is_ok(), "{good}");
        }
    }

    #[test]
    fn eps_max_below_eps_is_rejected_not_silently_raised() {
        register_algorithms();
        let params = CcParams::default();
        // An explicit ceiling below ε (spec-set or the 0.01 default)
        // would be silently raised back to ε — typed error instead.
        for bad in ["pcc:eps_max=0.001", "pcc:eps=0.2,eps_max=0.1"] {
            let err = match registry::by_name(bad, &params) {
                Ok(_) => panic!("{bad} must fail"),
                Err(e) => e,
            };
            assert!(err.to_string().contains("eps_max"), "{bad}: {err}");
        }
        // Ceiling at or above ε is effective and accepted; a lone ε
        // above the default ceiling still raises the ceiling itself.
        for good in [
            "pcc:eps=0.05,eps_max=0.05",
            "pcc:eps_max=0.2",
            "pcc:eps=0.2",
        ] {
            assert!(registry::by_name(good, &params).is_ok(), "{good}");
        }
    }
}
