//! # pcc-core — Performance-oriented Congestion Control
//!
//! The primary contribution of *PCC: Re-architecting Congestion Control for
//! Consistent High Performance* (Dong, Li, Zarchy, Godfrey, Schapira —
//! NSDI 2015), implemented as a rate-driving
//! [`pcc_transport::CongestionControl`]:
//!
//! * [`monitor`] — monitor intervals (§3.1): continuous measurement windows
//!   aggregating SACK feedback into `(rate → throughput, loss, RTT)` facts.
//! * [`utility`] — pluggable utility functions (§2.2, §4.4): the provably
//!   safe sigmoid objective plus latency-sensitive and loss-resilient ones.
//! * [`control`] — the online learning control algorithm (§3.2): Starting /
//!   Decision-Making (randomized controlled trials) / Rate-Adjusting.
//! * [`fluid`] — the game-theoretic model behind Theorems 1–2, with
//!   numerical verification in its test-suite.
//!
//! Because [`PccController`] speaks the unified congestion-control API, the
//! *same object* drives the deterministic simulator
//! ([`pcc_transport::CcSender`]) and the real-UDP datapath (`pcc-udp`).
//! [`register_algorithms`] installs the PCC×utility family (`pcc`,
//! `pcc-simple`, `pcc-lossresilient`, `pcc-latency`) into the
//! [`pcc_transport::registry`].
//!
//! ## Quick start (simulation)
//!
//! ```
//! use pcc_core::{PccConfig, PccController};
//! use pcc_simnet::prelude::*;
//! use pcc_transport::{CcSender, CcSenderConfig, SackReceiver};
//!
//! let mut net = NetworkBuilder::new(SimConfig::default());
//! let db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000));
//! let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
//! let pcc = PccController::new(
//!     PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)),
//! );
//! let flow = net.add_flow(FlowSpec {
//!     sender: Box::new(CcSender::new(CcSenderConfig::default(), Box::new(pcc))),
//!     receiver: Box::new(SackReceiver::new()),
//!     fwd_path: path.fwd,
//!     rev_path: path.rev,
//!     start_at: SimTime::ZERO,
//! });
//! let report = net.build().run_until(SimTime::from_secs(5));
//! let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(3), SimTime::from_secs(5));
//! assert!(tput > 80.0, "PCC fills the pipe: {tput} Mbps");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod fluid;
pub mod monitor;
pub mod utility;

pub use config::{MiTiming, PccConfig};
pub use control::{PccController, PccStats};
pub use fluid::FluidModel;
pub use monitor::Monitor;
pub use utility::{
    sigmoid, CustomUtility, LatencyGradient, LatencySensitive, LossResilient, MiMetrics,
    SafeSigmoid, SimpleThroughputLoss, UtilityFunction,
};

use pcc_transport::registry::{self, CcParams};

fn pcc_with(
    params: &CcParams,
    utility: Box<dyn UtilityFunction>,
) -> Box<dyn pcc_transport::CongestionControl> {
    let cfg = PccConfig::paper().with_rtt_hint(params.rtt_hint);
    Box::new(PccController::with_utility(cfg, utility).with_mss(params.mss))
}

/// Register the PCC×utility family with the workspace-wide
/// [`pcc_transport::registry`]:
///
/// * `pcc` — the §2.2 safe sigmoid objective (the default everywhere);
/// * `pcc-simple` — the naive `T − x·L` starting point;
/// * `pcc-lossresilient` — §4.4.2's `T·(1−L)` for extreme-loss links;
/// * `pcc-latency` — §4.4.1's latency-sensitive power objective.
///
/// Idempotent.
pub fn register_algorithms() {
    registry::register(
        "pcc",
        Box::new(|p| pcc_with(p, Box::new(SafeSigmoid::default()))),
    );
    registry::register(
        "pcc-simple",
        Box::new(|p| pcc_with(p, Box::new(SimpleThroughputLoss))),
    );
    registry::register(
        "pcc-lossresilient",
        Box::new(|p| pcc_with(p, Box::new(LossResilient))),
    );
    registry::register(
        "pcc-latency",
        Box::new(|p| pcc_with(p, Box::new(LatencySensitive::default()))),
    );
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn pcc_family_registers() {
        register_algorithms();
        let params = CcParams::default();
        for name in ["pcc", "pcc-simple", "pcc-lossresilient", "pcc-latency"] {
            let cc = registry::by_name(name, &params).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(cc.name(), "pcc");
        }
    }
}
