//! PCC configuration: every constant from §2.2/§3 of the paper, tunable.

use pcc_simnet::time::SimDuration;

/// How monitor-interval durations are chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MiTiming {
    /// The paper's default (§3.1): `Tm = max(time to send 10 packets,
    /// U[lo, hi] · RTT)` with `lo = 1.7`, `hi = 2.2` — the randomization
    /// desynchronizes competing senders' intervals.
    Randomized {
        /// Lower bound of the RTT multiplier.
        lo: f64,
        /// Upper bound of the RTT multiplier.
        hi: f64,
    },
    /// Fixed multiple of RTT (used by the Fig. 16 stability/reactiveness
    /// sweep, which varies `Tm` from 4.8×RTT down to 1×RTT).
    FixedRttMultiple(f64),
}

impl MiTiming {
    /// The paper's default randomized timing.
    pub fn paper_default() -> Self {
        MiTiming::Randomized { lo: 1.7, hi: 2.2 }
    }
}

/// Tunable PCC parameters.
#[derive(Clone, Copy, Debug)]
pub struct PccConfig {
    /// Minimum experiment granularity ε (paper: 0.01).
    pub eps_min: f64,
    /// Maximum experiment granularity ε (paper: 0.05).
    pub eps_max: f64,
    /// Monitor-interval duration policy.
    pub mi_timing: MiTiming,
    /// Minimum packets per MI (paper: the time to send 10 data packets).
    pub mi_min_packets: u64,
    /// Run randomized controlled trials with two pairs (4 MIs) instead of a
    /// single pair (2 MIs). Paper §2.1/§3.2; Fig. 16 quantifies the benefit.
    pub rct: bool,
    /// RTT assumed before the first measurement (drives the initial rate
    /// `2·MSS/RTT` and the first MI length).
    pub rtt_hint: SimDuration,
    /// Floor on the controlled sending rate (bits/sec).
    pub min_rate_bps: f64,
    /// Ceiling on the controlled sending rate (bits/sec).
    pub max_rate_bps: f64,
    /// Extra wait after an MI ends before unresolved packets are written
    /// off as lost, expressed as a multiple of SRTT (clamped below by
    /// `deadline_floor`).
    pub deadline_rtts: f64,
    /// Minimum absolute MI-resolution deadline slack.
    pub deadline_floor: SimDuration,
}

impl Default for PccConfig {
    fn default() -> Self {
        PccConfig {
            eps_min: 0.01,
            eps_max: 0.05,
            mi_timing: MiTiming::paper_default(),
            mi_min_packets: 10,
            rct: true,
            rtt_hint: SimDuration::from_millis(100),
            min_rate_bps: 24_000.0, // 2 × 1500 B packets per second
            max_rate_bps: 10e9,
            deadline_rtts: 2.5,
            deadline_floor: SimDuration::from_millis(2),
        }
    }
}

impl PccConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Disable randomized controlled trials (single-pair decisions) — the
    /// "PCC without RCT" line of Fig. 16.
    pub fn without_rct(mut self) -> Self {
        self.rct = false;
        self
    }

    /// Set the experiment granularity bounds.
    pub fn with_eps(mut self, eps_min: f64, eps_max: f64) -> Self {
        assert!(
            eps_min > 0.0 && eps_min <= eps_max,
            "0 < eps_min <= eps_max"
        );
        self.eps_min = eps_min;
        self.eps_max = eps_max;
        self
    }

    /// Set the MI timing policy.
    pub fn with_mi_timing(mut self, timing: MiTiming) -> Self {
        self.mi_timing = timing;
        self
    }

    /// Set the pre-measurement RTT hint.
    pub fn with_rtt_hint(mut self, rtt: SimDuration) -> Self {
        self.rtt_hint = rtt;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PccConfig::paper();
        assert_eq!(c.eps_min, 0.01);
        assert_eq!(c.eps_max, 0.05);
        assert_eq!(c.mi_min_packets, 10);
        assert!(c.rct);
        assert_eq!(c.mi_timing, MiTiming::Randomized { lo: 1.7, hi: 2.2 });
    }

    #[test]
    fn builders() {
        let c = PccConfig::paper()
            .without_rct()
            .with_eps(0.02, 0.06)
            .with_mi_timing(MiTiming::FixedRttMultiple(1.0))
            .with_rtt_hint(SimDuration::from_millis(30));
        assert!(!c.rct);
        assert_eq!(c.eps_min, 0.02);
        assert_eq!(c.mi_timing, MiTiming::FixedRttMultiple(1.0));
        assert_eq!(c.rtt_hint, SimDuration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "eps_min")]
    fn eps_validation() {
        let _ = PccConfig::paper().with_eps(0.05, 0.01);
    }
}
