//! Monitor intervals (§3.1): slicing time into continuous measurement
//! windows and aggregating per-packet fates into per-MI performance metrics.
//!
//! The controller begins a new MI whenever it changes (or re-tests) a rate;
//! every transmitted packet is attributed to the MI active at send time
//! (retransmissions to the MI that retransmitted them). ACKs and loss
//! declarations resolve packets; an MI's metrics are published once **all**
//! its packets are resolved or its deadline passes (≈1 RTT after the MI
//! ends, the paper's "SACKs for all packets sent out in MI1" moment), with
//! unresolved packets written off as lost.
//!
//! MIs complete strictly in order, so each [`MiMetrics`] carries the
//! previous MI's average RTT — which the latency-sensitive utility of
//! §4.4.1 needs.

use std::collections::VecDeque;

use pcc_simnet::time::{SimDuration, SimTime};

use crate::utility::MiMetrics;

#[derive(Clone, Debug)]
struct MiState {
    id: u64,
    target_rate_bps: f64,
    started_at: SimTime,
    ended_at: Option<SimTime>,
    deadline: SimTime,
    sent: u64,
    sent_bytes: u64,
    acked: u64,
    acked_bytes: u64,
    lost: u64,
    rtt_sum_ns: u64,
    rtt_n: u64,
    /// Receiver-side arrival times of this MI's first and last ACKed
    /// packets (for span-based delivery-rate measurement).
    first_ack_recv: Option<SimTime>,
    last_ack_recv: Option<SimTime>,
    /// RTTs of the first and last ACKed packets (for the per-MI RTT
    /// slope, the queue-growth observable).
    first_ack_rtt: Option<SimDuration>,
    last_ack_rtt: Option<SimDuration>,
}

impl MiState {
    fn resolved(&self) -> bool {
        self.acked + self.lost >= self.sent
    }

    fn metrics(
        &self,
        prev_avg_rtt: Option<SimDuration>,
        min_rtt: Option<SimDuration>,
    ) -> MiMetrics {
        let ended = self.ended_at.expect("metrics of ended MI");
        let duration = ended.saturating_since(self.started_at);
        let secs = duration.as_secs_f64().max(1e-9);
        let unresolved = self.sent.saturating_sub(self.acked + self.lost);
        let lost = self.lost + unresolved;
        // Delivered rate: prefer the receiver-side ACK-arrival span (the
        // true drain rate); measuring `acked_bytes / Tm` alone inflates
        // above link capacity when overdriving, because ACKs of an
        // overshooting MI keep arriving after the MI ends — which would
        // make "send faster into the buffer" look like higher throughput.
        let duration_rate = self.acked_bytes as f64 * 8.0 / secs;
        let throughput_bps = match (self.first_ack_recv, self.last_ack_recv) {
            (Some(first), Some(last)) if self.acked >= 2 && last > first => {
                let span = last.saturating_since(first).as_secs_f64();
                let per_pkt = self.acked_bytes as f64 / self.acked as f64;
                let span_rate = (self.acked as f64 - 1.0) * per_pkt * 8.0 / span;
                span_rate.min(duration_rate)
            }
            _ => duration_rate,
        };
        // Per-MI RTT slope (seconds of RTT per second of wall time): the
        // within-interval queue-growth signal. A standing queue hides rate
        // overshoot from *level* comparisons (both ±ε trials average the
        // same RTT), but the slope differs by 2ε·x between trials no matter
        // how deep the queue already is.
        let rtt_slope = match (
            self.first_ack_recv,
            self.last_ack_recv,
            self.first_ack_rtt,
            self.last_ack_rtt,
        ) {
            (Some(t0), Some(t1), Some(r0), Some(r1)) if t1 > t0 => {
                let dt = t1.saturating_since(t0).as_secs_f64();
                (r1.as_secs_f64() - r0.as_secs_f64()) / dt
            }
            _ => 0.0,
        };
        let avg_rtt = self
            .rtt_sum_ns
            .checked_div(self.rtt_n)
            .map(SimDuration::from_nanos)
            .unwrap_or_else(|| prev_avg_rtt.unwrap_or(SimDuration::from_millis(100)));
        MiMetrics {
            mi_id: self.id,
            min_rtt: min_rtt.unwrap_or(avg_rtt),
            target_rate_bps: self.target_rate_bps,
            send_rate_bps: self.sent_bytes as f64 * 8.0 / secs,
            throughput_bps,
            loss_rate: if self.sent == 0 {
                0.0
            } else {
                lost as f64 / self.sent as f64
            },
            avg_rtt,
            prev_avg_rtt,
            rtt_slope,
            duration,
            started_at: self.started_at,
            sent: self.sent,
            acked: self.acked,
            lost,
        }
    }
}

/// What the monitor remembers about an in-flight transmission: the MI it
/// belongs to and the bytes it actually carried (so resolution credits
/// real sizes — a short tail packet must not be credited as a full MSS).
#[derive(Clone, Copy, Debug)]
struct SeqInfo {
    mi: u64,
    bytes: u32,
}

/// Offset-indexed ring of in-flight sequence attributions.
///
/// Sequence numbers are dense and arrive almost in order (new data is
/// strictly increasing; retransmissions revisit recent holes), so a
/// `VecDeque<Option<SeqInfo>>` indexed by `seq - base` gives O(1)
/// insert/lookup/remove where the previous `BTreeMap<u64, SeqInfo>` paid a
/// tree rebalance per packet — this is the per-packet hot path of every
/// PCC sender. `base` tracks the oldest retained slot and advances as the
/// front resolves.
#[derive(Debug, Default)]
struct SeqRing {
    base: u64,
    slots: VecDeque<Option<SeqInfo>>,
    live: usize,
}

impl SeqRing {
    fn insert(&mut self, seq: u64, info: SeqInfo) {
        if self.slots.is_empty() {
            self.base = seq;
            self.slots.push_back(Some(info));
            self.live = 1;
            return;
        }
        if seq < self.base {
            // A retransmission below the resolved frontier (its earlier
            // incarnation already resolved and the front moved past it):
            // grow the front back down to it.
            for _ in 0..(self.base - seq) {
                self.slots.push_front(None);
            }
            self.base = seq;
        }
        let idx = (seq - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].replace(info).is_none() {
            self.live += 1;
        }
    }

    fn remove(&mut self, seq: u64) -> Option<SeqInfo> {
        if seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        let info = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        self.shrink_front();
        Some(info)
    }

    /// Pop the oldest retained slot if its seq is below `upper`, returning
    /// the attribution when the slot was live.
    fn pop_below(&mut self, upper: u64) -> Option<Option<SeqInfo>> {
        if self.base >= upper {
            return None;
        }
        let slot = self.slots.pop_front()?;
        self.base += 1;
        if slot.is_some() {
            self.live -= 1;
        }
        Some(slot)
    }

    /// Drop every attribution pointing at MI `mi`.
    fn clear_mi(&mut self, mi: u64) {
        for slot in self.slots.iter_mut() {
            if matches!(slot, Some(info) if info.mi == mi) {
                *slot = None;
                self.live -= 1;
            }
        }
        self.shrink_front();
    }

    fn shrink_front(&mut self) {
        if self.live == 0 {
            self.base += self.slots.len() as u64;
            self.slots.clear();
            return;
        }
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }
}

/// The §3.1 monitor: attributes packets to monitor intervals and publishes
/// per-MI metrics once each interval's packets are resolved.
#[derive(Debug, Default)]
pub struct Monitor {
    next_id: u64,
    current: Option<MiState>,
    /// Ended MIs awaiting resolution, oldest first.
    pending: VecDeque<MiState>,
    /// seq → (MI id, sent bytes) of its *latest* transmission, held in an
    /// offset-indexed ring (ordered, so cumulative ACKs can resolve whole
    /// prefixes by popping the front).
    seq_mi: SeqRing,
    /// Average RTT of the most recently completed MI.
    last_avg_rtt: Option<SimDuration>,
    /// Minimum RTT sample ever observed (propagation estimate).
    min_rtt: Option<SimDuration>,
    /// Completed metrics not yet drained by the controller.
    ready: VecDeque<MiMetrics>,
}

impl Monitor {
    /// New monitor with no active MI.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new MI at `now` with the given pacing target. Any active MI
    /// is ended first (with `deadline` applied to it — see
    /// [`Monitor::end_current`]). Returns the new MI's id.
    pub fn begin(&mut self, now: SimTime, target_rate_bps: f64, prev_deadline: SimDuration) -> u64 {
        self.end_current(now, prev_deadline);
        let id = self.next_id;
        self.next_id += 1;
        self.current = Some(MiState {
            id,
            target_rate_bps,
            started_at: now,
            ended_at: None,
            deadline: SimTime::MAX,
            sent: 0,
            sent_bytes: 0,
            acked: 0,
            acked_bytes: 0,
            lost: 0,
            rtt_sum_ns: 0,
            rtt_n: 0,
            first_ack_recv: None,
            last_ack_recv: None,
            first_ack_rtt: None,
            last_ack_rtt: None,
        });
        id
    }

    /// End the active MI at `now`; its unresolved packets will be written
    /// off as lost if still unresolved at `now + deadline_slack`.
    pub fn end_current(&mut self, now: SimTime, deadline_slack: SimDuration) {
        if let Some(mut mi) = self.current.take() {
            mi.ended_at = Some(now);
            mi.deadline = now + deadline_slack;
            self.pending.push_back(mi);
        }
    }

    /// Id of the active MI, if any.
    pub fn current_id(&self) -> Option<u64> {
        self.current.as_ref().map(|m| m.id)
    }

    /// When the active MI started.
    pub fn current_started_at(&self) -> Option<SimTime> {
        self.current.as_ref().map(|m| m.started_at)
    }

    /// Packets sent in the active MI so far.
    pub fn current_sent(&self) -> u64 {
        self.current.as_ref().map(|m| m.sent).unwrap_or(0)
    }

    /// Attribute a transmission to the active MI.
    pub fn on_sent(&mut self, seq: u64, bytes: u32) {
        let Some(cur) = self.current.as_mut() else {
            debug_assert!(false, "sent packet outside any MI");
            return;
        };
        cur.sent += 1;
        cur.sent_bytes += bytes as u64;
        self.seq_mi.insert(seq, SeqInfo { mi: cur.id, bytes });
    }

    fn mi_mut(&mut self, id: u64) -> Option<&mut MiState> {
        if let Some(cur) = self.current.as_mut() {
            if cur.id == id {
                return Some(cur);
            }
        }
        self.pending.iter_mut().find(|m| m.id == id)
    }

    /// Resolve `seq` as acknowledged by its own (S)ACK, which carries a
    /// genuine RTT measurement of that transmission. `recv_at` is the
    /// receiver-side arrival timestamp echoed in the ACK (drives
    /// span-based throughput). The credited bytes are the ones recorded
    /// at send time.
    pub fn on_ack(&mut self, seq: u64, rtt: SimDuration, recv_at: SimTime) {
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        let Some(info) = self.seq_mi.remove(seq) else {
            return; // duplicate ACK or MI already force-completed
        };
        if let Some(mi) = self.mi_mut(info.mi) {
            mi.acked += 1;
            mi.acked_bytes += info.bytes as u64;
            mi.rtt_sum_ns += rtt.as_nanos();
            mi.rtt_n += 1;
            if mi.first_ack_recv.is_none() {
                mi.first_ack_recv = Some(recv_at);
                mi.first_ack_rtt = Some(rtt);
            }
            mi.last_ack_recv = Some(recv_at);
            mi.last_ack_rtt = Some(rtt);
        }
    }

    /// Credit a delivery proven *without* a timing measurement: the
    /// recorded bytes count, but neither an RTT sample nor an ACK-arrival
    /// span point — the cumulative ACK that proved the delivery measures
    /// a different packet's flight.
    fn credit_delivery(&mut self, info: SeqInfo) {
        if let Some(mi) = self.mi_mut(info.mi) {
            mi.acked += 1;
            mi.acked_bytes += info.bytes as u64;
        }
    }

    /// Resolve every tracked sequence below `cum_ack` as delivered. The
    /// receiver's cumulative ACK proves delivery even when the selective
    /// ACK for a packet was lost on the reverse path — without this, ACK
    /// loss masquerades as data loss and inflates the measured loss rate
    /// by the reverse-path loss rate.
    ///
    /// Prefix packets are credited with the bytes they actually carried
    /// and contribute **no** RTT sample or span point: duplicating the
    /// triggering ACK's RTT across the prefix used to inflate `rtt_n`
    /// (skewing per-MI average RTT), and crediting a full MSS per prefix
    /// seq over-counted `acked_bytes` whenever a short tail packet was
    /// covered — reporting per-MI throughput above link capacity.
    pub fn on_cum_ack(&mut self, cum_ack: u64) {
        while let Some(slot) = self.seq_mi.pop_below(cum_ack) {
            if let Some(info) = slot {
                self.credit_delivery(info);
            }
        }
    }

    /// Resolve `seq` as lost.
    pub fn on_loss(&mut self, seq: u64) {
        let Some(info) = self.seq_mi.remove(seq) else {
            return;
        };
        if let Some(mi) = self.mi_mut(info.mi) {
            mi.lost += 1;
        }
    }

    /// Publish any head-of-line MIs that are resolved (or past deadline) and
    /// return them, oldest first.
    pub fn poll(&mut self, now: SimTime) -> Vec<MiMetrics> {
        while let Some(head) = self.pending.front() {
            if head.resolved() || now >= head.deadline {
                let mi = self.pending.pop_front().expect("non-empty");
                // Drop stale seq attributions of a force-completed MI so a
                // late ACK can't corrupt a future MI's counters.
                if !mi.resolved() {
                    self.seq_mi.clear_mi(mi.id);
                }
                let metrics = mi.metrics(self.last_avg_rtt, self.min_rtt);
                self.last_avg_rtt = Some(metrics.avg_rtt);
                self.ready.push_back(metrics);
            } else {
                break;
            }
        }
        self.ready.drain(..).collect()
    }

    /// Earliest pending deadline (for timer scheduling).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.front().map(|m| m.deadline)
    }

    /// Number of ended-but-unpublished MIs.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn mi_lifecycle_and_metrics() {
        let mut mon = Monitor::new();
        let id = mon.begin(t(0), 10e6, ms(50));
        assert_eq!(mon.current_id(), Some(id));
        // Send 10 packets of 1500 B over a 60 ms MI.
        for seq in 0..10 {
            mon.on_sent(seq, 1500);
        }
        mon.begin(t(60), 12e6, ms(50)); // ends the first MI at 60 ms
        assert!(mon.poll(t(60)).is_empty(), "unresolved: nothing published");
        // Resolve: 8 acked, 2 lost.
        for seq in 0..8 {
            mon.on_ack(seq, ms(30), t(0));
        }
        mon.on_loss(8);
        mon.on_loss(9);
        let out = mon.poll(t(70));
        assert_eq!(out.len(), 1);
        let m = &out[0];
        assert_eq!(m.mi_id, id);
        assert_eq!(m.sent, 10);
        assert_eq!(m.acked, 8);
        assert_eq!(m.lost, 2);
        assert!((m.loss_rate - 0.2).abs() < 1e-12);
        // x = 15000 B * 8 / 0.060 s = 2 Mbps; T = 12000 B * 8 / 0.060 s.
        assert!((m.send_rate_bps - 2e6).abs() < 1e3);
        assert!((m.throughput_bps - 1.6e6).abs() < 1e3);
        assert_eq!(m.avg_rtt, ms(30));
    }

    #[test]
    fn deadline_writes_off_unresolved_as_lost() {
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(50));
        for seq in 0..5 {
            mon.on_sent(seq, 1500);
        }
        mon.end_current(t(60), ms(40)); // deadline at 100 ms
        mon.on_ack(0, ms(20), t(0));
        assert!(mon.poll(t(99)).is_empty(), "before deadline");
        let out = mon.poll(t(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].acked, 1);
        assert_eq!(out[0].lost, 4, "unresolved written off");
        assert!((out[0].loss_rate - 0.8).abs() < 1e-12);
    }

    #[test]
    fn late_ack_after_writeoff_is_ignored() {
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(10));
        mon.on_sent(0, 1500);
        mon.end_current(t(10), ms(10));
        let _ = mon.poll(t(30)); // force-completed
        mon.begin(t(30), 1e6, ms(10));
        mon.on_sent(1, 1500);
        mon.on_ack(0, ms(25), t(0)); // late ack for dead MI: must not touch MI 2
        mon.end_current(t(40), ms(10));
        mon.on_ack(1, ms(12), t(0));
        let out = mon.poll(t(60));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].acked, 1, "only its own packet");
        assert_eq!(out[0].sent, 1);
    }

    #[test]
    fn completion_is_strictly_in_order() {
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(100));
        mon.on_sent(0, 1500);
        mon.begin(t(20), 1e6, ms(100)); // MI0 ends (deadline 120 ms)
        mon.on_sent(1, 1500);
        mon.end_current(t(40), ms(100)); // MI1 ends (deadline 140 ms)
                                         // MI1 resolves first, but MI0 must still publish first.
        mon.on_ack(1, ms(15), t(0));
        assert!(mon.poll(t(50)).is_empty(), "head-of-line MI0 unresolved");
        mon.on_ack(0, ms(55), t(0));
        let out = mon.poll(t(56));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].mi_id, 0);
        assert_eq!(out[1].mi_id, 1);
        // prev RTT chains through.
        assert_eq!(out[1].prev_avg_rtt, Some(out[0].avg_rtt));
    }

    #[test]
    fn retransmission_attributed_to_latest_mi() {
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(20));
        mon.on_sent(0, 1500);
        mon.on_loss(0); // lost in MI0
        mon.begin(t(20), 1e6, ms(20));
        mon.on_sent(0, 1500); // retransmitted in MI1
        mon.on_ack(0, ms(10), t(0));
        mon.end_current(t(40), ms(20));
        let out = mon.poll(t(40));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].lost, 1, "MI0 charged the loss");
        assert_eq!(out[0].acked, 0);
        assert_eq!(out[1].acked, 1, "MI1 credited the retx delivery");
    }

    #[test]
    fn empty_mi_publishes_zeroes() {
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(10));
        mon.begin(t(10), 2e6, ms(10));
        let out = mon.poll(t(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sent, 0);
        assert_eq!(out[0].loss_rate, 0.0);
        assert_eq!(out[0].send_rate_bps, 0.0);
    }

    #[test]
    fn realign_shortens_current_mi() {
        // §3.1 optimization: a rate change mid-MI ends the MI early.
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(10));
        mon.on_sent(0, 1500);
        // Re-align after only 5 ms.
        mon.begin(t(5), 3e6, ms(10));
        mon.on_ack(0, ms(4), t(0));
        let out = mon.poll(t(9));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].duration, ms(5));
        // x = 1500*8 bits / 5 ms = 2.4 Mbps.
        assert!((out[0].send_rate_bps - 2.4e6).abs() < 1e3);
    }

    #[test]
    fn cum_ack_resolves_reverse_path_lost_sacks() {
        // SACKs for 0..3 die on the reverse path; the ACK of seq 4
        // carries cum_ack = 5, which must resolve the prefix as delivered
        // instead of letting the deadline write it off as lost.
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(50));
        for seq in 0..5 {
            mon.on_sent(seq, 1500);
        }
        mon.end_current(t(60), ms(40));
        mon.on_ack(4, ms(30), t(55));
        mon.on_cum_ack(5);
        let out = mon.poll(t(70));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].acked, 5);
        assert_eq!(out[0].lost, 0, "reverse-path ACK loss is not data loss");
    }

    #[test]
    fn cum_ack_does_not_duplicate_rtt_samples() {
        // Regression: prefix seqs resolved via cum_ack used to each inject
        // a copy of the triggering ACK's RTT, drowning genuine samples.
        // Here two genuine samples (20 ms, 100 ms) exist; three prefix
        // seqs resolve via the second ACK's cum_ack. avg must be 60 ms —
        // the old duplication reported (20 + 4·100)/5 = 84 ms.
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(50));
        for seq in 0..5 {
            mon.on_sent(seq, 1500);
        }
        mon.end_current(t(60), ms(60));
        mon.on_ack(0, ms(20), t(20));
        mon.on_ack(4, ms(100), t(55));
        mon.on_cum_ack(5); // resolves 1..3 as delivered, no RTT samples
        let out = mon.poll(t(70));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].acked, 5);
        assert_eq!(out[0].avg_rtt, ms(60), "only genuine samples averaged");
    }

    #[test]
    fn cum_ack_credits_actual_bytes_throughput_capped_at_capacity() {
        // A 1 Mbps link carries 9×1500 B + one 300 B tail (110 400 bits)
        // in exactly 110.4 ms. Every SACK is dropped on the reverse path;
        // one final cumulative ACK proves delivery. Credited bytes must
        // be the bytes actually sent — the old full-MSS-per-prefix credit
        // counted 15 000 B and reported 1.087× link capacity.
        let mut mon = Monitor::new();
        let capacity_bps = 1e6;
        mon.begin(t(0), capacity_bps, ms(50));
        for seq in 0..9 {
            mon.on_sent(seq, 1500);
        }
        mon.on_sent(9, 300);
        let wire_bits = (9 * 1500 + 300) * 8; // 110 400
        let secs = wire_bits as f64 / capacity_bps;
        mon.end_current(SimTime::from_nanos((secs * 1e9) as u64), ms(50));
        mon.on_ack(9, ms(30), t(111));
        mon.on_cum_ack(10);
        let out = mon.poll(t(200));
        assert_eq!(out.len(), 1);
        let m = &out[0];
        assert_eq!(m.acked, 10);
        assert_eq!(m.lost, 0);
        assert!(
            m.throughput_bps <= capacity_bps * 1.0001,
            "per-MI throughput ≤ link capacity: {} vs {capacity_bps}",
            m.throughput_bps
        );
        assert!(
            m.throughput_bps >= capacity_bps * 0.999,
            "and the full payload is still credited: {}",
            m.throughput_bps
        );
    }

    #[test]
    fn conservation_sent_equals_acked_plus_lost() {
        let mut mon = Monitor::new();
        mon.begin(t(0), 1e6, ms(50));
        for seq in 0..100 {
            mon.on_sent(seq, 1500);
        }
        for seq in 0..60 {
            mon.on_ack(seq, ms(30), t(0));
        }
        for seq in 60..80 {
            mon.on_loss(seq);
        }
        mon.end_current(t(100), ms(10));
        let out = mon.poll(t(200)); // past deadline: 20 unresolved -> lost
        assert_eq!(out[0].sent, 100);
        assert_eq!(out[0].acked + out[0].lost, 100);
        assert_eq!(out[0].lost, 40);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// However sends/acks/losses/boundaries interleave, every published
        /// MI satisfies acked + lost == sent and rates are finite and
        /// non-negative.
        #[test]
        fn mi_conservation(script in proptest::collection::vec(0u8..6, 1..500)) {
            let mut mon = Monitor::new();
            let mut now = SimTime::ZERO;
            let mut next_seq = 0u64;
            let mut outstanding: Vec<u64> = Vec::new();
            mon.begin(now, 1e6, SimDuration::from_millis(20));
            let mut published = Vec::new();
            for op in script {
                now += SimDuration::from_millis(1);
                match op {
                    0 | 1 => {
                        mon.on_sent(next_seq, 1500);
                        outstanding.push(next_seq);
                        next_seq += 1;
                    }
                    2 => {
                        if !outstanding.is_empty() {
                            let seq = outstanding.remove(0);
                            mon.on_ack(seq, SimDuration::from_millis(10), now);
                        }
                    }
                    3 => {
                        if !outstanding.is_empty() {
                            let seq = outstanding.remove(0);
                            mon.on_loss(seq);
                        }
                    }
                    4 => {
                        // Cumulative-ACK resolution of the oldest packet
                        // (delivery proven without its own SACK).
                        if !outstanding.is_empty() {
                            let seq = outstanding.remove(0);
                            mon.on_cum_ack(seq + 1);
                        }
                    }
                    _ => {
                        mon.begin(now, 2e6, SimDuration::from_millis(20));
                    }
                }
                published.extend(mon.poll(now));
            }
            // Flush everything.
            mon.end_current(now, SimDuration::ZERO);
            published.extend(mon.poll(now + SimDuration::from_secs(10)));
            for m in &published {
                prop_assert_eq!(m.acked + m.lost, m.sent, "conservation per MI");
                prop_assert!(m.loss_rate >= 0.0 && m.loss_rate <= 1.0);
                prop_assert!(m.send_rate_bps.is_finite() && m.send_rate_bps >= 0.0);
                prop_assert!(m.throughput_bps <= m.send_rate_bps + 1e-6,
                    "cannot deliver more than sent within an MI");
            }
            // MIs publish in id order.
            for w in published.windows(2) {
                prop_assert!(w[0].mi_id < w[1].mi_id);
            }
        }
    }
}
