//! The PCC learning control algorithm (§3.2): a rate-driving
//! `CongestionControl` implementation that runs
//! the Starting / Decision-Making / Rate-Adjusting state machine over
//! monitor-interval utility measurements.
//!
//! * **Starting**: begin at `2·MSS/RTT`, double the rate every MI. Unlike
//!   TCP slow start, loss does *not* end this phase — only a measured
//!   utility decrease does, at which point PCC reverts to the previous
//!   (higher-utility) rate and enters decision making.
//! * **Decision Making**: run randomized controlled trials around the
//!   current rate `r`: four consecutive MIs in two pairs, each pair testing
//!   `r(1+ε)` and `r(1−ε)` in random order (two MIs without RCT). If the
//!   same direction wins every pair, move that way; otherwise hold `r` and
//!   escalate ε by `ε_min` (up to `ε_max`) to climb out of the noise.
//! * **Rate Adjusting**: accelerate in the chosen direction,
//!   `r_n = r_{n−1}·(1 + n·ε_min·dir)`, until utility falls; then revert to
//!   `r_{n−1}` and drop back to decision making.
//!
//! Utility results arrive ≈1 RTT after each MI ends; the controller
//! processes them asynchronously and applies the §3.1 "re-align" trick —
//! concluding a decision immediately re-bases the current MI rather than
//! waiting for the next boundary.

use std::collections::{BTreeMap, VecDeque};

use pcc_simnet::time::SimDuration;
use pcc_transport::cc::{AckEvent, CongestionControl, Ctx as CtrlCtx, LossEvent, SentEvent};
use pcc_transport::report::MeasurementReport;
use pcc_transport::rtt::RttEstimator;

use crate::config::{MiTiming, PccConfig};
use crate::monitor::Monitor;
use crate::utility::{MiMetrics, SafeSigmoid, UtilityFunction};

/// Why a given MI was run (controller-side bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Purpose {
    /// Starting phase, step `k` (rate = r0·2^k).
    Start { step: u32, rate: f64 },
    /// Decision trial `slot` of `round`, testing `dir` = ±1 at `rate`.
    Trial {
        round: u64,
        slot: u8,
        dir: f64,
        rate: f64,
    },
    /// Rate-adjusting step `n` at `rate`.
    Adjust { n: u32, rate: f64 },
    /// Holding at the base rate (e.g. while awaiting trial results).
    Hold,
}

/// Control phase.
#[derive(Clone, Debug, PartialEq)]
enum Phase {
    /// Doubling until utility drops.
    Starting,
    /// Issuing trial MIs (`issued` of `dirs.len()` so far).
    Trials {
        round: u64,
        eps: f64,
        dirs: Vec<f64>,
        issued: u8,
    },
    /// All trials issued; holding at base rate until results are in.
    WaitResults { round: u64, eps: f64 },
    /// Moving in `dir` with growing steps.
    Adjusting { dir: f64, n: u32 },
}

/// Snapshot of controller state for tests and introspection.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PccStats {
    /// Decisions concluded (direction picked).
    pub decisions: u64,
    /// Decisions that were inconclusive (ε escalated).
    pub inconclusive: u64,
    /// Times the starting phase ended.
    pub starts_exited: u64,
    /// Rate-adjusting reversions (utility fell).
    pub adjust_reverts: u64,
    /// Monitor intervals completed.
    pub mis_completed: u64,
}

const TOKEN_KIND_BOUNDARY: u64 = 0;
const TOKEN_KIND_DEADLINE: u64 = 1;

/// The PCC controller: a rate-driving [`CongestionControl`] (plugs into
/// [`pcc_transport::CcSender`] in simulation and the `pcc-udp` datapath on
/// real sockets).
pub struct PccController {
    cfg: PccConfig,
    utility: Box<dyn UtilityFunction>,
    monitor: Monitor,
    rtt: RttEstimator,
    phase: Phase,
    /// Base rate `r` (bits/sec) that decisions perturb around.
    rate: f64,
    purposes: BTreeMap<u64, Purpose>,
    /// Starting-phase utilities by step.
    start_utils: BTreeMap<u32, f64>,
    /// Consecutive non-improving starting steps (for noise tolerance).
    start_misses: u32,
    /// Trial utilities by (round, slot).
    trial_utils: BTreeMap<(u64, u8), (f64, f64)>,
    /// Adjusting utilities by n (0 = seed from winning trials).
    adjust_utils: BTreeMap<u32, f64>,
    trial_round: u64,
    stats: PccStats,
    mss: u32,
    /// Off-path (batched-report) operation detected: the [`Monitor`] and
    /// its boundary/deadline timers are bypassed — each engine report is
    /// one MI, and `set_report_interval` plays the boundary timer's role.
    batched: bool,
    /// Batched mode: issued MIs awaiting measurement `(id, rate)`, oldest
    /// first. A report evaluates the MI from one window back (its acks
    /// arrive ≈1 RTT after that MI's sends — the §3.1 result lag).
    pending_mis: VecDeque<(u64, f64)>,
    /// Batched mode: next synthetic MI id.
    next_batched_mi: u64,
    /// Batched mode: a `begin_mi` ran while processing the current report
    /// (the re-align trick already advanced the pipeline).
    mi_begun: bool,
    /// Batched mode: previous report's average RTT (latency-gradient
    /// chaining, mirroring the monitor's `last_avg_rtt`).
    prev_avg_rtt: Option<SimDuration>,
}

impl PccController {
    /// PCC with the §2.2 safe utility function.
    pub fn new(cfg: PccConfig) -> Self {
        Self::with_utility(cfg, Box::new(SafeSigmoid::default()))
    }

    /// PCC with a custom utility function (§2.4 / §4.4).
    pub fn with_utility(cfg: PccConfig, utility: Box<dyn UtilityFunction>) -> Self {
        PccController {
            cfg,
            utility,
            monitor: Monitor::new(),
            rtt: RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(120)),
            phase: Phase::Starting,
            rate: 0.0,
            purposes: BTreeMap::new(),
            start_utils: BTreeMap::new(),
            start_misses: 0,
            trial_utils: BTreeMap::new(),
            adjust_utils: BTreeMap::new(),
            trial_round: 0,
            stats: PccStats::default(),
            mss: 1500,
            batched: false,
            pending_mis: VecDeque::new(),
            next_batched_mi: 0,
            mi_begun: false,
            prev_avg_rtt: None,
        }
    }

    /// Set the wire packet size the monitor accounts with (default
    /// 1500 B). Datapaths with a different MSS — e.g. the UDP prototype's
    /// `payload + 40` — must thread theirs through, or throughput, the
    /// 2·MSS/RTT starting rate, and the rate floor are all skewed.
    pub fn with_mss(mut self, mss: u32) -> Self {
        self.mss = mss.max(1);
        self
    }

    /// The wire packet size the monitor accounts with (see
    /// [`PccController::with_mss`]).
    pub fn mss(&self) -> u32 {
        self.mss
    }

    /// The configuration this controller runs with (paper defaults plus
    /// whatever a parameterized spec overrode — tests and tooling use
    /// this to verify tuning actually reached the controller).
    pub fn config(&self) -> &PccConfig {
        &self.cfg
    }

    /// Name of the utility function being optimized.
    pub fn utility_name(&self) -> &'static str {
        self.utility.name()
    }

    /// Controller statistics.
    pub fn stats(&self) -> PccStats {
        self.stats
    }

    /// Current base rate in bits/sec.
    pub fn base_rate_bps(&self) -> f64 {
        self.rate
    }

    /// Human-readable phase name.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Starting => "starting",
            Phase::Trials { .. } => "decision-trials",
            Phase::WaitResults { .. } => "decision-wait",
            Phase::Adjusting { .. } => "adjusting",
        }
    }

    fn clamp_rate(&self, rate: f64) -> f64 {
        // The dynamic floor is the §3.2 starting rate, 2·MSS/RTT. Below it
        // the "time to send 10 packets" MI rule stretches monitor intervals
        // to many seconds, freezing the control loop exactly when the flow
        // most needs to react (e.g. a joiner that got squeezed while the
        // incumbent holds the buffer full).
        let floor = (2.0 * self.mss as f64 * 8.0 / self.control_rtt().as_secs_f64().max(1e-6))
            .max(self.cfg.min_rate_bps);
        rate.clamp(floor.min(self.cfg.max_rate_bps), self.cfg.max_rate_bps)
    }

    /// "Utility improved" test with a small relative tolerance.
    ///
    /// The paper's fluid model compares with plain `<` because loss reacts
    /// instantly there. At packet level a deep buffer absorbs overdrive:
    /// `T` caps at the bottleneck rate and `L` stays 0, so utility stays
    /// *equal* while the rate accelerates into the buffer. Treating
    /// non-improvement as failure stops doubling/adjusting at the knee
    /// instead of deep inside the queue.
    fn improved(new: f64, old: f64) -> bool {
        new > old + old.abs() * 1e-3 + 1e-9
    }

    fn srtt(&self) -> SimDuration {
        self.rtt.srtt_or(self.cfg.rtt_hint)
    }

    /// The RTT that clocks the control loop. Using the *smoothed* RTT here
    /// is a trap: a self-inflicted queue inflates SRTT, which stretches the
    /// monitor intervals, which slows the control loop precisely when it
    /// must react — a positive feedback into ever-deeper excursions. Clock
    /// off the propagation estimate (min RTT), lightly padded, instead.
    fn control_rtt(&self) -> SimDuration {
        let srtt = self.srtt();
        match self.rtt.min_rtt() {
            Some(min) => srtt.min(min.mul_f64(1.5)).max(min),
            None => srtt,
        }
    }

    /// MI duration for a given pacing rate (§3.1): long enough for
    /// `mi_min_packets` packets and the configured RTT multiple.
    fn mi_duration(&self, rate_bps: f64, ctx: &mut CtrlCtx) -> SimDuration {
        let pkt_time = SimDuration::from_secs_f64(
            self.cfg.mi_min_packets as f64 * self.mss as f64 * 8.0 / rate_bps.max(1.0),
        );
        let rtt = self.control_rtt();
        let rtt_mult = match self.cfg.mi_timing {
            MiTiming::Randomized { lo, hi } => ctx.rng.range_f64(lo, hi),
            MiTiming::FixedRttMultiple(f) => f,
        };
        pkt_time.max(rtt.mul_f64(rtt_mult))
    }

    /// Deadline slack applied when an MI ends: how long to wait for its
    /// SACKs before writing unresolved packets off as lost.
    fn deadline_slack(&self) -> SimDuration {
        self.srtt()
            .mul_f64(self.cfg.deadline_rtts)
            .max(self.cfg.deadline_floor)
    }

    /// Begin a new MI at `rate` with the given purpose.
    ///
    /// On-path (per-ACK) mode opens a [`Monitor`] interval and arms its
    /// boundary and deadline timers. Batched mode has no monitor: the MI
    /// *is* the next report interval — record the purpose, request the
    /// rate, and ask the engine to deliver the next report one MI
    /// duration from now (which also implements the §3.1 re-align: a
    /// mid-interval decision re-bases the boundary).
    fn begin_mi(&mut self, rate_bps: f64, purpose: Purpose, ctx: &mut CtrlCtx) {
        let rate = self.clamp_rate(rate_bps);
        if self.batched {
            self.mi_begun = true;
            let id = self.next_batched_mi;
            self.next_batched_mi += 1;
            self.purposes.insert(id, purpose);
            self.pending_mis.push_back((id, rate));
            // A re-align abandons the interval it interrupts: keep only
            // the most recent two issues (the one measuring now and the
            // one just issued) so stale purposes can't conclude later.
            while self.pending_mis.len() > 2 {
                if let Some((old, _)) = self.pending_mis.pop_front() {
                    self.purposes.remove(&old);
                }
            }
            ctx.set_rate(rate);
            let dur = self.mi_duration(rate, ctx);
            ctx.set_report_interval(dur);
            return;
        }
        let slack = self.deadline_slack();
        let id = self.monitor.begin(ctx.now, rate, slack);
        self.purposes.insert(id, purpose);
        ctx.set_rate(rate);
        let dur = self.mi_duration(rate, ctx);
        ctx.set_timer(ctx.now + dur, (id << 2) | TOKEN_KIND_BOUNDARY);
        // Deadline poll for the MI that just ended (if any is pending).
        if let Some(dl) = self.monitor.next_deadline() {
            ctx.set_timer(dl, (id << 2) | TOKEN_KIND_DEADLINE);
        }
    }

    /// Build the randomized trial direction sequence for one decision round:
    /// one or two pairs, each `+,−` or `−,+` uniformly at random (§3.2).
    fn make_trial_dirs(&self, ctx: &mut CtrlCtx) -> Vec<f64> {
        let pairs = if self.cfg.rct { 2 } else { 1 };
        let mut dirs = Vec::with_capacity(pairs * 2);
        for _ in 0..pairs {
            if ctx.rng.coin() {
                dirs.extend_from_slice(&[1.0, -1.0]);
            } else {
                dirs.extend_from_slice(&[-1.0, 1.0]);
            }
        }
        dirs
    }

    /// Enter decision making at the current base rate.
    fn enter_decision(&mut self, eps: f64, ctx: &mut CtrlCtx) {
        self.trial_round += 1;
        let round = self.trial_round;
        // Results from abandoned rounds can never conclude; drop them.
        self.trial_utils.retain(|(r, _), _| *r >= round);
        let eps = eps.clamp(self.cfg.eps_min, self.cfg.eps_max);
        let dirs = self.make_trial_dirs(ctx);
        // Issue the first trial immediately (re-align).
        let dir0 = dirs[0];
        let rate0 = self.clamp_rate(self.rate * (1.0 + dir0 * eps));
        self.phase = Phase::Trials {
            round,
            eps,
            dirs,
            issued: 1,
        };
        self.begin_mi(
            rate0,
            Purpose::Trial {
                round,
                slot: 0,
                dir: dir0,
                rate: rate0,
            },
            ctx,
        );
    }

    /// Enter rate adjusting in direction `dir` from the just-decided rate.
    fn enter_adjusting(&mut self, dir: f64, seed_utility: f64, ctx: &mut CtrlCtx) {
        self.adjust_utils.clear();
        self.adjust_utils.insert(0, seed_utility);
        self.phase = Phase::Adjusting { dir, n: 0 };
        self.stats.decisions += 1;
        // First adjusting MI starts at the next boundary; meanwhile run at
        // the new base rate (n = 0 plays the role of r0).
        self.begin_mi(
            self.rate,
            Purpose::Adjust {
                n: 0,
                rate: self.rate,
            },
            ctx,
        );
    }

    /// An MI boundary fired for MI `mi_id` — if it's still the active MI,
    /// start the next one per the current phase.
    fn on_boundary(&mut self, mi_id: u64, ctx: &mut CtrlCtx) {
        if self.monitor.current_id() != Some(mi_id) {
            return; // stale boundary: the MI was re-aligned away
        }
        let step = match self.purposes.get(&mi_id) {
            Some(Purpose::Start { step, .. }) => *step,
            _ => 0,
        };
        self.advance_phase(step, ctx);
    }

    /// The phase machine's boundary action: the active MI ended (timer in
    /// per-ACK mode, report delivery in batched mode); issue the next MI.
    /// `start_step` is the starting-phase step of the MI that just ended.
    fn advance_phase(&mut self, start_step: u32, ctx: &mut CtrlCtx) {
        match self.phase.clone() {
            Phase::Starting => {
                let step = start_step;
                let next_rate = self.clamp_rate(self.rate * 2.0);
                self.rate = next_rate;
                self.begin_mi(
                    next_rate,
                    Purpose::Start {
                        step: step + 1,
                        rate: next_rate,
                    },
                    ctx,
                );
            }
            Phase::Trials {
                round,
                eps,
                dirs,
                issued,
            } => {
                if (issued as usize) < dirs.len() {
                    let slot = issued;
                    let dir = dirs[slot as usize];
                    let rate = self.clamp_rate(self.rate * (1.0 + dir * eps));
                    self.phase = Phase::Trials {
                        round,
                        eps,
                        dirs,
                        issued: issued + 1,
                    };
                    self.begin_mi(
                        rate,
                        Purpose::Trial {
                            round,
                            slot,
                            dir,
                            rate,
                        },
                        ctx,
                    );
                } else {
                    // All trials issued; hold at r while results arrive
                    // (§3.2: "changes the rate back to r and keeps
                    // aggregating SACKs").
                    self.phase = Phase::WaitResults { round, eps };
                    self.begin_mi(self.rate, Purpose::Hold, ctx);
                }
            }
            Phase::WaitResults { .. } => {
                self.begin_mi(self.rate, Purpose::Hold, ctx);
            }
            Phase::Adjusting { dir, n } => {
                // Bounded optimism: utility results lag ≈1 RTT behind the
                // MI they measure. Racing more than two un-evaluated steps
                // ahead turns that lag into a large overshoot (each step is
                // n·ε, so late steps are big). Hold the current rate until
                // the pipeline catches up.
                let newest_result = self.adjust_utils.keys().copied().max().unwrap_or(0);
                if n.saturating_sub(newest_result) >= 3 {
                    self.begin_mi(self.rate, Purpose::Hold, ctx);
                    return;
                }
                let next_n = n + 1;
                let next_rate =
                    self.clamp_rate(self.rate * (1.0 + next_n as f64 * self.cfg.eps_min * dir));
                self.rate = next_rate;
                self.phase = Phase::Adjusting { dir, n: next_n };
                self.begin_mi(
                    next_rate,
                    Purpose::Adjust {
                        n: next_n,
                        rate: next_rate,
                    },
                    ctx,
                );
            }
        }
    }

    /// A completed MI's utility is available.
    fn on_mi_complete(&mut self, m: &MiMetrics, ctx: &mut CtrlCtx) {
        self.stats.mis_completed += 1;
        if std::env::var_os("PCC_TRACE").is_some() {
            eprintln!(
                "[pcc {:>10.6}] mi={} phase={} rate={:.2}Mbps x={:.2} T={:.2} L={:.4} rtt={:.2}ms u={:.3}",
                ctx.now.as_secs_f64(),
                m.mi_id,
                self.phase_name(),
                self.rate / 1e6,
                m.x_mbps(),
                m.t_mbps(),
                m.loss_rate,
                m.avg_rtt.as_millis_f64(),
                if m.sent == 0 { 0.0 } else { self.utility.utility(m) },
            );
        }
        let Some(purpose) = self.purposes.remove(&m.mi_id) else {
            return;
        };
        // Skip empty MIs for control decisions: a 0-packet MI carries no
        // information about the rate (it usually means severe app-limiting).
        let u = if m.sent == 0 {
            0.0
        } else {
            self.utility.utility(m)
        };
        match purpose {
            Purpose::Start { step, rate: _ } => {
                self.start_utils.insert(step, u);
                if !matches!(self.phase, Phase::Starting) {
                    return;
                }
                if step == 0 {
                    return;
                }
                let Some(&prev) = self.start_utils.get(&(step - 1)) else {
                    return;
                };
                if !Self::improved(u, prev) {
                    let prev_rate = match self.purposes.values().find_map(|p| match p {
                        Purpose::Start { step: s, rate } if *s == step - 1 => Some(*rate),
                        _ => None,
                    }) {
                        Some(r) => r,
                        // The previous MI's purpose is gone (already
                        // completed); its rate is half of this MI's.
                        None => self.clamp_rate(self.rate_of_start_step(step - 1)),
                    };
                    // Early MIs carry only tens of packets, so the measured
                    // loss rate is quantized and the sigmoid makes single
                    // unlucky samples look like cliffs. Exit immediately
                    // only on unambiguous evidence — a lossless delivery
                    // plateau (buffer filling: T capped, L = 0) or a deep
                    // multi-loss utility cliff; otherwise tolerate exactly
                    // one noisy dip before concluding.
                    self.start_misses += 1;
                    let plateau = m.lost == 0;
                    let cliff = m.lost >= 2 && u < prev * 0.6;
                    if plateau || cliff || self.start_misses >= 2 {
                        self.exit_starting(prev_rate, m, ctx);
                    } else {
                        // Spurious dip: keep doubling and let the next
                        // comparison use the pre-dip level.
                        self.start_utils.insert(step, prev);
                    }
                } else {
                    self.start_misses = 0;
                }
            }
            Purpose::Trial {
                round, slot, dir, ..
            } => {
                self.trial_utils.insert((round, slot), (dir, u));
                self.maybe_conclude_decision(round, ctx);
            }
            Purpose::Adjust { n, .. } => {
                if !matches!(self.phase, Phase::Adjusting { .. }) {
                    return;
                }
                self.adjust_utils.insert(n, u);
                // Only the previous step's utility is ever compared again.
                self.adjust_utils.retain(|&k, _| k + 2 > n);
                if n == 0 {
                    // n = 0 re-measures the decided rate; only replace the
                    // trial-seeded utility, no comparison yet.
                    return;
                }
                let Some(&prev) = self.adjust_utils.get(&(n - 1)) else {
                    return;
                };
                let dir = match self.phase {
                    Phase::Adjusting { dir, .. } => dir,
                    _ => unreachable!("checked above"),
                };
                // Two revert triggers. (a) Utility actually fell — the
                // paper's rule; a plain comparison, so measurement noise on
                // a lossy link doesn't kill genuine climbing momentum.
                // (b) Structural plateau: while moving *up*, delivery lags
                // the send rate with little loss — the MI is filling a
                // buffer, and utility comparisons are blind to that until
                // the buffer finally overflows (T caps, L stays 0).
                let queue_filling =
                    dir > 0.0 && m.throughput_bps < 0.95 * m.send_rate_bps && m.loss_rate < 0.025;
                if u < prev || queue_filling {
                    // Utility stopped improving at r_n: revert to r_{n−1}
                    // and decide.
                    let dir = match self.phase {
                        Phase::Adjusting { dir, .. } => dir,
                        _ => unreachable!(),
                    };
                    let r_n_minus_1 = self.rate / (1.0 + n as f64 * self.cfg.eps_min * dir);
                    // If further adjusting MIs already ran past n, self.rate
                    // is ahead; recompute r_{n−1} by unwinding from the
                    // stored purposes instead when available.
                    let target = self
                        .purposes
                        .values()
                        .find_map(|p| match p {
                            Purpose::Adjust { n: pn, rate } if *pn == n.saturating_sub(1) => {
                                Some(*rate)
                            }
                            _ => None,
                        })
                        .unwrap_or(r_n_minus_1);
                    self.rate = self.clamp_rate(target);
                    self.stats.adjust_reverts += 1;
                    self.enter_decision(self.cfg.eps_min, ctx);
                }
            }
            Purpose::Hold => {}
        }
    }

    /// Leave the starting phase: revert to `revert_rate`, additionally
    /// capped just below the failing MI's *measured* delivery rate —
    /// sending at exactly the bottleneck share would leave any queue the
    /// overshoot built standing forever (rate == drain rate), which matters
    /// for delay-based utilities under FQ (§3.2 Starting State).
    fn exit_starting(&mut self, revert_rate: f64, m: &MiMetrics, ctx: &mut CtrlCtx) {
        let drain_cap = if m.throughput_bps > 0.0 {
            0.9 * m.throughput_bps
        } else {
            revert_rate
        };
        self.rate = self.clamp_rate(revert_rate.min(drain_cap));
        self.stats.starts_exited += 1;
        self.start_utils.clear();
        self.start_misses = 0;
        self.enter_decision(self.cfg.eps_min, ctx);
    }

    /// Translate one report window into the monitor's [`MiMetrics`]
    /// vocabulary. The formulas mirror `Monitor`'s exactly (send rate =
    /// sent bytes over the window, spacing-based delivery rate, loss over
    /// sent, genuine-sample RTT mean; see the parity tests in
    /// `pcc_transport::report`), so where an MI boundary coincides with a
    /// report boundary the two paths compute identical utilities.
    fn metrics_from_report(
        &mut self,
        id: u64,
        target_rate: f64,
        rep: &MeasurementReport,
    ) -> MiMetrics {
        let secs = rep.span().as_secs_f64().max(1e-9);
        let avg_rtt = if rep.rtt_samples == 0 {
            self.prev_avg_rtt.unwrap_or(SimDuration::from_millis(100))
        } else {
            rep.mean_rtt()
        };
        let min_rtt = if rep.min_rtt.is_zero() {
            avg_rtt
        } else {
            rep.min_rtt
        };
        let m = MiMetrics {
            mi_id: id,
            target_rate_bps: target_rate,
            send_rate_bps: rep.sent_bytes as f64 * 8.0 / secs,
            throughput_bps: rep.delivery_rate_bps(),
            loss_rate: if rep.sent_pkts == 0 {
                0.0
            } else {
                rep.lost_pkts as f64 / rep.sent_pkts as f64
            },
            avg_rtt,
            prev_avg_rtt: self.prev_avg_rtt,
            min_rtt,
            rtt_slope: rep.rtt_slope().unwrap_or(0.0),
            duration: rep.span(),
            started_at: rep.start,
            sent: rep.sent_pkts,
            acked: rep.acked_pkts,
            lost: rep.lost_pkts,
        };
        self.prev_avg_rtt = Some(avg_rtt);
        m
    }

    /// Rate of starting step `k` assuming pure doubling from the current
    /// overshoot position (used when the step's purpose is gone).
    fn rate_of_start_step(&self, step: u32) -> f64 {
        // The active rate is r0·2^latest; walk back via stored purposes if
        // possible, else halve once (the common case: the decrease is
        // detected one step late).
        let latest = self
            .purposes
            .values()
            .filter_map(|p| match p {
                Purpose::Start { step, .. } => Some(*step),
                _ => None,
            })
            .max()
            .unwrap_or(step + 1);
        let back = latest.saturating_sub(step) as i32;
        self.rate / 2f64.powi(back)
    }

    /// If all trials of `round` have results, conclude the decision.
    fn maybe_conclude_decision(&mut self, round: u64, ctx: &mut CtrlCtx) {
        let (cur_round, eps) = match self.phase {
            Phase::Trials { round, eps, .. } => (round, eps),
            Phase::WaitResults { round, eps } => (round, eps),
            _ => return,
        };
        if round != cur_round {
            return;
        }
        let n_trials = if self.cfg.rct { 4 } else { 2 };
        let mut pair_winners = Vec::new();
        let mut utils_by_dir: [(f64, u32); 2] = [(0.0, 0); 2]; // [down, up]
        for pair in 0..n_trials / 2 {
            let a = self.trial_utils.get(&(round, pair * 2));
            let b = self.trial_utils.get(&(round, pair * 2 + 1));
            let (Some(&(dir_a, u_a)), Some(&(dir_b, u_b))) = (a, b) else {
                return; // not all results in yet
            };
            // Each pair has one +ε and one −ε MI; the winner is the
            // direction of the higher-utility MI (exact ties go to the
            // later-run trial, which is a uniformly random direction).
            let winner = if u_a > u_b { dir_a } else { dir_b };
            pair_winners.push(winner);
            for (d, u) in [(dir_a, u_a), (dir_b, u_b)] {
                let slot = if d > 0.0 { 1 } else { 0 };
                utils_by_dir[slot].0 += u;
                utils_by_dir[slot].1 += 1;
            }
        }
        self.trial_utils.retain(|(r, _), _| *r != round);
        let all_up = pair_winners.iter().all(|&w| w > 0.0);
        let all_down = pair_winners.iter().all(|&w| w < 0.0);
        if all_up || all_down {
            let dir = if all_up { 1.0 } else { -1.0 };
            let new_rate = self.clamp_rate(self.rate * (1.0 + dir * eps));
            self.rate = new_rate;
            // Seed u(r0) for the first adjusting comparison with the mean
            // utility the winning-direction trials measured at ≈ this rate.
            let (sum, n) = utils_by_dir[if dir > 0.0 { 1 } else { 0 }];
            let seed = if n > 0 { sum / n as f64 } else { 0.0 };
            self.enter_adjusting(dir, seed, ctx);
        } else {
            // Inconclusive: hold r, escalate ε, try again (§3.2).
            self.stats.inconclusive += 1;
            self.enter_decision(eps + self.cfg.eps_min, ctx);
        }
    }
}

impl CongestionControl for PccController {
    fn name(&self) -> &'static str {
        "pcc"
    }

    fn on_start(&mut self, ctx: &mut CtrlCtx) {
        // 2·MSS/RTT, like TCP's initial window (§3.2). `begin_mi` requests
        // the rate through the effects sink.
        let r0 = 2.0 * self.mss as f64 * 8.0 / self.cfg.rtt_hint.as_secs_f64();
        self.rate = self.clamp_rate(r0);
        self.phase = Phase::Starting;
        self.begin_mi(
            self.rate,
            Purpose::Start {
                step: 0,
                rate: self.rate,
            },
            ctx,
        );
    }

    fn on_sent(&mut self, ev: &SentEvent, _ctx: &mut CtrlCtx) {
        self.monitor.on_sent(ev.seq, ev.bytes);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut CtrlCtx) {
        if ack.sampled {
            // Only exact per-packet samples feed the RTT estimator and
            // the monitor's timing state; an ACK of a retransmission is
            // ambiguous about which transmission it measures. The acked
            // seq is credited (with its timing) before the cumulative
            // prefix so the sample isn't lost to untimed resolution.
            self.rtt.on_sample(ack.rtt);
            self.monitor.on_ack(ack.seq, ack.rtt, ack.recv_at);
        }
        // The cumulative ACK proves delivery even when this ACK carries
        // no usable RTT sample — a retransmission's ACK is ambiguous
        // about timing, not about delivery. Skipping it here let
        // reverse-path ACK loss masquerade as data loss whenever the
        // only surviving proof rode on a retransmission's ACK.
        self.monitor.on_cum_ack(ack.cum_ack);
        for m in self.monitor.poll(ctx.now) {
            self.on_mi_complete(&m, ctx);
        }
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut CtrlCtx) {
        for &seq in loss.seqs {
            self.monitor.on_loss(seq);
        }
        for m in self.monitor.poll(ctx.now) {
            self.on_mi_complete(&m, ctx);
        }
    }

    fn on_resume(&mut self, ctx: &mut CtrlCtx) {
        // Outage recovery: every in-flight MI measured a path that no
        // longer exists (or a blackout). Discard the measurement pipeline
        // wholesale — stale boundary/deadline timers die against the
        // fresh monitor's id space — keep the base rate as the operating
        // point, and re-probe around it with a fresh decision round
        // instead of concluding half-dark trials.
        self.monitor = Monitor::new();
        self.purposes.clear();
        self.start_utils.clear();
        self.start_misses = 0;
        self.trial_utils.clear();
        self.adjust_utils.clear();
        self.pending_mis.clear();
        self.prev_avg_rtt = None;
        self.rtt = RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(120));
        self.rate = self.clamp_rate(self.rate);
        self.enter_decision(self.cfg.eps_min, ctx);
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut CtrlCtx) {
        if !self.batched {
            // First report: the engine runs us off-path. Abandon the
            // monitor pipeline (its timers are dead from here on) and
            // restart the MI pipeline report-clocked at the current rate
            // and phase. This report measured the unmonitored prelude, so
            // it issues the first batched MI instead of being judged.
            self.batched = true;
            self.purposes.clear();
            self.pending_mis.clear();
            self.start_utils.clear();
            self.start_misses = 0;
            let purpose = if matches!(self.phase, Phase::Starting) {
                Purpose::Start {
                    step: 0,
                    rate: self.rate,
                }
            } else {
                Purpose::Hold
            };
            let rate = self.rate;
            self.begin_mi(rate, purpose, ctx);
            self.mi_begun = false;
            return;
        }
        // The estimator normally eats every sampled ACK; feed it the
        // report's extremes instead (the min keeps the propagation
        // estimate honest, the mean drives SRTT-scaled slacks).
        if rep.rtt_samples > 0 {
            if let Some(min) = rep.rtt_min {
                self.rtt.on_sample(min);
            }
            self.rtt.on_sample(rep.mean_rtt());
        }
        self.mi_begun = false;
        // This report's ACKs measure the MI issued one window back
        // (results lag ≈1 RTT, §3.1); judge it now.
        if self.pending_mis.len() >= 2 {
            if let Some((id, rate)) = self.pending_mis.pop_front() {
                let m = self.metrics_from_report(id, rate, rep);
                self.on_mi_complete(&m, ctx);
            }
        }
        // Unless judging re-aligned the pipeline, the report boundary is
        // the MI boundary: issue the next MI per the current phase.
        if !self.mi_begun {
            let step = self
                .purposes
                .values()
                .filter_map(|p| match p {
                    Purpose::Start { step, .. } => Some(*step),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            self.advance_phase(step, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut CtrlCtx) {
        if self.batched {
            // Leftover monitor boundary/deadline timers from the per-ACK
            // prelude — meaningless once report-clocked.
            return;
        }
        let mi_id = token >> 2;
        let kind = token & 0b11;
        match kind {
            TOKEN_KIND_BOUNDARY => self.on_boundary(mi_id, ctx),
            TOKEN_KIND_DEADLINE => {
                for m in self.monitor.poll(ctx.now) {
                    self.on_mi_complete(&m, ctx);
                }
                // Keep the pending queue covered by a deadline timer.
                if let Some(dl) = self.monitor.next_deadline() {
                    ctx.set_timer(dl, (mi_id << 2) | TOKEN_KIND_DEADLINE);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::rng::SimRng;
    use pcc_simnet::time::SimTime;
    use pcc_transport::cc::{Effects as CtrlEffects, LossKind};

    /// Minimal harness: drives the controller directly with a virtual
    /// clock, collecting rate changes and timers like an engine would.
    struct Harness {
        ctrl: PccController,
        rng: SimRng,
        fx: CtrlEffects,
        now: SimTime,
        rate: f64,
        timers: Vec<(SimTime, u64)>,
        next_seq: u64,
    }

    impl Harness {
        fn new(cfg: PccConfig) -> Self {
            Harness {
                ctrl: PccController::new(cfg),
                rng: SimRng::new(7),
                fx: CtrlEffects::default(),
                now: SimTime::ZERO,
                rate: 0.0,
                timers: Vec::new(),
                next_seq: 0,
            }
        }

        fn drain(&mut self) {
            let d = self.fx.drain();
            if let Some(r) = d.rate {
                self.rate = r;
            }
            self.timers.extend(d.timers);
        }

        fn start(&mut self) {
            {
                let mut cc = CtrlCtx::new(self.now, &mut self.rng, &mut self.fx);
                self.ctrl.on_start(&mut cc);
            }
            self.drain();
        }

        /// Fire every timer due at or before `t` (in time order).
        fn advance_to(&mut self, t: SimTime) {
            loop {
                self.timers.sort_by_key(|(at, _)| *at);
                let Some(&(at, token)) = self.timers.first() else {
                    break;
                };
                if at > t {
                    break;
                }
                self.timers.remove(0);
                self.now = at;
                {
                    let mut cc = CtrlCtx::new(self.now, &mut self.rng, &mut self.fx);
                    self.ctrl.on_timer(token, &mut cc);
                }
                self.drain();
            }
            self.now = t;
        }

        /// Send `n` packets now and immediately resolve them: `acked` of
        /// them delivered with `rtt`, the rest lost.
        fn traffic(&mut self, n: u64, acked: u64, rtt_ms: u64) {
            for i in 0..n {
                let seq = self.next_seq + i;
                let ev = SentEvent {
                    now: self.now,
                    seq,
                    bytes: 1500,
                    retx: false,
                    in_flight: n,
                };
                let mut cc = CtrlCtx::new(self.now, &mut self.rng, &mut self.fx);
                self.ctrl.on_sent(&ev, &mut cc);
            }
            let rtt = SimDuration::from_millis(rtt_ms);
            for i in 0..n {
                let seq = self.next_seq + i;
                if i < acked {
                    let ack = AckEvent {
                        now: self.now,
                        seq,
                        rtt,
                        sampled: true,
                        srtt: rtt,
                        min_rtt: rtt,
                        max_rtt: rtt,
                        recv_at: self.now + SimDuration::from_micros(i * 120),
                        probe_train: None,
                        of_retx: false,
                        cum_ack: seq + 1,
                        newly_acked: 1,
                        in_flight: n - i,
                        mss: 1500,
                        in_recovery: false,
                    };
                    let mut cc = CtrlCtx::new(self.now, &mut self.rng, &mut self.fx);
                    self.ctrl.on_ack(&ack, &mut cc);
                } else {
                    let seqs = [seq];
                    let ev = LossEvent {
                        now: self.now,
                        seqs: &seqs,
                        kind: LossKind::Detected,
                        new_episode: true,
                        in_flight: n - i,
                        mss: 1500,
                    };
                    let mut cc = CtrlCtx::new(self.now, &mut self.rng, &mut self.fx);
                    self.ctrl.on_loss(&ev, &mut cc);
                }
            }
            self.next_seq += n;
            self.drain();
        }
    }

    fn cfg() -> PccConfig {
        PccConfig::paper().with_rtt_hint(SimDuration::from_millis(100))
    }

    #[test]
    fn starts_at_two_mss_per_rtt() {
        let mut h = Harness::new(cfg());
        h.start();
        // 2 × 1500 B × 8 / 100 ms = 240 kbps.
        assert!((h.rate - 240_000.0).abs() < 1.0, "rate {}", h.rate);
        assert_eq!(h.ctrl.phase_name(), "starting");
        assert!(!h.timers.is_empty(), "boundary timer armed");
    }

    #[test]
    fn starting_doubles_each_boundary() {
        let mut h = Harness::new(cfg());
        h.start();
        let r0 = h.rate;
        h.advance_to(SimTime::from_millis(600));
        assert!(h.rate >= 2.0 * r0 - 1.0, "doubled: {} -> {}", r0, h.rate);
        assert_eq!(h.ctrl.phase_name(), "starting");
    }

    #[test]
    fn clean_mis_keep_doubling_lossy_cliff_exits() {
        let mut h = Harness::new(cfg());
        h.start();
        // MI 0: clean.
        h.traffic(10, 10, 100);
        h.advance_to(SimTime::from_millis(250)); // boundary: MI 1 begins
                                                 // MI 1: clean again, doubled throughput.
        h.traffic(20, 20, 100);
        h.advance_to(SimTime::from_millis(500));
        assert_eq!(h.ctrl.phase_name(), "starting", "still climbing");
        // MI 2: heavy loss — utility cliff.
        h.traffic(40, 10, 100);
        h.advance_to(SimTime::from_secs(2));
        assert_eq!(
            h.ctrl.stats().starts_exited,
            1,
            "cliff ends the starting phase: {:?}",
            h.ctrl.stats()
        );
        assert_ne!(h.ctrl.phase_name(), "starting");
    }

    #[test]
    fn single_loss_does_not_abort_startup() {
        let mut h = Harness::new(cfg());
        h.start();
        h.traffic(10, 10, 100);
        h.advance_to(SimTime::from_millis(250));
        // One lost packet of 20: L = 5% quantum noise, not congestion.
        h.traffic(20, 19, 100);
        h.advance_to(SimTime::from_millis(500));
        h.traffic(40, 40, 100);
        h.advance_to(SimTime::from_millis(800));
        assert_eq!(
            h.ctrl.stats().starts_exited,
            0,
            "single-loss dip ignored: {:?}",
            h.ctrl.stats()
        );
    }

    #[test]
    fn unsampled_cum_ack_still_resolves_deliveries() {
        // An ACK of a retransmission carries no usable RTT sample
        // (`sampled: false`), but its cumulative ACK still proves the
        // prefix arrived. Step 1's packets are resolved *only* by such
        // an ACK and no later ACK re-covers them before the MI deadline
        // — so the pre-fix sampling guard (which returned before
        // `on_cum_ack`) wrote all 20 packets off as lost at the
        // deadline and aborted startup on a phantom loss cliff.
        let mut h = Harness::new(cfg());
        h.start();
        // Step 0: clean, sampled traffic (step 0 is never compared).
        h.traffic(10, 10, 100);
        // Into step 1 (first boundary fires at 500 ms: ten 1500 B
        // packets at the 240 kbps starting rate).
        h.advance_to(SimTime::from_millis(600));
        assert_eq!(h.ctrl.phase_name(), "starting");
        // Step 1: 20 packets, and not one per-packet SACK survives the
        // reverse path — delivery is proven solely by the cumulative
        // ACK riding on a retransmission's (unsampled) ACK.
        for i in 0..20 {
            let ev = SentEvent {
                now: h.now,
                seq: h.next_seq + i,
                bytes: 1500,
                retx: false,
                in_flight: 20,
            };
            let mut cc = CtrlCtx::new(h.now, &mut h.rng, &mut h.fx);
            h.ctrl.on_sent(&ev, &mut cc);
        }
        h.next_seq += 20;
        let rtt = SimDuration::from_millis(100);
        let ack = AckEvent {
            now: h.now,
            seq: h.next_seq - 1,
            rtt,
            sampled: false,
            srtt: rtt,
            min_rtt: rtt,
            max_rtt: rtt,
            recv_at: h.now,
            probe_train: None,
            of_retx: true,
            cum_ack: h.next_seq,
            newly_acked: 20,
            in_flight: 0,
            mss: 1500,
            in_recovery: false,
        };
        {
            let mut cc = CtrlCtx::new(h.now, &mut h.rng, &mut h.fx);
            h.ctrl.on_ack(&ack, &mut cc);
        }
        h.drain();
        // Step 1's MI ends at its 750 ms boundary. With the fix it is
        // already fully resolved by the cumulative ACK, so it publishes
        // right there (two completed MIs by 900 ms) and startup keeps
        // climbing. Pre-fix, the guard dropped the cum_ack: the MI sat
        // unresolved past 900 ms awaiting its ~1000 ms deadline, where
        // all 20 packets were written off as lost and the phantom
        // utility cliff ended the starting phase.
        h.advance_to(SimTime::from_millis(900));
        assert_eq!(
            h.ctrl.stats().mis_completed,
            2,
            "the cum-ack alone resolves the MI, no deadline wait: {:?}",
            h.ctrl.stats()
        );
        assert_eq!(
            h.ctrl.stats().starts_exited,
            0,
            "cum-ack-only resolution is delivery, not a loss cliff: {:?}",
            h.ctrl.stats()
        );
        assert_eq!(h.ctrl.phase_name(), "starting", "still climbing");
    }

    #[test]
    fn decision_trials_perturb_by_epsilon() {
        let mut h = Harness::new(cfg());
        h.start();
        // High packet volumes keep the measured delivery rate — and hence
        // the post-collapse base rate — far above the controller's rate
        // floor, so trial rates are never clamped back onto the base.
        h.traffic(100, 100, 100);
        h.advance_to(SimTime::from_millis(250));
        h.traffic(200, 200, 100);
        h.advance_to(SimTime::from_millis(500));
        h.traffic(400, 80, 100); // collapse
        h.advance_to(SimTime::from_secs(2));
        assert_eq!(h.ctrl.phase_name(), "decision-trials");
        let base = h.ctrl.base_rate_bps();
        // The active trial rate is clamp(base·(1±kε)) for some escalation
        // step k — the clamp matters because a post-collapse base can sit
        // on the controller's rate floor (2·MSS/RTT), where the −ε trial
        // legitimately collapses back onto the base.
        let floor = 2.0 * 1500.0 * 8.0 / 0.1; // 2·MSS/RTT at the 100 ms hint
        let eps_min = cfg().eps_min;
        let eps_max = cfg().eps_max;
        let mut eps = eps_min;
        let mut matched = false;
        while eps <= eps_max + 1e-12 {
            for dir in [-1.0, 1.0] {
                let expected = (base * (1.0 + dir * eps)).max(floor);
                if (h.rate - expected).abs() < 1e-6 {
                    matched = true;
                }
            }
            eps += eps_min;
        }
        assert!(
            matched,
            "trial at clamp(base·(1±kε)): rate {} base {base}",
            h.rate
        );
        // And the up-trial is genuinely above base when base is at the
        // floor, so the perturbation machinery is alive.
        assert!(base >= floor - 1e-6, "base respects the floor");
    }

    #[test]
    fn rate_stays_within_configured_bounds() {
        let mut c = cfg();
        c.max_rate_bps = 1e6;
        let mut h = Harness::new(c);
        h.start();
        // Let it double unboundedly with clean traffic: must clamp at max.
        for step in 0..12 {
            h.traffic(10, 10, 100);
            h.advance_to(SimTime::from_millis(250 * (step + 1)));
        }
        assert!(h.rate <= 1e6 + 1.0, "clamped: {}", h.rate);
    }

    /// A report window: `sent` packets over `[start_ms, end_ms)`, `acked`
    /// delivered (100 ms RTT — matching the hint, so the 2·MSS/RTT floor
    /// stays put — arrivals spanning the window) and `lost` written off.
    /// Engine snapshots stamped like `CcSender::emit_report`.
    fn mk_rep(start_ms: u64, end_ms: u64, sent: u64, acked: u64, lost: u64) -> MeasurementReport {
        let rtt = SimDuration::from_millis(100);
        MeasurementReport {
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            sent_pkts: sent,
            sent_bytes: sent * 1500,
            acked_pkts: acked,
            acked_bytes: acked * 1500,
            lost_pkts: lost,
            lost_bytes: lost * 1500,
            loss_events: u32::from(lost > 0),
            new_loss_episode: lost > 0,
            rtt_min: (acked > 0).then_some(rtt),
            rtt_max: (acked > 0).then_some(rtt),
            first_rtt: (acked > 0).then_some(rtt),
            last_rtt: (acked > 0).then_some(rtt),
            rtt_sum_ns: rtt.as_nanos() as u128 * acked as u128,
            rtt_samples: acked,
            first_recv: (acked > 0).then(|| SimTime::from_millis(start_ms + 1)),
            last_recv: (acked > 0).then(|| SimTime::from_millis(end_ms)),
            srtt: rtt,
            min_rtt: rtt,
            in_flight: 4,
            cum_ack: 0,
            mss: 1500,
            in_recovery: false,
            ..MeasurementReport::default()
        }
    }

    impl Harness {
        fn report(&mut self, rep: &MeasurementReport) {
            self.now = rep.end;
            {
                let mut cc = CtrlCtx::new(self.now, &mut self.rng, &mut self.fx);
                self.ctrl.on_report(rep, &mut cc);
            }
            self.drain();
        }
    }

    #[test]
    fn batched_reports_clock_the_mi_pipeline() {
        let mut h = Harness::new(cfg());
        h.start();
        // First report flips the controller off-path and issues the first
        // report-clocked MI: a rate and a report interval, no new timers.
        let before = h.timers.len();
        h.report(&mk_rep(0, 100, 3, 3, 0));
        let d = h.fx.drain();
        assert_eq!(h.timers.len(), before, "no monitor timers off-path");
        // Starting phase: each subsequent report boundary doubles.
        let r1 = h.rate;
        h.report(&mk_rep(100, 200, 6, 6, 0));
        assert!((h.rate - 2.0 * r1).abs() < 1.0, "doubled: {}", h.rate);
        h.report(&mk_rep(200, 300, 12, 12, 0));
        assert!((h.rate - 4.0 * r1).abs() < 1.0, "doubled again");
        assert_eq!(h.ctrl.phase_name(), "starting");
        drop(d);
        // A collapse window — three quarters lost — judged against the
        // clean previous step is an unambiguous utility cliff.
        h.report(&mk_rep(300, 400, 48, 12, 36));
        h.report(&mk_rep(400, 500, 40, 10, 30));
        assert_eq!(
            h.ctrl.stats().starts_exited,
            1,
            "cliff ends starting off-path: {:?}",
            h.ctrl.stats()
        );
        assert_eq!(h.ctrl.phase_name(), "decision-trials");
    }

    #[test]
    fn batched_reports_request_their_own_interval() {
        let mut h = Harness::new(cfg());
        h.start();
        h.fx.drain();
        {
            let mut cc = CtrlCtx::new(SimTime::from_millis(100), &mut h.rng, &mut h.fx);
            h.ctrl.on_report(&mk_rep(0, 100, 3, 3, 0), &mut cc);
        }
        let d = h.fx.drain();
        assert!(d.rate.is_some(), "rate re-asserted");
        let next = d.report_in.expect("MI duration drives the report clock");
        // ≥ the 10-packet MI floor at this rate, and bounded by the RTT
        // multiple rule — i.e. a genuine mi_duration, not a default.
        assert!(next > SimDuration::from_millis(50), "interval {next:?}");
    }

    #[test]
    fn batched_metrics_match_the_monitor_where_boundaries_align() {
        use crate::monitor::Monitor;
        use crate::utility::UtilityFunction;
        use pcc_transport::report::ReportAggregator;

        let rtt = SimDuration::from_millis(30);
        let t0 = SimTime::ZERO;
        let t_end = SimTime::from_millis(60);
        let target = 4e6;
        // Identical traffic through both measurement paths: 20 packets,
        // the first 18 delivered (30 ms RTT, arrivals evenly spread), the
        // last 2 lost.
        let mut mon = Monitor::new();
        mon.begin(t0, target, SimDuration::from_millis(50));
        let mut agg = ReportAggregator::default();
        agg.begin(t0);
        for seq in 0..20u64 {
            let at = t0 + SimDuration::from_millis(seq * 2);
            mon.on_sent(seq, 1500);
            agg.on_sent(&SentEvent {
                now: at,
                seq,
                bytes: 1500,
                retx: false,
                in_flight: seq + 1,
            });
        }
        for seq in 0..18u64 {
            let recv = t0 + SimDuration::from_millis(2 + seq * 3);
            mon.on_ack(seq, rtt, recv);
            agg.on_ack(&AckEvent {
                now: recv,
                seq,
                rtt,
                sampled: true,
                srtt: rtt,
                min_rtt: rtt,
                max_rtt: rtt,
                recv_at: recv,
                probe_train: None,
                of_retx: false,
                cum_ack: seq + 1,
                newly_acked: 1,
                in_flight: 20 - seq,
                mss: 1500,
                in_recovery: false,
            });
        }
        let lost = [18u64, 19];
        for &seq in &lost {
            mon.on_loss(seq);
        }
        agg.on_loss(&LossEvent {
            now: t_end,
            seqs: &lost,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 2,
            mss: 1500,
        });
        // Close both windows at the same instant.
        mon.begin(t_end, target, SimDuration::from_millis(50));
        let out = mon.poll(t_end + SimDuration::from_secs(1));
        let m_mon = out.first().expect("monitor published the MI");
        let mut rep = agg.take(t_end);
        rep.srtt = rtt;
        rep.min_rtt = rtt;
        rep.mss = 1500;
        let mut ctrl = PccController::new(cfg());
        let m_rep = ctrl.metrics_from_report(m_mon.mi_id, target, &rep);
        assert!(
            (m_rep.send_rate_bps - m_mon.send_rate_bps).abs() < 1e-6,
            "x: {} vs {}",
            m_rep.send_rate_bps,
            m_mon.send_rate_bps
        );
        assert!(
            (m_rep.throughput_bps - m_mon.throughput_bps).abs() < 1e-6,
            "T: {} vs {}",
            m_rep.throughput_bps,
            m_mon.throughput_bps
        );
        assert!((m_rep.loss_rate - m_mon.loss_rate).abs() < 1e-12);
        assert_eq!(m_rep.avg_rtt, m_mon.avg_rtt);
        assert!((m_rep.rtt_slope - m_mon.rtt_slope).abs() < 1e-12);
        assert_eq!(m_rep.duration, m_mon.duration);
        // Same metrics ⇒ bit-identical utility.
        let u = crate::utility::SafeSigmoid::default();
        assert_eq!(u.utility(&m_rep), u.utility(m_mon));
    }

    #[test]
    fn mi_timing_fixed_multiple_is_deterministic() {
        let c = cfg().with_mi_timing(MiTiming::FixedRttMultiple(2.0));
        let mut h = Harness::new(c);
        h.start();
        // First boundary at max(10-pkt time, 2×100 ms). 10 packets at
        // 240 kbps take 0.5 s > 0.2 s, so the packet term dominates.
        let (at, _) = *h
            .timers
            .iter()
            .min_by_key(|(at, _)| *at)
            .expect("boundary armed");
        assert!((at.as_secs_f64() - 0.5).abs() < 1e-6, "Tm = {at:?}");
    }
}
