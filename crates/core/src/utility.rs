//! Utility functions: how PCC scores the performance of a monitor interval.
//!
//! The utility function is PCC's objective. The paper's central one is the
//! "safe" sigmoid utility of §2.2, which provably yields a fair, stable
//! equilibrium (Theorem 1) while capping worst-case loss near 5%. §4.4 shows
//! the architectural payoff of making this pluggable: swap the function and
//! the same control machinery optimizes a different objective (low latency,
//! or extreme loss resilience) — something no hardwired TCP can express.

use pcc_simnet::time::{SimDuration, SimTime};

/// Measured performance of one monitor interval, as handed to a utility
/// function.
#[derive(Clone, Copy, Debug)]
pub struct MiMetrics {
    /// Monotonically increasing MI identifier.
    pub mi_id: u64,
    /// The rate the controller asked the pacer for (bits/sec).
    pub target_rate_bps: f64,
    /// The rate actually achieved on the wire: sent bytes over the MI
    /// duration (bits/sec). This is the `x` of the utility function.
    pub send_rate_bps: f64,
    /// Delivered rate: acked bytes over the MI duration (bits/sec). The `T`
    /// of the utility function.
    pub throughput_bps: f64,
    /// Fraction of the MI's packets lost (`L`).
    pub loss_rate: f64,
    /// Mean RTT of the MI's acked packets.
    pub avg_rtt: SimDuration,
    /// Mean RTT of the previous MI (for latency-gradient objectives).
    pub prev_avg_rtt: Option<SimDuration>,
    /// Minimum RTT ever sampled on this flow (propagation-delay estimate,
    /// for latency-level objectives).
    pub min_rtt: SimDuration,
    /// RTT slope within the MI, in seconds of RTT per second of wall time
    /// (positive = the bottleneck queue grew while this MI was sending).
    pub rtt_slope: f64,
    /// MI duration.
    pub duration: SimDuration,
    /// When the MI started.
    pub started_at: SimTime,
    /// Packets sent / acked / lost in this MI.
    pub sent: u64,
    /// Packets acknowledged.
    pub acked: u64,
    /// Packets declared lost (including written-off unresolved packets).
    pub lost: u64,
}

impl MiMetrics {
    /// Send rate in Mbit/s (`x` in the paper's units).
    pub fn x_mbps(&self) -> f64 {
        self.send_rate_bps / 1e6
    }

    /// Delivered throughput in Mbit/s (`T`).
    pub fn t_mbps(&self) -> f64 {
        self.throughput_bps / 1e6
    }
}

/// A pluggable MI-scoring function.
pub trait UtilityFunction: Send {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Score one monitor interval; higher is better.
    fn utility(&self, m: &MiMetrics) -> f64;
}

/// The paper's sigmoid cut-off: `1 / (1 + e^(α·y))`, a reverse sigmoid that
/// is ≈1 for `y < 0` and drops sharply to 0 once `y > 0` (α controls how
/// sharply).
pub fn sigmoid(alpha: f64, y: f64) -> f64 {
    // Guard the exponential against overflow; ±30 keeps 1 + e^z strictly
    // away from 1.0 in f64, so the sigmoid stays in the open interval (0,1).
    let z = (alpha * y).clamp(-30.0, 30.0);
    1.0 / (1.0 + z.exp())
}

/// §2.2 "safe" utility:
/// `u(x) = T·Sigmoid_α(L − 0.05) − x·L` (rates in Mbit/s).
///
/// Below the 5% loss knee this is ≈ throughput, so senders push up to
/// capacity; past the knee the sigmoid zeroes the throughput term and the
/// `−x·L` term dominates, capping aggregate loss near 5% (Theorem 1 makes
/// this precise: with α ≥ max(2.2(n−1), 100) the unique equilibrium is fair
/// and total rate stays within (C, 20C/19)).
#[derive(Clone, Copy, Debug)]
pub struct SafeSigmoid {
    /// Sigmoid steepness (paper: α = 100 for up to ~46 senders).
    pub alpha: f64,
    /// Loss knee (paper: 5%).
    pub loss_cutoff: f64,
}

impl Default for SafeSigmoid {
    fn default() -> Self {
        SafeSigmoid {
            alpha: 100.0,
            loss_cutoff: 0.05,
        }
    }
}

impl UtilityFunction for SafeSigmoid {
    fn name(&self) -> &'static str {
        "safe-sigmoid"
    }

    fn utility(&self, m: &MiMetrics) -> f64 {
        let x = m.x_mbps();
        let t = m.t_mbps();
        let l = m.loss_rate;
        t * sigmoid(self.alpha, l - self.loss_cutoff) - x * l
    }
}

/// The naive starting point the paper derives [`SafeSigmoid`] from:
/// `u(x) = T − x·L`. Loss approaches 50% as competing senders multiply —
/// kept as a baseline to demonstrate exactly that failure in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimpleThroughputLoss;

impl UtilityFunction for SimpleThroughputLoss {
    fn name(&self) -> &'static str {
        "simple"
    }

    fn utility(&self, m: &MiMetrics) -> f64 {
        m.t_mbps() - m.x_mbps() * m.loss_rate
    }
}

/// §4.4.2 loss-resilient utility: `u = T·(1 − L)`.
///
/// Under per-flow fair queueing a sender can optimize itself without a
/// loss cap; the optimum is its fair share regardless of random loss (the
/// paper demonstrates 97% of achievable throughput at 50% loss).
#[derive(Clone, Copy, Debug, Default)]
pub struct LossResilient;

impl UtilityFunction for LossResilient {
    fn name(&self) -> &'static str {
        "loss-resilient"
    }

    fn utility(&self, m: &MiMetrics) -> f64 {
        m.t_mbps() * (1.0 - m.loss_rate)
    }
}

/// §4.4.1 latency-sensitive utility for interactive flows.
///
/// The paper writes `u = (T·Sigmoid_α(L−0.05)·(RTT_{n−1}/RTT_n) − x·L) /
/// RTT_n`: a *gradient* penalty on latency increases plus the power
/// objective's `1/RTT_n`. The consecutive-MI ratio is degenerate once a
/// standing queue exists, though — the queue integrates across the ±ε
/// trials, so both trials of a pair observe the same average RTT and the
/// decision signal vanishes, leaving any bloat built during startup in
/// place forever. We therefore reference the ratio to the observed minimum
/// RTT (the propagation-delay estimate) instead:
///
/// `u = (T·Sigmoid_α(L−0.05)·(RTT_min/RTT_n) − x·L) / RTT_n`
///
/// which preserves the objective ("low latency, and no latency increase"),
/// restores an absolute gradient toward an empty queue, and adds the
/// within-MI RTT-*slope* penalty `− β·x·max(dRTT/dt, 0)` — the term the
/// authors themselves introduced in the follow-up PCC Vivace to make
/// latency observable: a standing queue hides rate overshoot from level
/// comparisons (the ±ε trials integrate to the same average RTT), but the
/// slope differs by `2ε·x` between the trials regardless of queue depth.
/// With this utility PCC holds its rate just below the fair share with an
/// empty queue, reproducing Fig. 17's observation that CoDel never sees a
/// queue worth dropping from. The paper-literal form is available as
/// [`LatencyGradient`].
#[derive(Clone, Copy, Debug)]
pub struct LatencySensitive {
    /// Sigmoid steepness.
    pub alpha: f64,
    /// Loss knee.
    pub loss_cutoff: f64,
    /// RTT-slope penalty coefficient β (Vivace's `b`).
    pub slope_penalty: f64,
}

impl Default for LatencySensitive {
    fn default() -> Self {
        LatencySensitive {
            alpha: 100.0,
            loss_cutoff: 0.05,
            slope_penalty: 25.0,
        }
    }
}

impl UtilityFunction for LatencySensitive {
    fn name(&self) -> &'static str {
        "latency-sensitive"
    }

    fn utility(&self, m: &MiMetrics) -> f64 {
        let rtt_n = m.avg_rtt.as_secs_f64().max(1e-6);
        let rtt_min = m.min_rtt.as_secs_f64().clamp(1e-6, rtt_n);
        let x = m.x_mbps();
        let t = m.t_mbps();
        let l = m.loss_rate;
        let slope_pen = self.slope_penalty * x * m.rtt_slope.max(0.0);
        (t * sigmoid(self.alpha, l - self.loss_cutoff) * (rtt_min / rtt_n) - x * l - slope_pen)
            / rtt_n
    }
}

/// The paper-literal §4.4.1 utility with the consecutive-MI RTT ratio:
/// `u = (T·Sigmoid_α(L−0.05)·(RTT_{n−1}/RTT_n) − x·L) / RTT_n`. See
/// [`LatencySensitive`] for why the bundled experiments use the
/// min-RTT-referenced variant instead.
#[derive(Clone, Copy, Debug)]
pub struct LatencyGradient {
    /// Sigmoid steepness.
    pub alpha: f64,
    /// Loss knee.
    pub loss_cutoff: f64,
}

impl Default for LatencyGradient {
    fn default() -> Self {
        LatencyGradient {
            alpha: 100.0,
            loss_cutoff: 0.05,
        }
    }
}

impl UtilityFunction for LatencyGradient {
    fn name(&self) -> &'static str {
        "latency-gradient"
    }

    fn utility(&self, m: &MiMetrics) -> f64 {
        let rtt_n = m.avg_rtt.as_secs_f64().max(1e-6);
        let rtt_prev = m
            .prev_avg_rtt
            .map(|r| r.as_secs_f64())
            .unwrap_or(rtt_n)
            .max(1e-6);
        let x = m.x_mbps();
        let t = m.t_mbps();
        let l = m.loss_rate;
        (t * sigmoid(self.alpha, l - self.loss_cutoff) * (rtt_prev / rtt_n) - x * l) / rtt_n
    }
}

/// Wrap an arbitrary closure as a utility function (application-defined
/// objectives, the paper's §2.4 flexibility argument).
pub struct CustomUtility<F: Fn(&MiMetrics) -> f64 + Send> {
    name: &'static str,
    f: F,
}

impl<F: Fn(&MiMetrics) -> f64 + Send> CustomUtility<F> {
    /// Wrap `f` under `name`.
    pub fn new(name: &'static str, f: F) -> Self {
        CustomUtility { name, f }
    }
}

impl<F: Fn(&MiMetrics) -> f64 + Send> UtilityFunction for CustomUtility<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn utility(&self, m: &MiMetrics) -> f64 {
        (self.f)(m)
    }
}

#[cfg(test)]
pub(crate) fn metrics(x_mbps: f64, t_mbps: f64, loss: f64) -> MiMetrics {
    MiMetrics {
        mi_id: 0,
        target_rate_bps: x_mbps * 1e6,
        send_rate_bps: x_mbps * 1e6,
        throughput_bps: t_mbps * 1e6,
        loss_rate: loss,
        avg_rtt: SimDuration::from_millis(30),
        prev_avg_rtt: Some(SimDuration::from_millis(30)),
        min_rtt: SimDuration::from_millis(30),
        rtt_slope: 0.0,
        duration: SimDuration::from_millis(60),
        started_at: SimTime::ZERO,
        sent: 100,
        acked: (100.0 * (1.0 - loss)) as u64,
        lost: (100.0 * loss) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_shape() {
        assert!(
            (sigmoid(100.0, -0.05) - 1.0).abs() < 0.01,
            "≈1 well below knee"
        );
        assert!(sigmoid(100.0, 0.05) < 0.01, "≈0 well above knee");
        assert!(
            (sigmoid(100.0, 0.0) - 0.5).abs() < 1e-12,
            "exactly 1/2 at knee"
        );
        // No overflow at extremes.
        assert!(sigmoid(100.0, 1e9).is_finite());
        assert!(sigmoid(100.0, -1e9).is_finite());
    }

    #[test]
    fn safe_utility_rewards_rate_without_loss() {
        let u = SafeSigmoid::default();
        let lo = u.utility(&metrics(50.0, 50.0, 0.0));
        let hi = u.utility(&metrics(100.0, 100.0, 0.0));
        assert!(hi > lo, "no loss: more throughput is better");
        // Numerically u ≈ 0.9933 * T.
        assert!((hi - 100.0 * sigmoid(100.0, -0.05)).abs() < 1e-9);
    }

    #[test]
    fn safe_utility_peaks_at_capacity() {
        // Single sender on C = 100 Mbps: u(x) for x <= C is ~x; for x > C,
        // T = C and L = (x - C)/x. The peak must sit at x = C.
        let u = SafeSigmoid::default();
        let capacity = 100.0;
        let eval = |x: f64| {
            let (t, l) = if x <= capacity {
                (x, 0.0)
            } else {
                (capacity, (x - capacity) / x)
            };
            u.utility(&metrics(x, t, l))
        };
        let at_c = eval(capacity);
        assert!(at_c > eval(capacity * 0.9), "below capacity is worse");
        assert!(at_c > eval(capacity * 1.05), "overdriving is worse");
        assert!(at_c > eval(capacity * 1.5), "heavy overdrive much worse");
    }

    #[test]
    fn safe_utility_ignores_moderate_random_loss() {
        // Random (non-congestion) loss below the knee: higher rate still
        // wins — the architectural point of §2.1's example.
        let u = SafeSigmoid::default();
        let l = 0.01;
        let lo = u.utility(&metrics(100.0, 100.0 * (1.0 - l), l));
        let hi = u.utility(&metrics(105.0, 105.0 * (1.0 - l), l));
        assert!(hi > lo, "1% random loss must not deter rate increase");
    }

    #[test]
    fn safe_utility_negative_past_cutoff() {
        let u = SafeSigmoid::default();
        let m = metrics(100.0, 90.0, 0.10);
        assert!(u.utility(&m) < 0.0, "10% loss ⇒ negative utility");
    }

    #[test]
    fn loss_resilient_tolerates_extreme_loss() {
        // At 50% random loss, throughput scales with rate: utility must
        // keep increasing in x (no cliff), unlike the safe function.
        let u = LossResilient;
        let l = 0.5;
        let lo = u.utility(&metrics(50.0, 25.0, l));
        let hi = u.utility(&metrics(100.0, 50.0, l));
        assert!(hi > lo);
        let safe = SafeSigmoid::default();
        assert!(safe.utility(&metrics(100.0, 50.0, l)) < 0.0);
    }

    #[test]
    fn latency_sensitive_penalizes_standing_queue() {
        let u = LatencySensitive::default();
        let mut empty = metrics(40.0, 40.0, 0.0);
        empty.avg_rtt = SimDuration::from_millis(20);
        empty.min_rtt = SimDuration::from_millis(20);
        let mut queued = empty;
        queued.avg_rtt = SimDuration::from_millis(40); // 20 ms standing queue
        assert!(
            u.utility(&empty) > u.utility(&queued),
            "standing queue must hurt even when RTT is stable"
        );
        // And lower absolute RTT scores higher (power objective).
        let mut low = empty;
        low.avg_rtt = SimDuration::from_millis(10);
        low.min_rtt = SimDuration::from_millis(10);
        assert!(u.utility(&low) > u.utility(&empty));
    }

    #[test]
    fn latency_gradient_penalizes_rtt_growth() {
        let u = LatencyGradient::default();
        let mut stable = metrics(40.0, 40.0, 0.0);
        stable.avg_rtt = SimDuration::from_millis(20);
        stable.prev_avg_rtt = Some(SimDuration::from_millis(20));
        let mut growing = stable;
        growing.avg_rtt = SimDuration::from_millis(40);
        growing.prev_avg_rtt = Some(SimDuration::from_millis(20));
        assert!(
            u.utility(&stable) > u.utility(&growing),
            "rising RTT must hurt"
        );
    }

    #[test]
    fn custom_utility_wraps_closure() {
        let u = CustomUtility::new("t-squared", |m: &MiMetrics| m.t_mbps().powi(2));
        assert_eq!(u.name(), "t-squared");
        assert_eq!(u.utility(&metrics(10.0, 10.0, 0.0)), 100.0);
    }

    #[test]
    fn simple_utility_linear_in_loss() {
        let u = SimpleThroughputLoss;
        let a = u.utility(&metrics(100.0, 95.0, 0.05));
        assert!((a - (95.0 - 100.0 * 0.05)).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// More throughput at equal send rate and loss never lowers any
        /// bundled utility function.
        #[test]
        fn monotone_in_throughput(x in 1.0f64..1000.0, l in 0.0f64..0.5,
                                  t1 in 0.0f64..1000.0, dt in 0.1f64..100.0) {
            let m1 = metrics(x, t1, l);
            let m2 = metrics(x, t1 + dt, l);
            let funcs: Vec<Box<dyn UtilityFunction>> = vec![
                Box::new(SafeSigmoid::default()),
                Box::new(SimpleThroughputLoss),
                Box::new(LossResilient),
                Box::new(LatencySensitive::default()),
                Box::new(LatencyGradient::default()),
            ];
            for f in &funcs {
                prop_assert!(f.utility(&m2) >= f.utility(&m1),
                    "{} must be monotone in T", f.name());
            }
        }

        /// More loss at equal send rate and throughput never raises any
        /// bundled utility function.
        #[test]
        fn antitone_in_loss(x in 1.0f64..1000.0, t in 0.0f64..1000.0,
                            l1 in 0.0f64..0.4, dl in 0.001f64..0.5) {
            let m1 = metrics(x, t, l1);
            let m2 = metrics(x, t, (l1 + dl).min(1.0));
            let funcs: Vec<Box<dyn UtilityFunction>> = vec![
                Box::new(SafeSigmoid::default()),
                Box::new(SimpleThroughputLoss),
                Box::new(LossResilient),
                Box::new(LatencySensitive::default()),
                Box::new(LatencyGradient::default()),
            ];
            for f in &funcs {
                prop_assert!(f.utility(&m2) <= f.utility(&m1),
                    "{} must be antitone in L", f.name());
            }
        }

        /// Sigmoid is bounded in (0, 1) and decreasing.
        #[test]
        fn sigmoid_bounded_decreasing(y1 in -10.0f64..10.0, dy in 0.001f64..10.0) {
            let a = sigmoid(100.0, y1);
            let b = sigmoid(100.0, y1 + dy);
            prop_assert!(a > 0.0 && a < 1.0);
            prop_assert!(b <= a);
        }
    }
}
