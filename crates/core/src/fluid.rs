//! The §2.2 game-theoretic fluid model and numerical verification of
//! Theorems 1 and 2.
//!
//! `n` senders share a bottleneck of capacity `C`. With global rate vector
//! `x`, the per-packet loss probability is `L(x) = max(0, 1 − C/Σx)`,
//! sender `i`'s throughput is `T_i = x_i(1−L)`, and its utility is
//!
//! ```text
//! u_i(x) = T_i(x) · Sigmoid_α(L(x) − 0.05) − x_i · L(x)
//! ```
//!
//! **Theorem 1.** For α ≥ max(2.2(n−1), 100) there is a unique stable state
//! and it is fair (`x*_1 = … = x*_n`), with `Σx` confined to `(C, 20C/19)`.
//!
//! **Theorem 2.** Under the ±ε best-response dynamics — each sender moves to
//! `x(1+ε)` if that yields higher utility than `x(1−ε)` with others held
//! fixed — every `x_j` converges to `(x̂(1−ε)², x̂(1+ε)²)` around the
//! equilibrium `x̂`.
//!
//! This module implements the model exactly and exposes the dynamics so the
//! test-suite (and the `fluid_equilibrium` example) can verify both theorems
//! numerically, including the paper's remark that convergence survives
//! heterogeneous step rules (AIMD/MIMD mixes).

use crate::utility::sigmoid;

/// The fluid model: capacity, sigmoid steepness, loss knee.
#[derive(Clone, Copy, Debug)]
pub struct FluidModel {
    /// Bottleneck capacity (any rate unit; Mbps in the paper's examples).
    pub capacity: f64,
    /// Sigmoid steepness α.
    pub alpha: f64,
    /// Loss knee (paper: 0.05).
    pub cutoff: f64,
}

impl FluidModel {
    /// Model with the paper's α rule: `α = max(2.2(n−1), 100)`.
    pub fn paper(capacity: f64, n_senders: usize) -> Self {
        FluidModel {
            capacity,
            alpha: (2.2 * (n_senders.saturating_sub(1)) as f64).max(100.0),
            cutoff: 0.05,
        }
    }

    /// Per-packet loss probability at aggregate rate `sum`.
    pub fn loss(&self, sum: f64) -> f64 {
        if sum <= self.capacity {
            0.0
        } else {
            1.0 - self.capacity / sum
        }
    }

    /// Utility of a sender at rate `xi` when everyone sends `sum` in total
    /// (`sum` includes `xi`).
    pub fn utility(&self, xi: f64, sum: f64) -> f64 {
        let l = self.loss(sum);
        let t = xi * (1.0 - l);
        t * sigmoid(self.alpha, l - self.cutoff) - xi * l
    }

    /// One synchronous step of the ±ε best-response dynamics: every sender
    /// compares `u(x_i(1+ε_i), x_−i)` against `u(x_i(1−ε_i), x_−i)` and
    /// multiplies its rate accordingly. `eps[i]` may differ per sender.
    pub fn step(&self, rates: &mut [f64], eps: &[f64]) {
        assert_eq!(rates.len(), eps.len());
        let sum: f64 = rates.iter().sum();
        let next: Vec<f64> = rates
            .iter()
            .zip(eps)
            .map(|(&xi, &e)| {
                let up = xi * (1.0 + e);
                let down = xi * (1.0 - e);
                // Others held fixed: replace x_i by the perturbed value.
                let u_up = self.utility(up, sum - xi + up);
                let u_down = self.utility(down, sum - xi + down);
                if u_up > u_down {
                    up
                } else {
                    down
                }
            })
            .collect();
        rates.copy_from_slice(&next);
    }

    /// Run the dynamics until the system reaches the Theorem-2 band: every
    /// rate within a few ε of the common mean and aggregate rate above
    /// capacity. The dynamics never stop moving (each step multiplies by
    /// `1±ε`), so "converged" means "entered the oscillation band around
    /// the fair equilibrium". Returns the number of iterations taken, or
    /// `max_iters` if the band was never reached.
    pub fn converge(&self, rates: &mut [f64], eps: &[f64], max_iters: usize) -> usize {
        let max_eps = eps.iter().copied().fold(0.0f64, f64::max);
        let band = 3.0 * max_eps + 1e-9;
        // Theorem-1 region for the aggregate, padded by the oscillation the
        // ±ε steps inject. Equal rates descending in lockstep from far above
        // capacity are *not* converged, even though they're "fair".
        let sum_hi = self.capacity * (20.0 / 19.0) * (1.0 + 2.0 * max_eps);
        for it in 0..max_iters {
            self.step(rates, eps);
            let sum: f64 = rates.iter().sum();
            let mean = sum / rates.len() as f64;
            let fair = rates.iter().all(|&r| (r / mean - 1.0).abs() <= band);
            if fair && sum > self.capacity && sum < sum_hi {
                return it + 1;
            }
        }
        max_iters
    }

    /// The fair-equilibrium total rate: the `Σx > C` point where a sender's
    /// ±ε comparison flips sign (found by bisection on the symmetric
    /// profile). Theorem 1 places it in `(C, 20C/19)`.
    pub fn equilibrium_sum(&self, n: usize, eps: f64) -> f64 {
        let n_f = n as f64;
        let mut lo = self.capacity;
        let mut hi = self.capacity * 20.0 / 19.0 * 1.05; // just past the bound
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let xi = mid / n_f;
            let up = self.utility(xi * (1.0 + eps), mid + xi * eps);
            let down = self.utility(xi * (1.0 - eps), mid - xi * eps);
            if up > down {
                lo = mid; // still profitable to increase: equilibrium higher
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Jain-style fairness check helper: max/min ratio of rates.
pub fn max_min_ratio(rates: &[f64]) -> f64 {
    let max = rates.iter().copied().fold(f64::MIN, f64::max);
    let min = rates.iter().copied().fold(f64::MAX, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_model() {
        let m = FluidModel::paper(100.0, 2);
        assert_eq!(m.loss(50.0), 0.0);
        assert_eq!(m.loss(100.0), 0.0);
        assert!((m.loss(125.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn alpha_rule() {
        assert_eq!(FluidModel::paper(100.0, 2).alpha, 100.0);
        assert_eq!(
            FluidModel::paper(100.0, 47).alpha,
            100.0 + 1.2000000000000028
        );
        // 2.2 * 46 = 101.2
    }

    /// Theorem 1 (numeric): the equilibrium total sits in (C, 20C/19).
    #[test]
    fn theorem1_equilibrium_band() {
        for &n in &[2usize, 4, 10, 30] {
            let m = FluidModel::paper(100.0, n);
            let sum = m.equilibrium_sum(n, 0.01);
            assert!(
                sum > 100.0 && sum < 100.0 * 20.0 / 19.0,
                "n={n}: equilibrium sum {sum} outside (100, {})",
                100.0 * 20.0 / 19.0
            );
        }
    }

    /// Theorem 2 (numeric): from wildly unfair starts, the ±ε dynamics
    /// reach a fair oscillation band around the equilibrium.
    #[test]
    fn theorem2_convergence_to_fairness() {
        let m = FluidModel::paper(100.0, 4);
        let eps = vec![0.01; 4];
        // The paper's §2.2 example: one hog at 90, others tiny.
        let mut rates = vec![90.0, 10.0, 3.0, 0.5];
        let iters = m.converge(&mut rates, &eps, 5000);
        assert!(iters < 5000, "did not settle");
        // Keep stepping and average over a window to smooth oscillation.
        let mut avg = vec![0.0; 4];
        let window = 200;
        for _ in 0..window {
            m.step(&mut rates, &eps);
            for (a, r) in avg.iter_mut().zip(&rates) {
                *a += r / window as f64;
            }
        }
        let ratio = max_min_ratio(&avg);
        assert!(ratio < 1.1, "fair to within 10%: ratio {ratio}, {avg:?}");
        let sum: f64 = avg.iter().sum();
        assert!(
            sum > 100.0 && sum < 100.0 * 20.0 / 19.0 * 1.02,
            "total {sum} in the Theorem-1 band"
        );
    }

    /// The §2.2 example verbatim: on a 100 Mbps link with A at 90 Mbps and
    /// B at 10 Mbps, A's ±ε experiments say "decrease" while B's say
    /// "increase" — precisely because B contributes little congestion.
    #[test]
    fn asymmetric_senders_move_opposite_ways() {
        let m = FluidModel::paper(100.0, 2);
        let eps = 0.01;
        let (a, b) = (90.0, 10.0);
        let sum = a + b;
        let a_up = m.utility(a * (1.0 + eps), sum + a * eps);
        let a_down = m.utility(a * (1.0 - eps), sum - a * eps);
        assert!(a_down > a_up, "the hog prefers to decrease");
        let b_up = m.utility(b * (1.0 + eps), sum + b * eps);
        let b_down = m.utility(b * (1.0 - eps), sum - b * eps);
        assert!(b_up > b_down, "the mouse prefers to increase");
    }

    /// The paper's claim that convergence is independent of step rule:
    /// heterogeneous ε (e.g. one sender 4× more aggressive) still converges
    /// to near-fairness.
    #[test]
    fn heterogeneous_step_sizes_still_converge() {
        let m = FluidModel::paper(100.0, 3);
        let eps = vec![0.04, 0.01, 0.02];
        let mut rates = vec![1.0, 60.0, 20.0];
        m.converge(&mut rates, &eps, 5000);
        let mut avg = vec![0.0; 3];
        let window = 400;
        for _ in 0..window {
            m.step(&mut rates, &eps);
            for (a, r) in avg.iter_mut().zip(&rates) {
                *a += r / window as f64;
            }
        }
        let ratio = max_min_ratio(&avg);
        assert!(ratio < 1.35, "near-fair under mixed steps: {avg:?}");
    }

    /// Below capacity everyone increases (no loss ⇒ more rate is free
    /// utility).
    #[test]
    fn underutilized_link_always_increases() {
        let m = FluidModel::paper(100.0, 2);
        let mut rates = vec![10.0, 20.0];
        let eps = vec![0.01, 0.01];
        let before = rates.clone();
        m.step(&mut rates, &eps);
        assert!(rates[0] > before[0]);
        assert!(rates[1] > before[1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Theorem 2, property form: random sender counts, capacities, and
        /// starting rates always converge to a near-fair split with total
        /// rate in the Theorem-1 band.
        #[test]
        fn converges_from_random_starts(
            n in 2usize..8,
            cap in 10.0f64..1000.0,
            seedrates in proptest::collection::vec(0.01f64..1.0, 8),
        ) {
            let m = FluidModel::paper(cap, n);
            let eps = vec![0.01; n];
            let mut rates: Vec<f64> =
                seedrates.iter().take(n).map(|r| r * cap * 2.0).collect();
            m.converge(&mut rates, &eps, 8000);
            let mut avg = vec![0.0; n];
            let window = 300;
            for _ in 0..window {
                m.step(&mut rates, &eps);
                for (a, r) in avg.iter_mut().zip(&rates) {
                    *a += r / window as f64;
                }
            }
            let sum: f64 = avg.iter().sum();
            prop_assert!(sum > cap * 0.999, "capacity used: {} of {}", sum, cap);
            prop_assert!(sum < cap * (20.0 / 19.0) * 1.02,
                "loss capped: {} vs {}", sum, cap * 20.0 / 19.0);
            prop_assert!(max_min_ratio(&avg) < 1.25,
                "near-fair: {:?}", avg);
        }
    }
}
