//! Runner determinism: a parallel run must be bit-identical to the serial
//! run — same table text, same CSV bytes — because every job owns its
//! seed and results are returned in submission order.

use pcc_experiments::{chaos, churn, dc, fig15_fct, sweep, vary, Opts};

fn opts(jobs: usize, dir: &str) -> Opts {
    Opts {
        jobs,
        out_dir: std::env::temp_dir().join(dir),
        ..Opts::default()
    }
}

fn csv_bytes(opts: &Opts, name: &str) -> Vec<u8> {
    std::fs::read(opts.out_dir.join(format!("{name}.csv")))
        .unwrap_or_else(|e| panic!("{name}.csv written: {e}"))
}

#[test]
fn fig_module_parallel_is_bit_identical_to_serial() {
    let serial = opts(1, "pcc_det_fig15_serial");
    let parallel = opts(4, "pcc_det_fig15_parallel");
    let t_serial = fig15_fct::run(&serial);
    let t_parallel = fig15_fct::run(&parallel);
    assert_eq!(t_serial.len(), t_parallel.len());
    for (a, b) in t_serial.iter().zip(&t_parallel) {
        assert_eq!(a.render(), b.render(), "rendered tables identical");
    }
    assert_eq!(
        csv_bytes(&serial, "fig15_fct"),
        csv_bytes(&parallel, "fig15_fct"),
        "CSV bytes identical across --jobs"
    );
}

#[test]
fn vary_trace_playback_parallel_is_bit_identical_to_serial() {
    // Same seed + same trace must reproduce to the byte at any worker
    // count: trace playback is part of the environment (expanded into the
    // link schedule before the run), and every (trace × algorithm) cell
    // owns its seed.
    let traces = ["lte".to_string(), "satellite".to_string()];
    let serial = opts(1, "pcc_det_vary_serial");
    let parallel = opts(4, "pcc_det_vary_parallel");
    let t_serial = vary::run_traces(&serial, &traces, 3).expect("serial vary");
    let t_parallel = vary::run_traces(&parallel, &traces, 3).expect("parallel vary");
    assert_eq!(t_serial.len(), t_parallel.len());
    for (a, b) in t_serial.iter().zip(&t_parallel) {
        assert_eq!(a.render(), b.render(), "rendered tables identical");
    }
    for name in ["vary_lte", "vary_satellite"] {
        assert_eq!(
            csv_bytes(&serial, name),
            csv_bytes(&parallel, name),
            "{name}.csv bytes identical across --jobs"
        );
    }
}

#[test]
fn dc_fattree_parallel_is_bit_identical_to_serial() {
    // The ≥64-host datacenter scenario: a k=8 fat-tree (128 hosts) cross-
    // pod permutation with per-path FCT percentiles and per-link
    // utilization. ECMP path choice is a pure hash of (seed, flow), so
    // worker count must not perturb a byte of the CSV.
    // (Dumbbell experiments' bit-identity across the graph rebase is
    // pinned separately by golden fingerprints in pcc-scenarios::setup.)
    let serial = opts(1, "pcc_det_dc_serial");
    let parallel = opts(4, "pcc_det_dc_parallel");
    let t_serial = dc::run_fattree_table(&serial);
    let t_parallel = dc::run_fattree_table(&parallel);
    assert_eq!(t_serial.render(), t_parallel.render(), "tables identical");
    assert_eq!(
        csv_bytes(&serial, "dc_fattree_perm"),
        csv_bytes(&parallel, "dc_fattree_perm"),
        "CSV bytes identical across --jobs"
    );
}

#[test]
fn chaos_tables_parallel_are_bit_identical_to_serial() {
    // The fault-injection battery leans hardest on determinism: per-fault
    // RNG streams are derived from the schedule index, node failures
    // re-resolve ECMP paths, and the per-run fingerprint column would
    // expose a single divergent event. Serial vs `--jobs 4` must agree to
    // the byte — tables, CSVs, and fingerprints alike.
    let specs = ["cubic".to_string(), "pcc".to_string()];
    let serial = opts(1, "pcc_det_chaos_serial");
    let parallel = opts(4, "pcc_det_chaos_parallel");
    let t_serial = chaos::run_specs(&serial, &specs);
    let t_parallel = chaos::run_specs(&parallel, &specs);
    assert_eq!(t_serial.len(), t_parallel.len());
    for (a, b) in t_serial.iter().zip(&t_parallel) {
        assert_eq!(a.render(), b.render(), "rendered tables identical");
    }
    for name in [
        "chaos_flap",
        "chaos_blackout",
        "chaos_spine",
        "chaos_corrupt",
    ] {
        assert_eq!(
            csv_bytes(&serial, name),
            csv_bytes(&parallel, name),
            "{name}.csv bytes identical across --jobs"
        );
    }
}

#[test]
fn churn_tables_parallel_are_bit_identical_to_serial() {
    // The churn engine's whole pitch is open-loop workload determinism:
    // arrival gaps and flow sizes come off derived RNG streams, harvests
    // land in retirement order, and the per-cell fingerprint column in
    // the accounting table would expose a single divergent flow. Serial
    // vs `--jobs 4` must agree to the byte — FCT tables, bucket rows,
    // accounting counters, and CSVs alike.
    let serial = opts(1, "pcc_det_churn_serial");
    let parallel = opts(4, "pcc_det_churn_parallel");
    let t_serial = churn::run_flows(&serial, 60);
    let t_parallel = churn::run_flows(&parallel, 60);
    assert_eq!(t_serial.len(), t_parallel.len());
    for (a, b) in t_serial.iter().zip(&t_parallel) {
        assert_eq!(a.render(), b.render(), "rendered tables identical");
    }
    for name in [
        "churn_web-search",
        "churn_cache-follower",
        "churn_accounting",
    ] {
        assert_eq!(
            csv_bytes(&serial, name),
            csv_bytes(&parallel, name),
            "{name}.csv bytes identical across --jobs"
        );
    }
}

#[test]
fn sweep_parallel_is_bit_identical_to_serial() {
    let template = [
        "pcc:eps=0.01..0.05".to_string(),
        "cubic:iw=4|32".to_string(),
    ];
    let serial = opts(1, "pcc_det_sweep_serial");
    let parallel = opts(4, "pcc_det_sweep_parallel");
    let t_serial = sweep::run_cli(&serial, &template, 3, 2).expect("serial sweep");
    let t_parallel = sweep::run_cli(&parallel, &template, 3, 2).expect("parallel sweep");
    assert_eq!(t_serial.render(), t_parallel.render());
    assert_eq!(
        csv_bytes(&serial, "sweep"),
        csv_bytes(&parallel, "sweep"),
        "CSV bytes identical across --jobs"
    );
}
