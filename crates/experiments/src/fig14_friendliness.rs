//! Fig. 14 — TCP friendliness relative to the common selfish practice.
//!
//! Paper setup: one normal TCP flow competes with k "selfish" entities,
//! where an entity is either a bundle of 10 parallel TCP connections
//! (download accelerators: FlashGet, wxDownload) or a single PCC flow. The
//! "relative unfriendliness ratio" is the normal flow's throughput when
//! competing with PCC divided by its throughput when competing with the
//! bundles. Paper result: the ratio rises above 1 as k grows — PCC is
//! *friendlier* than what people already run.

use pcc_scenarios::dynamics::{normal_tcp_throughput, Selfish};
use pcc_simnet::time::SimDuration;

use crate::{runner, scaled, Opts, Table};

/// The paper's four link configurations (rate Mbps, RTT ms).
pub const CONFIGS: &[(f64, u64)] = &[(10.0, 10), (30.0, 20), (30.0, 10), (100.0, 10)];
/// Numbers of selfish entities swept.
pub const KS: &[usize] = &[1, 2, 4, 6, 8];

/// Run the Fig. 14 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let dur = SimDuration::from_secs(scaled(opts, 30, 100));
    let mut table = Table::new(
        "Fig. 14 — relative unfriendliness ratio (>1 ⇒ PCC friendlier than TCP bundles)",
        &["config", "k=1", "k=2", "k=4", "k=6", "k=8"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &(mbps, rtt_ms) in CONFIGS {
        let rtt = SimDuration::from_millis(rtt_ms);
        for &k in KS {
            for selfish in [Selfish::Pcc, Selfish::TcpBundle] {
                let seed = opts.seed;
                jobs.push(runner::job(move || {
                    normal_tcp_throughput(selfish, k, mbps * 1e6, rtt, dur, seed)
                }));
            }
        }
    }
    let mut results = runner::run_jobs(opts, "fig14", jobs).into_iter();
    for &(mbps, rtt_ms) in CONFIGS {
        let mut row = vec![format!("{mbps:.0}Mbps,{rtt_ms}ms")];
        for _ in KS {
            let vs_pcc = results.next().expect("one result per job");
            let vs_bundle = results.next().expect("one result per job");
            row.push(format!("{:.2}", vs_pcc / vs_bundle.max(1e-3)));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig14_friendliness");
    vec![table]
}
