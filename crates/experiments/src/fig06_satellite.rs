//! Fig. 6 — satellite links: throughput vs bottleneck buffer size.
//!
//! Paper setup: emulated WINDS satellite link (800 ms RTT, 42 Mbps, 0.74%
//! random loss), buffer swept 1.5 KB – 1 MB, 100 s per point. Paper result:
//! PCC reaches 90% of capacity with a 7.5 KB buffer; Hybla manages only
//! ~2 Mbps even with 1 MB (17×), Illinois 54× worse at 1 MB.

use pcc_scenarios::links::{run_satellite, SATELLITE_RTT};
use pcc_scenarios::Protocol;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::{fmt, runner, scaled, Opts, Table};

/// Buffer sizes swept (bytes), matching the paper's log-spaced axis.
pub const BUFFERS: &[u64] = &[
    1_500, 3_750, 7_500, 15_000, 37_500, 75_000, 150_000, 375_000, 1_000_000,
];

fn protocols() -> Vec<Protocol> {
    vec![
        Protocol::pcc_default(SATELLITE_RTT),
        Protocol::Tcp("hybla"),
        Protocol::Tcp("illinois"),
        Protocol::Tcp("cubic"),
        Protocol::Tcp("newreno"),
    ]
}

/// Run the Fig. 6 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    // PCC needs ~20 s to ramp at 800 ms RTT; measure steady state.
    let secs = scaled(opts, 60, 100);
    let warmup = scaled(opts, 30, 40);
    let dur = SimDuration::from_secs(secs);
    let mut table = Table::new(
        "Fig. 6 — satellite (42 Mbps, 800 ms RTT, 0.74% loss): throughput [Mbps] vs buffer",
        &["buffer_kb", "pcc", "hybla", "illinois", "cubic", "newreno"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &buf in BUFFERS {
        for proto in protocols() {
            let seed = opts.seed;
            jobs.push(runner::job(move || {
                let r = run_satellite(proto, buf, dur, seed);
                r.throughput_in(0, SimTime::from_secs(warmup), SimTime::from_secs(secs))
            }));
        }
    }
    let cols = protocols().len();
    let mut results = runner::run_jobs(opts, "fig06", jobs).into_iter();
    for &buf in BUFFERS {
        let mut row = vec![format!("{:.1}", buf as f64 / 1000.0)];
        for _ in 0..cols {
            row.push(fmt(results.next().expect("one result per job")));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig06_satellite");
    vec![table]
}
