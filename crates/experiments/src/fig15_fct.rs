//! Fig. 15 — flow completion time for short flows vs offered load.
//!
//! Paper setup: 100 KB flows arrive as a Poisson process on a 15 Mbps /
//! 60 ms path at 5–75% load. Paper result: PCC's FCT is similar to TCP's
//! at the median and 95th percentile (95th at 75% load is 20% longer) —
//! the learning startup does not fundamentally harm short flows.

use pcc_scenarios::fct::{run_fct, FCT_RTT};
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// Offered loads swept.
pub const LOADS: &[f64] = &[0.05, 0.25, 0.50, 0.75];

/// Run the Fig. 15 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let dur = SimDuration::from_secs(scaled(opts, 60, 300));
    let mut table = Table::new(
        "Fig. 15 — 100 KB flow completion times [ms] (15 Mbps, 60 ms RTT)",
        &[
            "load",
            "pcc_med",
            "tcp_med",
            "pcc_avg",
            "tcp_avg",
            "pcc_p95",
            "tcp_p95",
            "pcc_incomplete",
        ],
    );
    let mut jobs: Vec<runner::Job<'_, _>> = Vec::new();
    for &load in LOADS {
        let seed = opts.seed;
        jobs.push(runner::job(move || {
            run_fct(|| Protocol::pcc_default(FCT_RTT), load, dur, seed)
        }));
        jobs.push(runner::job(move || {
            run_fct(|| Protocol::Tcp("cubic"), load, dur, seed)
        }));
    }
    let mut results = runner::run_jobs(opts, "fig15", jobs).into_iter();
    for &load in LOADS {
        let pcc = results.next().expect("one result per job");
        let tcp = results.next().expect("one result per job");
        table.row(vec![
            format!("{:.0}%", load * 100.0),
            fmt(pcc.median_ms()),
            fmt(tcp.median_ms()),
            fmt(pcc.mean_ms()),
            fmt(tcp.mean_ms()),
            fmt(pcc.p95_ms()),
            fmt(tcp.p95_ms()),
            format!("{}", pcc.incomplete),
        ]);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig15_fct");
    vec![table]
}
