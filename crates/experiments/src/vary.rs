//! `pcc-experiments vary` — every registered algorithm over the bundled
//! time-varying traces.
//!
//! The trace-driven generalization of Fig. 11: instead of one synthetic
//! step-function environment, each algorithm spec in the registry runs
//! alone over each bundled [`LinkTrace`] profile (`lte`, `wifi`,
//! `satellite` — see `pcc_simnet::trace`), and the table reports how much
//! of the trace's deliverable capacity it sustained. Every (trace ×
//! algorithm) cell is an independent simulation on the parallel
//! [`crate::runner`], so tables and CSVs are bit-identical at any
//! `--jobs` setting.
//!
//! ```text
//! pcc-experiments vary                  # all traces, every registered algorithm
//! pcc-experiments vary lte              # one trace
//! pcc-experiments vary lte --secs 30    # explicit per-cell duration
//! pcc-experiments vary --jobs 4         # parallel cells, identical output
//! ```

use pcc_scenarios::vary::run_trace;
use pcc_scenarios::{install_registry, Protocol};
use pcc_simnet::shaper::ShaperConfig;
use pcc_simnet::time::SimDuration;
use pcc_simnet::trace::{builtin_names, LinkTrace};
use pcc_transport::registry;

use crate::{fmt, runner, scaled, Opts, Table};

/// Run all bundled traces at scaled/full durations — the experiment
/// registered as `vary` (so `pcc-experiments all` includes it; the
/// `vary` subcommand adds trace-name filtering on top via
/// [`run_cli`]).
pub fn run(opts: &Opts) -> Vec<Table> {
    let names: Vec<String> = builtin_names().iter().map(|s| s.to_string()).collect();
    run_traces(opts, &names, 0).expect("bundled traces resolve")
}

/// Run `traces` (bundled names) for `secs` simulated seconds per cell
/// (`0` = scaled default: 30 s, `--full` 300 s). Unknown trace names are
/// a readable error listing the bundled ones, never a panic.
pub fn run_traces(opts: &Opts, traces: &[String], secs: u64) -> Result<Vec<Table>, String> {
    install_registry();
    let secs = if secs == 0 {
        scaled(opts, 30, 300)
    } else {
        secs
    };
    let dur = SimDuration::from_secs(secs);
    let mut loaded = Vec::with_capacity(traces.len());
    for name in traces {
        let trace = LinkTrace::builtin(name).ok_or_else(|| {
            format!(
                "unknown trace `{name}`; bundled: {}",
                builtin_names().join(", ")
            )
        })?;
        loaded.push(trace);
    }
    let algos = registry::names();
    // One flat batch: every (trace × algorithm) cell is independent, so a
    // slow cell on one trace never serializes another trace's sweep.
    let jobs = loaded
        .iter()
        .flat_map(|trace| {
            algos.iter().map(move |algo| {
                let trace = trace.clone();
                let algo = algo.clone();
                let seed = opts.seed;
                runner::job(move || {
                    let r = run_trace(
                        Protocol::Named(algo),
                        &trace,
                        dur,
                        seed,
                        ShaperConfig::default(),
                    );
                    (
                        r.achieved_mbps(),
                        r.avg_capacity_mbps,
                        r.utilization(),
                        r.loss_rate(),
                        r.mean_rtt_ms(),
                    )
                })
            })
        })
        .collect();
    let results = runner::run_jobs(opts, "vary", jobs);
    let mut tables = Vec::with_capacity(loaded.len());
    for (t, trace) in loaded.iter().enumerate() {
        let mut table = Table::new(
            &format!(
                "vary — {} trace ({} s per cell, {:.1} Mbps deliverable): utilization by algorithm",
                trace.name(),
                secs,
                trace.avg_capacity_mbps(dur),
            ),
            &[
                "spec",
                "achieved_mbps",
                "capacity_mbps",
                "utilization",
                "loss_rate",
                "rtt_ms",
            ],
        );
        for (a, algo) in algos.iter().enumerate() {
            let (ach, cap, util, loss, rtt) = results[t * algos.len() + a];
            table.row(vec![
                algo.clone(),
                fmt(ach),
                fmt(cap),
                format!("{util:.3}"),
                fmt(loss),
                fmt(rtt),
            ]);
        }
        table.print();
        let _ = table.write_csv(&opts.out_dir, &format!("vary_{}", trace.name()));
        tables.push(table);
    }
    // The headline consistency ratio, when both contenders are in view.
    for (t, trace) in loaded.iter().enumerate() {
        let util_of = |name: &str| -> Option<f64> {
            algos
                .iter()
                .position(|a| a == name)
                .map(|a| results[t * algos.len() + a].2)
        };
        if let (Some(pcc), Some(cubic)) = (util_of("pcc"), util_of("cubic")) {
            println!(
                "[{}] pcc sustains {:.1}% vs cubic {:.1}% of deliverable capacity ({:.1}x)",
                trace.name(),
                pcc * 100.0,
                cubic * 100.0,
                if cubic > 0.0 {
                    pcc / cubic
                } else {
                    f64::INFINITY
                },
            );
        }
    }
    Ok(tables)
}

/// The `pcc-experiments vary` CLI entry point: default to all bundled
/// traces when none are named.
pub fn run_cli(opts: &Opts, traces: &[String], secs: u64) -> Result<Vec<Table>, String> {
    let all: Vec<String>;
    let traces = if traces.is_empty() {
        all = builtin_names().iter().map(|s| s.to_string()).collect();
        &all
    } else {
        traces
    };
    run_traces(opts, traces, secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_trace_is_a_readable_error() {
        let err = run_traces(&Opts::default(), &["dsl".to_string()], 1).expect_err("unknown");
        assert!(err.contains("dsl") && err.contains("lte"), "{err}");
    }

    #[test]
    fn one_trace_tabulates_every_registered_algorithm() {
        install_registry();
        let opts = Opts {
            out_dir: std::env::temp_dir().join("pcc_vary_unit"),
            ..Opts::default()
        };
        let tables = run_traces(&opts, &["wifi".to_string()], 2).expect("runs");
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), registry::names().len());
        let rendered = tables[0].render();
        assert!(rendered.contains("pcc"), "{rendered}");
        assert!(rendered.contains("cubic"), "{rendered}");
        assert!(opts.out_dir.join("vary_wifi.csv").exists(), "CSV written");
    }
}
