//! Fig. 11 — rapidly changing network conditions.
//!
//! Paper setup: bandwidth (10–100 Mbps), latency (10–100 ms) and loss
//! (0–1%) all re-drawn every 5 s for 500 s. Paper result: PCC tracks the
//! optimal rate, averaging 44.9 Mbps = 83% of optimal, while CUBIC is 14×
//! and Illinois 5.6× worse.

use pcc_scenarios::rapid::run_rapid_change;
use pcc_scenarios::Protocol;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::{fmt, runner, scaled, Opts, Table};

/// Run the Fig. 11 experiment.
pub fn run(opts: &Opts) -> Vec<Table> {
    let secs = scaled(opts, 120, 500);
    let dur = SimDuration::from_secs(secs);
    let step = SimDuration::from_secs(5);
    let env_seed = opts.seed ^ 0xEAF1;
    let horizon = SimTime::ZERO + dur;

    let mut summary = Table::new(
        "Fig. 11 — rapidly changing network (5 s re-draws): achieved vs optimal",
        &["protocol", "achieved_mbps", "optimal_mbps", "fraction"],
    );
    let mut series_tbl = Table::new(
        "Fig. 11 — sending-rate trace [Mbps per second]",
        &["t_s", "optimal", "pcc", "cubic", "illinois"],
    );
    let rtt_hint = SimDuration::from_millis(50);
    let runs = [
        ("pcc", Protocol::pcc_default(rtt_hint)),
        ("cubic", Protocol::Tcp("cubic")),
        ("illinois", Protocol::Tcp("illinois")),
    ];
    let mut rate_series: Vec<Vec<f64>> = Vec::new();
    let mut optimal = None;
    let jobs = runs
        .iter()
        .map(|(_, proto)| {
            let proto = proto.clone();
            let seed = opts.seed;
            runner::job(move || run_rapid_change(proto, step, dur, env_seed, seed))
        })
        .collect();
    let results = runner::run_jobs(opts, "fig11", jobs);
    for ((name, _), r) in runs.iter().zip(results) {
        let opt = r.optimal_mbps(horizon);
        let ach = r.achieved_mbps();
        summary.row(vec![
            (*name).into(),
            fmt(ach),
            fmt(opt),
            format!("{:.2}", ach / opt),
        ]);
        // Control-decision rate series sampled at 1 s from the 100 ms grid.
        let s = &r.inner.report.flows[0].series.rate_mbps;
        rate_series.push(s.iter().step_by(10).copied().collect());
        if optimal.is_none() {
            let epochs = &r.epochs;
            let mut opt_series = Vec::new();
            for t in 0..secs {
                let at = SimTime::from_secs(t);
                let e = epochs
                    .iter()
                    .rev()
                    .find(|e| e.at <= at)
                    .expect("epoch covers");
                opt_series.push(e.rate_bps * (1.0 - e.loss) / 1e6);
            }
            optimal = Some(opt_series);
        }
    }
    let optimal = optimal.expect("at least one run");
    let n = optimal
        .len()
        .min(rate_series.iter().map(|s| s.len()).min().unwrap_or(0));
    for t in 0..n {
        series_tbl.row(vec![
            format!("{t}"),
            fmt(optimal[t]),
            fmt(rate_series[0][t]),
            fmt(rate_series[1][t]),
            fmt(rate_series[2][t]),
        ]);
    }
    summary.print();
    let _ = summary.write_csv(&opts.out_dir, "fig11_rapid_summary");
    let _ = series_tbl.write_csv(&opts.out_dir, "fig11_rapid_series");
    vec![summary, series_tbl]
}
