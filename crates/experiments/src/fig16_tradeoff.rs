//! Fig. 16 — the stability/reactiveness trade-off.
//!
//! Paper setup: flow B joins flow A on a 100 Mbps / 30 ms link; X axis is
//! B's forward-looking convergence time, Y axis its post-convergence
//! throughput stddev. PCC traces a trade-off curve by sweeping Tm
//! (4.8×RTT → 1×RTT at ε=0.01) and then ε (0.01 → 0.05 at Tm=1×RTT); six
//! TCP variants are single points; the RCT mechanism shifts the curve
//! toward the sweet spot (3% slower convergence for 35% lower variance at
//! Tm=1×RTT, ε=0.01). Paper result: PCC dominates — e.g. same convergence
//! time as CUBIC with 4.2× lower variance.

use pcc_core::{MiTiming, PccConfig};
use pcc_scenarios::dynamics::run_tradeoff;
use pcc_scenarios::{Protocol, UtilityKind};
use pcc_simnet::time::SimDuration;

use crate::{fmt, scaled, Opts, Table};

/// Tm multiples swept at ε = 0.01.
pub const TM_SWEEP: &[f64] = &[4.8, 3.0, 2.0, 1.4, 1.0];
/// ε values swept at Tm = 1×RTT.
pub const EPS_SWEEP: &[f64] = &[0.01, 0.02, 0.03, 0.05];
/// TCP points.
pub const TCPS: &[&str] = &["cubic", "newreno", "vegas", "bic", "hybla", "westwood"];

fn pcc_with(tm: f64, eps: f64, rct: bool) -> Protocol {
    let mut cfg = PccConfig::paper()
        .with_rtt_hint(SimDuration::from_millis(30))
        .with_eps(eps, (eps * 5.0).min(0.1))
        .with_mi_timing(MiTiming::FixedRttMultiple(tm));
    cfg.rct = rct;
    Protocol::Pcc(cfg, UtilityKind::Safe)
}

/// Run the Fig. 16 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let trials = scaled(opts, 3, 15);
    let stability_window = 60;
    let mut table = Table::new(
        "Fig. 16 — stability vs reactiveness (flow B joins at 20 s)",
        &["point", "convergence_s", "stddev_mbps", "converged"],
    );
    let mut run_point = |label: String, proto_fn: &dyn Fn() -> Protocol| {
        let mut conv = 0.0;
        let mut dev = 0.0;
        let mut ok = 0u32;
        for t in 0..trials {
            let p = run_tradeoff(proto_fn, stability_window, opts.seed ^ (t * 7919));
            if p.converged {
                conv += p.convergence_secs;
                dev += p.stddev_mbps;
                ok += 1;
            }
        }
        if ok > 0 {
            table.row(vec![
                label,
                fmt(conv / ok as f64),
                fmt(dev / ok as f64),
                format!("{ok}/{trials}"),
            ]);
        } else {
            table.row(vec![label, "inf".into(), "-".into(), format!("0/{trials}")]);
        }
    };
    for &tm in TM_SWEEP {
        run_point(format!("pcc Tm={tm}xRTT eps=0.01"), &|| {
            pcc_with(tm, 0.01, true)
        });
    }
    for &eps in EPS_SWEEP {
        run_point(format!("pcc Tm=1xRTT eps={eps}"), &|| {
            pcc_with(1.0, eps, true)
        });
    }
    // The RCT ablation at the sweet spot.
    run_point("pcc-norct Tm=1xRTT eps=0.01".into(), &|| {
        pcc_with(1.0, 0.01, false)
    });
    for &tcp in TCPS {
        run_point(tcp.into(), &|| Protocol::Tcp(tcp));
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig16_tradeoff");
    vec![table]
}
