//! Fig. 16 — the stability/reactiveness trade-off.
//!
//! Paper setup: flow B joins flow A on a 100 Mbps / 30 ms link; X axis is
//! B's forward-looking convergence time, Y axis its post-convergence
//! throughput stddev. PCC traces a trade-off curve by sweeping Tm
//! (4.8×RTT → 1×RTT at ε=0.01) and then ε (0.01 → 0.05 at Tm=1×RTT); six
//! TCP variants are single points; the RCT mechanism shifts the curve
//! toward the sweet spot (3% slower convergence for 35% lower variance at
//! Tm=1×RTT, ε=0.01). Paper result: PCC dominates — e.g. same convergence
//! time as CUBIC with 4.2× lower variance.
//!
//! The figure is literally a parameter sweep, so it rides the same spec
//! machinery as `pcc-experiments sweep`: every PCC point is a
//! [`crate::sweep::expand`]ed `pcc:tm=…,eps=…` template resolved through
//! [`Protocol::Named`] — the registry's schema validates the whole sweep
//! before any simulation runs.

use pcc_scenarios::dynamics::{run_tradeoff, TradeoffPoint};
use pcc_scenarios::Protocol;

use crate::{fmt, runner, scaled, sweep, Opts, Table};

/// The Tm sweep at ε = 0.01, as a spec template (4.8×RTT → 1×RTT).
pub const TM_TEMPLATE: &str = "pcc:tm=4.8|3|2|1.4|1,eps=0.01";
/// ε values swept at Tm = 1×RTT.
pub const EPS_SWEEP: &[f64] = &[0.01, 0.02, 0.03, 0.05];
/// The RCT ablation at the sweet spot.
pub const NORCT_SPEC: &str = "pcc:tm=1,eps=0.01,rct=false";

/// One ε-sweep point: each ε runs with its own escalation ceiling
/// `min(5ε, 0.1)` — a template can only fix one `eps_max` for the whole
/// list, which would silently double the ε = 0.01 sweet spot's ceiling.
fn eps_spec(eps: f64) -> String {
    format!("pcc:tm=1,eps={eps},eps_max={}", (eps * 5.0).min(0.1))
}
/// TCP points.
pub const TCPS: &[&str] = &["cubic", "newreno", "vegas", "bic", "hybla", "westwood"];

/// Run the Fig. 16 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let trials = scaled(opts, 3, 15);
    let stability_window = 60;
    let mut table = Table::new(
        "Fig. 16 — stability vs reactiveness (flow B joins at 20 s)",
        &["point", "convergence_s", "stddev_mbps", "converged"],
    );
    let mut specs: Vec<String> = Vec::new();
    specs.extend(sweep::expand(TM_TEMPLATE, 0).expect("static template"));
    specs.extend(EPS_SWEEP.iter().map(|&eps| eps_spec(eps)));
    specs.push(NORCT_SPEC.to_string());
    sweep::validate_specs(&specs).expect("every swept point is schema-valid");
    // Every point is `trials` independent runs: one job each, folded back
    // per point in submission order.
    let points: Vec<(String, Protocol)> = specs
        .iter()
        .map(|s| (s.clone(), Protocol::Named(s.clone())))
        .chain(TCPS.iter().map(|&t| (t.to_string(), Protocol::Tcp(t))))
        .collect();
    let mut jobs: Vec<runner::Job<'_, TradeoffPoint>> = Vec::new();
    for (_, proto) in &points {
        for t in 0..trials {
            let proto = proto.clone();
            let seed = opts.seed ^ (t * 7919);
            jobs.push(runner::job(move || {
                run_tradeoff(|| proto.clone(), stability_window, seed)
            }));
        }
    }
    let mut results = runner::run_jobs(opts, "fig16", jobs).into_iter();
    for (label, _) in points {
        let mut conv = 0.0;
        let mut dev = 0.0;
        let mut ok = 0u32;
        for _ in 0..trials {
            let p = results.next().expect("one result per job");
            if p.converged {
                conv += p.convergence_secs;
                dev += p.stddev_mbps;
                ok += 1;
            }
        }
        if ok > 0 {
            table.row(vec![
                label,
                fmt(conv / ok as f64),
                fmt(dev / ok as f64),
                format!("{ok}/{trials}"),
            ]);
        } else {
            table.row(vec![label, "inf".into(), "-".into(), format!("0/{trials}")]);
        }
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig16_tradeoff");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_expand_to_the_paper_sweep() {
        let tm = sweep::expand(TM_TEMPLATE, 0).expect("tm");
        assert_eq!(tm.len(), 5, "five Tm points: {tm:?}");
        assert_eq!(tm[0], "pcc:tm=4.8,eps=0.01");
        let eps: Vec<String> = EPS_SWEEP.iter().map(|&e| eps_spec(e)).collect();
        assert_eq!(eps.len(), 4, "four ε points: {eps:?}");
        // Each ε carries its own 5ε (capped 0.1) escalation ceiling.
        assert_eq!(eps[0], "pcc:tm=1,eps=0.01,eps_max=0.05");
        assert_eq!(eps[3], "pcc:tm=1,eps=0.05,eps_max=0.1");
        let mut all = tm;
        all.extend(eps);
        all.push(NORCT_SPEC.to_string());
        sweep::validate_specs(&all).expect("schema-valid");
    }
}
