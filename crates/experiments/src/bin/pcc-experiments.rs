//! Command-line driver: regenerate any table or figure of the paper.
//!
//! ```text
//! pcc-experiments list            # show available experiments
//! pcc-experiments algos           # show every registered CC algorithm + its spec keys
//! pcc-experiments fig07           # run one (scaled durations)
//! pcc-experiments fig07 --full    # paper-scale durations
//! pcc-experiments all             # run everything
//! pcc-experiments all --seed 42 --out target/experiments
//! pcc-experiments all --jobs 8  # 8 simulation workers (0 = auto, default)
//! pcc-experiments fig07 --batched # engines on 1-RTT batched reports
//! pcc-experiments sweep "pcc:eps=0.01..0.1" "cubic:iw=4|32" --points 3
//! pcc-experiments vary            # every algorithm over the bundled traces
//! pcc-experiments vary lte --secs 30 --jobs 4
//! ```
//!
//! Simulations run on a worker pool (`--jobs`, default one per core);
//! results are bit-identical at any worker count because every simulation
//! owns its seed — see `pcc_experiments::runner`.

use std::process::ExitCode;

use pcc_experiments::{registry, Opts};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut extras: Vec<String> = Vec::new();
    let mut points: usize = 3;
    let mut secs: u64 = 4;
    let mut secs_set = false;
    let mut opts = Opts {
        jobs: 0, // auto: one worker per core (library default is serial)
        ..Opts::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.full = true,
            // Process-wide: every engine this run switches from per-ACK
            // callbacks to 1-RTT batched measurement reports (the
            // off-path control plane). Numbers shift within the
            // documented tolerance; fingerprints are per-ACK only.
            "--batched" => pcc_scenarios::force_batched_reports(true),
            "--jobs" => {
                i += 1;
                opts.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs <n> (0 = auto)");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <u64>");
            }
            "--out" => {
                i += 1;
                opts.out_dir = args.get(i).expect("--out <dir>").into();
            }
            "--points" => {
                i += 1;
                points = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--points <n>");
            }
            "--secs" => {
                i += 1;
                secs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--secs <n>");
                secs_set = true;
            }
            other if which.is_none() => which = Some(other.to_string()),
            other if matches!(which.as_deref(), Some("sweep" | "vary")) => {
                extras.push(other.to_string())
            }
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| "list".into());
    // `vary` has its own scaled default duration; 0 lets the module pick
    // it (sweep keeps its historical 4 s default).
    let vary_secs = if secs_set { secs } else { 0 };
    let reg = registry();
    match which.as_str() {
        "list" => {
            println!("available experiments (run with `pcc-experiments <id> [--full]`):");
            for (id, desc, _) in &reg {
                println!("  {id:<8} {desc}");
            }
            println!("  all      run every experiment");
            println!("  algos    list every registered congestion-control algorithm");
            println!(
                "  sweep    sweep spec templates, e.g. sweep \"pcc:eps=0.01..0.1\" --points 3"
            );
            println!("  (vary also takes trace names: vary lte --secs 30 --jobs 4)");
            ExitCode::SUCCESS
        }
        "algos" => {
            pcc_scenarios::install_registry();
            println!("registered congestion-control algorithms (datapath-agnostic);");
            println!("parameterize with name:key=val,... :");
            for name in pcc_transport::registry::names() {
                println!("  {name}");
                for p in pcc_transport::registry::schema_of(&name).unwrap_or(&[]) {
                    println!("      {}=<{}>  {}", p.key, p.kind.describe(), p.doc);
                }
            }
            ExitCode::SUCCESS
        }
        "sweep" => match pcc_experiments::sweep::run_cli(&opts, &extras, points, secs) {
            Ok(_) => {
                println!("\nCSV output in {}", opts.out_dir.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "vary" => match pcc_experiments::vary::run_cli(&opts, &extras, vary_secs) {
            Ok(_) => {
                println!("\nCSV output in {}", opts.out_dir.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "all" => {
            for (id, desc, run) in &reg {
                println!("\n### {id}: {desc}\n");
                // lint: allow(L002) — wall clock only times the CLI's per-module progress report; results are computed by the deterministic runner
                let t0 = std::time::Instant::now();
                let _ = run(&opts);
                println!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            println!("\nCSV output in {}", opts.out_dir.display());
            ExitCode::SUCCESS
        }
        id => match reg.iter().find(|(rid, _, _)| *rid == id) {
            Some((_, desc, run)) => {
                println!("### {id}: {desc}\n");
                let _ = run(&opts);
                println!("\nCSV output in {}", opts.out_dir.display());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{id}'; try `pcc-experiments list`");
                ExitCode::FAILURE
            }
        },
    }
}
