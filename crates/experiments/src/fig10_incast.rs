//! Fig. 10 — data-center incast: goodput vs number of senders.
//!
//! Paper setup: 33 senders to 1 receiver on Emulab, blocks of 64/128/256
//! KB, 15 trials per point. Paper result: TCP collapses once ≥ ~10 senders
//! overflow the port buffer (RTO-bound recovery at a 200 ms minimum RTO on
//! a sub-millisecond RTT); PCC sustains 60–80% of the maximum goodput,
//! 7–8× TCP, and stays stable as senders scale.

use pcc_scenarios::incast::{run_incast, INCAST_RTT};
use pcc_scenarios::Protocol;

use crate::{fmt, runner, scaled, Opts, Table};

/// Sender counts swept.
pub const SENDERS: &[usize] = &[2, 5, 10, 15, 20, 25, 30, 33];
/// Block sizes (KB) swept, as in the paper.
pub const BLOCKS_KB: &[u64] = &[64, 128, 256];

/// Run the Fig. 10 grid.
pub fn run(opts: &Opts) -> Vec<Table> {
    let trials = scaled(opts, 3, 15);
    let mut table = Table::new(
        "Fig. 10 — incast goodput [Mbps] (mean over trials)",
        &[
            "senders", "pcc_64k", "tcp_64k", "pcc_128k", "tcp_128k", "pcc_256k", "tcp_256k",
        ],
    );
    // One job per (senders, block, trial, protocol) cell; trial means are
    // folded back together in submission order below.
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &n in SENDERS {
        for &kb in BLOCKS_KB {
            for t in 0..trials {
                let seed = opts.seed ^ (t << 8) ^ (n as u64) ^ (kb << 16);
                jobs.push(runner::job(move || {
                    run_incast(|| Protocol::pcc_default(INCAST_RTT), n, kb * 1024, seed)
                        .goodput_mbps
                }));
                jobs.push(runner::job(move || {
                    run_incast(|| Protocol::Tcp("newreno"), n, kb * 1024, seed).goodput_mbps
                }));
            }
        }
    }
    let mut results = runner::run_jobs(opts, "fig10", jobs).into_iter();
    for &n in SENDERS {
        let mut row = vec![format!("{n}")];
        for _ in BLOCKS_KB {
            let mut pcc_sum = 0.0;
            let mut tcp_sum = 0.0;
            for _ in 0..trials {
                pcc_sum += results.next().expect("one result per job");
                tcp_sum += results.next().expect("one result per job");
            }
            row.push(fmt(pcc_sum / trials as f64));
            row.push(fmt(tcp_sum / trials as f64));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig10_incast");
    vec![table]
}
