//! Fig. 10 — data-center incast: goodput vs number of senders.
//!
//! Paper setup: 33 senders to 1 receiver on Emulab, blocks of 64/128/256
//! KB, 15 trials per point. Paper result: TCP collapses once ≥ ~10 senders
//! overflow the port buffer (RTO-bound recovery at a 200 ms minimum RTO on
//! a sub-millisecond RTT); PCC sustains 60–80% of the maximum goodput,
//! 7–8× TCP, and stays stable as senders scale.

use pcc_scenarios::incast::{run_incast, INCAST_RTT};
use pcc_scenarios::Protocol;

use crate::{fmt, scaled, Opts, Table};

/// Sender counts swept.
pub const SENDERS: &[usize] = &[2, 5, 10, 15, 20, 25, 30, 33];
/// Block sizes (KB) swept, as in the paper.
pub const BLOCKS_KB: &[u64] = &[64, 128, 256];

/// Run the Fig. 10 grid.
pub fn run(opts: &Opts) -> Vec<Table> {
    let trials = scaled(opts, 3, 15);
    let mut table = Table::new(
        "Fig. 10 — incast goodput [Mbps] (mean over trials)",
        &[
            "senders", "pcc_64k", "tcp_64k", "pcc_128k", "tcp_128k", "pcc_256k", "tcp_256k",
        ],
    );
    for &n in SENDERS {
        let mut row = vec![format!("{n}")];
        for &kb in BLOCKS_KB {
            let mut pcc_sum = 0.0;
            let mut tcp_sum = 0.0;
            for t in 0..trials {
                let seed = opts.seed ^ (t << 8) ^ (n as u64) ^ (kb << 16);
                pcc_sum += run_incast(|| Protocol::pcc_default(INCAST_RTT), n, kb * 1024, seed)
                    .goodput_mbps;
                tcp_sum += run_incast(|| Protocol::Tcp("newreno"), n, kb * 1024, seed).goodput_mbps;
            }
            row.push(fmt(pcc_sum / trials as f64));
            row.push(fmt(tcp_sum / trials as f64));
        }
        // Reorder: the header interleaves pcc/tcp per block size.
        let reordered = vec![
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
            row[5].clone(),
            row[6].clone(),
        ];
        table.row(reordered);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig10_incast");
    vec![table]
}
