//! Plain-text table + CSV output for experiment results.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple results table that prints aligned text and writes CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV under `dir/<name>.csv`; returns the path.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["proto", "mbps"]);
        t.row(vec!["pcc".into(), fmt(94.32189)]);
        t.row(vec!["cubic".into(), fmt(8.1)]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("94.3"));
        assert!(s.contains("8.10"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("pcc_table_test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv(&dir, "demo").expect("write");
        let content = std::fs::read_to_string(path).expect("read");
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(123.456), "123");
        assert_eq!(fmt(12.345), "12.3");
        assert_eq!(fmt(1.234), "1.23");
        assert_eq!(fmt(0.1234), "0.1234");
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }
}
