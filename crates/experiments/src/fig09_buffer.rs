//! Fig. 9 — shallow buffers: throughput vs bottleneck buffer size.
//!
//! Paper setup: 100 Mbps, 30 ms RTT, buffer swept from one packet (1.5 KB)
//! to 1×BDP (375 KB), 100 s per point; PCC vs TCP with pacing vs CUBIC.
//! Paper result: PCC reaches 90% capacity with a 6-packet buffer (CUBIC:
//! 2%, paced TCP: 30%) and 25% of capacity with a single-packet buffer.

use pcc_scenarios::links::run_shallow;
use pcc_scenarios::Protocol;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::{fmt, runner, scaled, Opts, Table};

/// Buffer sizes swept (bytes): 1 packet up to 1×BDP, as in the paper.
pub const BUFFERS: &[u64] = &[
    1_500, 3_000, 6_000, 9_000, 15_000, 30_000, 60_000, 125_000, 250_000, 375_000,
];

/// Run the Fig. 9 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let secs = scaled(opts, 30, 100);
    let warmup = scaled(opts, 8, 20);
    let dur = SimDuration::from_secs(secs);
    let rtt = SimDuration::from_millis(30);
    let mut table = Table::new(
        "Fig. 9 — shallow buffers (100 Mbps, 30 ms): throughput [Mbps] vs buffer",
        &["buffer_kb", "pcc", "tcp_pacing", "cubic"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &buf in BUFFERS {
        for proto in [
            Protocol::pcc_default(rtt),
            Protocol::TcpPaced("newreno"),
            Protocol::Tcp("cubic"),
        ] {
            let seed = opts.seed;
            jobs.push(runner::job(move || {
                let r = run_shallow(proto, buf, dur, seed);
                r.throughput_in(0, SimTime::from_secs(warmup), SimTime::from_secs(secs))
            }));
        }
    }
    let mut results = runner::run_jobs(opts, "fig09", jobs).into_iter();
    for &buf in BUFFERS {
        let mut row = vec![format!("{:.1}", buf as f64 / 1000.0)];
        for _ in 0..3 {
            row.push(fmt(results.next().expect("one result per job")));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig09_buffer");
    vec![table]
}
