//! Parameter sweeps over spec templates — the command-line face of the
//! registry's `name:key=val` surface (§4.4's "swap the constants, keep
//! the architecture" claim as a one-liner).
//!
//! A *template* is a spec string whose values may be ranges or lists:
//!
//! ```text
//! pcc:eps=0.01..0.1            # linspace over --points steps
//! cubic:iw=4|16|32             # explicit list
//! pcc:tm=1|2,eps=0.01..0.05    # cross-product of both axes
//! ```
//!
//! [`expand`] turns a template into concrete spec strings; [`run_specs`]
//! measures each on a reference dumbbell (100 Mbps, 30 ms, 3× BDP
//! buffer) and tabulates throughput / loss / RTT. The Fig. 16 harness
//! builds its PCC sweep points through [`expand`] as well, so the figure
//! and the CLI share one expansion path.

use pcc_scenarios::{install_registry, run_single, LinkSetup, Protocol};
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::registry::{self, CcParams};
use pcc_transport::spec::{AlgoSpec, ParamKind};

use crate::{fmt, runner, Opts, Table};

/// Expand one value expression: `lo..hi` (linspace over `points` steps),
/// `a|b|c` (explicit list), or a scalar. `integral` comes from the key's
/// schema kind — an `Int` parameter's points are rounded to whole
/// numbers; a `Float` parameter keeps its fractional interior points
/// even when both endpoints happen to be whole (guessing int-ness from
/// the endpoints used to collapse `tm=1..2` to `[1, 1, 2, 2, 2]`).
fn expand_value(value: &str, points: usize, integral: bool) -> Vec<String> {
    if let Some((lo, hi)) = value.split_once("..") {
        if let (Ok(lo), Ok(hi)) = (lo.parse::<f64>(), hi.parse::<f64>()) {
            let n = points.max(2);
            return (0..n)
                .map(|i| {
                    let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                    if integral {
                        format!("{}", x.round() as i64)
                    } else {
                        // Snap to 9 decimals so linspace artifacts don't
                        // leak into the spec strings (0.055, not
                        // 0.055000000000000004).
                        format!("{}", (x * 1e9).round() / 1e9)
                    }
                })
                .collect();
        }
    }
    if value.contains('|') {
        return value.split('|').map(str::to_string).collect();
    }
    vec![value.to_string()]
}

/// Expand a spec template into concrete spec strings: every range/list
/// value is enumerated and the axes are crossed in template order (last
/// key varies fastest). A template with no ranges expands to itself.
/// Syntax errors are a readable message, never a panic.
pub fn expand(template: &str, points: usize) -> Result<Vec<String>, String> {
    install_registry();
    let spec = AlgoSpec::parse(template).map_err(|e| {
        format!(
            "bad template `{template}`: {} in `{}`",
            e.reason, e.fragment
        )
    })?;
    // The key's schema kind decides whether range points are rounded to
    // integers (an unregistered name validates — and fails — later).
    let schema = registry::schema_of(&spec.name).unwrap_or(&[]);
    let mut combos: Vec<Vec<(String, String)>> = vec![Vec::new()];
    for (key, value) in &spec.params {
        let integral = schema
            .iter()
            .any(|p| p.key == key.as_str() && matches!(p.kind, ParamKind::Int { .. }));
        let values = expand_value(value, points, integral);
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for combo in &combos {
            for v in &values {
                let mut c = combo.clone();
                c.push((key.clone(), v.clone()));
                next.push(c);
            }
        }
        combos = next;
    }
    Ok(combos
        .into_iter()
        .map(|params| {
            AlgoSpec {
                name: spec.name.clone(),
                params,
            }
            .render()
        })
        .collect())
}

/// Validate that every spec resolves (schema included) before any
/// simulation time is spent; returns the registry's typed error text.
pub fn validate_specs(specs: &[String]) -> Result<(), String> {
    install_registry();
    for spec in specs {
        registry::by_name(spec, &CcParams::default()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Measure each spec alone on the reference dumbbell (100 Mbps / 30 ms /
/// 3×BDP ≈ 375 KB buffer) for `secs` simulated seconds and tabulate
/// steady-state throughput (after 1 s warmup), loss rate, and mean RTT.
pub fn run_specs(opts: &Opts, specs: &[String], secs: u64) -> Table {
    let mut table = Table::new(
        "sweep — each spec alone on 100 Mbps / 30 ms (3×BDP buffer)",
        &["spec", "tput_mbps", "loss_rate", "rtt_ms"],
    );
    let jobs = specs
        .iter()
        .map(|spec| {
            let proto = Protocol::Named(spec.clone());
            let seed = opts.seed;
            runner::job(move || {
                let r = run_single(
                    proto,
                    LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
                    SimDuration::from_secs(secs),
                    seed,
                );
                let tput = r.throughput_in(0, SimTime::from_secs(1), SimTime::from_secs(secs));
                (tput, r.loss_rate(0), r.mean_rtt_ms(0))
            })
        })
        .collect();
    let results = runner::run_jobs(opts, "sweep", jobs);
    for (spec, (tput, loss, rtt)) in specs.iter().zip(results) {
        table.row(vec![spec.clone(), fmt(tput), fmt(loss), fmt(rtt)]);
    }
    table
}

/// The `pcc-experiments sweep` entry point: expand every template, bail
/// early (with the registry's typed error) on anything that does not
/// validate, then measure and print.
pub fn run_cli(
    opts: &Opts,
    templates: &[String],
    points: usize,
    secs: u64,
) -> Result<Table, String> {
    if templates.is_empty() {
        return Err(
            "sweep needs at least one template, e.g. `sweep \"pcc:eps=0.01..0.1\" --points 3`"
                .to_string(),
        );
    }
    let mut specs = Vec::new();
    for template in templates {
        specs.extend(expand(template, points)?);
    }
    validate_specs(&specs)?;
    let table = run_specs(opts, &specs, secs);
    table.print();
    let _ = table.write_csv(&opts.out_dir, "sweep");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_expand_to_linspace() {
        let specs = expand("pcc:eps=0.01..0.05", 3).expect("expands");
        assert_eq!(specs, vec!["pcc:eps=0.01", "pcc:eps=0.03", "pcc:eps=0.05"]);
    }

    #[test]
    fn integer_ranges_stay_integers() {
        let specs = expand("cubic:iw=4..32", 3).expect("expands");
        assert_eq!(specs, vec!["cubic:iw=4", "cubic:iw=18", "cubic:iw=32"]);
        // Rounding applies off-grid interior points onto integers too.
        let specs = expand("cubic:iw=4..32", 4).expect("expands");
        assert_eq!(
            specs,
            vec!["cubic:iw=4", "cubic:iw=13", "cubic:iw=23", "cubic:iw=32"]
        );
    }

    #[test]
    fn float_ranges_keep_interior_points_between_whole_endpoints() {
        // Regression: int-ness used to be guessed from the endpoints, so
        // a *float* parameter swept between whole numbers collapsed to
        // its endpoints ([1, 1, 2, 2, 2]). The schema kind decides now.
        let specs = expand("pcc:tm=1..2", 5).expect("expands");
        assert_eq!(
            specs,
            vec![
                "pcc:tm=1",
                "pcc:tm=1.25",
                "pcc:tm=1.5",
                "pcc:tm=1.75",
                "pcc:tm=2",
            ]
        );
        validate_specs(&specs).expect("all distinct points validate");
    }

    #[test]
    fn lists_and_cross_products() {
        let specs = expand("pcc:tm=1|2,eps=0.01..0.02", 2).expect("expands");
        assert_eq!(
            specs,
            vec![
                "pcc:tm=1,eps=0.01",
                "pcc:tm=1,eps=0.02",
                "pcc:tm=2,eps=0.01",
                "pcc:tm=2,eps=0.02",
            ]
        );
    }

    #[test]
    fn plain_specs_expand_to_themselves() {
        assert_eq!(expand("bbr", 3).expect("expands"), vec!["bbr"]);
        assert_eq!(
            expand("cubic:beta=0.7", 5).expect("expands"),
            vec!["cubic:beta=0.7"]
        );
    }

    #[test]
    fn expanded_specs_validate_against_schemas() {
        let mut specs = expand("pcc:eps=0.01..0.05", 3).expect("expands");
        specs.extend(expand("cubic:iw=4|32", 3).expect("expands"));
        validate_specs(&specs).expect("all schema-valid");
        let bad = vec!["cubic:iw=0".to_string()];
        let err = validate_specs(&bad).expect_err("out of range");
        assert!(err.contains("iw"), "{err}");
    }

    #[test]
    fn bad_templates_are_errors_not_panics() {
        assert!(expand("pcc:eps", 3).is_err());
        let err = run_cli(&Opts::default(), &[], 3, 1).expect_err("no templates");
        assert!(err.contains("sweep needs"), "{err}");
    }
}
