//! # pcc-experiments — regenerate every table and figure of the paper
//!
//! One module per experiment; each produces [`table::Table`]s printing the
//! same rows/series the paper reports and writes CSV under
//! `target/experiments/`. The `pcc-experiments` binary dispatches by
//! experiment id (`fig05`, `table1`, ... or `all`).
//!
//! Durations are scaled down from the paper's (hours of testbed time) —
//! every scaling decision is recorded in `EXPERIMENTS.md` at the repo root.
//! Pass `--full` for paper-scale durations.

pub mod chaos;
pub mod churn;
pub mod dc;
pub mod fig05_internet;
pub mod fig06_satellite;
pub mod fig07_loss;
pub mod fig08_rtt_fairness;
pub mod fig09_buffer;
pub mod fig10_incast;
pub mod fig11_rapid;
pub mod fig12_convergence;
pub mod fig13_jain;
pub mod fig14_friendliness;
pub mod fig15_fct;
pub mod fig16_tradeoff;
pub mod fig17_power;
pub mod runner;
pub mod sec442_highloss;
pub mod sweep;
pub mod table;
pub mod table1_interdc;
pub mod vary;

use std::path::PathBuf;

pub use table::{fmt, Table};

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Run at paper-scale durations instead of the scaled defaults.
    pub full: bool,
    /// Where CSV output lands.
    pub out_dir: PathBuf,
    /// Base seed for all randomized components.
    pub seed: u64,
    /// Worker threads for simulation jobs: `1` = serial, `0` = one per
    /// available core. Results are bit-identical at any setting (see
    /// [`runner`]).
    pub jobs: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            full: false,
            out_dir: PathBuf::from("target/experiments"),
            seed: 0x9CC0,
            jobs: 1,
        }
    }
}

/// Pick the scaled or full-scale value.
pub fn scaled(opts: &Opts, quick: u64, full: u64) -> u64 {
    if opts.full {
        full
    } else {
        quick
    }
}

/// One experiment entry: `(id, description, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn(&Opts) -> Vec<Table>);

/// The experiment registry.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        (
            "fig05",
            "Figs. 4-5: Internet-path population, throughput ratio CDF vs CUBIC/SABUL/PCP",
            fig05_internet::run,
        ),
        (
            "table1",
            "Table 1: inter-data-center pairs (PCC vs SABUL vs CUBIC vs Illinois)",
            table1_interdc::run,
        ),
        (
            "fig06",
            "Fig. 6: satellite link, buffer sweep (PCC vs Hybla/Illinois/CUBIC/NewReno)",
            fig06_satellite::run,
        ),
        (
            "fig07",
            "Fig. 7: random loss sweep (PCC vs BBR/Illinois/CUBIC)",
            fig07_loss::run,
        ),
        (
            "fig08",
            "Fig. 8: RTT fairness (PCC vs BBR/CUBIC/NewReno)",
            fig08_rtt_fairness::run,
        ),
        (
            "fig09",
            "Fig. 9: shallow-buffer sweep (PCC vs TCP pacing vs CUBIC)",
            fig09_buffer::run,
        ),
        (
            "fig10",
            "Fig. 10: data-center incast (PCC vs TCP)",
            fig10_incast::run,
        ),
        (
            "fig11",
            "Fig. 11: rapidly changing network (PCC vs CUBIC/Illinois)",
            fig11_rapid::run,
        ),
        (
            "fig12",
            "Fig. 12: convergence dynamics of 4 staggered flows (PCC vs CUBIC)",
            fig12_convergence::run,
        ),
        (
            "fig13",
            "Fig. 13: Jain fairness index vs time scale (PCC vs CUBIC/NewReno)",
            fig13_jain::run,
        ),
        (
            "fig14",
            "Fig. 14: TCP friendliness vs 10-flow TCP bundles",
            fig14_friendliness::run,
        ),
        (
            "fig15",
            "Fig. 15: short-flow completion times vs load (PCC vs TCP)",
            fig15_fct::run,
        ),
        (
            "fig16",
            "Fig. 16: stability/reactiveness trade-off (PCC sweep + TCP points + RCT)",
            fig16_tradeoff::run,
        ),
        (
            "fig17",
            "Fig. 17: power under {CoDel, Bufferbloat} x {TCP, PCC} with FQ",
            fig17_power::run,
        ),
        (
            "sec442",
            "Sec. 4.4.2: extreme random loss with the loss-resilient utility under FQ",
            sec442_highloss::run,
        ),
        (
            "vary",
            "Trace-driven time-varying links: every algorithm over lte/wifi/satellite",
            vary::run,
        ),
        (
            "dc",
            "Datacenter fabrics: fat-tree rack incast, k=8 cross-pod permutation, oversubscribed leaf-spine mix",
            dc::run,
        ),
        (
            "chaos",
            "Fault-injection battery: every algorithm through link flap, ACK blackout, spine failure, corruption storm",
            chaos::run,
        ),
        (
            "churn",
            "Production-traffic churn: heavy-tailed flow sizes, Poisson arrivals, FCT percentiles by size bucket",
            churn::run,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let reg = registry();
        assert_eq!(reg.len(), 19);
        let mut ids: Vec<_> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 19, "duplicate experiment ids");
    }

    #[test]
    fn scaled_picks_by_flag() {
        let mut o = Opts::default();
        assert_eq!(scaled(&o, 10, 100), 10);
        o.full = true;
        assert_eq!(scaled(&o, 10, 100), 100);
    }
}
