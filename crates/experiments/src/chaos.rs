//! `pcc-experiments chaos` — every registered algorithm through the
//! fault-injection battery.
//!
//! One table per chaos script (`flap`, `blackout`, `spine`, `corrupt` —
//! see [`pcc_scenarios::chaos`]): each registered algorithm spec runs
//! alone through the script and the table reports the typed outcome
//! (`ok` / `stalled` / `running`), goodput over the busy period, time
//! from fault repair to the first forward-progress sample, and the run's
//! counter fingerprint. Every (script × algorithm) cell is an
//! independent simulation on the parallel [`crate::runner`], so tables
//! and CSVs are bit-identical at any `--jobs` setting — the fingerprint
//! column makes a rerun diff a one-line `cmp`.
//!
//! ```text
//! pcc-experiments chaos             # every algorithm, all four scripts
//! pcc-experiments chaos --jobs 2    # parallel cells, identical output
//! ```

use pcc_scenarios::chaos::{run_chaos, ChaosOutcome, ChaosScript};
use pcc_scenarios::{install_registry, Protocol};
use pcc_transport::registry;

use crate::{fmt, runner, Opts, Table};

/// Render one outcome row cell-by-cell.
fn row(algo: &str, o: &ChaosOutcome) -> Vec<String> {
    let outcome = if o.completed {
        "ok"
    } else if o.stalled {
        "stalled"
    } else {
        "running"
    };
    vec![
        algo.to_string(),
        outcome.to_string(),
        fmt(o.goodput_mbps),
        o.recovery_ms.map(fmt).unwrap_or_else(|| "-".to_string()),
        format!("{:016x}", o.fingerprint),
    ]
}

/// Run the battery for `specs` (registry names or parameterized specs;
/// empty = every registered algorithm). One table per script.
pub fn run_specs(opts: &Opts, specs: &[String]) -> Vec<Table> {
    install_registry();
    let algos: Vec<String> = if specs.is_empty() {
        registry::names()
    } else {
        specs.to_vec()
    };
    let scripts = ChaosScript::all();
    // One flat batch: every (script × algorithm) cell is independent.
    let jobs = scripts
        .iter()
        .flat_map(|&script| {
            algos.iter().map(move |algo| {
                let algo = algo.clone();
                let seed = opts.seed;
                runner::job(move || run_chaos(&Protocol::Named(algo), script, seed))
            })
        })
        .collect();
    let results = runner::run_jobs(opts, "chaos", jobs);
    let mut tables = Vec::with_capacity(scripts.len());
    for (s, script) in scripts.iter().enumerate() {
        let mut table = Table::new(
            &format!(
                "chaos — {} script: outcome, goodput, post-repair recovery by algorithm",
                script.label()
            ),
            &[
                "spec",
                "outcome",
                "goodput_mbps",
                "recovery_ms",
                "fingerprint",
            ],
        );
        for (a, algo) in algos.iter().enumerate() {
            table.row(row(algo, &results[s * algos.len() + a]));
        }
        table.print();
        let _ = table.write_csv(&opts.out_dir, &format!("chaos_{}", script.label()));
        tables.push(table);
    }
    tables
}

/// The experiment registered as `chaos`: the full battery over every
/// registered algorithm.
pub fn run(opts: &Opts) -> Vec<Table> {
    run_specs(opts, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_spec_tabulates_all_four_scripts() {
        let opts = Opts {
            out_dir: std::env::temp_dir().join("pcc_chaos_unit"),
            ..Opts::default()
        };
        let tables = run_specs(&opts, &["cubic".to_string()]);
        assert_eq!(tables.len(), 4);
        for (table, script) in tables.iter().zip(ChaosScript::all()) {
            assert_eq!(table.len(), 1);
            let rendered = table.render();
            assert!(rendered.contains("cubic"), "{rendered}");
            assert!(
                opts.out_dir
                    .join(format!("chaos_{}.csv", script.label()))
                    .exists(),
                "CSV written for {}",
                script.label()
            );
        }
    }
}
