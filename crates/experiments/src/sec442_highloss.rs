//! §4.4.2 — enduring excessive loss with the loss-resilient utility.
//!
//! Paper setup: 100 Mbps / 30 ms path with per-flow FQ and 10–50% random
//! loss; PCC plugs in `u = T·(1−L)`. Paper result: PCC stays within 97% of
//! the achievable (lossy-link) optimum even at 50% loss and beats CUBIC by
//! 151× at 10% loss.

use pcc_scenarios::power::{pcc_loss_resilient, run_high_loss};
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

use crate::{runner, scaled, Opts, Table};

/// Loss rates swept.
pub const LOSSES: &[f64] = &[0.10, 0.20, 0.30, 0.40, 0.50];

/// Run the §4.4.2 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let dur = SimDuration::from_secs(scaled(opts, 40, 100));
    let mut table = Table::new(
        "Sec. 4.4.2 — fraction of achievable throughput C·(1−loss) under FQ",
        &["loss", "pcc_lossres", "cubic"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &loss in LOSSES {
        for proto in [pcc_loss_resilient(), Protocol::Tcp("cubic")] {
            let seed = opts.seed;
            jobs.push(runner::job(move || run_high_loss(proto, loss, dur, seed)));
        }
    }
    let mut results = runner::run_jobs(opts, "sec442", jobs).into_iter();
    for &loss in LOSSES {
        let pcc = results.next().expect("one result per job");
        let cubic = results.next().expect("one result per job");
        table.row(vec![
            format!("{:.0}%", loss * 100.0),
            format!("{pcc:.3}"),
            format!("{cubic:.4}"),
        ]);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "sec442_highloss");
    vec![table]
}
