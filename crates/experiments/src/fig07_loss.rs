//! Fig. 7 — random loss resilience: throughput vs loss rate.
//!
//! Paper setup: 100 Mbps, 30 ms RTT, loss on both directions swept 0–6%,
//! 100 s per point. Paper result: PCC ≥ 95% of capacity to 1% loss and
//! degrades gracefully to ~74% at 2%; CUBIC is 10× below PCC at just 0.1%
//! and 37× at 2%; Illinois is 16× below at 2%. PCC's safe utility caps
//! tolerance near its 5% loss knee, so throughput collapses by ~6%.
//!
//! The sweep additionally runs `bbr` (the modern model-based baseline,
//! resolved through the registry like any other name): loss-blind by
//! design, it holds high utilization at low loss rates where CUBIC
//! collapses, giving the figure a post-paper comparison point.

use pcc_scenarios::links::run_lossy;
use pcc_scenarios::Protocol;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::{fmt, runner, scaled, Opts, Table};

/// Loss rates swept (both directions), matching the paper's axis.
pub const LOSS_RATES: &[f64] = &[0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06];

/// The protocol columns, in table order.
fn protocols(rtt: SimDuration) -> [Protocol; 4] {
    [
        Protocol::pcc_default(rtt),
        Protocol::Named("bbr".into()),
        Protocol::Tcp("illinois"),
        Protocol::Tcp("cubic"),
    ]
}

/// Run the Fig. 7 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let secs = scaled(opts, 30, 100);
    let warmup = scaled(opts, 8, 20);
    let dur = SimDuration::from_secs(secs);
    let rtt = SimDuration::from_millis(30);
    let mut table = Table::new(
        "Fig. 7 — random loss (100 Mbps, 30 ms): throughput [Mbps] vs loss rate",
        &["loss", "pcc", "bbr", "illinois", "cubic"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &loss in LOSS_RATES {
        for proto in protocols(rtt) {
            let seed = opts.seed;
            jobs.push(runner::job(move || {
                let r = run_lossy(proto, loss, dur, seed);
                r.throughput_in(0, SimTime::from_secs(warmup), SimTime::from_secs(secs))
            }));
        }
    }
    let cols = protocols(rtt).len();
    let mut results = runner::run_jobs(opts, "fig07", jobs).into_iter();
    for &loss in LOSS_RATES {
        let mut row = vec![format!("{loss:.3}")];
        for _ in 0..cols {
            row.push(fmt(results.next().expect("one result per job")));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig07_loss");
    vec![table]
}
