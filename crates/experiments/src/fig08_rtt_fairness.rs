//! Fig. 8 — RTT fairness: relative throughput of the long-RTT flow.
//!
//! Paper setup: a 10 ms flow joins a long-RTT flow (20–100 ms) on a
//! 100 Mbps bottleneck buffered at the short flow's BDP; 500 s contention.
//! Paper result: PCC holds the ratio near 1 across the range (convergence
//! driven by utility, not by the control-cycle length); New Reno starves
//! the long flow; CUBIC helps but degrades past ~60 ms.

use pcc_scenarios::dynamics::rtt_fairness_ratio;
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// Long-flow RTTs swept (ms), as in the paper.
pub const LONG_RTTS_MS: &[u64] = &[20, 30, 40, 50, 60, 70, 80, 90, 100];

/// Protocol constructors per column (the hybrid resolves by registry
/// name, zero per-harness code).
fn columns() -> [fn(SimDuration) -> Protocol; 4] {
    [
        Protocol::pcc_default,
        |_| Protocol::Named("bbr".into()),
        |_| Protocol::Tcp("cubic"),
        |_| Protocol::Tcp("newreno"),
    ]
}

/// Run the Fig. 8 sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let contention = SimDuration::from_secs(scaled(opts, 60, 500));
    let mut table = Table::new(
        "Fig. 8 — RTT fairness: long-RTT/short-RTT throughput ratio",
        &["long_rtt_ms", "pcc", "bbr", "cubic", "newreno"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for &rtt_ms in LONG_RTTS_MS {
        let long = SimDuration::from_millis(rtt_ms);
        for mk in columns() {
            let seed = opts.seed;
            jobs.push(runner::job(move || {
                rtt_fairness_ratio(mk, long, contention, seed)
            }));
        }
    }
    let cols = columns().len();
    let mut results = runner::run_jobs(opts, "fig08", jobs).into_iter();
    for &rtt_ms in LONG_RTTS_MS {
        let mut row = vec![format!("{rtt_ms}")];
        for _ in 0..cols {
            row.push(fmt(results.next().expect("one result per job")));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig08_rtt_fairness");
    vec![table]
}
