//! Fig. 12 — convergence dynamics of four staggered flows.
//!
//! Paper setup: four flows on a 100 Mbps / 30 ms bottleneck (BDP buffer),
//! starting 500 s apart, each alive 2000 s; rates plotted at 1 s
//! granularity. Paper result: PCC flows converge smoothly to the fair
//! share with dramatically lower rate variance than CUBIC's sawtooth.

use pcc_scenarios::dynamics::run_convergence;
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// A labelled protocol constructor.
type NamedRun = (&'static str, fn() -> Protocol);

/// The two compared protocols, as constructors.
const RUNS: &[NamedRun] = &[
    ("pcc", || {
        Protocol::pcc_default(SimDuration::from_millis(30))
    }),
    ("cubic", || Protocol::Tcp("cubic")),
];

/// Run the Fig. 12 experiment.
pub fn run(opts: &Opts) -> Vec<Table> {
    let stagger = SimDuration::from_secs(scaled(opts, 60, 500));
    let lifetime = SimDuration::from_secs(scaled(opts, 300, 3500));
    let mut out = Vec::new();
    let mut summary = Table::new(
        "Fig. 12 — 4 staggered flows: per-flow stddev after all active [Mbps]",
        &["protocol", "mean_stddev"],
    );
    let jobs = RUNS
        .iter()
        .map(|&(_, mk)| {
            let seed = opts.seed;
            runner::job(move || run_convergence(mk, 4, stagger, lifetime, seed))
        })
        .collect();
    let results = runner::run_jobs(opts, "fig12", jobs);
    for (&(name, _), r) in RUNS.iter().zip(results) {
        summary.row(vec![name.into(), fmt(r.mean_stddev())]);
        let mut trace = Table::new(
            &format!("Fig. 12 — rate trace ({name}), 1 s samples [Mbps]"),
            &["t_s", "flow1", "flow2", "flow3", "flow4"],
        );
        let series: Vec<&Vec<f64>> = r
            .inner
            .flows
            .iter()
            .map(|f| &r.inner.report.flows[f.index()].series.throughput_mbps)
            .collect();
        let n = series.iter().map(|s| s.len()).min().unwrap_or(0);
        for t in (0..n).step_by(2) {
            trace.row(vec![
                format!("{t}"),
                fmt(series[0][t]),
                fmt(series[1][t]),
                fmt(series[2][t]),
                fmt(series[3][t]),
            ]);
        }
        let _ = trace.write_csv(&opts.out_dir, &format!("fig12_convergence_{name}"));
        out.push(trace);
    }
    summary.print();
    let _ = summary.write_csv(&opts.out_dir, "fig12_convergence_summary");
    out.insert(0, summary);
    out
}
