//! Fig. 17 — power (throughput/delay) under AQM × protocol combinations.
//!
//! Paper setup: two long-running interactive flows on a 40 Mbps / 20 ms
//! path with per-flow fair queueing; the network side is either CoDel or a
//! bufferbloated FIFO per flow. Paper result: TCP's power collapses 10.5×
//! without CoDel; PCC with the latency-sensitive utility achieves the same
//! power under either AQM (CoDel never sees a queue worth dropping from)
//! and beats TCP+CoDel by 1.55×.

use pcc_scenarios::power::{pcc_interactive, run_power};
use pcc_scenarios::{Protocol, QueueKind};
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// Run the Fig. 17 grid.
pub fn run(opts: &Opts) -> Vec<Table> {
    let dur = SimDuration::from_secs(scaled(opts, 40, 120));
    let mut table = Table::new(
        "Fig. 17 — power = throughput/delay (two interactive flows, FQ)",
        &["cell", "tput_mbps", "rtt_ms", "power"],
    );
    let cells = [
        (
            "tcp + codel + fq",
            Protocol::Tcp("cubic"),
            QueueKind::FqCodel,
        ),
        (
            "tcp + bufferbloat + fq",
            Protocol::Tcp("cubic"),
            QueueKind::Bufferbloat,
        ),
        ("pcc + codel + fq", pcc_interactive(), QueueKind::FqCodel),
        (
            "pcc + bufferbloat + fq",
            pcc_interactive(),
            QueueKind::Bufferbloat,
        ),
    ];
    let jobs = cells
        .iter()
        .map(|(_, proto, queue)| {
            let (proto, queue) = (proto.clone(), *queue);
            let seed = opts.seed;
            runner::job(move || run_power(proto, queue, dur, seed))
        })
        .collect();
    let results = runner::run_jobs(opts, "fig17", jobs);
    for ((name, _, _), r) in cells.iter().zip(results) {
        table.row(vec![
            (*name).into(),
            fmt(r.throughput_mbps),
            fmt(r.rtt_ms),
            fmt(r.power),
        ]);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig17_power");
    vec![table]
}
