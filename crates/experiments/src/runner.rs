//! Parallel simulation job runner.
//!
//! Every figure/table of the paper is a grid of *independent* simulations
//! (scenario × protocol × seed); nothing couples two cells except the
//! table they end up in. This module fans a batch of such jobs out over a
//! fixed pool of `std::thread::scope` workers (no external dependencies —
//! the workspace is dependency-free by construction) and returns the
//! results **in submission order**, so a parallel run assembles tables
//! and CSV files byte-identical to the serial run: each job owns its
//! seed, and determinism is per-simulation, not cross-job.
//!
//! Usage pattern (every experiment module follows it):
//!
//! ```no_run
//! use pcc_experiments::{runner, Opts};
//! let opts = Opts::default();
//! let jobs: Vec<runner::Job<'_, f64>> = (0..8)
//!     .map(|i| {
//!         let seed = opts.seed ^ i;
//!         runner::job(move || (seed % 7) as f64) // a simulation, really
//!     })
//!     .collect();
//! let results = runner::run_jobs(&opts, "demo", jobs);
//! assert_eq!(results.len(), 8);
//! ```
//!
//! A shared progress/ETA line is maintained on stderr while a batch runs
//! (only when stderr is a terminal, or when `PCC_PROGRESS=1` forces it),
//! so long sweeps are observable without polluting the table output on
//! stdout.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::Opts;

/// One unit of work: owns everything it needs (notably its seed) and
/// returns its measurement when executed on some worker thread.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Box a closure into a [`Job`] (saves the `Box::new` noise at call
/// sites).
pub fn job<'a, T, F: FnOnce() -> T + Send + 'a>(f: F) -> Job<'a, T> {
    Box::new(f)
}

/// The number of workers `--jobs 0`/"auto" resolves to: one per available
/// core.
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `jobs` on `opts.jobs` workers (`0` = auto, `1` = serial on the
/// calling thread) and return their results in submission order.
///
/// Workers pull jobs from a shared cursor, so a slow cell never blocks
/// the queue behind it; results land in per-slot cells, preserving
/// order regardless of completion order. Panics in a job propagate (the
/// scope joins all workers first), so a failing simulation fails the
/// experiment loudly instead of silently dropping a table row.
pub fn run_jobs<T: Send>(opts: &Opts, label: &str, jobs: Vec<Job<'_, T>>) -> Vec<T> {
    let total = jobs.len();
    let workers = match opts.jobs {
        0 => auto_jobs(),
        n => n,
    }
    .min(total.max(1));
    let progress = Progress::start(label, total);
    if workers <= 1 {
        let mut out = Vec::with_capacity(total);
        for j in jobs {
            out.push(j());
            progress.tick();
        }
        progress.finish();
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<Job<'_, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let job = jobs[i]
                    // lint: allow(L004) — propagation is the point: a poisoned slot means a sibling job panicked, and the runner's contract is to fail the whole experiment loudly, never emit a half-filled table
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = job();
                // lint: allow(L004) — same panic-propagation contract as the job-slot lock above
                *results[i].lock().expect("result slot poisoned") = Some(result);
                progress.tick();
            });
        }
    });
    progress.finish();
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined every worker")
        })
        .collect()
}

/// The shared progress/ETA line: `done/total` with elapsed time and a
/// remaining-time estimate, rewritten in place on stderr.
struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
    enabled: bool,
}

impl Progress {
    fn start(label: &str, total: usize) -> Progress {
        let enabled = total > 1
            && (std::env::var_os("PCC_PROGRESS").is_some_and(|v| v != "0")
                || std::io::stderr().is_terminal());
        Progress {
            label: label.to_string(),
            total,
            done: AtomicUsize::new(0),
            // lint: allow(L002) — wall clock feeds the stderr progress/ETA line only; no simulated result ever reads it
            started: Instant::now(),
            enabled,
        }
    }

    fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < self.total {
            elapsed / done as f64 * (self.total - done) as f64
        } else {
            0.0
        };
        // One atomic line per completion; concurrent writers may
        // interleave ticks, but each write is a single `\r`-anchored line
        // so the display self-heals on the next tick.
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[{}] {}/{} jobs  {:.1}s elapsed  ETA {:.1}s   ",
            self.label, done, self.total, elapsed, eta
        );
        let _ = err.flush();
    }

    fn finish(&self) {
        if !self.enabled {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{:76}\r", "");
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_with_jobs(jobs: usize) -> Opts {
        Opts {
            jobs,
            ..Opts::default()
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        // Job i sleeps inversely to its index, so completion order is the
        // reverse of submission order — results must still line up.
        let jobs: Vec<Job<'_, usize>> = (0..16)
            .map(|i| {
                job(move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i
                })
            })
            .collect();
        let out = run_jobs(&opts_with_jobs(4), "test", jobs);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || -> Vec<Job<'_, u64>> {
            (0..10u64)
                .map(|i| job(move || i.wrapping_mul(0x9E37_79B9).rotate_left(7)))
                .collect()
        };
        let serial = run_jobs(&opts_with_jobs(1), "s", mk());
        let parallel = run_jobs(&opts_with_jobs(4), "p", mk());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_means_auto_and_empty_batch_is_fine() {
        assert!(auto_jobs() >= 1);
        let out = run_jobs(&opts_with_jobs(0), "empty", Vec::<Job<'_, u8>>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        // Scoped threads: jobs may borrow locals (protocol tables, opts).
        let data = [10u32, 20, 30];
        let jobs: Vec<Job<'_, u32>> = data.iter().map(|v| job(move || v * 2)).collect();
        let out = run_jobs(&opts_with_jobs(2), "borrow", jobs);
        assert_eq!(out, vec![20, 40, 60]);
    }
}
