//! Datacenter fabrics: rack-scale incast, cross-pod permutation traffic,
//! and an oversubscribed leaf-spine elephant/mouse mix.
//!
//! Not a figure from the paper — the multi-hop counterpart of Fig. 10 on
//! the topology subsystem's Clos fabrics, reporting per-path FCT
//! percentiles and per-link utilization. Every cell is an independent
//! simulation fanned out on the parallel runner; output is bit-identical
//! at any `--jobs`.

use pcc_scenarios::dc::{run_ft_permutation, run_ls_mix, run_rack_incast, DcStats, LsFabric};
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// Sender counts for the k=4 rack-scale incast sweep (15 possible senders).
pub const INCAST_SENDERS: &[usize] = &[2, 6, 14];
/// Fat-tree arity of the permutation workload: k=8 → 128 hosts.
pub const PERMUTATION_K: usize = 8;
/// Leaf-spine shape of the oversubscribed mix: 8 leaves × 8 hosts = 64
/// hosts over 4 spines at 4:1.
pub const LEAF_SPINE: (usize, usize, usize) = (8, 4, 8);
/// Core oversubscription of the leaf-spine mix.
pub const OVERSUBSCRIPTION: f64 = 4.0;

/// A protocol constructor usable from runner jobs (`fn` pointers are
/// `Send`, closures capturing the environment are not necessarily).
type MkProtocol = fn(SimDuration) -> Protocol;

/// The protocols compared in every table.
fn protocols() -> Vec<(&'static str, MkProtocol)> {
    fn pcc(rtt: SimDuration) -> Protocol {
        Protocol::pcc_default(rtt)
    }
    fn cubic(_: SimDuration) -> Protocol {
        Protocol::Tcp("cubic")
    }
    vec![("pcc", pcc), ("cubic", cubic)]
}

/// Rack-scale incast on a k=4 fat-tree: goodput and down-link pressure vs
/// sender count.
pub fn run_incast_table(opts: &Opts) -> Table {
    let block = scaled(opts, 128, 256) * 1024;
    let mut table = Table::new(
        "DC — rack-scale incast, fat-tree k=4 (goodput [Mbps], ToR down-link peak queue [KB])",
        &[
            "senders",
            "pcc_mbps",
            "cubic_mbps",
            "pcc_downq_kb",
            "cubic_downq_kb",
        ],
    );
    let mut jobs: Vec<runner::Job<'_, (f64, f64)>> = Vec::new();
    for &n in INCAST_SENDERS {
        for (i, (_, mk)) in protocols().into_iter().enumerate() {
            let seed = opts.seed ^ ((n as u64) << 4) ^ (i as u64);
            jobs.push(runner::job(move || {
                let r = run_rack_incast(4, &mk, n, block, seed);
                (
                    r.stats.goodput_mbps,
                    r.down_link.queue.max_backlog_bytes as f64 / 1024.0,
                )
            }));
        }
    }
    let mut results = runner::run_jobs(opts, "dc-incast", jobs).into_iter();
    for &n in INCAST_SENDERS {
        let (pcc_gp, pcc_q) = results.next().expect("one result per cell");
        let (cubic_gp, cubic_q) = results.next().expect("one result per cell");
        table.row(vec![
            format!("{n}"),
            fmt(pcc_gp),
            fmt(cubic_gp),
            fmt(pcc_q),
            fmt(cubic_q),
        ]);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "dc_incast");
    table
}

/// Cross-pod permutation on a k=8 fat-tree (128 hosts): FCT percentiles
/// and fabric utilization per protocol.
pub fn run_fattree_table(opts: &Opts) -> Table {
    let flow_bytes = scaled(opts, 64, 512) * 1024;
    let mut table = Table::new(
        "DC — cross-pod permutation, fat-tree k=8, 128 hosts (per-path FCT, link util)",
        &[
            "protocol",
            "completed",
            "fct_p50_ms",
            "fct_p99_ms",
            "goodput_mbps",
            "max_link_util",
            "max_queue_kb",
        ],
    );
    let jobs: Vec<runner::Job<'_, DcStats>> = protocols()
        .into_iter()
        .enumerate()
        .map(|(i, (_, mk))| {
            let seed = opts.seed ^ 0xD0 ^ (i as u64);
            runner::job(move || run_ft_permutation(PERMUTATION_K, &mk, flow_bytes, seed).0)
        })
        .collect();
    let results = runner::run_jobs(opts, "dc-fattree", jobs);
    for ((name, _), stats) in protocols().into_iter().zip(results) {
        table.row(vec![
            name.to_string(),
            format!("{}/{}", stats.completed, stats.total),
            fmt(stats.fct_p50_ms),
            fmt(stats.fct_p99_ms),
            fmt(stats.goodput_mbps),
            fmt(stats.max_link_util),
            fmt(stats.max_queue_bytes as f64 / 1024.0),
        ]);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "dc_fattree_perm");
    table
}

/// Elephant/mouse mix on the 4:1 oversubscribed leaf-spine fabric (64
/// hosts): tail FCT under a contended core.
pub fn run_leafspine_table(opts: &Opts) -> Table {
    let elephant = scaled(opts, 256, 2048) * 1024;
    let mouse = 32 * 1024;
    let (leaves, spines, per_leaf) = LEAF_SPINE;
    let mut table = Table::new(
        "DC — elephant/mouse mix, leaf-spine 8x4 at 4:1 oversubscription, 64 hosts",
        &[
            "protocol",
            "completed",
            "fct_p50_ms",
            "fct_p99_ms",
            "goodput_mbps",
            "uplink_util",
        ],
    );
    let jobs: Vec<runner::Job<'_, (DcStats, f64)>> = protocols()
        .into_iter()
        .enumerate()
        .map(|(i, (_, mk))| {
            let seed = opts.seed ^ 0x15 ^ (i as u64);
            runner::job(move || {
                let (stats, uplink_util, _) = run_ls_mix(
                    LsFabric {
                        leaves,
                        spines,
                        hosts_per_leaf: per_leaf,
                        oversubscription: OVERSUBSCRIPTION,
                    },
                    &mk,
                    elephant,
                    mouse,
                    seed,
                );
                (stats, uplink_util)
            })
        })
        .collect();
    let results = runner::run_jobs(opts, "dc-leafspine", jobs);
    for ((name, _), (stats, uplink_util)) in protocols().into_iter().zip(results) {
        table.row(vec![
            name.to_string(),
            format!("{}/{}", stats.completed, stats.total),
            fmt(stats.fct_p50_ms),
            fmt(stats.fct_p99_ms),
            fmt(stats.goodput_mbps),
            fmt(uplink_util),
        ]);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "dc_leafspine");
    table
}

/// Run all three datacenter tables.
pub fn run(opts: &Opts) -> Vec<Table> {
    vec![
        run_incast_table(opts),
        run_fattree_table(opts),
        run_leafspine_table(opts),
    ]
}
