//! Table 1 — inter-data-center transfers over reserved 800 Mbps paths.
//!
//! Paper setup: nine GENI site pairs with end-to-end reserved bandwidth;
//! the bandwidth-reserving rate limiter has a small buffer, which TCP's
//! bursts continually overflow. Paper result: PCC ≈ 790±30 Mbps on most
//! pairs, SABUL 480–700, CUBIC 80–550, Illinois 90–560 (PCC beats Illinois
//! by 5.2× on average).

use pcc_scenarios::links::{run_interdc, INTERDC_PAIRS};
use pcc_scenarios::Protocol;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::{fmt, scaled, Opts, Table};

/// Run the Table 1 grid.
pub fn run(opts: &Opts) -> Vec<Table> {
    let secs = scaled(opts, 20, 100);
    let warmup = scaled(opts, 5, 15);
    let dur = SimDuration::from_secs(secs);
    let mut table = Table::new(
        "Table 1 — inter-DC pairs (800 Mbps reserved): throughput [Mbps]",
        &["pair", "rtt_ms", "pcc", "sabul", "cubic", "illinois"],
    );
    for pair in INTERDC_PAIRS {
        let rtt = SimDuration::from_secs_f64(pair.rtt_ms / 1000.0);
        let protos = [
            Protocol::pcc_default(rtt),
            Protocol::Sabul,
            Protocol::Tcp("cubic"),
            Protocol::Tcp("illinois"),
        ];
        let mut row = vec![pair.name.to_string(), fmt(pair.rtt_ms)];
        for proto in protos {
            let r = run_interdc(proto, pair, dur, opts.seed);
            let t = r.throughput_in(0, SimTime::from_secs(warmup), SimTime::from_secs(secs));
            row.push(fmt(t));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "table1_interdc");
    vec![table]
}
