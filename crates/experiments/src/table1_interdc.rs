//! Table 1 — inter-data-center transfers over reserved 800 Mbps paths.
//!
//! Paper setup: nine GENI site pairs with end-to-end reserved bandwidth;
//! the bandwidth-reserving rate limiter has a small buffer, which TCP's
//! bursts continually overflow. Paper result: PCC ≈ 790±30 Mbps on most
//! pairs, SABUL 480–700, CUBIC 80–550, Illinois 90–560 (PCC beats Illinois
//! by 5.2× on average).

use pcc_scenarios::links::{run_interdc, INTERDC_PAIRS};
use pcc_scenarios::Protocol;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::{fmt, runner, scaled, Opts, Table};

/// Run the Table 1 grid.
pub fn run(opts: &Opts) -> Vec<Table> {
    let secs = scaled(opts, 20, 100);
    let warmup = scaled(opts, 5, 15);
    let dur = SimDuration::from_secs(secs);
    let mut table = Table::new(
        "Table 1 — inter-DC pairs (800 Mbps reserved): throughput [Mbps]",
        &["pair", "rtt_ms", "pcc", "sabul", "cubic", "illinois"],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for pair in INTERDC_PAIRS {
        let rtt = SimDuration::from_secs_f64(pair.rtt_ms / 1000.0);
        for proto in [
            Protocol::pcc_default(rtt),
            Protocol::Sabul,
            Protocol::Tcp("cubic"),
            Protocol::Tcp("illinois"),
        ] {
            let seed = opts.seed;
            jobs.push(runner::job(move || {
                let r = run_interdc(proto, pair, dur, seed);
                r.throughput_in(0, SimTime::from_secs(warmup), SimTime::from_secs(secs))
            }));
        }
    }
    let mut results = runner::run_jobs(opts, "table1", jobs).into_iter();
    for pair in INTERDC_PAIRS {
        let mut row = vec![pair.name.to_string(), fmt(pair.rtt_ms)];
        for _ in 0..4 {
            row.push(fmt(results.next().expect("one result per job")));
        }
        table.row(row);
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "table1_interdc");
    vec![table]
}
