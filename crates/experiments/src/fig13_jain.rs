//! Fig. 13 — Jain's fairness index vs measurement time scale.
//!
//! Paper setup: the Fig. 12 topology with 2/3/4 concurrent flows; Jain's
//! index computed over windows from seconds to hundreds of seconds. Paper
//! result: selfishly competing PCC flows are *more* fair than TCP at every
//! time scale (PCC ≥ 0.99 at coarse scales; New Reno/CUBIC dip well below
//! at fine scales because of sawtooth desynchronization).

use pcc_scenarios::dynamics::run_convergence;
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

use crate::{runner, scaled, Opts, Table};

/// Time scales (in 1 s samples) at which the index is evaluated.
pub const SCALES: &[usize] = &[1, 5, 10, 30, 60];

/// A labelled protocol constructor.
type NamedRun = (&'static str, fn() -> Protocol);

/// The compared protocols, as constructors.
const RUNS: &[NamedRun] = &[
    ("pcc", || {
        Protocol::pcc_default(SimDuration::from_millis(30))
    }),
    ("cubic", || Protocol::Tcp("cubic")),
    ("newreno", || Protocol::Tcp("newreno")),
];

/// Flow counts evaluated per protocol.
const FLOW_COUNTS: &[usize] = &[2, 3, 4];

/// Run the Fig. 13 experiment.
pub fn run(opts: &Opts) -> Vec<Table> {
    let stagger = SimDuration::from_secs(scaled(opts, 30, 500));
    let lifetime = SimDuration::from_secs(scaled(opts, 240, 3500));
    let mut table = Table::new(
        "Fig. 13 — Jain's fairness index vs time scale [s]",
        &["protocol", "flows", "1s", "5s", "10s", "30s", "60s"],
    );
    let mut jobs: Vec<runner::Job<'_, Vec<f64>>> = Vec::new();
    for &(_, mk) in RUNS {
        for &flows in FLOW_COUNTS {
            let seed = opts.seed;
            jobs.push(runner::job(move || {
                let r = run_convergence(mk, flows, stagger, lifetime, seed);
                SCALES.iter().map(|&scale| r.jain_at_scale(scale)).collect()
            }));
        }
    }
    let mut results = runner::run_jobs(opts, "fig13", jobs).into_iter();
    for &(name, _) in RUNS {
        for &flows in FLOW_COUNTS {
            let indices = results.next().expect("one result per job");
            let mut row = vec![name.to_string(), format!("{flows}")];
            row.extend(indices.iter().map(|v| format!("{v:.3}")));
            table.row(row);
        }
    }
    table.print();
    let _ = table.write_csv(&opts.out_dir, "fig13_jain");
    vec![table]
}
