//! `pcc-experiments churn` — production-traffic flow churn at scale.
//!
//! Every bundled flow-size distribution (`web-search`, `cache-follower` —
//! see [`pcc_scenarios::workload`]) crossed with PCC and CUBIC: an
//! open-loop Poisson arrival process at 70% offered load on a 1 Gbps /
//! 10 ms dumbbell, flows recycled through the simulator's slot arena.
//! One table per workload reports FCT percentiles (p50/p99/p999) by
//! flow-size bucket; a final accounting table reports the engine's
//! conservation counters, goodput, arrival/completion rates, and a
//! per-run fingerprint. Every (workload × protocol) cell is an
//! independent simulation on the parallel [`crate::runner`], so tables
//! and CSVs are bit-identical at any `--jobs` setting.
//!
//! ```text
//! pcc-experiments churn             # scaled flow counts
//! pcc-experiments churn --full      # 100k flows per cell
//! pcc-experiments churn --jobs 2    # parallel cells, identical output
//! ```

use pcc_scenarios::workload::{builtin_names, run_churn, Arrival, ChurnReport, SizeCdf};
use pcc_scenarios::{install_registry, ChurnConfig, LinkSetup, Protocol};
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// Bottleneck rate: 1 Gbps.
const RATE_BPS: f64 = 1e9;
/// Path RTT.
const RTT: SimDuration = SimDuration::from_millis(10);
/// Offered load as a fraction of the bottleneck.
const LOAD: f64 = 0.7;

/// The protocols each workload runs under.
fn protocols() -> Vec<(&'static str, Protocol)> {
    vec![
        ("pcc", Protocol::pcc_default(RTT)),
        ("cubic", Protocol::Tcp("cubic")),
    ]
}

/// The churn configuration for one (workload × protocol) cell.
fn config(workload: &str, protocol: Protocol, flows: u64, seed: u64) -> ChurnConfig {
    let cdf = SizeCdf::builtin(workload).expect("bundled workload CDF");
    let arrival = Arrival::poisson_for_load(LOAD, RATE_BPS, cdf.mean_bytes());
    // BDP-sized bottleneck buffer.
    let link = LinkSetup::new(RATE_BPS, RTT, 1_250_000);
    ChurnConfig::new(protocol, link, cdf, arrival, flows, seed)
}

/// A percentile cell: `-` when the bucket completed no flows.
fn pct(count: usize, ms: f64) -> String {
    if count == 0 {
        "-".to_string()
    } else {
        fmt(ms)
    }
}

/// Run the churn battery with `flows` flows per cell. One FCT table per
/// workload plus an engine-accounting table.
pub fn run_flows(opts: &Opts, flows: u64) -> Vec<Table> {
    install_registry();
    let workloads = builtin_names();
    let protos = protocols();
    let jobs = workloads
        .iter()
        .flat_map(|&w| {
            protos.iter().map(move |(_, p)| {
                let p = p.clone();
                let seed = opts.seed;
                runner::job(move || run_churn(config(w, p, flows, seed)))
            })
        })
        .collect();
    let results: Vec<ChurnReport> = runner::run_jobs(opts, "churn", jobs);
    let mut tables = Vec::with_capacity(workloads.len() + 1);
    for (w, workload) in workloads.iter().enumerate() {
        let mut table = Table::new(
            &format!("churn — {workload}: FCT percentiles by flow-size bucket"),
            &[
                "spec", "bucket", "flows", "done", "p50_ms", "p99_ms", "p999_ms",
            ],
        );
        for (p, (spec, _)) in protos.iter().enumerate() {
            let r = &results[w * protos.len() + p];
            let all = &r.overall;
            table.row(vec![
                spec.to_string(),
                "all".to_string(),
                (all.count() + all.incomplete).to_string(),
                all.count().to_string(),
                pct(all.count(), all.p50_ms()),
                pct(all.count(), all.p99_ms()),
                pct(all.count(), all.p999_ms()),
            ]);
            for bucket in &r.buckets {
                table.row(vec![
                    spec.to_string(),
                    bucket.label.to_string(),
                    bucket.flows.to_string(),
                    bucket.fct.count().to_string(),
                    pct(bucket.fct.count(), bucket.fct.p50_ms()),
                    pct(bucket.fct.count(), bucket.fct.p99_ms()),
                    pct(bucket.fct.count(), bucket.fct.p999_ms()),
                ]);
            }
        }
        table.print();
        let _ = table.write_csv(&opts.out_dir, &format!("churn_{workload}"));
        tables.push(table);
    }
    let mut acct = Table::new(
        "churn — engine accounting: conservation, recycling, rates per cell",
        &[
            "workload",
            "spec",
            "arrivals",
            "completions",
            "stalls",
            "peak_live",
            "recycled",
            "goodput_mbps",
            "arrival_hz",
            "completion_hz",
            "fingerprint",
        ],
    );
    for (w, workload) in workloads.iter().enumerate() {
        for (p, (spec, _)) in protos.iter().enumerate() {
            let r = &results[w * protos.len() + p];
            let c = r.churn;
            acct.row(vec![
                workload.to_string(),
                spec.to_string(),
                c.arrivals.to_string(),
                c.completions.to_string(),
                c.stalls.to_string(),
                c.peak_live.to_string(),
                c.recycled.to_string(),
                fmt(r.goodput_mbps),
                fmt(r.arrival_rate_hz),
                fmt(r.completion_rate_hz),
                format!("{:016x}", r.fingerprint()),
            ]);
        }
    }
    acct.print();
    let _ = acct.write_csv(&opts.out_dir, "churn_accounting");
    tables.push(acct);
    tables
}

/// The experiment registered as `churn`: scaled to 400 flows per cell by
/// default, 100k per cell with `--full` (the paper-scale churn regime).
pub fn run(opts: &Opts) -> Vec<Table> {
    run_flows(opts, scaled(opts, 400, 100_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_battery_tabulates_and_conserves() {
        let opts = Opts {
            out_dir: std::env::temp_dir().join("pcc_churn_unit"),
            ..Opts::default()
        };
        let tables = run_flows(&opts, 80);
        // One table per bundled workload plus the accounting table.
        assert_eq!(tables.len(), builtin_names().len() + 1);
        for w in builtin_names() {
            assert!(
                opts.out_dir.join(format!("churn_{w}.csv")).exists(),
                "CSV written for {w}"
            );
        }
        let acct = tables.last().unwrap().render();
        assert!(acct.contains("80"), "arrivals column shows 80:\n{acct}");
        assert!(
            opts.out_dir.join("churn_accounting.csv").exists(),
            "accounting CSV written"
        );
    }
}
