//! Figs. 4–5 — big data transfer in the wild: per-path throughput-ratio
//! CDF of PCC vs TCP CUBIC, SABUL, and PCP.
//!
//! Paper setup: 510 PlanetLab/GENI sender–receiver pairs with BDP from
//! 14.3 KB to 18 MB; 100 s per protocol per pair. Paper result: PCC beats
//! CUBIC by 5.52× at the median and ≥10× on 41% of pairs; beats SABUL
//! 1.41× and PCP 4.58× at the median. Our substitute population samples
//! the same BDP envelope with random loss and buffer depth (see
//! `pcc_scenarios::internet`).

use pcc_scenarios::internet::{path_throughput, sample_paths};
use pcc_scenarios::Protocol;
use pcc_simnet::stats::percentile;
use pcc_simnet::time::SimDuration;

use crate::{fmt, runner, scaled, Opts, Table};

/// Run the Figs. 4–5 population sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let n_pairs = scaled(opts, 60, 510) as usize;
    let secs = scaled(opts, 15, 100);
    let dur = SimDuration::from_secs(secs);
    let paths = sample_paths(n_pairs, opts.seed);

    let mut ratios_cubic = Vec::new();
    let mut ratios_sabul = Vec::new();
    let mut ratios_pcp = Vec::new();
    let mut per_path = Table::new(
        "Figs. 4-5 — per-path throughput [Mbps] (synthetic wide-area population)",
        &[
            "bw_mbps", "rtt_ms", "buf_kb", "loss", "pcc", "cubic", "sabul", "pcp",
        ],
    );
    let mut jobs: Vec<runner::Job<'_, f64>> = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let seed = opts.seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
        for proto in [
            Protocol::pcc_default(path.rtt),
            Protocol::Tcp("cubic"),
            Protocol::Sabul,
            Protocol::Pcp,
        ] {
            jobs.push(runner::job(move || path_throughput(proto, path, dur, seed)));
        }
    }
    let mut results = runner::run_jobs(opts, "fig05", jobs).into_iter();
    for path in paths.iter() {
        let mut next = || results.next().expect("one result per job");
        let (pcc, cubic, sabul, pcp) = (next(), next(), next(), next());
        let floor = 0.05; // 50 kbps floor avoids divide-by-~zero ratios
        ratios_cubic.push(pcc / cubic.max(floor));
        ratios_sabul.push(pcc / sabul.max(floor));
        ratios_pcp.push(pcc / pcp.max(floor));
        per_path.row(vec![
            fmt(path.rate_bps / 1e6),
            fmt(path.rtt.as_millis_f64()),
            fmt(path.buffer_bytes as f64 / 1000.0),
            format!("{:.4}", path.loss),
            fmt(pcc),
            fmt(cubic),
            fmt(sabul),
            fmt(pcp),
        ]);
    }

    let mut summary = Table::new(
        "Fig. 5 — PCC throughput-improvement ratio distribution",
        &["vs", "p10", "median", "p90", "frac>=10x"],
    );
    for (name, ratios) in [
        ("cubic", &ratios_cubic),
        ("sabul", &ratios_sabul),
        ("pcp", &ratios_pcp),
    ] {
        let ge10 = ratios.iter().filter(|&&r| r >= 10.0).count() as f64 / ratios.len() as f64;
        summary.row(vec![
            name.into(),
            fmt(percentile(ratios, 10.0)),
            fmt(percentile(ratios, 50.0)),
            fmt(percentile(ratios, 90.0)),
            format!("{:.2}", ge10),
        ]);
    }
    summary.print();
    let _ = per_path.write_csv(&opts.out_dir, "fig05_internet_paths");
    let _ = summary.write_csv(&opts.out_dir, "fig05_internet_summary");
    vec![summary, per_path]
}
