//! The UDP receiver: per-datagram SACK generation, like the simulator's
//! `SackReceiver` but over a real socket.

use std::collections::BTreeSet;
use std::net::{SocketAddr, UdpSocket};
use std::time::Instant;

use crate::wire::{decode, encode_ack, AckPacket, Frame};

/// Outcome of one receive session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReceiverReport {
    /// Unique data bytes accepted.
    pub unique_bytes: u64,
    /// Total datagrams seen.
    pub datagrams: u64,
    /// Duplicates among them.
    pub duplicates: u64,
}

/// Receive `expected_bytes` of payload on `socket`, acking every datagram,
/// then return. The sender address is learned from the first datagram.
pub fn receive(socket: &UdpSocket, expected_bytes: u64) -> std::io::Result<ReceiverReport> {
    let start = Instant::now();
    let mut buf = vec![0u8; 65_536];
    let mut cum_ack = 0u64;
    let mut ooo: BTreeSet<u64> = BTreeSet::new();
    let mut report = ReceiverReport::default();
    let mut peer: Option<SocketAddr> = None;
    socket.set_nonblocking(false)?;
    while report.unique_bytes < expected_bytes {
        let (n, from) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let Some(Frame::Data(h, payload)) = decode(&buf[..n]) else {
            continue;
        };
        peer.get_or_insert(from);
        report.datagrams += 1;
        let fresh = h.seq >= cum_ack && !ooo.contains(&h.seq);
        if fresh {
            ooo.insert(h.seq);
            while ooo.remove(&cum_ack) {
                cum_ack += 1;
            }
            report.unique_bytes += payload.len() as u64;
        } else {
            report.duplicates += 1;
        }
        let ack = AckPacket {
            acked_seq: h.seq,
            cum_ack,
            echo_sent_us: h.sent_us,
            recv_us: start.elapsed().as_micros() as u64,
            of_retx: h.retx,
        };
        socket.send_to(&encode_ack(&ack), from)?;
    }
    Ok(report)
}
