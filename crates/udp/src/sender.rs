//! The UDP sender: the paper's user-space prototype shape — a sender whose
//! transmission schedule is dictated by any [`CongestionControl`]
//! algorithm, with SACK-scoreboard reliability. The algorithm is the *same
//! object* that drives the simulator: real time is mapped onto [`SimTime`],
//! algorithm timers run on a local timer heap, and the engine enforces
//! whatever the algorithm requests — a pacing rate (PCC, SABUL, PCP), a
//! congestion window (the TCP baselines), or both (paced TCP).
//!
//! Everything runs on blocking `std::net` sockets (non-blocking receive +
//! short sleeps); no async runtime is required.

use std::collections::{BinaryHeap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use pcc_core::{PccConfig, PccController};
use pcc_simnet::packet::AckInfo;
use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::cc::{
    AckEvent, CcMode, CongestionControl, Ctx, Effects, LossEvent, LossKind, ReportInterval,
    ReportMode, SentEvent,
};
use pcc_transport::error::TransferError;
use pcc_transport::host::{HostedCc, SharedHost};
use pcc_transport::registry::{self, CcParams, SpecError};
use pcc_transport::report::ReportAggregator;
use pcc_transport::rtt::RttEstimator;
use pcc_transport::sack::Scoreboard;

use crate::wire::{decode, encode_data, DataHeader, Frame};

/// Sender configuration.
#[derive(Clone, Copy, Debug)]
pub struct UdpSenderConfig {
    /// Payload bytes per datagram.
    pub payload: usize,
    /// Total payload bytes to deliver.
    pub total_bytes: u64,
    /// RNG seed for the algorithm's randomized decisions.
    pub seed: u64,
    /// Feedback-path override. `None` honours the algorithm's own
    /// [`CongestionControl::report_mode`] preference; `Some` forces per-ACK
    /// or batched delivery regardless, mirroring
    /// `CcSenderConfig::report` on the simulated datapath.
    pub report: Option<ReportMode>,
    /// Dead-time budget: if no forward progress (no new bytes cumulatively
    /// acknowledged) happens for this long while whole-window timeouts keep
    /// firing, the transfer aborts with an [`ErrorKind::TimedOut`]
    /// `io::Error` wrapping [`TransferError::Stalled`] (downcast via
    /// `err.get_ref()`), instead of retrying a dead peer forever on the
    /// capped-backoff timer. `None` disables the budget. Unlike the
    /// simulator engine (where the default is off and the experiment
    /// horizon bounds every run), a real socket has no horizon — the
    /// default is 30 s on.
    pub dead_time_budget: Option<Duration>,
}

impl Default for UdpSenderConfig {
    fn default() -> Self {
        UdpSenderConfig {
            payload: 1200,
            total_bytes: 8 * 1024 * 1024,
            seed: 1,
            report: None,
            dead_time_budget: Some(Duration::from_secs(30)),
        }
    }
}

/// Outcome of one send session.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderReport {
    /// Wall-clock transfer time.
    pub elapsed: Duration,
    /// Payload goodput in Mbit/s.
    pub goodput_mbps: f64,
    /// Datagrams sent (including retransmissions).
    pub sent: u64,
    /// Losses detected.
    pub losses: u64,
    /// Final pacing rate, bits/sec (0 for pure window algorithms).
    pub final_rate_bps: f64,
    /// Final congestion window, packets (0 for pure rate algorithms).
    pub final_cwnd_pkts: f64,
    /// Whole-window (RTO-style) loss declarations. Each one doubles the
    /// effective RTO until an ACK advances the scoreboard, so a blackout
    /// fires O(log duration) of these instead of one per base RTO.
    pub timeouts: u64,
}

#[derive(PartialEq, Eq)]
struct TimerEntry(SimTime, u64);

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // min-heap
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Install every workspace algorithm into the
/// [`pcc_transport::registry`] so [`send_named`] can resolve any of them.
/// Idempotent. Twin of `pcc_scenarios::install_registry` (neither crate
/// can depend on the other without warping the graph); a new algorithm
/// crate must be added to BOTH registration lists.
pub fn install_registry() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        pcc_core::register_algorithms();
        pcc_tcp::register_algorithms();
        pcc_rate::register_algorithms();
        pcc_bbr::register_algorithms();
    });
}

/// Bytes of UDP/IP framing added to each payload datagram; what the
/// engine accounts as the wire packet size must include it, and so must
/// the MSS handed to the algorithm.
pub const WIRE_OVERHEAD_BYTES: usize = 40;

/// The wire packet size for a sender configuration.
pub fn wire_mss(cfg: &UdpSenderConfig) -> u32 {
    (cfg.payload + WIRE_OVERHEAD_BYTES) as u32
}

/// The PCC controller [`send_pcc`] runs: paper config plus the *wire*
/// MSS. Threading the MSS through is load-bearing — the monitor measures
/// throughput, the 2·MSS/RTT starting rate, and the rate floor in units
/// of this packet size, and a controller left at the 1500 B default
/// over-reports all three on a `payload + 40` wire (the skew the paper's
/// utility function is sensitive to).
pub fn pcc_controller(cfg: &UdpSenderConfig, pcc: PccConfig) -> PccController {
    PccController::new(pcc).with_mss(wire_mss(cfg))
}

/// Send `cfg.total_bytes` to `peer` over `socket`, paced by a PCC
/// controller with the given config.
pub fn send_pcc(
    socket: &UdpSocket,
    peer: SocketAddr,
    cfg: UdpSenderConfig,
    pcc: PccConfig,
) -> std::io::Result<SenderReport> {
    let ctrl = pcc_controller(&cfg, pcc);
    send_with(socket, peer, cfg, Box::new(ctrl))
}

/// Send with any registered algorithm, resolved by name or parameterized
/// spec (`"pcc"`, `"cubic-paced"`, `"cubic:beta=0.7,iw=32"`, ...).
/// Unknown names and invalid spec parameters surface the registry's typed
/// [`SpecError`].
pub fn send_named(
    socket: &UdpSocket,
    peer: SocketAddr,
    cfg: UdpSenderConfig,
    name: &str,
    rtt_hint: SimDuration,
) -> std::io::Result<Result<SenderReport, SpecError>> {
    install_registry();
    let params = CcParams::default()
        .with_mss(wire_mss(&cfg))
        .with_rtt_hint(rtt_hint);
    match registry::by_name(name, &params) {
        Ok(cc) => send_with(socket, peer, cfg, cc).map(Ok),
        Err(e) => Ok(Err(e)),
    }
}

/// Send with the algorithm's brain living in a shared
/// [`CcHost`](pcc_transport::CcHost) — the
/// off-path control plane on the real-socket datapath. The flow is
/// registered with `host`, every engine event is forwarded through the
/// host's command queue, and one host can drive all of a process's
/// concurrent transfers. The flow is removed from the host when the
/// transfer ends.
pub fn send_hosted(
    socket: &UdpSocket,
    peer: SocketAddr,
    cfg: UdpSenderConfig,
    host: SharedHost,
    cc: Box<dyn CongestionControl>,
) -> std::io::Result<SenderReport> {
    send_with(socket, peer, cfg, Box::new(HostedCc::new(host, cc)))
}

/// Pop the next sequence that genuinely needs retransmission, eagerly
/// discarding stale entries (already acked, or no longer marked lost) on
/// the way. Draining stales here — instead of one per pacing slot — means
/// a post-recovery queue of stale sequences can never stall the tail of a
/// transfer: the first slot that reaches the queue either finds real work
/// or empties it.
fn next_transmit(retx: &mut VecDeque<u64>, sb: &Scoreboard) -> Option<u64> {
    while let Some(seq) = retx.pop_front() {
        if sb.is_lost(seq) && !sb.is_acked(seq) {
            return Some(seq);
        }
    }
    None
}

/// Send with an arbitrary congestion-control algorithm. The engine
/// enforces whatever operating point the algorithm requests: pacing rate,
/// congestion window, or both.
pub fn send_with(
    socket: &UdpSocket,
    peer: SocketAddr,
    cfg: UdpSenderConfig,
    mut cc: Box<dyn CongestionControl>,
) -> std::io::Result<SenderReport> {
    let start = Instant::now();
    let now_sim = |t0: Instant| SimTime::from_nanos(t0.elapsed().as_nanos() as u64);
    let mut rng = SimRng::new(cfg.seed);
    let mut effects = Effects::default();
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut sb = Scoreboard::new();
    let mut rtt = RttEstimator::new(SimDuration::from_millis(10), SimDuration::from_secs(10));
    let mut retx: VecDeque<u64> = VecDeque::new();
    let total_pkts = cfg.total_bytes.div_ceil(cfg.payload as u64);
    let payload = vec![0xA5u8; cfg.payload];
    let wire_bytes = wire_mss(&cfg);
    let mut report = SenderReport::default();

    let mut rate_bps: Option<f64> = None;
    let mut cwnd_pkts: Option<f64> = None;
    // Engine-side recovery-episode tracking for window algorithms.
    let mut recovery_point: Option<u64> = None;
    // Off-path feedback machinery. When the algorithm (or the config
    // override) asks for batched reports, per-packet events accumulate in
    // the aggregator and the algorithm only hears from the engine at report
    // boundaries — the real-socket twin of `CcSender`'s batched mode.
    let report_mode = cfg.report.unwrap_or_else(|| cc.report_mode());
    let batched = matches!(report_mode, ReportMode::Batched(_));
    let mut agg = ReportAggregator::default();
    // One-shot interval override requested via `Ctx::set_report_interval`.
    let mut requested_interval: Option<SimDuration> = None;
    let mut next_report: Option<Instant> = None;
    // Exponential RTO backoff, mirroring `CcSender`'s windowed mode: each
    // whole-window loss declaration doubles the effective RTO (capped at
    // 2^6×), and any ACK that delivers new data resets it. Without this a
    // real-path blackout re-fired the full-scan loss declaration — and
    // the full-window retransmission burst — every *base* RTO, hammering
    // the dead path and recovering far slower than the simulated engine.
    let mut rto_backoff: u32 = 0;
    // Dead-time bookkeeping for the graceful-degradation budget: the last
    // wall-clock instant at which an ACK delivered new bytes, and how many
    // consecutive whole-window timeouts have fired since. Any forward
    // progress resets both; crossing `cfg.dead_time_budget` aborts with
    // `TransferError::Stalled` *before* the retransmission burst, so an
    // aborted transfer leaves the dead path quiet.
    let mut last_progress = Instant::now();
    let mut timeouts_since_progress: u64 = 0;
    // Consecutive fruitless timeouts after which progress returning is
    // treated as outage recovery rather than ordinary loss: the RTT
    // estimator is re-seeded from the fresh sample (stale-path SRTT and a
    // backed-off RTO would otherwise govern the healed path for a long
    // tail) and the algorithm's `on_resume` hook runs. Mirrors the
    // simulator engine's constant of the same name.
    const RESUME_TIMEOUTS: u64 = 3;
    let mut next_send = Instant::now();
    let mut buf = vec![0u8; 65_536];

    socket.set_nonblocking(true)?;

    // Drain algorithm decisions into engine state. The operating point is
    // applied before any mode switch so a switch in the same callback
    // derives from the values just set (same ordering as `CcSender`).
    macro_rules! apply_effects {
        () => {{
            let d = effects.drain();
            if let Some(r) = d.rate {
                rate_bps = Some(r.max(1_000.0));
            }
            if let Some(w) = d.cwnd {
                cwnd_pkts = Some(w);
            }
            if let Some(dur) = d.report_in {
                requested_interval = Some(dur);
            }
            for (at, token) in d.timers {
                timers.push(TimerEntry(at, token));
            }
            if let Some(mode) = d.mode {
                let srtt = rtt.srtt_or(SimDuration::from_millis(100)).as_secs_f64();
                match mode {
                    CcMode::Rate => {
                        if rate_bps.is_none() {
                            let w = cwnd_pkts.unwrap_or(2.0).max(1.0);
                            rate_bps = Some((w * wire_bytes as f64 * 8.0 / srtt).max(1_000.0));
                        }
                        cwnd_pkts = None;
                        recovery_point = None;
                    }
                    CcMode::Window => {
                        if cwnd_pkts.is_none() {
                            let r = rate_bps.unwrap_or(1_000.0);
                            cwnd_pkts = Some((r * srtt / (wire_bytes as f64 * 8.0)).max(2.0));
                        }
                        rate_bps = None;
                    }
                    CcMode::Hybrid => {
                        if rate_bps.is_none() {
                            let w = cwnd_pkts.unwrap_or(2.0).max(1.0);
                            rate_bps = Some((w * wire_bytes as f64 * 8.0 / srtt).max(1_000.0));
                        }
                        if cwnd_pkts.is_none() {
                            let r = rate_bps.unwrap_or(1_000.0);
                            cwnd_pkts = Some((r * srtt / (wire_bytes as f64 * 8.0)).max(2.0));
                        }
                    }
                }
            }
        }};
    }

    // Re-arm the report deadline: the algorithm's one-shot override if it
    // set one (PCC aligning reports with its monitor intervals), else the
    // configured cadence — the adaptive default re-reads the smoothed RTT
    // at every boundary, exactly like `CcSender::report_interval`.
    macro_rules! arm_report {
        () => {{
            let interval = match requested_interval.take() {
                Some(d) => d.max(SimDuration::from_micros(100)),
                None => match report_mode {
                    ReportMode::Batched(ReportInterval::Rtts(k)) => rtt
                        .srtt_or(SimDuration::from_millis(100))
                        .mul_f64(k)
                        .max(SimDuration::from_millis(1)),
                    ReportMode::Batched(ReportInterval::Fixed(d)) => {
                        d.max(SimDuration::from_micros(100))
                    }
                    // Unreachable: only armed in batched mode.
                    ReportMode::PerAck => SimDuration::from_secs(3600),
                },
            }
            .min(SimDuration::from_secs(3600));
            next_report = Some(Instant::now() + Duration::from_nanos(interval.as_nanos()));
        }};
    }

    // Close the current interval, stamp the engine snapshot, and deliver
    // the report. Empty intervals are delivered too — interval-structured
    // algorithms (PCC) use the boundary itself as their clock.
    macro_rules! emit_report {
        ($now:expr) => {{
            let now = $now;
            let mut rep = agg.take(now);
            let srtt = rtt.srtt_or(SimDuration::from_millis(100));
            rep.srtt = srtt;
            rep.min_rtt = rtt.min_rtt().unwrap_or(srtt);
            rep.in_flight = sb.in_flight();
            rep.cum_ack = sb.cum_ack();
            rep.mss = wire_bytes;
            rep.in_recovery = recovery_point.is_some();
            {
                let mut ctx = Ctx::new(now, &mut rng, &mut effects);
                cc.on_report(&rep, &mut ctx);
            }
            apply_effects!();
            arm_report!();
        }};
    }

    {
        let mut ctx = Ctx::new(now_sim(start), &mut rng, &mut effects);
        cc.on_start(&mut ctx);
    }
    apply_effects!();
    if rate_bps.is_none() && cwnd_pkts.is_none() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("algorithm `{}` set neither rate nor cwnd", cc.name()),
        ));
    }
    if batched {
        agg.begin(now_sim(start));
        arm_report!();
    }

    while !sb.all_acked_below(total_pkts) {
        let now = now_sim(start);
        // Fire due algorithm timers.
        while timers.peek().map(|t| t.0 <= now).unwrap_or(false) {
            let TimerEntry(_, token) = timers.pop().expect("peeked");
            {
                let mut ctx = Ctx::new(now, &mut rng, &mut effects);
                cc.on_timer(token, &mut ctx);
            }
            apply_effects!();
        }
        // Close a due report interval.
        if batched && next_report.is_some_and(|t| Instant::now() >= t) {
            emit_report!(now_sim(start));
        }
        // Loss detection. When the scan wipes out the *entire* in-flight
        // window, that is the real-socket analogue of the simulator
        // engine's RTO (mark-all-lost): deliver it as a Timeout so window
        // algorithms run their RTO path (collapse + slow-start restart),
        // matching `CcSender` semantics on the same algorithm object.
        let rto = SimDuration::from_nanos(rtt.rto().as_nanos() * (1u64 << rto_backoff.min(6)));
        let lost = sb.detect_losses(now, rto);
        if !lost.is_empty() {
            report.losses += lost.len() as u64;
            retx.extend(lost.iter().copied());
            let whole_window = sb.in_flight() == 0;
            if whole_window {
                rto_backoff = rto_backoff.saturating_add(1);
                report.timeouts += 1;
                timeouts_since_progress += 1;
                if let Some(budget) = cfg.dead_time_budget {
                    let dark = last_progress.elapsed();
                    if dark >= budget {
                        // Abort before the retransmission burst below: a
                        // stalled transfer must not keep hammering the
                        // dead path on its way out.
                        return Err(std::io::Error::new(
                            ErrorKind::TimedOut,
                            TransferError::Stalled {
                                dark_ms: dark.as_millis() as u64,
                                timeouts: timeouts_since_progress,
                                acked_bytes: sb.cum_ack().saturating_mul(cfg.payload as u64),
                            },
                        ));
                    }
                }
            }
            let new_episode = match (cwnd_pkts.is_some(), recovery_point) {
                (false, _) => true,
                (true, Some(_)) => false,
                (true, None) => {
                    recovery_point = Some(sb.next_seq());
                    true
                }
            };
            if whole_window {
                // An RTO-style event aborts any recovery episode.
                recovery_point = None;
            }
            let ev = LossEvent {
                now,
                seqs: &lost,
                kind: if whole_window {
                    LossKind::Timeout
                } else {
                    LossKind::Detected
                },
                new_episode: whole_window || new_episode,
                in_flight: sb.in_flight(),
                mss: wire_bytes,
            };
            if batched {
                agg.on_loss(&ev);
                if ev.new_episode || whole_window {
                    // Urgent flush: a fresh loss episode must not wait out
                    // the report cadence (same rule as the sim engine).
                    emit_report!(now);
                }
            } else {
                {
                    let mut ctx = Ctx::new(now, &mut rng, &mut effects);
                    cc.on_loss(&ev, &mut ctx);
                }
                apply_effects!();
            }
        }
        // Transmit if the algorithm's operating point allows it right now.
        let pace_due = rate_bps.is_none() || Instant::now() >= next_send;
        let window_open = cwnd_pkts.is_none_or(|w| sb.in_flight() < w.max(1.0) as u64);
        let has_new = sb.next_seq() < total_pkts;
        let has_work = has_new || !retx.is_empty();
        if pace_due && window_open && has_work {
            let (seq, is_retx) = match next_transmit(&mut retx, &sb) {
                Some(s) => (s, true),
                None if has_new => (sb.next_seq(), false),
                None => (0, false), // queue was all stale and no new data
            };
            if is_retx || has_new {
                let h = DataHeader {
                    seq,
                    sent_us: start.elapsed().as_micros() as u64,
                    retx: is_retx,
                };
                socket.send_to(&encode_data(&h, &payload), peer)?;
                sb.on_send(seq, now, is_retx);
                report.sent += 1;
                let ev = SentEvent {
                    now,
                    seq,
                    bytes: wire_bytes,
                    retx: is_retx,
                    in_flight: sb.in_flight(),
                };
                if batched {
                    agg.on_sent(&ev);
                } else {
                    {
                        let mut ctx = Ctx::new(now, &mut rng, &mut effects);
                        cc.on_sent(&ev, &mut ctx);
                    }
                    apply_effects!();
                }
                if let Some(rate) = rate_bps {
                    let gap = wire_bytes as f64 * 8.0 / rate;
                    next_send = Instant::now() + Duration::from_secs_f64(gap);
                }
            }
        }
        // Drain whatever ACKs have arrived; if nothing is sendable, nap
        // briefly instead of spinning.
        let mut got_any = false;
        loop {
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => {
                    got_any = true;
                    let Some(Frame::Ack(a)) = decode(&buf[..n]) else {
                        continue;
                    };
                    let now = now_sim(start);
                    let echo = SimTime::from_nanos(a.echo_sent_us * 1_000);
                    let sample = now.saturating_since(echo);
                    rtt.on_sample(sample);
                    let info = AckInfo {
                        acked_seq: a.acked_seq,
                        cum_ack: a.cum_ack,
                        echo_sent_at: echo,
                        recv_at: SimTime::from_nanos(a.recv_us * 1_000),
                        recv_bytes: 0,
                        probe_train: None,
                        of_retx: a.of_retx,
                    };
                    let out = sb.on_ack(&info, now);
                    if out.newly_acked > 0 {
                        // Fresh delivery: the path is alive again.
                        rto_backoff = 0;
                        last_progress = Instant::now();
                        if timeouts_since_progress >= RESUME_TIMEOUTS {
                            // Outage recovery: discard the dead path's RTT
                            // history (re-seeded from this fresh sample) and
                            // let the algorithm reset its measurement state.
                            rtt = RttEstimator::new(
                                SimDuration::from_millis(10),
                                SimDuration::from_secs(10),
                            );
                            rtt.on_sample(sample);
                            {
                                let mut ctx = Ctx::new(now, &mut rng, &mut effects);
                                cc.on_resume(&mut ctx);
                            }
                            apply_effects!();
                        }
                        timeouts_since_progress = 0;
                    }
                    if let Some(rp) = recovery_point {
                        if sb.cum_ack() >= rp {
                            recovery_point = None;
                        }
                    }
                    if out.rtt.is_some() || out.newly_acked > 0 {
                        let srtt = rtt.srtt_or(SimDuration::from_millis(1));
                        let ev = AckEvent {
                            now,
                            seq: a.acked_seq,
                            rtt: out.rtt.unwrap_or(srtt),
                            sampled: out.rtt.is_some(),
                            srtt,
                            min_rtt: rtt.min_rtt().unwrap_or(srtt),
                            max_rtt: rtt.max_rtt().unwrap_or(srtt),
                            recv_at: info.recv_at,
                            probe_train: None,
                            of_retx: a.of_retx,
                            cum_ack: a.cum_ack,
                            newly_acked: out.newly_acked.min(u32::MAX as u64) as u32,
                            in_flight: sb.in_flight(),
                            mss: wire_bytes,
                            in_recovery: recovery_point.is_some(),
                        };
                        if batched {
                            agg.on_ack(&ev);
                        } else {
                            {
                                let mut ctx = Ctx::new(now, &mut rng, &mut effects);
                                cc.on_ack(&ev, &mut ctx);
                            }
                            apply_effects!();
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if !got_any && (!has_work || !window_open || (rate_bps.is_some() && !pace_due)) {
            // Nothing to do right now: sleep until the next interesting
            // moment (pacing slot, timer) but never more than a millisecond
            // so ACK processing stays responsive.
            let mut nap = Duration::from_millis(1);
            if rate_bps.is_some() {
                let until = next_send.saturating_duration_since(Instant::now());
                if until > Duration::ZERO {
                    nap = nap.min(until);
                }
            }
            std::thread::sleep(nap.max(Duration::from_micros(20)));
        }
    }
    report.elapsed = start.elapsed();
    report.goodput_mbps =
        cfg.total_bytes as f64 * 8.0 / report.elapsed.as_secs_f64().max(1e-9) / 1e6;
    report.final_rate_bps = rate_bps.unwrap_or(0.0);
    report.final_cwnd_pkts = cwnd_pkts.unwrap_or(0.0);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(sb: &mut Scoreboard, seq: u64, cum_ack: u64, at: SimTime) {
        let info = AckInfo {
            acked_seq: seq,
            cum_ack,
            echo_sent_at: SimTime::ZERO,
            recv_at: at,
            recv_bytes: 0,
            probe_train: None,
            of_retx: false,
        };
        sb.on_ack(&info, at);
    }

    #[test]
    fn send_pcc_threads_the_wire_mss() {
        // Regression: `send_pcc` must hand the controller the *wire* MSS
        // (`payload + 40`), not leave it at the 1500 B default — the
        // monitor's throughput, the 2·MSS/RTT starting rate, and the rate
        // floor are all denominated in it.
        let cfg = UdpSenderConfig {
            payload: 1200,
            ..Default::default()
        };
        let ctrl = pcc_controller(&cfg, PccConfig::paper());
        assert_eq!(ctrl.mss(), 1240);
        assert_eq!(wire_mss(&cfg), 1240);
    }

    #[test]
    fn next_transmit_drains_stale_entries_in_one_call() {
        // 5 packets in flight, all declared lost, then 0..4 get acked
        // (SACKed after the loss declaration): their retx entries are
        // stale. One `next_transmit` call must discard every stale entry
        // and return the single still-lost sequence — the old code burned
        // one pacing slot per stale entry, stalling the transfer tail.
        let mut sb = Scoreboard::new();
        let t0 = SimTime::ZERO;
        for seq in 0..5 {
            sb.on_send(seq, t0, false);
        }
        let lost = sb.mark_all_lost();
        assert_eq!(lost.len(), 5);
        let mut retx: VecDeque<u64> = lost.into_iter().collect();
        let t1 = SimTime::from_millis(1);
        for seq in 0..4 {
            ack(&mut sb, seq, seq + 1, t1);
        }
        assert_eq!(next_transmit(&mut retx, &sb), Some(4));
        assert!(retx.is_empty(), "stale entries discarded eagerly");
        // A fully-stale queue empties in one call and reports no work.
        let mut all_stale: VecDeque<u64> = (0..4).collect();
        assert_eq!(next_transmit(&mut all_stale, &sb), None);
        assert!(all_stale.is_empty());
    }
}
