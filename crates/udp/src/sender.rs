//! The UDP sender: the paper's user-space prototype shape — a paced sender
//! whose rate is dictated by a [`PccController`] (or any
//! [`RateController`]), with SACK-scoreboard reliability. The controller is
//! the *same object* that drives the simulator: real time is mapped onto
//! [`SimTime`] and controller timers run on a tokio timer wheel.

use std::collections::{BinaryHeap, VecDeque};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use tokio::net::UdpSocket;
use tokio::time::sleep_until;

use pcc_core::{PccConfig, PccController};
use pcc_simnet::packet::AckInfo;
use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::ratesender::{CtrlCtx, CtrlEffects, RateAck, RateController};
use pcc_transport::rtt::RttEstimator;
use pcc_transport::sack::Scoreboard;

use crate::wire::{decode, encode_data, DataHeader, Frame};

/// Sender configuration.
#[derive(Clone, Copy, Debug)]
pub struct UdpSenderConfig {
    /// Payload bytes per datagram.
    pub payload: usize,
    /// Total payload bytes to deliver.
    pub total_bytes: u64,
    /// RNG seed for the controller's randomized trials.
    pub seed: u64,
}

impl Default for UdpSenderConfig {
    fn default() -> Self {
        UdpSenderConfig {
            payload: 1200,
            total_bytes: 8 * 1024 * 1024,
            seed: 1,
        }
    }
}

/// Outcome of one send session.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderReport {
    /// Wall-clock transfer time.
    pub elapsed: Duration,
    /// Payload goodput in Mbit/s.
    pub goodput_mbps: f64,
    /// Datagrams sent (including retransmissions).
    pub sent: u64,
    /// Losses detected.
    pub losses: u64,
    /// Final controller rate, bits/sec.
    pub final_rate_bps: f64,
}

#[derive(PartialEq, Eq)]
struct TimerEntry(SimTime, u64);

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // min-heap
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Send `cfg.total_bytes` to `peer` over `socket`, paced by a PCC
/// controller with the given config.
pub async fn send_pcc(
    socket: &UdpSocket,
    peer: SocketAddr,
    cfg: UdpSenderConfig,
    pcc: PccConfig,
) -> std::io::Result<SenderReport> {
    let ctrl = PccController::new(pcc);
    send_with(socket, peer, cfg, Box::new(ctrl)).await
}

/// Send with an arbitrary rate controller (PCC, SABUL, PCP, ...).
pub async fn send_with(
    socket: &UdpSocket,
    peer: SocketAddr,
    cfg: UdpSenderConfig,
    mut ctrl: Box<dyn RateController>,
) -> std::io::Result<SenderReport> {
    let start = Instant::now();
    let now_sim = |t0: Instant| SimTime::from_nanos(t0.elapsed().as_nanos() as u64);
    let mut rng = SimRng::new(cfg.seed);
    let mut effects = CtrlEffects::default();
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut sb = Scoreboard::new();
    let mut rtt = RttEstimator::new(SimDuration::from_millis(10), SimDuration::from_secs(10));
    let mut retx: VecDeque<u64> = VecDeque::new();
    let total_pkts = cfg.total_bytes.div_ceil(cfg.payload as u64);
    let payload = vec![0xA5u8; cfg.payload];
    let mut report = SenderReport::default();

    let mut rate_bps = {
        let mut cc = CtrlCtx::new(now_sim(start), &mut rng, &mut effects);
        ctrl.on_start(&mut cc).max(1_000.0)
    };
    let mut next_send = Instant::now();
    let mut buf = vec![0u8; 65_536];

    // Drain controller effects into local state.
    macro_rules! apply_effects {
        () => {{
            let (new_rate, new_timers) = effects.drain();
            if let Some(r) = new_rate {
                rate_bps = r.max(1_000.0);
            }
            for (at, token) in new_timers {
                timers.push(TimerEntry(at, token));
            }
        }};
    }
    apply_effects!();

    while !sb.all_acked_below(total_pkts) {
        let now = now_sim(start);
        // Fire due controller timers.
        while timers.peek().map(|t| t.0 <= now).unwrap_or(false) {
            let TimerEntry(_, token) = timers.pop().expect("peeked");
            let mut cc = CtrlCtx::new(now, &mut rng, &mut effects);
            ctrl.on_timer(token, &mut cc);
            drop(cc);
            apply_effects!();
        }
        // Timeout-based loss detection.
        let lost = sb.detect_losses(now, rtt.rto());
        if !lost.is_empty() {
            report.losses += lost.len() as u64;
            retx.extend(lost.iter().copied());
            let mut cc = CtrlCtx::new(now, &mut rng, &mut effects);
            ctrl.on_loss(&lost, &mut cc);
            drop(cc);
            apply_effects!();
        }
        // Pace one packet if due.
        let due = Instant::now() >= next_send;
        let has_new = sb.next_seq() < total_pkts;
        let has_work = has_new || !retx.is_empty();
        if due && has_work {
            let (seq, is_retx) = match retx.pop_front() {
                Some(s) if sb.is_lost(s) => (s, true),
                _ if has_new => (sb.next_seq(), false),
                _ => (0, false), // stale retx entry and no new data: skip
            };
            if is_retx || has_new {
                let h = DataHeader {
                    seq,
                    sent_us: start.elapsed().as_micros() as u64,
                    retx: is_retx,
                };
                socket.send_to(&encode_data(&h, &payload), peer).await?;
                sb.on_send(seq, now, is_retx);
                report.sent += 1;
                let mut cc = CtrlCtx::new(now, &mut rng, &mut effects);
                ctrl.on_sent(seq, (cfg.payload + 40) as u32, is_retx, &mut cc);
                drop(cc);
                apply_effects!();
                let gap = (cfg.payload + 40) as f64 * 8.0 / rate_bps;
                next_send = Instant::now() + Duration::from_secs_f64(gap);
            }
        }
        // Wait for whichever comes first: pacing slot or an ACK.
        let wakeup = tokio::time::Instant::from_std(next_send);
        tokio::select! {
            r = socket.recv_from(&mut buf) => {
                let (n, _) = r?;
                if let Some(Frame::Ack(a)) = decode(bytes::Bytes::copy_from_slice(&buf[..n])) {
                    let now = now_sim(start);
                    let echo = SimTime::from_nanos(a.echo_sent_us * 1_000);
                    let sample = now.saturating_since(echo);
                    rtt.on_sample(sample);
                    let info = AckInfo {
                        acked_seq: a.acked_seq,
                        cum_ack: a.cum_ack,
                        echo_sent_at: echo,
                        recv_at: SimTime::from_nanos(a.recv_us * 1_000),
                        recv_bytes: 0,
                        probe_train: None,
                        of_retx: a.of_retx,
                    };
                    let out = sb.on_ack(&info, now);
                    if out.rtt.is_some() {
                        let ev = RateAck {
                            now,
                            seq: a.acked_seq,
                            rtt: sample,
                            recv_at: info.recv_at,
                            probe_train: None,
                            of_retx: a.of_retx,
                            cum_ack: a.cum_ack,
                        };
                        let mut cc = CtrlCtx::new(now, &mut rng, &mut effects);
                        ctrl.on_ack(&ev, &mut cc);
                        drop(cc);
                        apply_effects!();
                    }
                }
            }
            _ = sleep_until(wakeup), if has_work => {}
        }
    }
    report.elapsed = start.elapsed();
    report.goodput_mbps =
        cfg.total_bytes as f64 * 8.0 / report.elapsed.as_secs_f64().max(1e-9) / 1e6;
    report.final_rate_bps = rate_bps;
    Ok(report)
}
