//! Wire format for the UDP transport: fixed 40-byte headers, no payload
//! compression, everything big-endian. Mirrors the simulator's packet
//! metadata so the same controller logic drives both. Encoding is plain
//! `Vec<u8>`/slice work — no external buffer crates.

/// Magic tag guarding against stray datagrams.
pub const MAGIC: u32 = 0x9CC0_2015;
/// Header length for both packet kinds.
pub const HEADER_LEN: usize = 40;

/// A data segment header (payload follows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataHeader {
    /// Packet-granularity sequence number.
    pub seq: u64,
    /// Sender timestamp, microseconds since sender start.
    pub sent_us: u64,
    /// Retransmission flag.
    pub retx: bool,
}

/// A selective acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckPacket {
    /// The sequence being acknowledged.
    pub acked_seq: u64,
    /// Cumulative ack point.
    pub cum_ack: u64,
    /// Echo of the data packet's `sent_us`.
    pub echo_sent_us: u64,
    /// Receiver timestamp, microseconds since receiver start.
    pub recv_us: u64,
    /// The acked packet was a retransmission.
    pub of_retx: bool,
}

/// Either side of the protocol; data payloads borrow from the receive
/// buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame<'a> {
    /// Data with its payload.
    Data(DataHeader, &'a [u8]),
    /// An ACK.
    Ack(AckPacket),
}

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_be_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

fn header(kind: u8, flag: bool) -> Vec<u8> {
    let mut b = Vec::with_capacity(HEADER_LEN);
    b.extend_from_slice(&MAGIC.to_be_bytes());
    b.push(kind);
    b.push(flag as u8);
    b.extend_from_slice(&[0u8; 2]); // reserved
    b
}

/// Encode a data frame.
pub fn encode_data(h: &DataHeader, payload: &[u8]) -> Vec<u8> {
    let mut b = header(KIND_DATA, h.retx);
    b.reserve(HEADER_LEN - b.len() + payload.len());
    put_u64(&mut b, h.seq);
    put_u64(&mut b, h.sent_us);
    put_u64(&mut b, 0); // reserved
    put_u64(&mut b, 0); // reserved
    debug_assert_eq!(b.len(), HEADER_LEN);
    b.extend_from_slice(payload);
    b
}

/// Encode an ACK frame.
pub fn encode_ack(a: &AckPacket) -> Vec<u8> {
    let mut b = header(KIND_ACK, a.of_retx);
    put_u64(&mut b, a.acked_seq);
    put_u64(&mut b, a.cum_ack);
    put_u64(&mut b, a.echo_sent_us);
    put_u64(&mut b, a.recv_us);
    debug_assert_eq!(b.len(), HEADER_LEN);
    b
}

/// Decode any frame; `None` for foreign or truncated datagrams.
pub fn decode(buf: &[u8]) -> Option<Frame<'_>> {
    if buf.len() < HEADER_LEN || buf[0..4] != MAGIC.to_be_bytes() {
        return None;
    }
    let kind = buf[4];
    let flag = buf[5] != 0;
    match kind {
        KIND_DATA => Some(Frame::Data(
            DataHeader {
                seq: get_u64(buf, 8),
                sent_us: get_u64(buf, 16),
                retx: flag,
            },
            &buf[HEADER_LEN..],
        )),
        KIND_ACK => Some(Frame::Ack(AckPacket {
            acked_seq: get_u64(buf, 8),
            cum_ack: get_u64(buf, 16),
            echo_sent_us: get_u64(buf, 24),
            recv_us: get_u64(buf, 32),
            of_retx: flag,
        })),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let h = DataHeader {
            seq: 123456789,
            sent_us: 42_000_000,
            retx: true,
        };
        let payload = vec![7u8; 1000];
        let wire = encode_data(&h, &payload);
        assert_eq!(wire.len(), HEADER_LEN + 1000);
        match decode(&wire).expect("decodes") {
            Frame::Data(h2, p) => {
                assert_eq!(h, h2);
                assert_eq!(p.len(), 1000);
                assert!(p.iter().all(|&b| b == 7));
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn ack_roundtrip() {
        let a = AckPacket {
            acked_seq: 55,
            cum_ack: 50,
            echo_sent_us: 999,
            recv_us: 1001,
            of_retx: false,
        };
        match decode(&encode_ack(&a)).expect("decodes") {
            Frame::Ack(a2) => assert_eq!(a, a2),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b"nonsense"), None);
        let mut junk = Vec::new();
        junk.extend_from_slice(&MAGIC.to_be_bytes());
        junk.push(99); // unknown kind
        junk.extend_from_slice(&[0u8; 64]);
        assert_eq!(decode(&junk), None);
        // Truncated.
        let a = AckPacket {
            acked_seq: 1,
            cum_ack: 1,
            echo_sent_us: 0,
            recv_us: 0,
            of_retx: false,
        };
        let short = &encode_ack(&a)[0..10];
        assert_eq!(decode(short), None);
    }
}
