//! Wire format for the UDP transport: fixed 40-byte headers, no payload
//! compression, everything big-endian. Mirrors the simulator's packet
//! metadata so the same controller logic drives both.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag guarding against stray datagrams.
pub const MAGIC: u32 = 0x9CC0_2015;
/// Header length for both packet kinds.
pub const HEADER_LEN: usize = 40;

/// A data segment header (payload follows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataHeader {
    /// Packet-granularity sequence number.
    pub seq: u64,
    /// Sender timestamp, microseconds since sender start.
    pub sent_us: u64,
    /// Retransmission flag.
    pub retx: bool,
}

/// A selective acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckPacket {
    /// The sequence being acknowledged.
    pub acked_seq: u64,
    /// Cumulative ack point.
    pub cum_ack: u64,
    /// Echo of the data packet's `sent_us`.
    pub echo_sent_us: u64,
    /// Receiver timestamp, microseconds since receiver start.
    pub recv_us: u64,
    /// The acked packet was a retransmission.
    pub of_retx: bool,
}

/// Either side of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Data with its payload.
    Data(DataHeader, Bytes),
    /// An ACK.
    Ack(AckPacket),
}

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

/// Encode a data frame.
pub fn encode_data(h: &DataHeader, payload: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(HEADER_LEN + payload.len());
    b.put_u32(MAGIC);
    b.put_u8(KIND_DATA);
    b.put_u8(h.retx as u8);
    b.put_u16(0); // reserved
    b.put_u64(h.seq);
    b.put_u64(h.sent_us);
    b.put_u64(0); // reserved
    b.put_u64(0); // reserved
    debug_assert_eq!(b.len(), HEADER_LEN);
    b.extend_from_slice(payload);
    b.freeze()
}

/// Encode an ACK frame.
pub fn encode_ack(a: &AckPacket) -> Bytes {
    let mut b = BytesMut::with_capacity(HEADER_LEN);
    b.put_u32(MAGIC);
    b.put_u8(KIND_ACK);
    b.put_u8(a.of_retx as u8);
    b.put_u16(0);
    b.put_u64(a.acked_seq);
    b.put_u64(a.cum_ack);
    b.put_u64(a.echo_sent_us);
    b.put_u64(a.recv_us);
    debug_assert_eq!(b.len(), HEADER_LEN);
    b.freeze()
}

/// Decode any frame; `None` for foreign or truncated datagrams.
pub fn decode(mut buf: Bytes) -> Option<Frame> {
    if buf.len() < HEADER_LEN || buf.get_u32() != MAGIC {
        return None;
    }
    let kind = buf.get_u8();
    let flag = buf.get_u8() != 0;
    let _ = buf.get_u16();
    match kind {
        KIND_DATA => {
            let seq = buf.get_u64();
            let sent_us = buf.get_u64();
            let _ = buf.get_u64();
            let _ = buf.get_u64();
            Some(Frame::Data(
                DataHeader {
                    seq,
                    sent_us,
                    retx: flag,
                },
                buf,
            ))
        }
        KIND_ACK => Some(Frame::Ack(AckPacket {
            acked_seq: buf.get_u64(),
            cum_ack: buf.get_u64(),
            echo_sent_us: buf.get_u64(),
            recv_us: buf.get_u64(),
            of_retx: flag,
        })),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let h = DataHeader {
            seq: 123456789,
            sent_us: 42_000_000,
            retx: true,
        };
        let payload = vec![7u8; 1000];
        let wire = encode_data(&h, &payload);
        assert_eq!(wire.len(), HEADER_LEN + 1000);
        match decode(wire).expect("decodes") {
            Frame::Data(h2, p) => {
                assert_eq!(h, h2);
                assert_eq!(p.len(), 1000);
                assert!(p.iter().all(|&b| b == 7));
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn ack_roundtrip() {
        let a = AckPacket {
            acked_seq: 55,
            cum_ack: 50,
            echo_sent_us: 999,
            recv_us: 1001,
            of_retx: false,
        };
        match decode(encode_ack(&a)).expect("decodes") {
            Frame::Ack(a2) => assert_eq!(a, a2),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(Bytes::from_static(b"nonsense")), None);
        let mut junk = BytesMut::new();
        junk.put_u32(MAGIC);
        junk.put_u8(99); // unknown kind
        junk.extend_from_slice(&[0u8; 64]);
        assert_eq!(decode(junk.freeze()), None);
        // Truncated.
        let a = AckPacket {
            acked_seq: 1,
            cum_ack: 1,
            echo_sent_us: 0,
            recv_us: 0,
            of_retx: false,
        };
        let short = encode_ack(&a).slice(0..10);
        assert_eq!(decode(short), None);
    }
}
