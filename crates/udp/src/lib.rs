//! # pcc-udp — congestion control over real UDP sockets
//!
//! The paper ships a user-space prototype on UDT that "can deliver real
//! data today" (§1). This crate is that shape in Rust, generalized by the
//! unified control API: a `std::net` UDP sender driven by *any*
//! [`pcc_transport::CongestionControl`] — the same boxed object that runs
//! in the simulator — with SACK-scoreboard reliability, plus a
//! per-datagram-acking receiver. The engine enforces whatever the
//! algorithm requests: a pacing rate (PCC, SABUL, PCP), a congestion
//! window (any TCP baseline), or both (paced TCP).
//!
//! Resolve algorithms by name with [`send_named`] (via the workspace
//! registry; unknown names are a typed error), hand a constructed
//! algorithm to [`send_with`], or park the algorithm's brain in a shared
//! off-path [`pcc_transport::CcHost`] with [`send_hosted`] — one host
//! drives all of a process's concurrent transfers, consuming batched
//! [`pcc_transport::MeasurementReport`]s when the algorithm (or a
//! [`UdpSenderConfig::report`] override) opts in.
//!
//! See `examples/udp_transfer.rs` at the workspace root for a loopback
//! demonstration (pick the algorithm on the command line), and
//! `crates/udp/tests/loopback.rs` for the integration tests.

pub mod receiver;
pub mod sender;
pub mod wire;

pub use receiver::{receive, ReceiverReport};
pub use sender::{
    install_registry, send_hosted, send_named, send_pcc, send_with, wire_mss, SenderReport,
    UdpSenderConfig,
};
