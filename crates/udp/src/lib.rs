//! # pcc-udp — PCC over real UDP sockets
//!
//! The paper ships a user-space prototype on UDT that "can deliver real
//! data today" (§1). This crate is that shape in Rust: a paced UDP sender
//! driven by the *same* [`pcc_core::PccController`] object that runs in the
//! simulator (real time mapped onto the controller's clock), with
//! SACK-scoreboard reliability, plus a per-datagram-acking receiver.
//!
//! See `examples/udp_transfer.rs` at the workspace root for a loopback
//! demonstration, and `crates/udp/tests/loopback.rs` for the integration
//! test.

#![warn(missing_docs)]

pub mod receiver;
pub mod sender;
pub mod wire;

pub use receiver::{receive, ReceiverReport};
pub use sender::{send_pcc, send_with, SenderReport, UdpSenderConfig};
