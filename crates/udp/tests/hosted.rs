//! Off-path control plane on the real-socket datapath: one shared
//! [`pcc_transport::CcHost`] drives several concurrent loopback transfers,
//! and the batched report path moves real bytes for both a rate-based and
//! a window-based algorithm.

use std::net::UdpSocket;
use std::sync::Arc;
use std::thread;

use pcc_simnet::time::SimDuration;
use pcc_transport::cc::ReportMode;
use pcc_transport::host::shared_host;
use pcc_transport::registry::{self, CcParams};
use pcc_udp::{install_registry, receive, send_hosted, send_named, UdpSenderConfig};

fn sockets() -> (UdpSocket, UdpSocket, std::net::SocketAddr) {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let rx_addr = rx_sock.local_addr().expect("addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    (rx_sock, tx_sock, rx_addr)
}

#[test]
fn one_host_drives_concurrent_transfers() {
    // Three flows, three algorithms, one brain: every engine callback
    // funnels through the same CcHost command queue, yet each transfer
    // completes as if it owned its algorithm outright.
    install_registry();
    let host = shared_host();
    let mut workers = Vec::new();
    for (i, name) in ["cubic", "pcc", "rate-then-window"].iter().enumerate() {
        let (rx_sock, tx_sock, rx_addr) = sockets();
        let total: u64 = 512 * 1024;
        let rx = thread::spawn(move || receive(&rx_sock, total));
        let host = Arc::clone(&host);
        workers.push(thread::spawn(move || {
            let cfg = UdpSenderConfig {
                payload: 1200,
                total_bytes: total,
                seed: 31 + i as u64,
                ..Default::default()
            };
            let params = CcParams::default()
                .with_mss((cfg.payload + 40) as u32)
                .with_rtt_hint(SimDuration::from_millis(2));
            let cc = registry::by_name(name, &params).expect("registered");
            let report = send_hosted(&tx_sock, rx_addr, cfg, host, cc).expect("send");
            let rx_report = rx.join().expect("join").expect("receive");
            assert!(rx_report.unique_bytes >= total, "{name}: all bytes arrived");
            assert!(
                report.goodput_mbps > 0.5,
                "{name}: goodput sane: {} Mbps",
                report.goodput_mbps
            );
        }));
    }
    for w in workers {
        w.join().expect("transfer thread");
    }
    // Every HostedCc stub dropped on completion → the host is empty again.
    let h = host
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(h.is_empty(), "flows deregistered on drop");
}

#[test]
fn batched_reports_move_data_over_loopback() {
    // Force 1-RTT batched reports on the real-socket engine: per-packet
    // callbacks are withheld, the algorithm only hears report boundaries,
    // and the transfer still completes for a window algorithm (cubic) and
    // a rate algorithm (sabul).
    for (name, seed) in [("cubic", 41u64), ("sabul", 43)] {
        let (rx_sock, tx_sock, rx_addr) = sockets();
        let total: u64 = 512 * 1024;
        let rx = thread::spawn(move || receive(&rx_sock, total));
        let cfg = UdpSenderConfig {
            payload: 1200,
            total_bytes: total,
            seed,
            report: Some(ReportMode::batched_rtt()),
            ..Default::default()
        };
        let report = send_named(&tx_sock, rx_addr, cfg, name, SimDuration::from_millis(2))
            .expect("io")
            .expect("registered");
        let rx_report = rx.join().expect("join").expect("receive");
        assert!(rx_report.unique_bytes >= total, "{name}: all bytes arrived");
        assert!(
            report.goodput_mbps > 0.5,
            "{name}: goodput sane: {} Mbps",
            report.goodput_mbps
        );
    }
}

#[test]
fn mode_switcher_runs_hosted_and_batched() {
    // The acceptance-criteria pincer on the real datapath: rate-then-window
    // starts rate-paced, switches the engine to Window mid-flight via
    // `Effects::set_mode`, with its brain off-path in a CcHost and its
    // feedback batched — and the transfer still lands every byte.
    install_registry();
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 512 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));
    let host = shared_host();
    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 47,
        report: Some(ReportMode::batched_rtt()),
        ..Default::default()
    };
    let params = CcParams::default()
        .with_mss((cfg.payload + 40) as u32)
        .with_rtt_hint(SimDuration::from_millis(2));
    let cc = registry::by_name("rate-then-window", &params).expect("registered");
    let report = send_hosted(&tx_sock, rx_addr, cfg, host, cc).expect("send");
    let rx_report = rx.join().expect("join").expect("receive");
    assert!(rx_report.unique_bytes >= total, "all bytes arrived");
    assert!(report.goodput_mbps > 0.5, "made progress");
}
