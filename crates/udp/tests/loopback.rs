//! Loopback integration tests: real datagrams, real clock, and the same
//! algorithm objects that drive the simulator — both a rate-based one
//! (PCC) and a window-based one (CUBIC via the registry), proving the
//! real-UDP datapath is algorithm-agnostic.

use std::net::UdpSocket;
use std::thread;

use pcc_core::PccConfig;
use pcc_simnet::time::SimDuration;
use pcc_udp::{receive, send_named, send_pcc, UdpSenderConfig};

fn sockets() -> (UdpSocket, UdpSocket, std::net::SocketAddr) {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let rx_addr = rx_sock.local_addr().expect("addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    (rx_sock, tx_sock, rx_addr)
}

#[test]
fn pcc_transfers_over_loopback() {
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 2 * 1024 * 1024; // 2 MB keeps CI fast
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 3,
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(2));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).expect("send");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(report.sent >= total / 1200, "sent at least the payload");
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
    assert!(report.final_rate_bps > 0.0, "PCC drives a rate");
}

#[test]
fn cubic_transfers_over_loopback_via_registry() {
    // A *window* algorithm on the real-UDP datapath, resolved by name —
    // impossible in the seed design, where only RateControllers could
    // drive real sockets.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 1024 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 7,
    };
    let report = send_named(&tx_sock, rx_addr, cfg, "cubic", SimDuration::from_millis(2))
        .expect("io")
        .expect("cubic is registered");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(
        report.final_cwnd_pkts >= 2.0,
        "cubic drives a window: {}",
        report.final_cwnd_pkts
    );
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
}

#[test]
fn unknown_algorithm_is_typed_error_not_panic() {
    let (_rx_sock, tx_sock, rx_addr) = sockets();
    let cfg = UdpSenderConfig::default();
    let err = send_named(&tx_sock, rx_addr, cfg, "tahoe", SimDuration::from_millis(2))
        .expect("io ok")
        .expect_err("tahoe is not registered");
    assert_eq!(err.name, "tahoe");
    assert!(err.known.contains(&"cubic".to_string()));
    assert!(
        err.known.contains(&"bbr".to_string()),
        "the hybrid is a registered real-socket citizen"
    );
}

#[test]
fn bbr_transfers_over_loopback_as_a_hybrid() {
    // The first algorithm to drive *both* machineries of the UDP engine
    // at once: a pacing rate and a congestion window, live simultaneously
    // for the whole transfer.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 2 * 1024 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 11,
    };
    let report = send_named(&tx_sock, rx_addr, cfg, "bbr", SimDuration::from_millis(2))
        .expect("io")
        .expect("bbr is registered");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(
        report.final_rate_bps > 0.0,
        "bbr drives a pacing rate: {}",
        report.final_rate_bps
    );
    assert!(
        report.final_cwnd_pkts > 0.0,
        "bbr drives a window too: {}",
        report.final_cwnd_pkts
    );
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
}

#[test]
fn send_pcc_uses_wire_mss_on_a_nonstandard_payload() {
    // Regression for the MSS skew: send_pcc must account with the wire
    // packet size (payload + 40), not the 1500 B default. The wiring
    // itself is asserted by pcc_controller's unit test; this exercises the
    // fixed path end-to-end with a payload far from the default.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 256 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 400,
        total_bytes: total,
        seed: 5,
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(2));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).expect("send");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(report.final_rate_bps > 0.0, "PCC drives a rate");
}
