//! Loopback integration test: real datagrams, real clock, PCC control.

use pcc_core::PccConfig;
use pcc_simnet::time::SimDuration;
use pcc_udp::{receive, send_pcc, UdpSenderConfig};
use tokio::net::UdpSocket;

#[tokio::test]
async fn pcc_transfers_over_loopback() {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").await.expect("bind rx");
    let rx_addr = rx_sock.local_addr().expect("addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").await.expect("bind tx");

    let total: u64 = 2 * 1024 * 1024; // 2 MB keeps CI fast
    let rx = tokio::spawn(async move { receive(&rx_sock, total).await });

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 3,
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(2));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).await.expect("send");
    let rx_report = rx.await.expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(report.sent >= total / 1200, "sent at least the payload");
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
}
