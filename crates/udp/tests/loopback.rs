//! Loopback integration tests: real datagrams, real clock, and the same
//! algorithm objects that drive the simulator — both a rate-based one
//! (PCC) and a window-based one (CUBIC via the registry), proving the
//! real-UDP datapath is algorithm-agnostic.

use std::net::UdpSocket;
use std::thread;

use pcc_core::PccConfig;
use pcc_simnet::time::SimDuration;
use pcc_udp::{receive, send_named, send_pcc, UdpSenderConfig};

fn sockets() -> (UdpSocket, UdpSocket, std::net::SocketAddr) {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let rx_addr = rx_sock.local_addr().expect("addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    (rx_sock, tx_sock, rx_addr)
}

#[test]
fn pcc_transfers_over_loopback() {
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 2 * 1024 * 1024; // 2 MB keeps CI fast
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 3,
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(2));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).expect("send");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(report.sent >= total / 1200, "sent at least the payload");
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
    assert!(report.final_rate_bps > 0.0, "PCC drives a rate");
}

#[test]
fn cubic_transfers_over_loopback_via_registry() {
    // A *window* algorithm on the real-UDP datapath, resolved by name —
    // impossible in the seed design, where only RateControllers could
    // drive real sockets.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 1024 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 7,
    };
    let report = send_named(&tx_sock, rx_addr, cfg, "cubic", SimDuration::from_millis(2))
        .expect("io")
        .expect("cubic is registered");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(
        report.final_cwnd_pkts >= 2.0,
        "cubic drives a window: {}",
        report.final_cwnd_pkts
    );
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
}

#[test]
fn unknown_algorithm_is_typed_error_not_panic() {
    let (_rx_sock, tx_sock, rx_addr) = sockets();
    let cfg = UdpSenderConfig::default();
    let err = send_named(&tx_sock, rx_addr, cfg, "bbr", SimDuration::from_millis(2))
        .expect("io ok")
        .expect_err("bbr is not registered");
    assert_eq!(err.name, "bbr");
    assert!(err.known.contains(&"cubic".to_string()));
}
