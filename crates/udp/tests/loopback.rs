//! Loopback integration tests: real datagrams, real clock, and the same
//! algorithm objects that drive the simulator — both a rate-based one
//! (PCC) and a window-based one (CUBIC via the registry), proving the
//! real-UDP datapath is algorithm-agnostic.

use std::net::UdpSocket;
use std::thread;

use pcc_core::PccConfig;
use pcc_simnet::time::SimDuration;
use pcc_transport::registry::SpecError;
use pcc_udp::{receive, send_named, send_pcc, UdpSenderConfig};

fn sockets() -> (UdpSocket, UdpSocket, std::net::SocketAddr) {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let rx_addr = rx_sock.local_addr().expect("addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    (rx_sock, tx_sock, rx_addr)
}

#[test]
fn pcc_transfers_over_loopback() {
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 2 * 1024 * 1024; // 2 MB keeps CI fast
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 3,
        ..Default::default()
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(2));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).expect("send");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(report.sent >= total / 1200, "sent at least the payload");
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
    assert!(report.final_rate_bps > 0.0, "PCC drives a rate");
}

#[test]
fn cubic_transfers_over_loopback_via_registry() {
    // A *window* algorithm on the real-UDP datapath, resolved by name —
    // impossible in the seed design, where only RateControllers could
    // drive real sockets.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 1024 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 7,
        ..Default::default()
    };
    let report = send_named(&tx_sock, rx_addr, cfg, "cubic", SimDuration::from_millis(2))
        .expect("io")
        .expect("cubic is registered");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(
        report.final_cwnd_pkts >= 2.0,
        "cubic drives a window: {}",
        report.final_cwnd_pkts
    );
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
}

#[test]
fn unknown_algorithm_is_typed_error_not_panic() {
    let (_rx_sock, tx_sock, rx_addr) = sockets();
    let cfg = UdpSenderConfig::default();
    let err = match send_named(&tx_sock, rx_addr, cfg, "tahoe", SimDuration::from_millis(2))
        .expect("io ok")
    {
        Ok(_) => panic!("tahoe is not registered"),
        Err(SpecError::Unknown(e)) => e,
        Err(other) => panic!("expected Unknown, got {other}"),
    };
    assert_eq!(err.name, "tahoe");
    assert!(err.known.contains(&"cubic".to_string()));
    assert!(
        err.known.contains(&"bbr".to_string()),
        "the hybrid is a registered real-socket citizen"
    );
}

#[test]
fn invalid_spec_param_is_typed_error_not_panic() {
    // The datapath threads parameterized specs through the registry, so a
    // bad key/value surfaces the schema's typed error (listing valid
    // keys) instead of constructing a mis-tuned controller.
    let (_rx_sock, tx_sock, rx_addr) = sockets();
    let cfg = UdpSenderConfig::default();
    let err = match send_named(
        &tx_sock,
        rx_addr,
        cfg,
        "cubic:iw=0",
        SimDuration::from_millis(2),
    )
    .expect("io ok")
    {
        Ok(_) => panic!("iw=0 is out of range"),
        Err(SpecError::InvalidParam(e)) => e,
        Err(other) => panic!("expected InvalidParam, got {other}"),
    };
    assert_eq!(err.algo, "cubic");
    assert!(
        err.valid.iter().any(|k| k.contains("iw")),
        "{:?}",
        err.valid
    );
}

#[test]
fn parameterized_specs_transfer_over_loopback() {
    // The acceptance surface: `name:key=val` resolves on the *real*
    // datapath too — a tuned cubic and a tuned PCC both move real bytes.
    for spec in ["cubic:beta=0.7,iw=32", "pcc:eps=0.05"] {
        let (rx_sock, tx_sock, rx_addr) = sockets();
        let total: u64 = 512 * 1024;
        let rx = thread::spawn(move || receive(&rx_sock, total));
        let cfg = UdpSenderConfig {
            payload: 1200,
            total_bytes: total,
            seed: 13,
            ..Default::default()
        };
        let report = send_named(&tx_sock, rx_addr, cfg, spec, SimDuration::from_millis(2))
            .expect("io")
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        let rx_report = rx.join().expect("join").expect("receive");
        assert!(
            rx_report.unique_bytes >= total,
            "{spec}: all payload arrived"
        );
        assert!(
            report.goodput_mbps > 1.0,
            "{spec}: goodput sane: {} Mbps",
            report.goodput_mbps
        );
    }
}

#[test]
fn bbr_transfers_over_loopback_as_a_hybrid() {
    // The first algorithm to drive *both* machineries of the UDP engine
    // at once: a pacing rate and a congestion window, live simultaneously
    // for the whole transfer.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 2 * 1024 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 11,
        ..Default::default()
    };
    let report = send_named(&tx_sock, rx_addr, cfg, "bbr", SimDuration::from_millis(2))
        .expect("io")
        .expect("bbr is registered");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(
        report.final_rate_bps > 0.0,
        "bbr drives a pacing rate: {}",
        report.final_rate_bps
    );
    assert!(
        report.final_cwnd_pkts > 0.0,
        "bbr drives a window too: {}",
        report.final_cwnd_pkts
    );
    assert!(
        report.goodput_mbps > 1.0,
        "loopback goodput sane: {} Mbps",
        report.goodput_mbps
    );
}

#[test]
fn send_pcc_uses_wire_mss_on_a_nonstandard_payload() {
    // Regression for the MSS skew: send_pcc must account with the wire
    // packet size (payload + 40), not the 1500 B default. The wiring
    // itself is asserted by pcc_controller's unit test; this exercises the
    // fixed path end-to-end with a payload far from the default.
    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 256 * 1024;
    let rx = thread::spawn(move || receive(&rx_sock, total));

    let cfg = UdpSenderConfig {
        payload: 400,
        total_bytes: total,
        seed: 5,
        ..Default::default()
    };
    let pcc = PccConfig::paper().with_rtt_hint(SimDuration::from_millis(2));
    let report = send_pcc(&tx_sock, rx_addr, cfg, pcc).expect("send");
    let rx_report = rx.join().expect("join").expect("receive");

    assert!(rx_report.unique_bytes >= total, "all payload arrived");
    assert!(report.final_rate_bps > 0.0, "PCC drives a rate");
}
