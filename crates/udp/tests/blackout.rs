//! The RTO-backoff blackout regression, in its own test binary so it
//! runs without the loopback suite's seven concurrent busy-loop
//! transfers: the assertion budgets whole-window RTO fires against the
//! blackout the sender actually experienced, and intra-binary thread
//! contention (every other loopback test spinning a sender loop) can
//! stretch sender-side scheduling in ways no receiver-side measurement
//! captures. Cargo runs test binaries sequentially, so isolation here
//! makes the timing deterministic enough to assert tightly.

use std::net::UdpSocket;
use std::thread;

use pcc_simnet::time::SimDuration;
use pcc_udp::{send_named, UdpSenderConfig};

fn sockets() -> (UdpSocket, UdpSocket, std::net::SocketAddr) {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let rx_addr = rx_sock.local_addr().expect("addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    (rx_sock, tx_sock, rx_addr)
}

#[test]
fn rto_backoff_limits_blackout_refires_and_recovers() {
    // Regression for the datapath's missing RTO backoff: a receiver that
    // goes silent mid-transfer used to re-fire the whole-window loss
    // declaration every *base* RTO (~10 ms on loopback), hammering the
    // dead path with retransmission bursts. With exponential backoff the
    // blackout must cost at most 4 backed-off RTOs (10+20+40+80 ms covers
    // the 140 ms pause), and the first ACK after resumption must reset
    // the backoff so the transfer still completes promptly.
    use std::collections::BTreeSet;
    use std::time::{Duration, Instant};

    use pcc_udp::wire::{decode, encode_ack, AckPacket, Frame};

    /// Like `receive`, but goes dark for (at least) `pause` once
    /// `pause_after_bytes` have arrived. Returns the unique bytes
    /// received and the *measured* dark time — under CI contention the
    /// sleep can overshoot substantially, and the sender's allowed
    /// timeout count must be judged against the blackout it actually
    /// experienced, not the nominal one.
    fn receive_with_pause(
        socket: &UdpSocket,
        expected_bytes: u64,
        pause_after_bytes: u64,
        pause: Duration,
    ) -> std::io::Result<(u64, Duration)> {
        let start = Instant::now();
        let mut buf = vec![0u8; 65_536];
        let mut cum_ack = 0u64;
        let mut ooo: BTreeSet<u64> = BTreeSet::new();
        let mut unique = 0u64;
        let mut dark = Duration::ZERO;
        socket.set_nonblocking(false)?;
        while unique < expected_bytes {
            let (n, from) = match socket.recv_from(&mut buf) {
                Ok(ok) => ok,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            let Some(Frame::Data(h, payload)) = decode(&buf[..n]) else {
                continue;
            };
            let fresh = h.seq >= cum_ack && !ooo.contains(&h.seq);
            if fresh {
                ooo.insert(h.seq);
                while ooo.remove(&cum_ack) {
                    cum_ack += 1;
                }
                unique += payload.len() as u64;
            }
            let ack = AckPacket {
                acked_seq: h.seq,
                cum_ack,
                echo_sent_us: h.sent_us,
                recv_us: start.elapsed().as_micros() as u64,
                of_retx: h.retx,
            };
            socket.send_to(&encode_ack(&ack), from)?;
            if dark.is_zero() && unique >= pause_after_bytes {
                // Go dark: datagrams queue in the socket buffer, but no
                // ACKs flow — the sender sees a blackout.
                let t0 = Instant::now();
                std::thread::sleep(pause);
                dark = t0.elapsed().max(Duration::from_nanos(1));
            }
        }
        Ok((unique, dark))
    }

    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 512 * 1024;
    let pause = Duration::from_millis(140);
    let rx = thread::spawn(move || receive_with_pause(&rx_sock, total, total / 4, pause));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 21,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = send_named(&tx_sock, rx_addr, cfg, "cubic", SimDuration::from_millis(2))
        .expect("io")
        .expect("cubic is registered");
    let elapsed = t0.elapsed();
    let (received, dark) = rx.join().expect("join").expect("receive");

    assert!(
        received >= total,
        "all payload arrived despite the blackout"
    );
    assert!(
        report.timeouts >= 1,
        "the blackout actually exercised the RTO path"
    );
    // With exponential backoff the k-th whole-window fire happens at
    // cumulative base·(2^k − 1) into the blackout (base = the 10 ms
    // loopback RTO floor): 10, 30, 70, 150, 310, ... ms. Allow the fires
    // that fit into the blackout the sender *actually* saw plus a 30 ms
    // grace for a scan racing the resumed ACK drain — for the nominal
    // 140 ms pause that is exactly 4. Scheduler overshoot under CI
    // contention is measured and extends the budget accordingly. Without
    // backoff the same pause re-fired every base RTO — ~14 declarations.
    let base_ms = 10u128;
    let budget_ms = dark.as_millis() + 30;
    let mut allowed = 0u64;
    let mut k = 1u32;
    while base_ms * ((1u128 << k) - 1) <= budget_ms {
        allowed += 1;
        k += 1;
    }
    assert!(
        report.timeouts <= allowed,
        "exponential backoff caps re-fires at {allowed} for a {dark:?} \
         blackout (nominal: 4 for 140 ms; ~14 without backoff): {}",
        report.timeouts
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "backoff reset on the first post-blackout ACK, transfer not wedged: {elapsed:?}"
    );
}

#[test]
fn never_returning_receiver_stalls_within_budget_without_parting_burst() {
    // Graceful-degradation hardening: a receiver that ACKs the start of a
    // transfer and then goes silent *forever* must not be retried on the
    // capped-backoff timer until the heat death of the universe. With a
    // dead-time budget configured the sender aborts with a typed
    // `TransferError::Stalled` carrying partial-progress stats, and the
    // abort happens *before* the whole-window retransmission burst — the
    // dead path goes quiet, it is not hammered one last time on the way
    // out.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use pcc_transport::TransferError;
    use pcc_udp::wire::{decode, encode_ack, AckPacket, Frame};

    /// ACKs normally until `ack_until_bytes` unique bytes arrived, then
    /// never ACKs again — but keeps draining datagrams, timestamping each
    /// data arrival, so the test can prove the sender stopped transmitting
    /// once it declared the transfer stalled.
    fn receive_then_vanish(
        socket: &UdpSocket,
        ack_until_bytes: u64,
        stop: &AtomicBool,
    ) -> std::io::Result<Vec<Instant>> {
        let start = Instant::now();
        let mut buf = vec![0u8; 65_536];
        let mut cum_ack = 0u64;
        let mut unique = 0u64;
        let mut arrivals = Vec::new();
        socket.set_nonblocking(true)?;
        while !stop.load(Ordering::Relaxed) {
            let (n, from) = match socket.recv_from(&mut buf) {
                Ok(ok) => ok,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_micros(500));
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            let Some(Frame::Data(h, payload)) = decode(&buf[..n]) else {
                continue;
            };
            arrivals.push(Instant::now());
            if unique >= ack_until_bytes {
                // Gone dark, for good.
                continue;
            }
            if h.seq == cum_ack {
                cum_ack += 1;
                unique += payload.len() as u64;
            }
            let ack = AckPacket {
                acked_seq: h.seq,
                cum_ack,
                echo_sent_us: h.sent_us,
                recv_us: start.elapsed().as_micros() as u64,
                of_retx: h.retx,
            };
            socket.send_to(&encode_ack(&ack), from)?;
        }
        Ok(arrivals)
    }

    let (rx_sock, tx_sock, rx_addr) = sockets();
    let total: u64 = 256 * 1024;
    let ack_until: u64 = 32 * 1024;
    let budget = Duration::from_millis(400);
    let stop = Arc::new(AtomicBool::new(false));
    let rx_stop = Arc::clone(&stop);
    let rx = thread::spawn(move || receive_then_vanish(&rx_sock, ack_until, &rx_stop));

    let cfg = UdpSenderConfig {
        payload: 1200,
        total_bytes: total,
        seed: 7,
        dead_time_budget: Some(budget),
        ..Default::default()
    };
    let t0 = Instant::now();
    let err = send_named(&tx_sock, rx_addr, cfg, "cubic", SimDuration::from_millis(2))
        .expect_err("a permanently silent receiver must abort the transfer");
    let aborted_at = Instant::now();
    let elapsed = t0.elapsed();

    // Give any in-flight loopback datagrams time to land, then stop the
    // receiver and inspect what it saw.
    thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let arrivals = rx.join().expect("join").expect("receive");

    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    let stalled = err
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<TransferError>())
        .expect("the io::Error wraps the typed stall");
    let TransferError::Stalled {
        dark_ms,
        timeouts,
        acked_bytes,
    } = *stalled;
    assert!(
        dark_ms >= budget.as_millis() as u64,
        "the budget was actually exhausted before aborting: {dark_ms} ms"
    );
    assert!(timeouts >= 1, "the stall was declared off the timeout path");
    assert!(
        acked_bytes >= ack_until,
        "partial progress is reported: {acked_bytes} bytes acked"
    );
    assert!(
        acked_bytes < total,
        "the transfer did not secretly complete"
    );
    // Backed-off whole-window fires land at cumulative base·(2^k − 1); the
    // 400 ms budget is crossed by the ~630 ms fire even on a bare 10 ms
    // loopback RTO floor. Allow generous CI-scheduler slack, but nothing
    // like the ~30 s a budget-less sender would burn before the test's own
    // safety net.
    assert!(
        elapsed < Duration::from_secs(10),
        "the stall was declared promptly: {elapsed:?}"
    );
    // No parting burst: the abort fires *before* the retransmission leg,
    // so nothing new hits the wire after it. A 20 ms grace covers
    // loopback delivery + receiver scheduling of datagrams already sent.
    let grace = aborted_at + Duration::from_millis(20);
    let late = arrivals.iter().filter(|&&t| t > grace).count();
    assert_eq!(
        late, 0,
        "no datagrams transmitted after the stall was declared"
    );
}
