//! `rate-then-window`: the mode-switching reference algorithm.
//!
//! Exercises the control-plane seam the off-path refactor added: an
//! algorithm that *starts* as a pure rate controller (doubling its pacing
//! rate off batched delivery feedback, BBR-startup-style) and then asks
//! the engine — via [`CtrlCtx::set_mode`] — to re-plumb it as a pure
//! window controller for steady state (Reno-style AIMD per report). The
//! engine derives the missing operating point at the switch, so the
//! transition is seamless on both datapaths (simulated `CcSender` and the
//! real-UDP sender).
//!
//! Natively batched ([`ReportMode::batched_rtt`]): control decisions run
//! once per smoothed RTT off [`MeasurementReport`]s. On an engine that
//! only offers per-ACK delivery, the algorithm self-batches through its
//! own [`ReportAggregator`], so either feedback granularity produces the
//! same decision sequence.

use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::cc::{
    AckEvent, CcMode, CongestionControl, Ctx as CtrlCtx, LossEvent, LossKind, ReportMode, SentEvent,
};
use pcc_transport::registry::CcParams;
use pcc_transport::report::{MeasurementReport, ReportAggregator};

/// Floor for the steady-state window, packets.
pub const MIN_CWND_PKTS: f64 = 2.0;
/// Window installed at the switch is at least this many packets.
const SWITCH_CWND_FLOOR: f64 = 4.0;
/// Startup keeps doubling while delivery sustains at least this fraction
/// of the probed rate.
const SUSTAIN_FRACTION: f64 = 0.5;

/// Two-phase controller: rate-mode startup, window-mode steady state.
pub struct RateThenWindow {
    mss: u32,
    rtt_hint: SimDuration,
    /// Startup pacing rate, bits/sec.
    rate_bps: f64,
    /// Steady-state congestion window, packets (valid once `in_window`).
    cwnd_pkts: f64,
    /// Steady state reached: the engine has been switched to window mode.
    in_window: bool,
    /// Per-ACK compatibility path: self-batching aggregator plus the
    /// engine snapshots the next self-emitted report gets stamped with.
    agg: ReportAggregator,
    next_emit: SimTime,
    last_srtt: SimDuration,
    last_min_rtt: SimDuration,
    last_in_flight: u64,
    last_in_recovery: bool,
}

impl RateThenWindow {
    /// Build from registry construction parameters; `rate0_mbps` (spec)
    /// overrides the initial-window-derived starting rate.
    pub fn new(params: &CcParams) -> Self {
        let mss = params.mss.max(1);
        let rtt_hint = params.rtt_hint.max(SimDuration::from_millis(1));
        let rate0 = params.spec.f64("rate0_mbps").map(|m| m * 1e6).unwrap_or(
            // 10-packet initial window spread over the RTT hint.
            10.0 * mss as f64 * 8.0 / rtt_hint.as_secs_f64(),
        );
        RateThenWindow {
            mss,
            rtt_hint,
            rate_bps: rate0.max(1e5),
            cwnd_pkts: SWITCH_CWND_FLOOR,
            in_window: false,
            agg: ReportAggregator::default(),
            next_emit: SimTime::ZERO,
            last_srtt: SimDuration::ZERO,
            last_min_rtt: SimDuration::ZERO,
            last_in_flight: 0,
            last_in_recovery: false,
        }
    }

    /// True once the controller has switched to window mode.
    pub fn in_window_mode(&self) -> bool {
        self.in_window
    }

    /// Current startup rate (bits/sec) — meaningful until the switch.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Current steady-state window (packets) — meaningful after the switch.
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd_pkts
    }

    fn srtt_or_hint(&self, rep: &MeasurementReport) -> SimDuration {
        if rep.srtt.is_zero() {
            self.rtt_hint
        } else {
            rep.srtt
        }
    }

    /// The one decision procedure, fed by either the engine's reports
    /// (batched mode) or self-batched ones (per-ACK compatibility).
    fn handle_report(&mut self, rep: &MeasurementReport, ctx: &mut CtrlCtx) {
        if !self.in_window {
            let delivery = rep.delivery_rate_bps();
            let lossy = rep.lost_pkts > 0 || rep.timeouts > 0;
            // Plateau is only evidence against the probed rate when the
            // sender actually transmitted near it over the interval —
            // an app/window-limited interval delivers little no matter
            // what the path could sustain.
            let span = rep.span().as_secs_f64();
            let send_rate = if span > 0.0 {
                rep.sent_bytes as f64 * 8.0 / span
            } else {
                0.0
            };
            let plateau = rep.acked_pkts > 0
                && delivery > 0.0
                && send_rate >= self.rate_bps * 0.75
                && delivery < self.rate_bps * SUSTAIN_FRACTION;
            if lossy || plateau {
                // Switch: install a window worth what the path actually
                // delivered over the last measured RTT, and tell the
                // engine to re-plumb (clear pacing, clock on ACKs).
                let srtt = self.srtt_or_hint(rep);
                let base = if delivery > 0.0 {
                    delivery
                } else {
                    self.rate_bps
                };
                self.cwnd_pkts =
                    (base * srtt.as_secs_f64() / (self.mss as f64 * 8.0)).max(SWITCH_CWND_FLOOR);
                self.in_window = true;
                ctx.set_cwnd(self.cwnd_pkts);
                ctx.set_mode(CcMode::Window);
                return;
            }
            if rep.acked_pkts > 0 {
                // The path sustained the probe: double and try again.
                self.rate_bps *= 2.0;
                ctx.set_rate(self.rate_bps);
            }
            return;
        }
        // Steady state: Reno-shaped AIMD, one decision per report.
        if rep.timeouts > 0 {
            self.cwnd_pkts = MIN_CWND_PKTS;
        } else if rep.loss_events > 0 && rep.new_loss_episode {
            self.cwnd_pkts = (self.cwnd_pkts / 2.0).max(MIN_CWND_PKTS);
        } else if rep.acked_pkts > 0 && !rep.in_recovery {
            self.cwnd_pkts += rep.acked_pkts as f64 / self.cwnd_pkts.max(1.0);
        }
        ctx.set_cwnd(self.cwnd_pkts);
    }

    /// Per-ACK compatibility: close the self-batched interval, stamp the
    /// snapshots a real engine would, and decide.
    fn self_emit(&mut self, ctx: &mut CtrlCtx) {
        let mut rep = self.agg.take(ctx.now);
        rep.srtt = self.last_srtt;
        rep.min_rtt = self.last_min_rtt;
        rep.in_flight = self.last_in_flight;
        rep.mss = self.mss;
        rep.in_recovery = self.last_in_recovery;
        let srtt = self.srtt_or_hint(&rep);
        self.next_emit = ctx.now + srtt;
        self.handle_report(&rep, ctx);
    }
}

impl CongestionControl for RateThenWindow {
    fn name(&self) -> &'static str {
        "rate-then-window"
    }

    fn report_mode(&self) -> ReportMode {
        ReportMode::batched_rtt()
    }

    fn on_start(&mut self, ctx: &mut CtrlCtx) {
        self.agg.begin(ctx.now);
        self.next_emit = ctx.now + self.rtt_hint;
        ctx.set_rate(self.rate_bps);
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut CtrlCtx) {
        self.handle_report(rep, ctx);
    }

    // Per-ACK compatibility path (engines or configs that force PerAck):
    // feed the internal aggregator and self-emit once per smoothed RTT,
    // urgently on loss — mirroring the engine's own flush policy.

    fn on_sent(&mut self, ev: &SentEvent, _ctx: &mut CtrlCtx) {
        self.agg.on_sent(ev);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut CtrlCtx) {
        self.agg.on_ack(ack);
        self.last_srtt = ack.srtt;
        self.last_min_rtt = ack.min_rtt;
        self.last_in_flight = ack.in_flight;
        self.last_in_recovery = ack.in_recovery;
        if ctx.now >= self.next_emit {
            self.self_emit(ctx);
        }
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut CtrlCtx) {
        self.agg.on_loss(loss);
        if loss.new_episode || loss.kind == LossKind::Timeout {
            self.self_emit(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::rng::SimRng;
    use pcc_transport::cc::Effects;

    const MSS: u32 = 1500;
    const RTT: SimDuration = SimDuration::from_millis(30);

    fn cc() -> RateThenWindow {
        RateThenWindow::new(&CcParams::default().with_mss(MSS).with_rtt_hint(RTT))
    }

    /// A one-RTT report delivering `acked` packets with an
    /// interval-average rate of `acked · MSS · 8 / RTT`.
    fn report(start_ms: u64, acked: u64, lost: u64, new_episode: bool) -> MeasurementReport {
        MeasurementReport {
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(start_ms + 30),
            sent_pkts: acked + lost,
            sent_bytes: (acked + lost) * MSS as u64,
            acked_pkts: acked,
            acked_bytes: acked * MSS as u64,
            lost_pkts: lost,
            lost_bytes: lost * MSS as u64,
            loss_events: u32::from(lost > 0),
            new_loss_episode: new_episode,
            rtt_min: (acked > 0).then_some(RTT),
            rtt_max: (acked > 0).then_some(RTT),
            rtt_sum_ns: RTT.as_nanos() as u128 * acked as u128,
            rtt_samples: acked,
            srtt: RTT,
            min_rtt: RTT,
            in_flight: 1,
            mss: MSS,
            ..MeasurementReport::default()
        }
    }

    fn deliver(c: &mut RateThenWindow, rep: &MeasurementReport, fx: &mut Effects) {
        let mut rng = SimRng::new(7);
        let mut ctx = CtrlCtx::new(rep.end, &mut rng, fx);
        c.on_report(rep, &mut ctx);
    }

    #[test]
    fn startup_doubles_while_delivery_sustains() {
        let mut c = cc();
        let mut fx = Effects::default();
        let r0 = c.rate_bps();
        // Deliver exactly what the rate asks: 30 ms of r0 in packets.
        let pkts = (r0 * 0.030 / (MSS as f64 * 8.0)).ceil() as u64;
        deliver(&mut c, &report(0, pkts, 0, false), &mut fx);
        assert!(!c.in_window_mode());
        assert!((c.rate_bps() - 2.0 * r0).abs() < 1.0, "doubled");
        let d = fx.drain();
        assert_eq!(d.rate, Some(2.0 * r0));
        assert_eq!(d.mode, None, "no switch yet");
    }

    #[test]
    fn loss_switches_to_window_mode_with_a_delivery_derived_window() {
        let mut c = cc();
        let mut fx = Effects::default();
        // 40 pkts/RTT ≈ 16 Mbit/s delivered, one loss: switch.
        deliver(&mut c, &report(0, 40, 1, true), &mut fx);
        assert!(c.in_window_mode());
        let d = fx.drain();
        assert_eq!(d.mode, Some(CcMode::Window));
        let cwnd = d.cwnd.expect("window installed at the switch");
        // delivery ≈ 40 pkts over 30 ms, srtt 30 ms ⇒ ≈ 40 pkts (±1 for
        // the (n−1)-spacing estimator).
        assert!((35.0..=45.0).contains(&cwnd), "cwnd {cwnd}");
    }

    #[test]
    fn plateau_without_loss_also_switches() {
        let mut c = cc();
        let mut fx = Effects::default();
        let r0 = c.rate_bps();
        // Sent at the full probed rate but delivery stuck far below it:
        // the doubling stops and the switch fires.
        let few = (r0 * 0.030 * 0.2 / (MSS as f64 * 8.0)).ceil() as u64;
        let mut rep = report(0, few.max(2), 0, false);
        rep.sent_pkts = (r0 * 0.030 / (MSS as f64 * 8.0)).ceil() as u64;
        rep.sent_bytes = rep.sent_pkts * MSS as u64;
        deliver(&mut c, &rep, &mut fx);
        assert!(c.in_window_mode(), "plateau triggers the switch");
        assert_eq!(fx.drain().mode, Some(CcMode::Window));
    }

    #[test]
    fn app_limited_interval_does_not_read_as_a_plateau() {
        let mut c = cc();
        let mut fx = Effects::default();
        let r0 = c.rate_bps();
        // Low delivery because barely anything was *sent*: keep probing.
        deliver(&mut c, &report(0, 2, 0, false), &mut fx);
        assert!(!c.in_window_mode(), "limited interval is not evidence");
        assert!((c.rate_bps() - 2.0 * r0).abs() < 1.0);
    }

    #[test]
    fn steady_state_is_reno_shaped_per_report() {
        let mut c = cc();
        let mut fx = Effects::default();
        deliver(&mut c, &report(0, 40, 1, true), &mut fx);
        fx.drain();
        let w0 = c.cwnd_pkts();
        // Clean report: +acked/cwnd.
        deliver(&mut c, &report(30, 20, 0, false), &mut fx);
        assert!((c.cwnd_pkts() - (w0 + 20.0 / w0)).abs() < 1e-9);
        // New loss episode: halve.
        let w1 = c.cwnd_pkts();
        deliver(&mut c, &report(60, 10, 2, true), &mut fx);
        assert!((c.cwnd_pkts() - w1 / 2.0).abs() < 1e-9);
        assert_eq!(fx.drain().cwnd, Some(c.cwnd_pkts()));
    }

    #[test]
    fn per_ack_compatibility_self_batches_to_the_same_decisions() {
        let mut c = cc();
        let mut rng = SimRng::new(11);
        let mut fx = Effects::default();
        {
            let mut ctx = CtrlCtx::new(SimTime::ZERO, &mut rng, &mut fx);
            c.on_start(&mut ctx);
        }
        let r0 = fx.drain().rate.expect("startup rate");
        // One RTT of per-ACK feedback at full delivery: the self-batched
        // report must double the rate exactly once.
        let pkts = (r0 * 0.030 / (MSS as f64 * 8.0)).ceil() as u64 + 1;
        for i in 0..pkts {
            let at = SimTime::from_millis(30) + SimDuration::from_nanos(i * 200_000);
            let ack = AckEvent {
                now: at,
                seq: i,
                rtt: RTT,
                sampled: true,
                srtt: RTT,
                min_rtt: RTT,
                max_rtt: RTT,
                recv_at: at,
                probe_train: None,
                of_retx: false,
                cum_ack: i + 1,
                newly_acked: 1,
                in_flight: 1,
                mss: MSS,
                in_recovery: false,
            };
            let mut ctx = CtrlCtx::new(at, &mut rng, &mut fx);
            c.on_ack(&ack, &mut ctx);
        }
        assert!(!c.in_window_mode());
        assert!((c.rate_bps() - 2.0 * r0).abs() < 1.0, "one doubling");
        // A new loss episode flushes immediately and flips the mode.
        let seqs = [pkts + 3];
        let loss = LossEvent {
            now: SimTime::from_millis(61),
            seqs: &seqs,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 4,
            mss: MSS,
        };
        let mut ctx = CtrlCtx::new(SimTime::from_millis(61), &mut rng, &mut fx);
        c.on_loss(&loss, &mut ctx);
        let _ = ctx;
        assert!(c.in_window_mode());
        assert_eq!(fx.drain().mode, Some(CcMode::Window));
    }
}
