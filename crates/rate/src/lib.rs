//! # pcc-rate — rate-based baselines: SABUL/UDT and PCP
//!
//! The two non-TCP transports the paper compares against in §4.1.1, both
//! as rate-driving [`pcc_transport::CongestionControl`] implementations
//! (they call `set_rate` only, so any engine runs them paced):
//!
//! * [`Sabul`] — UDT-style fixed-clock AIMD rate control (scientific data
//!   transfer). Reproduces the overshoot/fall-back oscillation the paper
//!   measures (SABUL's 11.5% average loss vs PCC's 3.1%).
//! * [`Pcp`] — packet-train available-bandwidth probing. Reproduces the
//!   dispersion mis-estimation failure mode (§5's "continuously wrongly
//!   estimates ... 50−60 Mbps" on a clean 100 Mbps link).
//!
//! Simplifications relative to the original codebases are documented on
//! each type; both preserve the control laws the paper's comparison is
//! about. [`register_algorithms`] installs them as `sabul` and `pcp` in
//! the workspace-wide [`pcc_transport::registry`].
//!
//! The crate also hosts [`RateThenWindow`] (`rate-then-window`), the
//! mode-switching reference algorithm for the off-path control plane:
//! rate-driven startup that asks the engine to re-plumb it as a window
//! controller for steady state.

mod pcp;
mod sabul;
mod switcher;

pub use pcp::Pcp;
pub use sabul::Sabul;
pub use switcher::RateThenWindow;

use pcc_simnet::time::SimDuration;
use pcc_transport::registry;
use pcc_transport::spec::{ParamKind, ParamSpec, Schema};

/// SABUL's spec parameters (`sabul:syn_ms=20,decrease=0.8`): the UDT
/// control-law constants.
pub const SABUL_SCHEMA: Schema = &[
    ParamSpec {
        key: "syn_ms",
        kind: ParamKind::Int { min: 1, max: 1000 },
        doc: "SYN control-clock interval, milliseconds (UDT: 10)",
    },
    ParamSpec {
        key: "decrease",
        kind: ParamKind::Float {
            min: 0.1,
            max: 0.999,
        },
        doc: "multiplicative decrease per NAK (UDT: 1/1.125 ≈ 0.889)",
    },
    ParamSpec {
        key: "rate0_mbps",
        kind: ParamKind::Float {
            min: 0.1,
            max: 10_000.0,
        },
        doc: "starting rate, Mbit/s (default 1)",
    },
];

/// PCP's spec parameters (`pcp:train=16,poll_ms=50`): the probing
/// schedule constants.
pub const PCP_SCHEMA: Schema = &[
    ParamSpec {
        key: "train",
        kind: ParamKind::Int { min: 2, max: 64 },
        doc: "packets per probe train (default 8)",
    },
    ParamSpec {
        key: "poll_ms",
        kind: ParamKind::Int {
            min: 1,
            max: 10_000,
        },
        doc: "interval between probe trains, milliseconds (default 100)",
    },
    ParamSpec {
        key: "rate0_mbps",
        kind: ParamKind::Float {
            min: 0.1,
            max: 10_000.0,
        },
        doc: "starting rate, Mbit/s (default 1)",
    },
];

/// `rate-then-window`'s spec parameters (`rate-then-window:rate0_mbps=4`).
pub const RATE_THEN_WINDOW_SCHEMA: Schema = &[ParamSpec {
    key: "rate0_mbps",
    kind: ParamKind::Float {
        min: 0.1,
        max: 10_000.0,
    },
    doc: "starting rate for the rate-mode probe phase, Mbit/s (default: 10 packets per RTT hint)",
}];

/// Register `sabul`, `pcp` and `rate-then-window` (with their spec
/// schemas) in the workspace-wide [`pcc_transport::registry`]. Idempotent.
pub fn register_algorithms() {
    registry::register_with_schema(
        "sabul",
        SABUL_SCHEMA,
        Box::new(|p| {
            let s = &p.spec;
            Box::new(Sabul::with_params(
                s.u64("syn_ms")
                    .map(SimDuration::from_millis)
                    .unwrap_or(sabul::DEFAULT_SYN),
                s.f64("decrease").unwrap_or(sabul::DEFAULT_DECREASE),
                s.f64("rate0_mbps")
                    .map(|m| m * 1e6)
                    .unwrap_or(sabul::DEFAULT_RATE0_BPS),
            ))
        }),
    );
    registry::register_with_schema(
        "pcp",
        PCP_SCHEMA,
        Box::new(|p| {
            let s = &p.spec;
            Box::new(Pcp::with_params(
                s.u64("train").unwrap_or(pcp::DEFAULT_TRAIN_LEN as u64) as u32,
                s.u64("poll_ms")
                    .map(SimDuration::from_millis)
                    .unwrap_or(pcp::DEFAULT_POLL),
                s.f64("rate0_mbps")
                    .map(|m| m * 1e6)
                    .unwrap_or(pcp::DEFAULT_RATE0_BPS),
            ))
        }),
    );
    registry::register_with_schema(
        "rate-then-window",
        RATE_THEN_WINDOW_SCHEMA,
        Box::new(|p| Box::new(RateThenWindow::new(p))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_transport::registry::CcParams;

    #[test]
    fn baselines_register() {
        register_algorithms();
        let params = CcParams::default();
        assert_eq!(
            registry::by_name("sabul", &params).expect("sabul").name(),
            "sabul"
        );
        assert_eq!(
            registry::by_name("pcp", &params).expect("pcp").name(),
            "pcp"
        );
        assert_eq!(
            registry::by_name("rate-then-window", &params)
                .expect("rate-then-window")
                .name(),
            "rate-then-window"
        );
    }

    #[test]
    fn spec_constants_construct_and_validate() {
        register_algorithms();
        let params = CcParams::default();
        for good in [
            "sabul:syn_ms=20,decrease=0.8",
            "sabul:rate0_mbps=10",
            "pcp:train=16,poll_ms=50",
            "pcp:rate0_mbps=2",
        ] {
            assert!(registry::by_name(good, &params).is_ok(), "{good}");
        }
        for bad in ["sabul:decrease=2", "pcp:train=1", "sabul:nope=1"] {
            let err = match registry::by_name(bad, &params) {
                Ok(_) => panic!("{bad} must fail"),
                Err(e) => e,
            };
            assert!(
                err.to_string().contains("valid keys"),
                "{bad}: lists keys: {err}"
            );
        }
    }
}
