//! # pcc-rate — rate-based baselines: SABUL/UDT and PCP
//!
//! The two non-TCP transports the paper compares against in §4.1.1, both
//! as rate-driving [`pcc_transport::CongestionControl`] implementations
//! (they call `set_rate` only, so any engine runs them paced):
//!
//! * [`Sabul`] — UDT-style fixed-clock AIMD rate control (scientific data
//!   transfer). Reproduces the overshoot/fall-back oscillation the paper
//!   measures (SABUL's 11.5% average loss vs PCC's 3.1%).
//! * [`Pcp`] — packet-train available-bandwidth probing. Reproduces the
//!   dispersion mis-estimation failure mode (§5's "continuously wrongly
//!   estimates ... 50−60 Mbps" on a clean 100 Mbps link).
//!
//! Simplifications relative to the original codebases are documented on
//! each type; both preserve the control laws the paper's comparison is
//! about. [`register_algorithms`] installs them as `sabul` and `pcp` in
//! the workspace-wide [`pcc_transport::registry`].
#![warn(missing_docs)]

mod pcp;
mod sabul;

pub use pcp::Pcp;
pub use sabul::Sabul;

use pcc_transport::registry;

/// Register `sabul` and `pcp` with the workspace-wide
/// [`pcc_transport::registry`]. Idempotent.
pub fn register_algorithms() {
    registry::register("sabul", Box::new(|_| Box::new(Sabul::new())));
    registry::register("pcp", Box::new(|_| Box::new(Pcp::new())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_transport::registry::CcParams;

    #[test]
    fn baselines_register() {
        register_algorithms();
        let params = CcParams::default();
        assert_eq!(
            registry::by_name("sabul", &params).expect("sabul").name(),
            "sabul"
        );
        assert_eq!(
            registry::by_name("pcp", &params).expect("pcp").name(),
            "pcp"
        );
    }
}
