//! # pcc-rate — rate-based baselines: SABUL/UDT and PCP
//!
//! The two non-TCP transports the paper compares against in §4.1.1, both
//! as [`pcc_transport::RateController`] plug-ins:
//!
//! * [`Sabul`] — UDT-style fixed-clock AIMD rate control (scientific data
//!   transfer). Reproduces the overshoot/fall-back oscillation the paper
//!   measures (SABUL's 11.5% average loss vs PCC's 3.1%).
//! * [`Pcp`] — packet-train available-bandwidth probing. Reproduces the
//!   dispersion mis-estimation failure mode (§5's "continuously wrongly
//!   estimates ... 50−60 Mbps" on a clean 100 Mbps link).
//!
//! Simplifications relative to the original codebases are documented on
//! each type; both preserve the control laws the paper's comparison is
//! about.
#![warn(missing_docs)]

mod pcp;
mod sabul;

pub use pcp::Pcp;
pub use sabul::Sabul;
