//! SABUL/UDT-style rate control — the scientific-data-transfer baseline
//! (§4.1.1, Table 1).
//!
//! UDT's native control (Gu & Grossman) is rate-based AIMD driven by a
//! 10 ms `SYN` clock: every interval without loss feedback, the packet rate
//! gets a large additive boost whose size scales with the estimated
//! headroom to link capacity; every loss event (NAK) cuts the rate
//! multiplicatively by 1/9. The paper's measurements show the consequence:
//! "SABUL shows an unstable control loop: it aggressively overshoots the
//! network and then deeply falls back" (11.5% average loss vs PCC's 3.1%).
//!
//! Simplification vs UDT: we estimate link capacity from the peak observed
//! delivery rate rather than UDT's packet-pair estimator, and NAKs are the
//! engine's SACK-based loss detections. Both preserve the control law —
//! fixed-clock additive increase toward a capacity guess, 1/9
//! multiplicative decrease — which is what produces the oscillation the
//! paper reports.

use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::cc::{AckEvent, CongestionControl, Ctx as CtrlCtx, LossEvent, SentEvent};
use pcc_transport::report::MeasurementReport;

/// UDT's SYN interval: the fixed control clock.
pub const DEFAULT_SYN: SimDuration = SimDuration::from_millis(10);
/// Multiplicative decrease on a loss event (UDT: rate /= 1.125).
pub const DEFAULT_DECREASE: f64 = 1.0 / 1.125;
/// Starting rate, bits/sec.
pub const DEFAULT_RATE0_BPS: f64 = 1e6;
/// Timer token for the SYN tick.
const TOKEN_SYN: u64 = 1;

/// SABUL/UDT-style rate controller.
pub struct Sabul {
    /// Current pacing rate, bits/sec.
    rate_bps: f64,
    /// Packet size estimate (from `on_sent`).
    pkt_bits: f64,
    /// Loss seen since the last SYN tick.
    loss_since_tick: bool,
    /// Delivery-rate estimator: bytes acked in the current window.
    acked_bytes_window: u64,
    window_start: SimTime,
    /// Peak observed delivery rate ≈ capacity estimate, bits/sec.
    capacity_est_bps: f64,
    /// Losses observed (for reports).
    losses: u64,
    started: bool,
    /// The fixed control clock (UDT: 10 ms).
    syn: SimDuration,
    /// Multiplicative decrease factor applied per NAK.
    decrease: f64,
}

impl Sabul {
    /// New controller with the UDT constants (1 Mbps start, 10 ms SYN
    /// clock, ×8/9 decrease).
    pub fn new() -> Self {
        Self::with_params(DEFAULT_SYN, DEFAULT_DECREASE, DEFAULT_RATE0_BPS)
    }

    /// New controller with explicit constants — the
    /// `sabul:syn_ms=…,decrease=…,rate0_mbps=…` spec surface.
    pub fn with_params(syn: SimDuration, decrease: f64, rate0_bps: f64) -> Self {
        Sabul {
            rate_bps: rate0_bps.max(1e5),
            pkt_bits: 1500.0 * 8.0,
            loss_since_tick: false,
            acked_bytes_window: 0,
            window_start: SimTime::ZERO,
            capacity_est_bps: 0.0,
            losses: 0,
            started: false,
            syn: syn.max(SimDuration::from_millis(1)),
            decrease: decrease.clamp(0.1, 0.999),
        }
    }

    /// Current capacity estimate (peak delivery rate seen), bits/sec.
    pub fn capacity_estimate_bps(&self) -> f64 {
        self.capacity_est_bps
    }

    /// UDT's increase step per SYN: `inc = max(10^ceil(log10((B−C)·S)) ·
    /// 1.5e-6, 1/S)` packets, where B is estimated link capacity and C the
    /// current rate (in packets/sec), S the packet size in bytes. We keep
    /// the same log-scaled shape.
    fn increase_pkts(&self) -> f64 {
        let headroom_bps = (self.capacity_est_bps - self.rate_bps).max(0.0);
        if headroom_bps <= 0.0 {
            // At/above the believed capacity: minimal probe.
            return 1.0 / (self.pkt_bits / 8.0);
        }
        let headroom_pkts = headroom_bps / self.pkt_bits;
        // 10^ceil(log10(headroom_bits)) * beta, beta = 1.5e-6 per UDT.
        let bits = headroom_pkts * self.pkt_bits;
        let step = 10f64.powf(bits.log10().ceil()) * 1.5e-6;
        step.max(1.0 / (self.pkt_bits / 8.0))
    }

    fn tick(&mut self, ctx: &mut CtrlCtx) {
        // Refresh the capacity estimate from the delivery rate of the
        // closing window.
        let elapsed = ctx.now.saturating_since(self.window_start);
        if !elapsed.is_zero() && self.acked_bytes_window > 0 {
            let delivered = self.acked_bytes_window as f64 * 8.0 / elapsed.as_secs_f64();
            if delivered > self.capacity_est_bps {
                self.capacity_est_bps = delivered;
            }
        }
        self.acked_bytes_window = 0;
        self.window_start = ctx.now;
        if !self.loss_since_tick {
            // Additive increase: `increase_pkts` more packets per SYN.
            let add_bps = self.increase_pkts() * self.pkt_bits / self.syn.as_secs_f64();
            self.rate_bps += add_bps;
            ctx.set_rate(self.rate_bps);
        }
        self.loss_since_tick = false;
        ctx.set_timer(ctx.now + self.syn, TOKEN_SYN);
    }
}

impl Default for Sabul {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Sabul {
    fn name(&self) -> &'static str {
        "sabul"
    }

    fn on_start(&mut self, ctx: &mut CtrlCtx) {
        self.started = true;
        self.window_start = ctx.now;
        ctx.set_timer(ctx.now + self.syn, TOKEN_SYN);
        ctx.set_rate(self.rate_bps);
    }

    fn on_sent(&mut self, ev: &SentEvent, _ctx: &mut CtrlCtx) {
        self.pkt_bits = ev.bytes as f64 * 8.0;
    }

    fn on_ack(&mut self, ack: &AckEvent, _ctx: &mut CtrlCtx) {
        if !ack.sampled {
            // Keep the delivery-rate estimator on exact samples only.
            return;
        }
        self.acked_bytes_window += (self.pkt_bits / 8.0) as u64;
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut CtrlCtx) {
        if loss.seqs.is_empty() {
            return;
        }
        self.losses += loss.seqs.len() as u64;
        // NAK: multiplicative decrease, at most once per SYN.
        if !self.loss_since_tick {
            self.rate_bps = (self.rate_bps * self.decrease).max(1e5);
            ctx.set_rate(self.rate_bps);
        }
        self.loss_since_tick = true;
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut CtrlCtx) {
        // Batched feedback folds straight into the SYN-clocked law: acked
        // bytes feed the delivery-rate window the next tick closes, and a
        // lossy report is one NAK (the engine's urgent flush on a new loss
        // episode keeps the cut as timely as the per-ACK path's).
        if rep.mss > 0 {
            self.pkt_bits = rep.mss as f64 * 8.0;
        }
        self.acked_bytes_window += rep.acked_bytes;
        if rep.lost_pkts > 0 {
            self.losses += rep.lost_pkts;
            if !self.loss_since_tick {
                self.rate_bps = (self.rate_bps * self.decrease).max(1e5);
                ctx.set_rate(self.rate_bps);
            }
            self.loss_since_tick = true;
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut CtrlCtx) {
        if token == TOKEN_SYN {
            self.tick(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::rng::SimRng;
    use pcc_transport::cc::{Effects as CtrlEffects, LossKind};

    fn ctx<'a>(now_ms: u64, rng: &'a mut SimRng, fx: &'a mut CtrlEffects) -> CtrlCtx<'a> {
        CtrlCtx::new(SimTime::from_millis(now_ms), rng, fx)
    }

    fn loss_of(seqs: &[u64]) -> LossEvent<'_> {
        LossEvent {
            now: SimTime::ZERO,
            seqs,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 0,
            mss: 1500,
        }
    }

    #[test]
    fn increases_without_loss() {
        let mut c = Sabul::new();
        let mut rng = SimRng::new(1);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut ctx(0, &mut rng, &mut fx));
        let r0 = c.rate_bps;
        // Pretend good delivery so a capacity estimate forms.
        c.capacity_est_bps = 100e6;
        for t in 1..=10 {
            c.on_timer(TOKEN_SYN, &mut ctx(t * 10, &mut rng, &mut fx));
        }
        assert!(c.rate_bps > r0, "rate grew: {} -> {}", r0, c.rate_bps);
    }

    #[test]
    fn loss_cuts_by_one_ninth() {
        let mut c = Sabul::new();
        let mut rng = SimRng::new(2);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut ctx(0, &mut rng, &mut fx));
        c.rate_bps = 90e6;
        c.on_loss(&loss_of(&[5]), &mut ctx(15, &mut rng, &mut fx));
        assert!((c.rate_bps - 80e6).abs() < 1e3, "90 → 80 Mbps (×8/9)");
    }

    #[test]
    fn at_most_one_cut_per_syn() {
        let mut c = Sabul::new();
        let mut rng = SimRng::new(3);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut ctx(0, &mut rng, &mut fx));
        c.rate_bps = 90e6;
        c.on_loss(&loss_of(&[1]), &mut ctx(15, &mut rng, &mut fx));
        c.on_loss(&loss_of(&[2, 3]), &mut ctx(16, &mut rng, &mut fx));
        assert!(
            (c.rate_bps - 80e6).abs() < 1e3,
            "second NAK in same SYN ignored"
        );
        // After the tick, a new loss cuts again.
        c.on_timer(TOKEN_SYN, &mut ctx(20, &mut rng, &mut fx));
        c.on_loss(&loss_of(&[4]), &mut ctx(21, &mut rng, &mut fx));
        assert!(c.rate_bps < 80e6);
    }

    #[test]
    fn batched_report_feeds_the_window_and_cuts_once() {
        let mut c = Sabul::new();
        let mut rng = SimRng::new(9);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut ctx(0, &mut rng, &mut fx));
        c.rate_bps = 90e6;
        let mut rep = pcc_transport::report::MeasurementReport {
            acked_pkts: 100,
            acked_bytes: 150_000,
            mss: 1500,
            ..Default::default()
        };
        c.on_report(&rep, &mut ctx(5, &mut rng, &mut fx));
        assert_eq!(c.acked_bytes_window, 150_000, "acked bytes accumulate");
        assert!((c.rate_bps - 90e6).abs() < 1.0, "clean report: no cut");
        // Two lossy reports inside the same SYN: exactly one NAK cut.
        rep.lost_pkts = 3;
        c.on_report(&rep, &mut ctx(6, &mut rng, &mut fx));
        c.on_report(&rep, &mut ctx(7, &mut rng, &mut fx));
        assert!((c.rate_bps - 80e6).abs() < 1e3, "one ×8/9 cut per SYN");
    }

    #[test]
    fn increase_steps_scale_with_headroom() {
        let mut c = Sabul::new();
        c.rate_bps = 1e6;
        c.capacity_est_bps = 100e6;
        let big = c.increase_pkts();
        c.rate_bps = 99.9e6;
        let small = c.increase_pkts();
        assert!(
            big > small,
            "far from capacity grows faster: {big} vs {small}"
        );
    }
}
