//! PCP-style rate control (Anderson, Collins, Krishnamurthy, Zahorjan,
//! NSDI 2006) — the bandwidth-probing baseline of §4.1.1 and §5.
//!
//! PCP probes for available bandwidth with short packet trains: it sends a
//! few back-to-back packets and infers capacity from the *dispersion* of
//! their arrivals at the receiver (echoed in our ACKs' `recv_at`). If the
//! estimate exceeds the probed rate the sender jumps to it; otherwise it
//! backs down to the estimate.
//!
//! The paper's critique (§5) is that dispersion embeds fragile assumptions
//! about inter-arrival latency: jitter from queues, software routers, or
//! middleboxes corrupts the estimate ("PCP continuously wrongly estimates
//! the available bandwidth as 50−60 Mbps" on a clean 100 Mbps link). This
//! implementation inherits the same failure mode because cross-traffic and
//! queueing genuinely perturb `recv_at` spacing in the simulator.
//!
//! Simplification vs PCP: the original uses a binary-search "probe and
//! pause" schedule; we keep a fixed poll interval with doubling probes,
//! which preserves the estimate-driven rate selection being compared.

use std::collections::BTreeMap;

use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::cc::{AckEvent, CongestionControl, Ctx as CtrlCtx, LossEvent, SentEvent};
use pcc_transport::report::MeasurementReport;

/// Packets per probe train.
pub const DEFAULT_TRAIN_LEN: u32 = 8;
/// Interval between probes.
pub const DEFAULT_POLL: SimDuration = SimDuration::from_millis(100);
/// Starting rate, bits/sec (the paper's PCP setup).
pub const DEFAULT_RATE0_BPS: f64 = 1e6;
/// Timer token for the poll tick.
const TOKEN_POLL: u64 = 1;
#[cfg(test)]
const TRAIN_LEN: u32 = DEFAULT_TRAIN_LEN;

#[derive(Debug, Default, Clone)]
struct TrainObs {
    first_recv: Option<SimTime>,
    last_recv: Option<SimTime>,
    count: u32,
}

/// PCP-style probing rate controller.
pub struct Pcp {
    /// The committed (non-probing) rate.
    rate_bps: f64,
    pkt_bits: f64,
    /// Next probe-train tag.
    next_train: u32,
    /// Arrival observations per outstanding train.
    trains: BTreeMap<u32, TrainObs>,
    /// The rate each train probed at.
    probe_rates: BTreeMap<u32, f64>,
    /// Most recent dispersion-based bandwidth estimate, bits/sec.
    last_estimate_bps: Option<f64>,
    /// Sequences assigned to the in-progress train (tagging window).
    tagging: Option<(u32, u32)>, // (train id, packets left to tag)
    /// Packets per probe train.
    train_len: u32,
    /// Interval between probes.
    poll: SimDuration,
}

impl Pcp {
    /// New controller starting at 1 Mbps with 8-packet trains every
    /// 100 ms (the paper's PCP setup).
    pub fn new() -> Self {
        Self::with_params(DEFAULT_TRAIN_LEN, DEFAULT_POLL, DEFAULT_RATE0_BPS)
    }

    /// New controller with explicit probing constants — the
    /// `pcp:train=…,poll_ms=…,rate0_mbps=…` spec surface.
    pub fn with_params(train_len: u32, poll: SimDuration, rate0_bps: f64) -> Self {
        Pcp {
            rate_bps: rate0_bps.max(1e5),
            pkt_bits: 1500.0 * 8.0,
            next_train: 0,
            trains: BTreeMap::new(),
            probe_rates: BTreeMap::new(),
            last_estimate_bps: None,
            tagging: None,
            train_len: train_len.max(2),
            poll: poll.max(SimDuration::from_millis(1)),
        }
    }

    /// Latest bandwidth estimate, if any (bits/sec).
    pub fn last_estimate_bps(&self) -> Option<f64> {
        self.last_estimate_bps
    }

    /// Begin a probe: tag the next `train_len` packets and pace them at
    /// `probe_rate` (PCP probes *at* a target rate and checks whether the
    /// path sustains it).
    fn start_train(&mut self, ctx: &mut CtrlCtx) -> u32 {
        let id = self.next_train;
        self.next_train += 1;
        self.trains.insert(id, TrainObs::default());
        let probe_rate = self.rate_bps * 2.0;
        self.probe_rates.insert(id, probe_rate);
        self.tagging = Some((id, self.train_len));
        ctx.set_rate(probe_rate);
        id
    }

    fn finish_train(&mut self, id: u32, ctx: &mut CtrlCtx) {
        let Some(obs) = self.trains.remove(&id) else {
            return;
        };
        let probe_rate = self.probe_rates.remove(&id).unwrap_or(self.rate_bps);
        let (Some(first), Some(last)) = (obs.first_recv, obs.last_recv) else {
            return;
        };
        if obs.count < 2 || last <= first {
            return;
        }
        // Dispersion estimate: (n−1) packets delivered over the arrival
        // span ⇒ the rate the path sustained for this train.
        let span = last.saturating_since(first).as_secs_f64();
        let est = (obs.count as f64 - 1.0) * self.pkt_bits / span;
        self.last_estimate_bps = Some(est);
        // PCP decision: if the path sustained (almost) the probed rate,
        // commit to it; otherwise settle slightly below the estimate.
        self.rate_bps = if est >= probe_rate * 0.9 {
            probe_rate
        } else {
            (est * 0.9).min(probe_rate)
        }
        .max(1e5);
        ctx.set_rate(self.rate_bps);
    }
}

impl Default for Pcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Pcp {
    fn name(&self) -> &'static str {
        "pcp"
    }

    fn on_start(&mut self, ctx: &mut CtrlCtx) {
        ctx.set_timer(ctx.now + self.poll, TOKEN_POLL);
        ctx.set_rate(self.rate_bps);
        self.start_train(ctx);
    }

    fn on_sent(&mut self, ev: &SentEvent, ctx: &mut CtrlCtx) {
        self.pkt_bits = ev.bytes as f64 * 8.0;
        if ev.retx {
            return;
        }
        if let Some((_id, left)) = self.tagging.as_mut() {
            *left -= 1;
            if *left == 0 {
                self.tagging = None;
                // Probe over: fall back to the committed rate until the
                // train's verdict arrives.
                ctx.set_rate(self.rate_bps);
            }
        }
    }

    /// The engine tags probe packets for us via `probe_train`; we only need
    /// to say *which* train id to stamp. See `CcSender`'s probe-tag path.
    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut CtrlCtx) {
        if let Some(train) = ack.probe_train {
            let finished = {
                let obs = self.trains.entry(train).or_default();
                if obs.first_recv.is_none() {
                    obs.first_recv = Some(ack.recv_at);
                }
                obs.last_recv = Some(ack.recv_at);
                obs.count += 1;
                obs.count >= self.train_len
            };
            if finished {
                self.finish_train(train, ctx);
            }
        }
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut CtrlCtx) {
        if loss.seqs.is_empty() {
            return;
        }
        // Loss means the estimate was optimistic: back off to the last
        // estimate (or half) — PCP treats loss as a failed probe.
        let fallback = self
            .last_estimate_bps
            .map(|e| e * 0.8)
            .unwrap_or(self.rate_bps * 0.5);
        self.rate_bps = fallback.min(self.rate_bps).max(1e5);
        ctx.set_rate(self.rate_bps);
    }

    /// Batched feedback: the report's own arrival statistics *are* a
    /// dispersion measurement — [`MeasurementReport::delivery_rate_bps`]
    /// computes `(n−1)·pkt_bits / arrival-span` from the echoed `recv_at`
    /// spacing, exactly the train formula, just coarsened from an 8-packet
    /// train to a one-report interval. Each report closes whatever probe
    /// is outstanding with that estimate.
    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut CtrlCtx) {
        if rep.mss > 0 {
            self.pkt_bits = rep.mss as f64 * 8.0;
        }
        if rep.lost_pkts > 0 {
            // A lossy interval is a failed probe: abandon the train and
            // back off, same law as the per-ACK path.
            if let Some((id, _)) = self.tagging.take() {
                self.trains.remove(&id);
                self.probe_rates.remove(&id);
            }
            let fallback = self
                .last_estimate_bps
                .map(|e| e * 0.8)
                .unwrap_or(self.rate_bps * 0.5);
            self.rate_bps = fallback.min(self.rate_bps).max(1e5);
            ctx.set_rate(self.rate_bps);
            return;
        }
        if let Some((id, _)) = self.tagging.take() {
            self.trains.remove(&id);
            let probe_rate = self.probe_rates.remove(&id).unwrap_or(self.rate_bps);
            let est = rep.delivery_rate_bps();
            if rep.acked_pkts >= 2 && est > 0.0 {
                self.last_estimate_bps = Some(est);
                self.rate_bps = if est >= probe_rate * 0.9 {
                    probe_rate
                } else {
                    (est * 0.9).min(probe_rate)
                }
                .max(1e5);
            }
            ctx.set_rate(self.rate_bps);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut CtrlCtx) {
        if token == TOKEN_POLL {
            self.start_train(ctx);
            ctx.set_timer(ctx.now + self.poll, TOKEN_POLL);
        }
    }

    /// Tag for the next outgoing data packet (probe-train id), if a train
    /// is in progress; the engine stamps it and the receiver echoes it.
    fn probe_tag(&self) -> Option<u32> {
        self.tagging.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::rng::SimRng;
    use pcc_transport::cc::{Effects as CtrlEffects, LossKind};

    fn ack_with_train(train: u32, recv_ms_x10: u64) -> AckEvent {
        let rtt = SimDuration::from_millis(30);
        AckEvent {
            now: SimTime::from_millis(recv_ms_x10 / 10 + 30),
            seq: 0,
            rtt,
            sampled: true,
            srtt: rtt,
            min_rtt: rtt,
            max_rtt: rtt,
            recv_at: SimTime::from_nanos(recv_ms_x10 * 100_000),
            probe_train: Some(train),
            of_retx: false,
            cum_ack: 0,
            newly_acked: 1,
            in_flight: 8,
            mss: 1500,
            in_recovery: false,
        }
    }

    fn loss_of(seqs: &[u64]) -> LossEvent<'_> {
        LossEvent {
            now: SimTime::ZERO,
            seqs,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 0,
            mss: 1500,
        }
    }

    #[test]
    fn dispersion_estimate_matches_bottleneck() {
        let mut c = Pcp::new();
        let mut rng = SimRng::new(1);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut CtrlCtx::new(SimTime::ZERO, &mut rng, &mut fx));
        // 8 arrivals spaced 1.2 ms apart => 1500B/1.2ms = 10 Mbps service.
        for i in 0..TRAIN_LEN {
            let mut fx2 = CtrlEffects::default();
            let mut rng2 = SimRng::new(2);
            c.on_ack(
                &ack_with_train(0, (i as u64) * 12),
                &mut CtrlCtx::new(SimTime::from_millis(40), &mut rng2, &mut fx2),
            );
        }
        let est = c.last_estimate_bps().expect("estimate formed");
        assert!((est - 10e6).abs() / 10e6 < 0.01, "est {est}");
    }

    #[test]
    fn jumps_when_estimate_supports_double() {
        let mut c = Pcp::new();
        c.rate_bps = 4e6;
        let mut rng = SimRng::new(3);
        let mut fx = CtrlEffects::default();
        c.trains.insert(7, TrainObs::default());
        c.probe_rates.insert(7, 8e6);
        for i in 0..TRAIN_LEN {
            c.on_ack(
                &ack_with_train(7, (i as u64) * 12), // 10 Mbps >= 1.8*4
                &mut CtrlCtx::new(SimTime::from_millis(40), &mut rng, &mut fx),
            );
        }
        assert!((c.rate_bps - 8e6).abs() < 1e3, "doubled to {}", c.rate_bps);
    }

    #[test]
    fn settles_below_weak_estimate() {
        let mut c = Pcp::new();
        c.rate_bps = 50e6;
        let mut rng = SimRng::new(4);
        let mut fx = CtrlEffects::default();
        c.trains.insert(9, TrainObs::default());
        c.probe_rates.insert(9, 100e6);
        for i in 0..TRAIN_LEN {
            c.on_ack(
                &ack_with_train(9, (i as u64) * 12), // est 10 Mbps << 50
                &mut CtrlCtx::new(SimTime::from_millis(40), &mut rng, &mut fx),
            );
        }
        assert!((c.rate_bps - 9e6).abs() < 1e3, "0.9×est: {}", c.rate_bps);
    }

    #[test]
    fn loss_backs_off() {
        let mut c = Pcp::new();
        c.rate_bps = 20e6;
        c.last_estimate_bps = Some(10e6);
        let mut rng = SimRng::new(5);
        let mut fx = CtrlEffects::default();
        c.on_loss(
            &loss_of(&[1, 2]),
            &mut CtrlCtx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert!((c.rate_bps - 8e6).abs() < 1e3, "0.8×est: {}", c.rate_bps);
    }

    #[test]
    fn batched_report_closes_the_outstanding_probe() {
        use pcc_transport::report::MeasurementReport;
        let mut c = Pcp::new();
        let mut rng = SimRng::new(8);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut CtrlCtx::new(SimTime::ZERO, &mut rng, &mut fx));
        let probed = c.probe_rates[&0];
        // Report whose arrival statistics say ~10 Mbps — far above the
        // 2 Mbps probe — so the probe commits.
        let rep = MeasurementReport {
            start: SimTime::ZERO,
            end: SimTime::from_millis(30),
            acked_pkts: 25,
            acked_bytes: 25 * 1500,
            first_recv: Some(SimTime::from_millis(1)),
            last_recv: Some(SimTime::from_nanos(29_800_000)),
            rtt_samples: 25,
            mss: 1500,
            ..Default::default()
        };
        c.on_report(&rep, &mut CtrlCtx::new(rep.end, &mut rng, &mut fx));
        assert!(c.probe_tag().is_none(), "train closed");
        assert!((c.rate_bps - probed).abs() < 1.0, "committed the probe");
        assert!(c.last_estimate_bps().is_some());
    }

    #[test]
    fn batched_lossy_report_abandons_the_probe_and_backs_off() {
        use pcc_transport::report::MeasurementReport;
        let mut c = Pcp::new();
        let mut rng = SimRng::new(9);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut CtrlCtx::new(SimTime::ZERO, &mut rng, &mut fx));
        c.rate_bps = 20e6;
        c.last_estimate_bps = Some(10e6);
        let rep = MeasurementReport {
            lost_pkts: 2,
            lost_bytes: 3000,
            loss_events: 1,
            new_loss_episode: true,
            mss: 1500,
            ..Default::default()
        };
        c.on_report(
            &rep,
            &mut CtrlCtx::new(SimTime::from_millis(30), &mut rng, &mut fx),
        );
        assert!(c.probe_tag().is_none(), "failed probe abandoned");
        assert!((c.rate_bps - 8e6).abs() < 1e3, "0.8×est: {}", c.rate_bps);
    }

    #[test]
    fn tagging_window_counts_down() {
        let mut c = Pcp::new();
        let mut rng = SimRng::new(6);
        let mut fx = CtrlEffects::default();
        c.on_start(&mut CtrlCtx::new(SimTime::ZERO, &mut rng, &mut fx));
        assert!(c.probe_tag().is_some());
        for s in 0..TRAIN_LEN as u64 {
            let mut fx2 = CtrlEffects::default();
            let mut rng2 = SimRng::new(7);
            let ev = SentEvent {
                now: SimTime::ZERO,
                seq: s,
                bytes: 1500,
                retx: false,
                in_flight: s + 1,
            };
            c.on_sent(&ev, &mut CtrlCtx::new(SimTime::ZERO, &mut rng2, &mut fx2));
        }
        assert!(c.probe_tag().is_none(), "train fully tagged");
    }
}
