//! Development probe: prints diagnostics for the scenarios under tuning.
//! Run: cargo run --release -p pcc-scenarios --example probe -- <which>

use pcc_scenarios::dynamics::run_convergence;
use pcc_scenarios::incast::run_incast;
use pcc_scenarios::power::{pcc_interactive, run_power};
use pcc_scenarios::{Protocol, QueueKind};
use pcc_simnet::time::{SimDuration, SimTime};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "incast" || which == "all" {
        println!("--- incast ---");
        for n in [2, 4, 8, 16, 24, 33] {
            let tcp = run_incast(|| Protocol::Tcp("newreno"), n, 256 * 1024, 2);
            let pcc = run_incast(
                || Protocol::pcc_default(SimDuration::from_micros(200)),
                n,
                256 * 1024,
                2,
            );
            println!(
                "n={n:2}  tcp: {:7.1} Mbps ({}/{} done, fct {:?})   pcc: {:7.1} Mbps ({}/{} done, fct {:?})",
                tcp.goodput_mbps, tcp.completed, n, tcp.max_fct,
                pcc.goodput_mbps, pcc.completed, n, pcc.max_fct,
            );
        }
    }
    if which == "power-long" {
        println!("--- power 60s ---");
        let dur = SimDuration::from_secs(60);
        for (name, queue) in [
            ("fq-codel", QueueKind::FqCodel),
            ("fq-bloat", QueueKind::Bufferbloat),
        ] {
            let pcc = run_power(pcc_interactive(), queue, dur, 1);
            println!(
                "{name}: pcc tput={:6.2} rtt={:6.2}ms power={:8.1}",
                pcc.throughput_mbps, pcc.rtt_ms, pcc.power,
            );
        }
    }
    if which == "power" || which == "all" {
        println!("--- power ---");
        let dur = SimDuration::from_secs(20);
        for (name, queue) in [
            ("fq-codel", QueueKind::FqCodel),
            ("fq-bloat", QueueKind::Bufferbloat),
        ] {
            let tcp = run_power(Protocol::Tcp("cubic"), queue, dur, 1);
            let pcc = run_power(pcc_interactive(), queue, dur, 1);
            println!(
                "{name}: tcp tput={:6.2} rtt={:6.2}ms power={:8.1} | pcc tput={:6.2} rtt={:6.2}ms power={:8.1}",
                tcp.throughput_mbps, tcp.rtt_ms, tcp.power,
                pcc.throughput_mbps, pcc.rtt_ms, pcc.power,
            );
        }
    }
    if which == "conv" || which == "all" {
        println!("--- convergence (2 pcc flows) ---");
        let r = run_convergence(
            || Protocol::pcc_default(SimDuration::from_millis(30)),
            2,
            SimDuration::from_secs(20),
            SimDuration::from_secs(120),
            6,
        );
        for (i, f) in r.inner.flows.iter().enumerate() {
            let s = &r.inner.report.flows[f.index()].series.throughput_mbps;
            let snippet: Vec<String> = s
                .iter()
                .skip(20)
                .step_by(10)
                .map(|v| format!("{v:5.1}"))
                .collect();
            println!("flow{i}: {}", snippet.join(" "));
        }
        println!(
            "jain@5s = {:.3}   jain@30s = {:.3}",
            r.jain_at_scale(5),
            r.jain_at_scale(30)
        );
        println!("mean stddev = {:.2}", r.mean_stddev());
    }
    if which == "lossy" {
        let r = pcc_scenarios::links::run_lossy(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            0.01,
            SimDuration::from_secs(30),
            0x9CC0,
        );
        let st = &r.report.flows[0];
        let series = &st.series.throughput_mbps;
        let snippet: Vec<String> = series
            .iter()
            .step_by(10)
            .map(|v| format!("{v:5.1}"))
            .collect();
        println!("tput/1s: {}", snippet.join(" "));
        println!(
            "losses={} sent={} loss_rate={:.4}",
            st.detected_losses,
            st.sent_packets,
            st.loss_rate()
        );
    }
    if which == "single" || which == "all" {
        println!("--- single pcc flow rate trace (100 Mbps / 30 ms) ---");
        let setup = pcc_scenarios::LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000);
        let r = pcc_scenarios::run_single(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            setup,
            SimDuration::from_secs(20),
            3,
        );
        let st = &r.report.flows[0];
        let series = &st.series.throughput_mbps;
        let snippet: Vec<String> = series
            .iter()
            .step_by(5)
            .map(|v| format!("{v:5.1}"))
            .collect();
        println!("tput/0.5s: {}", snippet.join(" "));
        println!(
            "losses={} sent={} tput[10..20]={:.1}",
            st.detected_losses,
            st.sent_packets,
            r.throughput_in(0, SimTime::from_secs(10), SimTime::from_secs(20))
        );
    }
}
// (appended) lossy probe
