//! Minimal full-simulation perf probe: times the reference scenarios
//! (5 simulated seconds of PCC / CUBIC / BBR on the 100 Mbps, 30 ms
//! dumbbell, PCC over the bundled LTE-like trace, and an 8-to-1 PCC
//! incast on a k=4 fat-tree) and prints wall clock, event count,
//! events/sec, and simulated seconds per wall second. A second block
//! reruns the PCC and CUBIC dumbbells with the engine flipped to 1-RTT
//! batched reports — the per-ACK vs off-path engine-cost pair.
//!
//! ```text
//! cargo run --release -p pcc-scenarios --example perf_probe
//! ```
//!
//! This is the apples-to-apples number to quote when comparing the
//! simulator hot path across commits (PERFORMANCE.md); `cargo bench -p
//! pcc-bench --bench micro` wraps the same measurement into BENCH.json.

use pcc_scenarios::perf::{time_all_scenarios, time_batched_scenario, REFERENCE_SIM_SECS};
use pcc_scenarios::Protocol;
use pcc_simnet::time::SimDuration;

fn row(name: &str, best_ms: f64, events: u64, sim_secs: f64) {
    println!(
        "{name:<28} best {best_ms:>9.3} ms   {events:>8} events   {:>12.0} events/s   {:>7.1} sim-s/wall-s",
        events as f64 / (best_ms / 1000.0),
        sim_secs / (best_ms / 1000.0),
    );
}

fn main() {
    for (name, best_ms, events, sim_secs) in time_all_scenarios(5) {
        row(name, best_ms, events, sim_secs);
    }
    let twins = [
        (
            "full_sim_5s_pcc_batched",
            Protocol::pcc_default(SimDuration::from_millis(30)),
        ),
        ("full_sim_5s_cubic_batched", Protocol::Tcp("cubic")),
    ];
    for (name, proto) in twins {
        let (best_ms, events) = time_batched_scenario(&proto, 5);
        row(name, best_ms, events, REFERENCE_SIM_SECS as f64);
    }
}
