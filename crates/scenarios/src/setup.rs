//! Core scenario runners: single- and multi-flow dumbbells with arbitrary
//! queue disciplines, the building blocks every figure reuses.

use pcc_simnet::link::LinkSchedule;
use pcc_simnet::prelude::*;
use pcc_transport::{FlowSize, ReportMode, SackReceiver};

use crate::protocol::Protocol;

/// Queue discipline selection for the bottleneck.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// Drop-tail FIFO sized by `buffer_bytes`.
    DropTail,
    /// Per-flow DRR fair queueing (§4.4).
    Fq,
    /// CoDel AQM (Fig. 17).
    Codel,
    /// FQ-CoDel (Fig. 17's "CoDel + FQ").
    FqCodel,
    /// Fair queueing with a 16 MB buffer, ignoring `buffer_bytes` (Fig.
    /// 17's "Bufferbloat + FQ" — all four cells of that figure keep FQ).
    Bufferbloat,
    /// Plain FIFO with a 16 MB buffer (bufferbloat without isolation).
    BufferbloatFifo,
}

impl QueueKind {
    pub(crate) fn build(self, buffer_bytes: u64) -> Box<dyn Queue> {
        match self {
            QueueKind::DropTail => Box::new(DropTail::bytes(buffer_bytes)),
            QueueKind::Fq => Box::new(FairQueue::new(buffer_bytes)),
            QueueKind::Codel => Box::new(Codel::bytes(buffer_bytes)),
            QueueKind::FqCodel => Box::new(fq_codel(buffer_bytes)),
            QueueKind::Bufferbloat => Box::new(FairQueue::new(16 * 1024 * 1024)),
            QueueKind::BufferbloatFifo => Box::new(DropTail::bufferbloat()),
        }
    }
}

/// A single bottleneck path description.
#[derive(Clone, Copy, Debug)]
pub struct LinkSetup {
    /// Bottleneck rate, bits/sec.
    pub rate_bps: f64,
    /// Path round-trip time.
    pub rtt: SimDuration,
    /// Bottleneck buffer, bytes.
    pub buffer_bytes: u64,
    /// Random loss probability on the forward path.
    pub loss: f64,
    /// Random loss probability on the reverse (ACK) path.
    pub ack_loss: f64,
    /// Queue discipline at the bottleneck.
    pub queue: QueueKind,
    /// Optional jitter / bounded reordering at the bottleneck egress.
    pub jitter: Option<JitterConfig>,
    /// Optional token-bucket policer at the bottleneck ingress.
    pub policer: Option<PolicerConfig>,
}

impl LinkSetup {
    /// A clean drop-tail path.
    pub fn new(rate_bps: f64, rtt: SimDuration, buffer_bytes: u64) -> Self {
        LinkSetup {
            rate_bps,
            rtt,
            buffer_bytes,
            loss: 0.0,
            ack_loss: 0.0,
            queue: QueueKind::DropTail,
            jitter: None,
            policer: None,
        }
    }

    /// Set forward random loss.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Set reverse (ACK) random loss.
    pub fn with_ack_loss(mut self, loss: f64) -> Self {
        self.ack_loss = loss;
        self
    }

    /// Set the queue discipline.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Add jitter / bounded reordering at the bottleneck egress.
    pub fn with_jitter(mut self, jitter: JitterConfig) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// Add a token-bucket policer at the bottleneck ingress.
    pub fn with_policer(mut self, policer: PolicerConfig) -> Self {
        self.policer = Some(policer);
        self
    }

    /// The impairment-stage configuration this setup implies.
    pub fn shaper(&self) -> ShaperConfig {
        ShaperConfig {
            jitter: self.jitter,
            policer: self.policer,
        }
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        (self.rate_bps * self.rtt.as_secs_f64() / 8.0) as u64
    }
}

/// One flow's plan in a multi-flow scenario.
pub struct FlowPlan {
    /// The protocol driving the sender.
    pub protocol: Protocol,
    /// Path RTT for this flow.
    pub rtt: SimDuration,
    /// When the flow starts.
    pub start_at: SimTime,
    /// How much it sends.
    pub size: FlowSize,
    /// Feedback granularity override for this flow (`None` = the
    /// process-global [`crate::protocol::force_batched_reports`] default,
    /// then the algorithm's own preference).
    pub report: Option<ReportMode>,
}

impl FlowPlan {
    /// An infinite flow starting at t=0.
    pub fn new(protocol: Protocol, rtt: SimDuration) -> Self {
        FlowPlan {
            protocol,
            rtt,
            start_at: SimTime::ZERO,
            size: FlowSize::Infinite,
            report: None,
        }
    }

    /// Start the flow at `t`.
    pub fn starting_at(mut self, t: SimTime) -> Self {
        self.start_at = t;
        self
    }

    /// Give the flow a fixed size.
    pub fn sized(mut self, size: FlowSize) -> Self {
        self.size = size;
        self
    }

    /// Force this flow's engine onto the given feedback granularity
    /// (e.g. `ReportMode::batched_rtt()` for the off-path control plane).
    pub fn reporting(mut self, mode: ReportMode) -> Self {
        self.report = Some(mode);
        self
    }
}

/// Result of a scenario run.
pub struct ScenarioResult {
    /// Full simulator report.
    pub report: SimReport,
    /// The flows, in plan order.
    pub flows: Vec<FlowId>,
    /// The bottleneck link.
    pub bottleneck: LinkId,
}

impl ScenarioResult {
    /// Whole-lifetime average delivered throughput of flow `i`, Mbit/s.
    pub fn throughput_mbps(&self, i: usize) -> f64 {
        self.report.flow_throughput_mbps(self.flows[i])
    }

    /// Average throughput of flow `i` over `[from, to]`, Mbit/s.
    pub fn throughput_in(&self, i: usize, from: SimTime, to: SimTime) -> f64 {
        self.report.avg_throughput_mbps(self.flows[i], from, to)
    }

    /// Sender-observed loss rate of flow `i`.
    pub fn loss_rate(&self, i: usize) -> f64 {
        self.report.flows[self.flows[i].index()].loss_rate()
    }

    /// Mean RTT of flow `i`, milliseconds.
    pub fn mean_rtt_ms(&self, i: usize) -> f64 {
        self.report.flows[self.flows[i].index()]
            .mean_rtt()
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN)
    }

    /// Flow completion time of flow `i`, if it finished.
    pub fn fct(&self, i: usize) -> Option<SimDuration> {
        self.report.flows[self.flows[i].index()].fct()
    }
}

/// Run `plans` over a shared bottleneck described by `setup` (each flow
/// gets its own RTT shims) until `horizon`.
pub fn run_dumbbell(
    setup: LinkSetup,
    plans: Vec<FlowPlan>,
    horizon: SimTime,
    seed: u64,
) -> ScenarioResult {
    run_dumbbell_scheduled(setup, plans, horizon, seed, LinkSchedule::new(), None)
}

/// [`run_dumbbell`] with a time-varying bottleneck schedule (Fig. 11) and
/// an optional stats sampling interval override.
pub fn run_dumbbell_scheduled(
    setup: LinkSetup,
    plans: Vec<FlowPlan>,
    horizon: SimTime,
    seed: u64,
    schedule: LinkSchedule,
    sample_interval: Option<SimDuration>,
) -> ScenarioResult {
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: sample_interval.unwrap_or(SimDuration::from_millis(100)),
        seed,
    });
    // The dumbbell as a topology graph: a shared source host, a middle
    // switch (the bottleneck edge between them, carrying the schedule,
    // shaper, and queue discipline), and one receiver host per plan whose
    // edges are that flow's RTT shims. Edge installation order reproduces
    // the historical LinkId layout — bottleneck first, then each flow's
    // forward/reverse shim pair — so pre-graph outputs are bit-identical.
    let mut topo = Topology::new();
    let src = topo.add_host();
    let mid = topo.add_switch();
    let bottleneck_edge = topo.add_link(
        src,
        mid,
        LinkConfig {
            rate_bps: Some(setup.rate_bps),
            delay: SimDuration::ZERO,
            loss: setup.loss,
            queue: setup.queue.build(setup.buffer_bytes),
            schedule,
            shaper: setup.shaper(),
        },
    );
    let receivers: Vec<NodeId> = plans
        .iter()
        .map(|plan| {
            let half = plan.rtt / 2;
            let recv = topo.add_host();
            topo.add_link(mid, recv, LinkConfig::delay_only(half));
            topo.add_link(
                recv,
                src,
                LinkConfig::delay_only(plan.rtt - half).with_loss(setup.ack_loss),
            );
            recv
        })
        .collect();
    topo.install(&mut net);
    let bottleneck = topo.link_of(bottleneck_edge);
    let mut flows = Vec::with_capacity(plans.len());
    for (plan, recv) in plans.into_iter().zip(receivers) {
        // Single-path by construction, so the ECMP key is irrelevant.
        let path = topo.flow_path(src, recv, 0);
        let sender = plan
            .protocol
            .build_sender_reporting(plan.size, 1500, plan.rtt, plan.report)
            .unwrap_or_else(|e| panic!("scenario plan references an unknown algorithm: {e}"));
        let flow = net.add_flow(FlowSpec {
            sender,
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: plan.start_at,
        });
        flows.push(flow);
    }
    let report = net.build().run_until(horizon);
    ScenarioResult {
        report,
        flows,
        bottleneck,
    }
}

/// Run one protocol alone on a path (the workhorse of Figs. 6, 7, 9 and
/// Table 1).
pub fn run_single(
    protocol: Protocol,
    setup: LinkSetup,
    duration: SimDuration,
    seed: u64,
) -> ScenarioResult {
    let rtt = setup.rtt;
    run_dumbbell(
        setup,
        vec![FlowPlan::new(protocol, rtt)],
        SimTime::ZERO + duration,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn quick(proto: Protocol, setup: LinkSetup, secs: u64) -> ScenarioResult {
        run_single(proto, setup, SimDuration::from_secs(secs), 42)
    }

    #[test]
    fn pcc_fills_clean_link() {
        let setup = LinkSetup::new(50e6, SimDuration::from_millis(30), 64_000);
        let r = quick(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            setup,
            8,
        );
        let t = r.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        assert!(t > 42.0, "PCC ≈ capacity: {t} Mbps");
    }

    #[test]
    fn cubic_fills_clean_link() {
        let setup = LinkSetup::new(50e6, SimDuration::from_millis(30), 187_500);
        let r = quick(Protocol::Tcp("cubic"), setup, 8);
        let t = r.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        assert!(t > 40.0, "CUBIC ≈ capacity with BDP buffer: {t} Mbps");
    }

    #[test]
    fn sabul_moves_data() {
        let setup = LinkSetup::new(50e6, SimDuration::from_millis(30), 64_000);
        let r = quick(Protocol::Sabul, setup, 8);
        let t = r.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        assert!(t > 10.0, "SABUL makes progress: {t} Mbps");
    }

    #[test]
    fn pcp_moves_data() {
        let setup = LinkSetup::new(50e6, SimDuration::from_millis(30), 64_000);
        let r = quick(Protocol::Pcp, setup, 8);
        let t = r.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        assert!(t > 5.0, "PCP makes progress: {t} Mbps");
    }

    #[test]
    fn golden_fingerprints_survive_graph_rebase() {
        // Exact counters captured on the pre-graph (direct add_link)
        // dumbbell construction. The topology rebase must not perturb a
        // single event: link ids, per-link RNG streams, and path vectors
        // all have to come out identical.
        let setup = LinkSetup::new(50e6, SimDuration::from_millis(30), 64_000);
        let r = run_single(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            setup,
            SimDuration::from_secs(8),
            42,
        );
        assert_eq!(r.report.events_processed, 157_939);
        assert_eq!(r.report.flows[0].delivered_bytes, 46_510_500);
        assert_eq!(r.report.flows[0].goodput_bytes, 46_510_500);
        assert_eq!(r.report.flows[0].sent_packets, 32_974);

        // A heterogeneous case: random loss both ways, FQ at the
        // bottleneck, staggered second flow with a different RTT.
        let setup = LinkSetup::new(20e6, SimDuration::from_millis(30), 75_000)
            .with_loss(0.01)
            .with_ack_loss(0.005)
            .with_queue(QueueKind::Fq);
        let r = run_dumbbell(
            setup,
            vec![
                FlowPlan::new(Protocol::Tcp("cubic"), SimDuration::from_millis(30)),
                FlowPlan::new(Protocol::Tcp("newreno"), SimDuration::from_millis(60))
                    .starting_at(SimTime::from_secs(1)),
            ],
            SimTime::from_secs(10),
            7,
        );
        assert_eq!(r.report.events_processed, 29_420);
        assert_eq!(r.report.flows[0].delivered_bytes, 7_152_000);
        assert_eq!(r.report.flows[1].delivered_bytes, 2_410_500);
        assert_eq!(r.report.flows[0].detected_losses, 263);
        assert_eq!(r.report.flows[1].detected_losses, 28);
    }

    #[test]
    fn batched_reports_land_near_the_per_ack_baseline() {
        // Tolerance gate for the off-path control plane: the same CUBIC
        // flow fed 1-RTT batched reports must land within 10% of the
        // per-ACK baseline on a clean BDP-buffered link.
        let setup = LinkSetup::new(50e6, SimDuration::from_millis(30), 187_500);
        let rtt = SimDuration::from_millis(30);
        let horizon = SimTime::from_secs(8);
        let base = run_dumbbell(
            setup,
            vec![FlowPlan::new(Protocol::Tcp("cubic"), rtt)],
            horizon,
            42,
        );
        let batched = run_dumbbell(
            setup,
            vec![FlowPlan::new(Protocol::Tcp("cubic"), rtt).reporting(ReportMode::batched_rtt())],
            horizon,
            42,
        );
        let tb = base.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        let tr = batched.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        assert!(tr > 40.0, "batched CUBIC still fills the link: {tr} Mbps");
        assert!(
            (tr - tb).abs() / tb < 0.10,
            "within 10% of per-ACK: {tb} vs {tr} Mbps"
        );
    }

    #[test]
    fn mode_switching_algorithm_completes_a_scenario() {
        // rate-then-window starts in Rate mode and hands the engine a
        // window mid-flight; the sim datapath must survive the switch.
        let setup = LinkSetup::new(20e6, SimDuration::from_millis(30), 75_000);
        let rtt = SimDuration::from_millis(30);
        let r = run_dumbbell(
            setup,
            vec![FlowPlan::new(
                Protocol::Named("rate-then-window".into()),
                rtt,
            )],
            SimTime::from_secs(8),
            11,
        );
        let t = r.throughput_in(0, SimTime::from_secs(4), SimTime::from_secs(8));
        assert!(t > 5.0, "rate-then-window makes progress: {t} Mbps");
    }

    #[test]
    fn multi_flow_shares_bottleneck() {
        // PCC convergence takes tens of seconds at ±1% steps (the paper's
        // Fig. 16 reports 30-60 s); measure after the dust settles.
        let setup = LinkSetup::new(20e6, SimDuration::from_millis(30), 75_000);
        let rtt = SimDuration::from_millis(30);
        let r = run_dumbbell(
            setup,
            vec![
                FlowPlan::new(Protocol::pcc_default(rtt), rtt),
                FlowPlan::new(Protocol::pcc_default(rtt), rtt),
            ],
            SimTime::from_secs(90),
            7,
        );
        let t0 = r.throughput_in(0, SimTime::from_secs(60), SimTime::from_secs(90));
        let t1 = r.throughput_in(1, SimTime::from_secs(60), SimTime::from_secs(90));
        assert!(t0 + t1 > 16.0, "link utilized: {t0}+{t1}");
        let ratio = t0.max(t1) / t0.min(t1).max(0.01);
        assert!(ratio < 2.0, "roughly fair: {t0} vs {t1}");
    }
}
