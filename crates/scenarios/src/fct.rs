//! Fig. 15 — flow completion time for short flows (§4.3.2).
//!
//! 100 KB flows arrive as a Poisson process on a 15 Mbps / 60 ms path; the
//! arrival rate sets the offered load. The question is whether PCC's
//! learning startup hurts short transfers relative to TCP's slow start.

use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::FlowSize;

use crate::protocol::Protocol;
use crate::setup::{run_dumbbell, FlowPlan, LinkSetup};
use crate::workload::FctSummary;

/// Fig. 15 path: 15 Mbps, 60 ms RTT.
pub const FCT_RATE_BPS: f64 = 15e6;
/// Path RTT.
pub const FCT_RTT: SimDuration = SimDuration::from_millis(60);
/// Short-flow size (100 KB).
pub const FCT_FLOW_BYTES: u64 = 100 * 1024;

/// FCT distribution summary — the shared [`FctSummary`] type (the churn
/// engine's percentile reporter subsumed this module's old bespoke one).
pub type FctResult = FctSummary;

/// Run the short-flow workload at `load` (fraction of link capacity) for
/// `duration`, with `mk_protocol` building each flow's sender.
pub fn run_fct(
    mk_protocol: impl Fn() -> Protocol,
    load: f64,
    duration: SimDuration,
    seed: u64,
) -> FctResult {
    assert!((0.0..1.0).contains(&load), "load must be in (0,1)");
    // Poisson arrivals: λ = load·C / flow size.
    let lambda = load * FCT_RATE_BPS / (FCT_FLOW_BYTES as f64 * 8.0);
    let mut arr_rng = SimRng::new(seed ^ 0x00A1_1CE5);
    let mut plans = Vec::new();
    let mut t = 0.0;
    let horizon_secs = duration.as_secs_f64();
    while t < horizon_secs {
        t += arr_rng.exponential(1.0 / lambda);
        if t >= horizon_secs {
            break;
        }
        plans.push(
            FlowPlan::new(mk_protocol(), FCT_RTT)
                .starting_at(SimTime::from_secs_f64(t))
                .sized(FlowSize::Bytes(FCT_FLOW_BYTES)),
        );
    }
    let n = plans.len();
    // Let the tail drain: generous extra time after the last arrival.
    let horizon = SimTime::ZERO + duration + SimDuration::from_secs(30);
    let setup = LinkSetup::new(FCT_RATE_BPS, FCT_RTT, 112_500);
    let r = run_dumbbell(setup, plans, horizon, seed);
    let mut fcts = Vec::with_capacity(n);
    let mut incomplete = 0;
    for i in 0..n {
        match r.fct(i) {
            Some(d) => fcts.push(d.as_secs_f64()),
            None => incomplete += 1,
        }
    }
    FctSummary { fcts, incomplete }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_fct_near_ideal() {
        // At 10% load a 100 KB flow on 15 Mbps takes ≥ 100KB·8/15e6 ≈ 55 ms
        // of serialization plus a few RTTs of startup.
        let r = run_fct(
            || Protocol::Tcp("cubic"),
            0.10,
            SimDuration::from_secs(30),
            1,
        );
        assert!(r.fcts.len() > 3, "some flows arrived: {}", r.fcts.len());
        assert_eq!(r.incomplete, 0);
        let med = r.median_ms();
        assert!(
            (150.0..1500.0).contains(&med),
            "light-load FCT plausible: {med} ms"
        );
    }

    #[test]
    fn pcc_fct_comparable_to_tcp() {
        // Fig. 15's claim: similar FCT at moderate load (within ~2×).
        let dur = SimDuration::from_secs(40);
        let tcp = run_fct(|| Protocol::Tcp("cubic"), 0.3, dur, 2);
        let pcc = run_fct(|| Protocol::pcc_default(FCT_RTT), 0.3, dur, 2);
        assert_eq!(pcc.incomplete, 0, "all PCC short flows complete");
        // PCC's starting phase doubles once per MI (~2 RTTs) vs TCP's
        // once per RTT, so short-flow FCT runs ~2-4x TCP at light load
        // (the gap closes at high load, where queueing dominates — see
        // the fig15 experiment). The paper's point is that PCC does not
        // *fundamentally* harm short flows: same order of magnitude.
        let ratio = pcc.median_ms() / tcp.median_ms();
        assert!(
            ratio < 4.5,
            "PCC median {} ms vs TCP {} ms",
            pcc.median_ms(),
            tcp.median_ms()
        );
    }

    #[test]
    fn golden_fct_output_survives_summary_rebase() {
        // Exact values captured on the pre-rebase bespoke `FctResult`
        // (arrival RNG, plan construction, and percentile math must all
        // come out identical through the shared `FctSummary`).
        let close = |a: f64, b: f64| (a - b).abs() < 1e-6;
        let r = run_fct(
            || Protocol::Tcp("cubic"),
            0.2,
            SimDuration::from_secs(20),
            7,
        );
        assert_eq!(r.fcts.len(), 76);
        assert_eq!(r.incomplete, 0);
        assert!(close(r.mean_ms(), 225.333621434), "{}", r.mean_ms());
        assert!(close(r.median_ms(), 215.800000000), "{}", r.median_ms());
        assert!(close(r.p95_ms(), 251.497116000), "{}", r.p95_ms());

        let r = run_fct(
            || Protocol::Tcp("cubic"),
            0.5,
            SimDuration::from_secs(20),
            11,
        );
        assert_eq!(r.fcts.len(), 194);
        assert_eq!(r.incomplete, 0);
        assert!(close(r.mean_ms(), 275.702913258), "{}", r.mean_ms());
        assert!(close(r.median_ms(), 236.786557000), "{}", r.median_ms());
        assert!(close(r.p95_ms(), 487.669031000), "{}", r.p95_ms());
    }

    #[test]
    fn heavier_load_increases_fct() {
        let dur = SimDuration::from_secs(40);
        let light = run_fct(|| Protocol::Tcp("cubic"), 0.1, dur, 3);
        let heavy = run_fct(|| Protocol::Tcp("cubic"), 0.6, dur, 3);
        assert!(
            heavy.p95_ms() > light.p95_ms(),
            "queueing at load: {} vs {}",
            heavy.p95_ms(),
            light.p95_ms()
        );
    }
}
