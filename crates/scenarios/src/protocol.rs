//! Protocol factory: build any evaluated sender by description.
//!
//! Every variant resolves through the workspace-wide
//! [`pcc_transport::registry`] (installed by [`install_registry`], which
//! [`Protocol::build_sender`] calls automatically), and every sender is the
//! same engine — [`CcSender`] — hosting whatever
//! [`pcc_transport::CongestionControl`] the description names.
//! [`Protocol::Named`] accepts parameterized specs
//! (`"pcc:eps=0.05,util=latency"`, `"cubic:iw=32"` — see
//! `pcc_transport::spec`), so scenario tables can sweep algorithm
//! parameters by string. Unknown names and invalid parameters are a typed
//! [`SpecError`], never a panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use pcc_core::{
    LatencySensitive, LossResilient, PccConfig, PccController, SafeSigmoid, SimpleThroughputLoss,
    UtilityFunction,
};
use pcc_simnet::endpoint::Endpoint;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::registry::{self, CcParams, SpecError};
use pcc_transport::{
    CcSender, CcSenderConfig, CongestionControl, FlowSize, ReportMode, TransportConfig,
};

/// Process-global default feedback granularity for scenario-built senders
/// (see [`force_batched_reports`]).
static FORCE_BATCHED: AtomicBool = AtomicBool::new(false);

/// Force every sender subsequently built through [`Protocol`] onto
/// batched one-RTT measurement reports (the off-path control plane),
/// regardless of each algorithm's preferred [`ReportMode`]. Per-flow
/// overrides (e.g. `FlowPlan::reporting`) still win. Used by
/// `pcc-experiments --batched` and the CI smoke run; golden-fingerprint
/// scenarios run with this off, so defaults stay bit-identical.
pub fn force_batched_reports(on: bool) {
    FORCE_BATCHED.store(on, Ordering::SeqCst);
}

/// Whether [`force_batched_reports`] is currently set.
pub fn batched_reports_forced() -> bool {
    FORCE_BATCHED.load(Ordering::SeqCst)
}

/// Install every algorithm in the workspace — the PCC×utility family from
/// `pcc-core`, the seven TCP baselines (plus `-paced` variants) from
/// `pcc-tcp`, SABUL/PCP from `pcc-rate`, and the BBR-style hybrid from
/// `pcc-bbr` — into the [`pcc_transport::registry`]. Idempotent and
/// cheap; called automatically by [`Protocol::build_sender`]. Twin of
/// `pcc_udp::install_registry` (neither crate can depend on the other
/// without warping the graph); a new algorithm crate must be added to
/// BOTH registration lists.
pub fn install_registry() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        pcc_core::register_algorithms();
        pcc_tcp::register_algorithms();
        pcc_rate::register_algorithms();
        pcc_bbr::register_algorithms();
    });
}

/// Which utility function a PCC sender optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtilityKind {
    /// §2.2 safe sigmoid (the default everywhere in §4.1–4.3).
    Safe,
    /// `T − x·L` (§2.2's naive starting point).
    Simple,
    /// §4.4.2 `T·(1−L)` for extreme-loss links under FQ.
    LossResilient,
    /// §4.4.1 latency-sensitive power objective.
    LatencySensitive,
}

impl UtilityKind {
    /// Instantiate the utility function.
    pub fn build(self) -> Box<dyn UtilityFunction> {
        match self {
            UtilityKind::Safe => Box::new(SafeSigmoid::default()),
            UtilityKind::Simple => Box::new(SimpleThroughputLoss),
            UtilityKind::LossResilient => Box::new(LossResilient),
            UtilityKind::LatencySensitive => Box::new(LatencySensitive::default()),
        }
    }
}

/// A protocol under evaluation.
#[derive(Clone, Debug)]
pub enum Protocol {
    /// PCC with a given config and utility.
    Pcc(PccConfig, UtilityKind),
    /// A TCP baseline by name (`"cubic"`, `"illinois"`, ...).
    Tcp(&'static str),
    /// A TCP baseline with packet pacing (Fig. 9's "TCP Pacing").
    TcpPaced(&'static str),
    /// SABUL/UDT-style rate control.
    Sabul,
    /// PCP-style bandwidth probing.
    Pcp,
    /// Any registered algorithm by registry name or parameterized spec
    /// (`"pcc-lossresilient"`, `"cubic-paced"`, `"cubic:beta=0.7,iw=32"`,
    /// ...).
    Named(String),
}

impl Protocol {
    /// PCC with paper defaults and the safe utility, RTT hint attached.
    pub fn pcc_default(rtt_hint: SimDuration) -> Protocol {
        Protocol::Pcc(
            PccConfig::paper().with_rtt_hint(rtt_hint),
            UtilityKind::Safe,
        )
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Protocol::Pcc(cfg, UtilityKind::Safe) if cfg.rct => "pcc".into(),
            Protocol::Pcc(_, UtilityKind::Safe) => "pcc-norct".into(),
            Protocol::Pcc(_, u) => format!("pcc-{u:?}").to_lowercase(),
            Protocol::Tcp(name) => (*name).into(),
            Protocol::TcpPaced(name) => format!("{name}-paced"),
            Protocol::Sabul => "sabul".into(),
            Protocol::Pcp => "pcp".into(),
            Protocol::Named(name) => name.clone(),
        }
    }

    /// The registry name this protocol resolves through, or `None` for the
    /// directly-constructed custom-config PCC variant.
    fn registry_name(&self) -> Option<String> {
        match self {
            Protocol::Pcc(..) => None,
            Protocol::Tcp(name) => Some((*name).into()),
            Protocol::TcpPaced(name) => Some(format!("{name}-paced")),
            Protocol::Sabul => Some("sabul".into()),
            Protocol::Pcp => Some("pcp".into()),
            Protocol::Named(name) => Some(name.clone()),
        }
    }

    /// Build just the congestion-control algorithm (shared by the
    /// simulator path here and by real-datapath callers that bring their
    /// own engine). `params` seeds pre-sample state — MSS, and the RTT
    /// hint that paced variants derive their initial pacing rate from.
    pub fn build_cc(&self, params: &CcParams) -> Result<Box<dyn CongestionControl>, SpecError> {
        install_registry();
        match self {
            Protocol::Pcc(cfg, util) => Ok(Box::new(
                PccController::with_utility(*cfg, util.build()).with_mss(params.mss),
            )),
            other => {
                let name = other.registry_name().expect("non-Pcc has a name");
                registry::by_name(&name, params)
            }
        }
    }

    /// Build the sender endpoint for a flow of `size` (use
    /// [`FlowSize::Infinite`] for long-running throughput flows). Unknown
    /// algorithm names and invalid spec parameters surface as a typed
    /// [`SpecError`].
    /// Prefer [`Protocol::build_sender_hinted`] when the path RTT is known.
    pub fn build_sender(&self, size: FlowSize, mss: u32) -> Result<Box<dyn Endpoint>, SpecError> {
        self.build_sender_with(size, &CcParams::default().with_mss(mss), None, None)
    }

    /// [`Protocol::build_sender`] with the flow's path RTT threaded into
    /// the algorithm's construction parameters.
    pub fn build_sender_hinted(
        &self,
        size: FlowSize,
        mss: u32,
        rtt_hint: SimDuration,
    ) -> Result<Box<dyn Endpoint>, SpecError> {
        self.build_sender_reporting(size, mss, rtt_hint, None)
    }

    /// [`Protocol::build_sender_hinted`] with an explicit feedback
    /// granularity. `report: None` falls through to the process-global
    /// [`force_batched_reports`] default, then to the algorithm's own
    /// [`ReportMode`] preference.
    pub fn build_sender_reporting(
        &self,
        size: FlowSize,
        mss: u32,
        rtt_hint: SimDuration,
        report: Option<ReportMode>,
    ) -> Result<Box<dyn Endpoint>, SpecError> {
        self.build_sender_with(
            size,
            &CcParams::default().with_mss(mss).with_rtt_hint(rtt_hint),
            report,
            None,
        )
    }

    /// [`Protocol::build_sender_hinted`] with a dead-time budget: the
    /// engine aborts the flow as [`pcc_transport::TransferError::Stalled`]
    /// (recorded in `FlowStats::stalled`) once that long passes without
    /// forward progress while timeouts keep firing. Used by the chaos
    /// scenarios, where a wedged flow must become a typed outcome instead
    /// of burning the rest of the horizon.
    pub fn build_sender_budgeted(
        &self,
        size: FlowSize,
        mss: u32,
        rtt_hint: SimDuration,
        dead_time_budget: Option<SimDuration>,
    ) -> Result<Box<dyn Endpoint>, SpecError> {
        self.build_sender_with(
            size,
            &CcParams::default().with_mss(mss).with_rtt_hint(rtt_hint),
            None,
            dead_time_budget,
        )
    }

    fn build_sender_with(
        &self,
        size: FlowSize,
        params: &CcParams,
        report: Option<ReportMode>,
        dead_time_budget: Option<SimDuration>,
    ) -> Result<Box<dyn Endpoint>, SpecError> {
        let cc = self.build_cc(params)?;
        let report = report.or_else(|| batched_reports_forced().then(ReportMode::batched_rtt));
        let cfg = CcSenderConfig {
            transport: TransportConfig {
                mss: params.mss,
                size,
            },
            report,
            dead_time_budget,
            ..Default::default()
        };
        Ok(Box::new(CcSender::new(cfg, cc)))
    }
}

/// The flow-start placeholder time used by builders that start immediately.
pub const T0: SimTime = SimTime::ZERO;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(
            Protocol::pcc_default(SimDuration::from_millis(30)).label(),
            "pcc"
        );
        assert_eq!(Protocol::Tcp("cubic").label(), "cubic");
        assert_eq!(Protocol::TcpPaced("newreno").label(), "newreno-paced");
        assert_eq!(
            Protocol::Pcc(PccConfig::paper().without_rct(), UtilityKind::Safe).label(),
            "pcc-norct"
        );
        assert_eq!(
            Protocol::Pcc(PccConfig::paper(), UtilityKind::LossResilient).label(),
            "pcc-lossresilient"
        );
        assert_eq!(Protocol::Named("cubic-paced".into()).label(), "cubic-paced");
    }

    #[test]
    fn builders_produce_endpoints() {
        for p in [
            Protocol::pcc_default(SimDuration::from_millis(30)),
            Protocol::Tcp("cubic"),
            Protocol::TcpPaced("newreno"),
            Protocol::Sabul,
            Protocol::Pcp,
            Protocol::Named("pcc-lossresilient".into()),
            Protocol::Named("illinois".into()),
        ] {
            assert!(
                p.build_sender(FlowSize::Infinite, 1500).is_ok(),
                "buildable: {}",
                p.label()
            );
        }
    }

    #[test]
    fn unknown_tcp_is_typed_error() {
        let err = match Protocol::Tcp("tahoe").build_sender(FlowSize::Infinite, 1500) {
            Ok(_) => panic!("tahoe must not resolve"),
            Err(SpecError::Unknown(e)) => e,
            Err(other) => panic!("expected Unknown, got {other}"),
        };
        assert_eq!(err.name, "tahoe");
        assert!(
            err.known.contains(&"cubic".to_string()),
            "lists known: {err}"
        );
    }

    #[test]
    fn named_specs_resolve_and_invalid_params_are_typed() {
        // A parameterized spec builds a sender exactly like a bare name —
        // the surface the experiments sweep rides on.
        for spec in ["pcc:eps=0.05,util=latency", "cubic:beta=0.7,iw=32"] {
            let p = Protocol::Named(spec.into());
            assert_eq!(p.label(), spec, "label is the spec string");
            assert!(
                p.build_sender(FlowSize::Infinite, 1500).is_ok(),
                "{spec} builds"
            );
        }
        let err =
            match Protocol::Named("cubic:bogus=1".into()).build_sender(FlowSize::Infinite, 1500) {
                Ok(_) => panic!("bad key must not resolve"),
                Err(SpecError::InvalidParam(e)) => e,
                Err(other) => panic!("expected InvalidParam, got {other}"),
            };
        assert_eq!(err.algo, "cubic");
        assert!(
            err.valid.iter().any(|k| k.contains("beta")),
            "lists cubic's keys: {:?}",
            err.valid
        );
    }

    #[test]
    fn bbr_resolves_through_the_registry() {
        // The hybrid is a first-class registry citizen: scenario builders
        // pick it up by name with zero per-harness code.
        let p = Protocol::Named("bbr".into());
        assert_eq!(p.label(), "bbr");
        assert!(p.build_sender(FlowSize::Infinite, 1500).is_ok());
    }

    #[test]
    fn every_registered_name_builds_a_sender() {
        install_registry();
        for name in registry::names() {
            let p = Protocol::Named(name.clone());
            assert!(
                p.build_sender(FlowSize::Infinite, 1500).is_ok(),
                "{name} builds"
            );
        }
    }
}
