//! Protocol factory: build any evaluated sender by description.

use pcc_core::{
    LatencySensitive, LossResilient, PccConfig, PccController, SafeSigmoid, SimpleThroughputLoss,
    UtilityFunction,
};
use pcc_rate::{Pcp, Sabul};
use pcc_simnet::endpoint::Endpoint;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_tcp::by_name;
use pcc_transport::{
    FlowSize, RateSender, RateSenderConfig, TransportConfig, WindowSender, WindowSenderConfig,
};

/// Which utility function a PCC sender optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtilityKind {
    /// §2.2 safe sigmoid (the default everywhere in §4.1–4.3).
    Safe,
    /// `T − x·L` (§2.2's naive starting point).
    Simple,
    /// §4.4.2 `T·(1−L)` for extreme-loss links under FQ.
    LossResilient,
    /// §4.4.1 latency-sensitive power objective.
    LatencySensitive,
}

impl UtilityKind {
    /// Instantiate the utility function.
    pub fn build(self) -> Box<dyn UtilityFunction> {
        match self {
            UtilityKind::Safe => Box::new(SafeSigmoid::default()),
            UtilityKind::Simple => Box::new(SimpleThroughputLoss),
            UtilityKind::LossResilient => Box::new(LossResilient),
            UtilityKind::LatencySensitive => Box::new(LatencySensitive::default()),
        }
    }
}

/// A protocol under evaluation.
#[derive(Clone, Debug)]
pub enum Protocol {
    /// PCC with a given config and utility.
    Pcc(PccConfig, UtilityKind),
    /// A TCP baseline by name (`"cubic"`, `"illinois"`, ...).
    Tcp(&'static str),
    /// A TCP baseline with packet pacing (Fig. 9's "TCP Pacing").
    TcpPaced(&'static str),
    /// SABUL/UDT-style rate control.
    Sabul,
    /// PCP-style bandwidth probing.
    Pcp,
}

impl Protocol {
    /// PCC with paper defaults and the safe utility, RTT hint attached.
    pub fn pcc_default(rtt_hint: SimDuration) -> Protocol {
        Protocol::Pcc(PccConfig::paper().with_rtt_hint(rtt_hint), UtilityKind::Safe)
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Protocol::Pcc(cfg, UtilityKind::Safe) if cfg.rct => "pcc".into(),
            Protocol::Pcc(cfg, UtilityKind::Safe) => {
                let _ = cfg;
                "pcc-norct".into()
            }
            Protocol::Pcc(_, u) => format!("pcc-{u:?}").to_lowercase(),
            Protocol::Tcp(name) => (*name).into(),
            Protocol::TcpPaced(name) => format!("{name}-paced"),
            Protocol::Sabul => "sabul".into(),
            Protocol::Pcp => "pcp".into(),
        }
    }

    /// Build the sender endpoint for a flow of `size` (use
    /// [`FlowSize::Infinite`] for long-running throughput flows).
    pub fn build_sender(&self, size: FlowSize, mss: u32) -> Box<dyn Endpoint> {
        let transport = TransportConfig { mss, size };
        match self {
            Protocol::Pcc(cfg, util) => {
                let ctrl = PccController::with_utility(*cfg, util.build());
                Box::new(RateSender::new(
                    RateSenderConfig {
                        transport,
                        ..Default::default()
                    },
                    Box::new(ctrl),
                ))
            }
            Protocol::Tcp(name) => {
                let cc = by_name(name).unwrap_or_else(|| panic!("unknown TCP variant {name}"));
                Box::new(WindowSender::new(
                    WindowSenderConfig {
                        transport,
                        ..Default::default()
                    },
                    cc,
                ))
            }
            Protocol::TcpPaced(name) => {
                let cc = by_name(name).unwrap_or_else(|| panic!("unknown TCP variant {name}"));
                Box::new(WindowSender::new(
                    WindowSenderConfig {
                        transport,
                        pacing: true,
                        ..Default::default()
                    },
                    cc,
                ))
            }
            Protocol::Sabul => Box::new(RateSender::new(
                RateSenderConfig {
                    transport,
                    ..Default::default()
                },
                Box::new(Sabul::new()),
            )),
            Protocol::Pcp => Box::new(RateSender::new(
                RateSenderConfig {
                    transport,
                    ..Default::default()
                },
                Box::new(Pcp::new()),
            )),
        }
    }
}

/// The flow-start placeholder time used by builders that start immediately.
pub const T0: SimTime = SimTime::ZERO;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Protocol::pcc_default(SimDuration::from_millis(30)).label(), "pcc");
        assert_eq!(Protocol::Tcp("cubic").label(), "cubic");
        assert_eq!(Protocol::TcpPaced("newreno").label(), "newreno-paced");
        assert_eq!(
            Protocol::Pcc(PccConfig::paper().without_rct(), UtilityKind::Safe).label(),
            "pcc-norct"
        );
        assert_eq!(
            Protocol::Pcc(PccConfig::paper(), UtilityKind::LossResilient).label(),
            "pcc-lossresilient"
        );
    }

    #[test]
    fn builders_produce_endpoints() {
        for p in [
            Protocol::pcc_default(SimDuration::from_millis(30)),
            Protocol::Tcp("cubic"),
            Protocol::TcpPaced("newreno"),
            Protocol::Sabul,
            Protocol::Pcp,
        ] {
            let _ = p.build_sender(FlowSize::Infinite, 1500);
        }
    }

    #[test]
    #[should_panic(expected = "unknown TCP variant")]
    fn unknown_tcp_panics() {
        Protocol::Tcp("bbr").build_sender(FlowSize::Infinite, 1500);
    }
}
