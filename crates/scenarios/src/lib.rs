//! # pcc-scenarios — every evaluation scenario from the paper's §4
//!
//! Reusable builders mapping each figure/table to a parameterized runner:
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`internet`] | Figs. 4–5 (wide-area path population) |
//! | [`links`] | Fig. 6 (satellite), Fig. 7 (lossy), Fig. 9 (shallow buffer), Table 1 (inter-DC) |
//! | [`dynamics`] | Fig. 8 (RTT fairness), Figs. 12–13 (convergence), Fig. 14 (friendliness), Fig. 16 (trade-off) |
//! | [`incast`] | Fig. 10 |
//! | [`rapid`] | Fig. 11 |
//! | [`fct`] | Fig. 15 |
//! | [`power`] | Fig. 17 and §4.4.2 |
//! | [`vary`] | trace-driven time-varying links (`pcc-experiments vary`) |
//! | [`dc`] | datacenter fabrics: rack incast, cross-pod permutation, oversubscribed mix (`pcc-experiments dc`) |
//! | [`chaos`] | fault-injection conformance: link flap, ACK blackout, spine failure, corruption storm (`pcc-experiments chaos`) |
//! | [`workload`] | production-traffic flow churn: heavy-tailed sizes, Poisson arrivals, FCT percentiles (`pcc-experiments churn`) |
//!
//! All scenarios take explicit durations/seeds so tests can run scaled-down
//! versions while the `pcc-experiments` crate runs paper-scale parameters.

pub mod chaos;
pub mod dc;
pub mod dynamics;
pub mod fct;
pub mod incast;
pub mod internet;
pub mod links;
pub mod perf;
pub mod power;
pub mod protocol;
pub mod rapid;
pub mod setup;
pub mod vary;
pub mod workload;

pub use protocol::{
    batched_reports_forced, force_batched_reports, install_registry, Protocol, UtilityKind,
};
pub use setup::{
    run_dumbbell, run_dumbbell_scheduled, run_single, FlowPlan, LinkSetup, QueueKind,
    ScenarioResult,
};
pub use workload::{
    run_churn, Arrival, ChurnConfig, ChurnReport, ChurnSample, FctSummary, SizeCdf,
};
