//! Fig. 17 and §4.4.2 — alternate utility functions under fair queueing.
//!
//! Fig. 17: two long-running "interactive" flows on a 40 Mbps / 20 ms path
//! want maximal *power* (throughput/delay). TCP needs CoDel in the network
//! to get good power; PCC with the latency-sensitive utility achieves it
//! under either AQM because it simply never builds the queue.
//!
//! §4.4.2: with per-flow FQ isolation, a PCC sender may plug in the
//! loss-resilient utility `T·(1−L)` and keep ~full throughput under
//! 10–50% random loss, where loss-backoff TCP gets nothing.

use pcc_core::PccConfig;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::protocol::{Protocol, UtilityKind};
use crate::setup::{run_dumbbell, FlowPlan, LinkSetup, QueueKind};

/// Fig. 17 path parameters.
pub const POWER_RATE_BPS: f64 = 40e6;
/// Fig. 17 base RTT.
pub const POWER_RTT: SimDuration = SimDuration::from_millis(20);

/// Result of one Fig. 17 cell: mean per-flow throughput, delay, and power.
#[derive(Clone, Copy, Debug)]
pub struct PowerResult {
    /// Mean per-flow throughput, Mbit/s.
    pub throughput_mbps: f64,
    /// Mean RTT, milliseconds.
    pub rtt_ms: f64,
    /// Power = throughput / delay (Mbit/s per second of RTT).
    pub power: f64,
}

/// Run two identical interactive flows under the given queue discipline.
pub fn run_power(
    protocol: Protocol,
    queue: QueueKind,
    duration: SimDuration,
    seed: u64,
) -> PowerResult {
    let setup = LinkSetup::new(POWER_RATE_BPS, POWER_RTT, 1 << 20).with_queue(queue);
    let horizon = SimTime::ZERO + duration;
    let r = run_dumbbell(
        setup,
        vec![
            FlowPlan::new(protocol.clone(), POWER_RTT),
            FlowPlan::new(protocol, POWER_RTT),
        ],
        horizon,
        seed,
    );
    let from = SimTime::ZERO + duration.mul_f64(0.2);
    let tput = (r.throughput_in(0, from, horizon) + r.throughput_in(1, from, horizon)) / 2.0;
    // Windowed RTT (the lifetime mean would never forget startup bloat).
    let window_rtt = |i: usize| {
        let s = &r.report.flows[r.flows[i].index()].series.rtt_ms;
        let lo = ((from.as_nanos() / r.report.sample_interval.as_nanos()) as usize).min(s.len());
        let vals: Vec<f64> = s[lo..].iter().copied().filter(|v| v.is_finite()).collect();
        pcc_simnet::stats::mean(&vals)
    };
    let rtt_ms = (window_rtt(0) + window_rtt(1)) / 2.0;
    PowerResult {
        throughput_mbps: tput,
        rtt_ms,
        power: tput / (rtt_ms / 1000.0).max(1e-6),
    }
}

/// The PCC configuration used for interactive flows in Fig. 17.
pub fn pcc_interactive() -> Protocol {
    Protocol::Pcc(
        PccConfig::paper().with_rtt_hint(POWER_RTT),
        UtilityKind::LatencySensitive,
    )
}

/// §4.4.2: one loss-resilient PCC flow (or a TCP baseline) on a 100 Mbps /
/// 30 ms FQ path with extreme random loss. Returns the achieved fraction
/// of the lossy-link optimum `C·(1−loss)`.
pub fn run_high_loss(protocol: Protocol, loss: f64, duration: SimDuration, seed: u64) -> f64 {
    let setup = LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000)
        .with_loss(loss)
        .with_queue(QueueKind::Fq);
    let horizon = SimTime::ZERO + duration;
    let r = run_dumbbell(
        setup,
        vec![FlowPlan::new(protocol, SimDuration::from_millis(30))],
        horizon,
        seed,
    );
    let achieved = r.throughput_in(0, SimTime::ZERO + duration.mul_f64(0.25), horizon);
    let optimal = 100.0 * (1.0 - loss);
    achieved / optimal
}

/// The PCC configuration used for §4.4.2 (loss-resilient utility).
pub fn pcc_loss_resilient() -> Protocol {
    Protocol::Pcc(
        PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)),
        UtilityKind::LossResilient,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_power_needs_codel() {
        // Fig. 17's left half: TCP power under CoDel+FQ far exceeds TCP
        // power under Bufferbloat+FQ.
        let dur = SimDuration::from_secs(20);
        let codel = run_power(Protocol::Tcp("cubic"), QueueKind::FqCodel, dur, 1);
        let bloat = run_power(Protocol::Tcp("cubic"), QueueKind::Bufferbloat, dur, 1);
        assert!(
            codel.power > 3.0 * bloat.power,
            "CoDel rescues TCP: {:.0} vs {:.0}",
            codel.power,
            bloat.power
        );
    }

    #[test]
    fn pcc_power_agnostic_to_aqm() {
        // Fig. 17's right half: PCC+latency-utility gets similar power
        // under CoDel and Bufferbloat — CoDel has nothing to do.
        let dur = SimDuration::from_secs(20);
        let codel = run_power(pcc_interactive(), QueueKind::FqCodel, dur, 2);
        let bloat = run_power(pcc_interactive(), QueueKind::Bufferbloat, dur, 2);
        let ratio = codel.power / bloat.power.max(1e-9);
        assert!(
            (0.5..2.0).contains(&ratio),
            "PCC power ≈ equal: codel {:.0} vs bloat {:.0}",
            codel.power,
            bloat.power
        );
        // And PCC under bufferbloat beats TCP under bufferbloat.
        let tcp_bloat = run_power(Protocol::Tcp("cubic"), QueueKind::Bufferbloat, dur, 2);
        assert!(bloat.power > tcp_bloat.power, "PCC keeps queues empty");
    }

    #[test]
    fn loss_resilient_survives_extreme_loss() {
        // §4.4.2 shape at 30% loss: loss-resilient PCC ≫ CUBIC.
        let dur = SimDuration::from_secs(25);
        let pcc = run_high_loss(pcc_loss_resilient(), 0.3, dur, 3);
        let cubic = run_high_loss(Protocol::Tcp("cubic"), 0.3, dur, 3);
        assert!(pcc > 0.6, "PCC fraction of optimum: {pcc:.2}");
        assert!(pcc > 10.0 * cubic, "CUBIC dead: {cubic:.4}");
    }
}
