//! Figs. 4–5 — the "big data transfer in the wild" population (§4.1.1).
//!
//! The paper measures 510 sender–receiver pairs across PlanetLab/GENI with
//! BDPs from 14.3 KB to 18 MB. We synthesize a path population spanning the
//! same ranges: log-uniform bandwidth and RTT (clamped to the paper's BDP
//! envelope), a heavy-tailed sprinkle of random loss (old routers, failing
//! wires — §1), and widely varying buffer depths (from severely
//! under-buffered gateways to bufferbloat). Each protocol runs alone on
//! each path; Fig. 5 is the CDF of per-path throughput ratios vs PCC.

use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::protocol::Protocol;
use crate::setup::{run_single, LinkSetup};

/// One synthesized wide-area path.
#[derive(Clone, Copy, Debug)]
pub struct InternetPath {
    /// Bottleneck rate, bits/sec.
    pub rate_bps: f64,
    /// Round-trip time.
    pub rtt: SimDuration,
    /// Bottleneck buffer, bytes.
    pub buffer_bytes: u64,
    /// Random loss probability.
    pub loss: f64,
}

impl InternetPath {
    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> f64 {
        self.rate_bps * self.rtt.as_secs_f64() / 8.0
    }

    /// The [`LinkSetup`] for this path.
    pub fn setup(&self) -> LinkSetup {
        LinkSetup::new(self.rate_bps, self.rtt, self.buffer_bytes).with_loss(self.loss)
    }
}

fn log_uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    (rng.range_f64(lo.ln(), hi.ln())).exp()
}

/// Draw `n` paths spanning the paper's population (BDP 14.3 KB – 18 MB).
pub fn sample_paths(n: usize, seed: u64) -> Vec<InternetPath> {
    let mut rng = SimRng::new(seed);
    let mut paths = Vec::with_capacity(n);
    while paths.len() < n {
        let rate_bps = log_uniform(&mut rng, 2e6, 600e6);
        let rtt = SimDuration::from_secs_f64(log_uniform(&mut rng, 0.010, 0.400));
        let bdp = rate_bps * rtt.as_secs_f64() / 8.0;
        // Keep within the paper's measured envelope.
        if !(14_300.0..=18_000_000.0).contains(&bdp) {
            continue;
        }
        // Half the paths see some random loss (old infrastructure,
        // wireless segments); the other half are clean.
        let loss = if rng.chance(0.5) {
            log_uniform(&mut rng, 0.0002, 0.02)
        } else {
            0.0
        };
        // Buffers from 2% of BDP (under-buffered gateways, rate shapers)
        // to 2×BDP (bufferbloat), floored at a few packets.
        let buffer_bytes = (log_uniform(&mut rng, 0.02, 2.0) * bdp).max(4_500.0) as u64;
        paths.push(InternetPath {
            rate_bps,
            rtt,
            buffer_bytes,
            loss,
        });
    }
    paths
}

/// Throughput (Mbit/s) of one protocol alone on one path.
pub fn path_throughput(
    protocol: Protocol,
    path: &InternetPath,
    duration: SimDuration,
    seed: u64,
) -> f64 {
    let r = run_single(protocol, path.setup(), duration, seed);
    let horizon = SimTime::ZERO + duration;
    r.throughput_in(0, SimTime::ZERO + duration.mul_f64(0.15), horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_spans_paper_envelope() {
        let paths = sample_paths(200, 77);
        assert_eq!(paths.len(), 200);
        let bdps: Vec<f64> = paths.iter().map(|p| p.bdp_bytes()).collect();
        let min = bdps.iter().copied().fold(f64::MAX, f64::min);
        let max = bdps.iter().copied().fold(f64::MIN, f64::max);
        assert!(min >= 14_300.0, "floor respected: {min}");
        assert!(max <= 18_000_000.0, "cap respected: {max}");
        assert!(max / min > 50.0, "population is diverse");
        let lossy = paths.iter().filter(|p| p.loss > 0.0).count();
        assert!((60..140).contains(&lossy), "≈half lossy: {lossy}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_paths(50, 5);
        let b = sample_paths(50, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rate_bps.to_bits(), y.rate_bps.to_bits());
        }
    }

    #[test]
    fn pcc_beats_cubic_on_a_lossy_high_bdp_path() {
        let path = InternetPath {
            rate_bps: 100e6,
            rtt: SimDuration::from_millis(120),
            buffer_bytes: 60_000, // ~4% BDP: under-buffered
            loss: 0.004,
        };
        let dur = SimDuration::from_secs(15);
        let pcc = path_throughput(
            Protocol::pcc_default(SimDuration::from_millis(120)),
            &path,
            dur,
            1,
        );
        let cubic = path_throughput(Protocol::Tcp("cubic"), &path, dur, 1);
        assert!(
            pcc > 5.0 * cubic,
            "the wild favors PCC: {pcc:.1} vs {cubic:.1} Mbps"
        );
    }
}
