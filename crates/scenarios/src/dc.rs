//! Datacenter scenario family on the topology subsystem.
//!
//! Three canonical workloads on multi-hop Clos fabrics, the regimes where
//! congestion-control behavior diverges hardest from the paper's dumbbell
//! results ("Micro Congestion Control" in PAPERS.md):
//!
//! * [`run_rack_incast`] — many senders across a fat-tree converge on one
//!   host; the queue builds at the receiver's ToR **down-link**, the
//!   classic incast hotspot.
//! * [`run_ft_permutation`] — cross-pod permutation traffic on a fat-tree:
//!   every host sends to the host half the fabric away, so every flow
//!   crosses the core and exercises ECMP spreading.
//! * [`run_ls_mix`] — an elephant/mouse mix on an oversubscribed
//!   leaf-spine fabric, where the contended spine uplinks shape tail FCT.
//!
//! Every run yields per-path flow completion times (p50/p99 via
//! [`dc_stats`]) and per-link utilization ([`pcc_simnet::topo::link_usage`]).
//! All randomness is seed-derived, so runs are bit-deterministic and safe
//! to fan out on the parallel experiment runner.

use pcc_simnet::prelude::*;
use pcc_simnet::topo::{ecmp_key, fat_tree, leaf_spine, link_usage, DcLinkSpec, LinkUse, Topology};
use pcc_transport::{FlowSize, SackReceiver};

use crate::protocol::Protocol;

/// Host (and full-bisection fabric) port speed.
pub const DC_HOST_RATE_BPS: f64 = 1e9;
/// Per-hop one-way propagation delay.
pub const DC_HOP_DELAY: SimDuration = SimDuration::from_micros(20);
/// Drop-tail buffer per port (same shallow-buffer regime as Fig. 10).
pub const DC_BUFFER_BYTES: u64 = 256_000;
/// Horizon: generous even for an RTO-collapsed workload.
pub const DC_HORIZON: SimTime = SimTime::from_secs(30);

/// The default datacenter link class.
pub fn dc_link() -> DcLinkSpec {
    DcLinkSpec::new(DC_HOST_RATE_BPS, DC_HOP_DELAY, DC_BUFFER_BYTES)
}

/// One flow of a datacenter workload: host indices into the fabric's host
/// list plus a transfer size.
#[derive(Clone, Copy, Debug)]
pub struct DcFlow {
    /// Sending host index.
    pub src: usize,
    /// Receiving host index.
    pub dst: usize,
    /// Transfer size in bytes.
    pub size_bytes: u64,
}

/// A completed datacenter run: the simulator report, the flows in workload
/// order, and per-edge utilization.
pub struct DcRun {
    /// Full simulator report.
    pub report: SimReport,
    /// Flow ids, in [`DcFlow`] order.
    pub flows: Vec<FlowId>,
    /// Per-rated-edge utilization and queue counters, in edge order.
    pub links: Vec<LinkUse>,
}

/// Route `flows` over an (uninstalled) fabric and run until `horizon`.
///
/// Each flow's path comes from the fabric's ECMP routing keyed by
/// [`ecmp_key`]`(seed, flow index)`; its RTT hint for the protocol is the
/// hop count times `2 × `[`DC_HOP_DELAY`]. All flows start at t=0
/// (synchronized, the hardest case for shallow buffers).
pub fn run_dc(
    mut topo: Topology,
    hosts: &[NodeId],
    flows: &[DcFlow],
    mk_protocol: &dyn Fn(SimDuration) -> Protocol,
    horizon: SimTime,
    seed: u64,
) -> DcRun {
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: SimDuration::from_millis(100),
        seed,
    });
    topo.install(&mut net);
    let mut ids = Vec::with_capacity(flows.len());
    for (i, f) in flows.iter().enumerate() {
        let path = topo.flow_path(hosts[f.src], hosts[f.dst], ecmp_key(seed, i as u64));
        let rtt_hint = DC_HOP_DELAY * (path.fwd.len() + path.rev.len()) as u64;
        let sender = mk_protocol(rtt_hint)
            .build_sender_hinted(FlowSize::Bytes(f.size_bytes), 1500, rtt_hint)
            .unwrap_or_else(|e| panic!("dc workload references an unknown algorithm: {e}"));
        ids.push(net.add_flow(FlowSpec {
            sender,
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        }));
    }
    let report = net.build().run_until(horizon);
    // Utilization over the busy period (last completion), not the full
    // horizon — short workloads would otherwise dilute every link toward
    // zero. Unfinished flows stretch the window to the whole run.
    let until = if report.flows.iter().all(|f| f.completed_at.is_some()) {
        report
            .flows
            .iter()
            .filter_map(|f| f.completed_at)
            .max()
            .unwrap_or(report.ended_at)
    } else {
        report.ended_at
    };
    let links = link_usage(&topo, &report, until);
    DcRun {
        report,
        flows: ids,
        links,
    }
}

/// Summary statistics of one datacenter run.
#[derive(Clone, Copy, Debug)]
pub struct DcStats {
    /// Flows in the workload.
    pub total: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Median flow completion time, ms (incomplete flows count as the
    /// horizon — strongly penalized, as in Fig. 10).
    pub fct_p50_ms: f64,
    /// 99th-percentile flow completion time, ms (same penalty).
    pub fct_p99_ms: f64,
    /// Aggregate goodput, Mbit/s: total workload bits over the slowest
    /// completion (or the horizon when any flow is unfinished).
    pub goodput_mbps: f64,
    /// Highest per-link utilization across rated edges.
    pub max_link_util: f64,
    /// Largest peak queue backlog across rated edges, bytes.
    pub max_queue_bytes: u64,
}

/// Reduce a [`DcRun`] to [`DcStats`].
pub fn dc_stats(run: &DcRun, flows: &[DcFlow], horizon: SimTime) -> DcStats {
    let mut fcts_ms = Vec::with_capacity(flows.len());
    let mut completed = 0;
    let mut max_fct = SimDuration::ZERO;
    for &id in &run.flows {
        match run.report.flows[id.index()].fct() {
            Some(fct) => {
                completed += 1;
                max_fct = max_fct.max(fct);
                fcts_ms.push(fct.as_millis_f64());
            }
            None => fcts_ms.push(horizon.as_secs_f64() * 1e3),
        }
    }
    let elapsed = if completed == flows.len() {
        max_fct.as_secs_f64()
    } else {
        horizon.as_secs_f64()
    };
    let total_bits: f64 = flows.iter().map(|f| f.size_bytes as f64 * 8.0).sum();
    DcStats {
        total: flows.len(),
        completed,
        fct_p50_ms: percentile(&fcts_ms, 50.0),
        fct_p99_ms: percentile(&fcts_ms, 99.0),
        goodput_mbps: total_bits / elapsed.max(f64::MIN_POSITIVE) / 1e6,
        max_link_util: run.links.iter().map(|l| l.utilization).fold(0.0, f64::max),
        max_queue_bytes: run
            .links
            .iter()
            .map(|l| l.queue.max_backlog_bytes)
            .max()
            .unwrap_or(0),
    }
}

/// Outcome of a rack-scale incast round.
pub struct RackIncast {
    /// Workload summary.
    pub stats: DcStats,
    /// Utilization/queue counters of the receiver's ToR down-link — the
    /// incast hotspot.
    pub down_link: LinkUse,
    /// The full run, for deeper inspection.
    pub run: DcRun,
}

/// Rack-scale incast on a `k`-ary fat-tree: `n_senders` hosts (everything
/// but the receiver, in host order) each push `block_bytes` to host 0,
/// synchronized. The receiver's ToR down-link is the bottleneck.
pub fn run_rack_incast(
    k: usize,
    mk_protocol: &dyn Fn(SimDuration) -> Protocol,
    n_senders: usize,
    block_bytes: u64,
    seed: u64,
) -> RackIncast {
    let ft = fat_tree(k, dc_link(), dc_link());
    assert!(
        n_senders < ft.hosts.len(),
        "fat-tree k={k} has only {} hosts ({} possible senders)",
        ft.hosts.len(),
        ft.hosts.len() - 1
    );
    let flows: Vec<DcFlow> = (1..=n_senders)
        .map(|src| DcFlow {
            src,
            dst: 0,
            size_bytes: block_bytes,
        })
        .collect();
    let down_edge = ft.down_edge(0);
    let hosts = ft.hosts;
    let run = run_dc(ft.topo, &hosts, &flows, mk_protocol, DC_HORIZON, seed);
    let stats = dc_stats(&run, &flows, DC_HORIZON);
    let down_link = *run
        .links
        .iter()
        .find(|l| l.edge == down_edge)
        .expect("host down-link is rated");
    RackIncast {
        stats,
        down_link,
        run,
    }
}

/// Cross-pod permutation on a `k`-ary fat-tree: every host sends
/// `flow_bytes` to the host half the fabric away, so all `k³/4` flows
/// cross the core simultaneously and ECMP spreads them over the spine.
pub fn run_ft_permutation(
    k: usize,
    mk_protocol: &dyn Fn(SimDuration) -> Protocol,
    flow_bytes: u64,
    seed: u64,
) -> (DcStats, DcRun) {
    let ft = fat_tree(k, dc_link(), dc_link());
    let n = ft.hosts.len();
    let flows: Vec<DcFlow> = (0..n)
        .map(|src| DcFlow {
            src,
            dst: (src + n / 2) % n,
            size_bytes: flow_bytes,
        })
        .collect();
    let hosts = ft.hosts;
    let run = run_dc(ft.topo, &hosts, &flows, mk_protocol, DC_HORIZON, seed);
    let stats = dc_stats(&run, &flows, DC_HORIZON);
    (stats, run)
}

/// Shape of the leaf-spine fabric [`run_ls_mix`] builds.
#[derive(Clone, Copy, Debug)]
pub struct LsFabric {
    /// Number of leaf (top-of-rack) switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Uplink oversubscription ratio (1.0 = full bisection).
    pub oversubscription: f64,
}

/// Elephant/mouse mix on an oversubscribed leaf-spine fabric: a
/// one-leaf-over permutation where even hosts send `elephant_bytes` and
/// odd hosts send `mouse_bytes`, contending for uplinks sized by the
/// fabric's oversubscription. Returns the overall stats plus the peak
/// **uplink** (leaf→spine) utilization, the contended tier.
pub fn run_ls_mix(
    fabric: LsFabric,
    mk_protocol: &dyn Fn(SimDuration) -> Protocol,
    elephant_bytes: u64,
    mouse_bytes: u64,
    seed: u64,
) -> (DcStats, f64, DcRun) {
    let ls = leaf_spine(
        fabric.leaves,
        fabric.spines,
        fabric.hosts_per_leaf,
        dc_link(),
        fabric.oversubscription,
    );
    let n = ls.hosts.len();
    let flows: Vec<DcFlow> = (0..n)
        .map(|src| DcFlow {
            src,
            dst: (src + fabric.hosts_per_leaf) % n,
            size_bytes: if src % 2 == 0 {
                elephant_bytes
            } else {
                mouse_bytes
            },
        })
        .collect();
    // Host edges come first; everything after is a leaf↔spine uplink.
    let first_uplink = 2 * n;
    let hosts = ls.hosts;
    let run = run_dc(ls.topo, &hosts, &flows, mk_protocol, DC_HORIZON, seed);
    let stats = dc_stats(&run, &flows, DC_HORIZON);
    let uplink_util = run
        .links
        .iter()
        .filter(|l| l.edge.index() >= first_uplink)
        .map(|l| l.utilization)
        .fold(0.0, f64::max);
    (stats, uplink_util, run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_incast_builds_queue_at_tor_downlink() {
        // 12-to-1 over a k=4 fat-tree: 12 × 256 KB bursts into one 1 Gbps
        // down-link with a 256 KB buffer. The hotspot must be the
        // receiver's down-link, not some fabric link.
        let r = run_rack_incast(4, &|_| Protocol::Tcp("cubic"), 12, 256 * 1024, 5);
        assert!(
            r.down_link.queue.max_backlog_bytes > DC_BUFFER_BYTES / 2,
            "down-link backlog {} should approach the {} B buffer",
            r.down_link.queue.max_backlog_bytes,
            DC_BUFFER_BYTES
        );
        let other_max = r
            .run
            .links
            .iter()
            .filter(|l| l.edge != r.down_link.edge)
            .map(|l| l.queue.max_backlog_bytes)
            .max()
            .unwrap_or(0);
        assert!(
            r.down_link.queue.max_backlog_bytes >= other_max,
            "hotspot is the ToR down-link: {} vs {}",
            r.down_link.queue.max_backlog_bytes,
            other_max
        );
        assert!(r.down_link.queue.dropped() > 0, "incast overflows the port");
    }

    #[test]
    fn pcc_at_least_matches_cubic_under_rack_incast() {
        // The paper's Fig. 10 ordering, on the multi-hop fabric: PCC's
        // loss resilience keeps goodput where CUBIC's synchronized
        // window collapses cost whole RTOs.
        let pcc = run_rack_incast(4, &|rtt| Protocol::pcc_default(rtt), 12, 256 * 1024, 5);
        let cubic = run_rack_incast(4, &|_| Protocol::Tcp("cubic"), 12, 256 * 1024, 5);
        assert_eq!(pcc.stats.completed, 12, "all PCC flows complete");
        assert!(
            pcc.stats.goodput_mbps >= cubic.stats.goodput_mbps,
            "PCC {} Mbps ≥ CUBIC {} Mbps",
            pcc.stats.goodput_mbps,
            cubic.stats.goodput_mbps
        );
    }

    #[test]
    fn permutation_crosses_the_core_and_is_deterministic() {
        let (stats, run) = run_ft_permutation(4, &|rtt| Protocol::pcc_default(rtt), 64 * 1024, 9);
        assert_eq!(stats.total, 16);
        assert!(stats.completed > 0);
        // Cross-pod traffic must put bytes on agg↔core edges (the last
        // block of edges built by fat_tree).
        let core_bytes: u64 = run
            .links
            .iter()
            .rev()
            .take(32)
            .map(|l| l.queue.enqueued)
            .sum();
        assert!(core_bytes > 0, "permutation traffic exercises the core");
        let (stats2, run2) = run_ft_permutation(4, &|rtt| Protocol::pcc_default(rtt), 64 * 1024, 9);
        assert_eq!(run.report.events_processed, run2.report.events_processed);
        assert_eq!(stats.fct_p99_ms.to_bits(), stats2.fct_p99_ms.to_bits());
        let _ = run2;
    }

    #[test]
    fn oversubscribed_uplinks_are_the_contended_tier() {
        let (stats, uplink_util, _run) = run_ls_mix(
            LsFabric {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 4,
                oversubscription: 4.0,
            },
            &|rtt| Protocol::pcc_default(rtt),
            512 * 1024,
            32 * 1024,
            11,
        );
        assert_eq!(stats.total, 16);
        assert!(
            uplink_util > 0.0,
            "cross-leaf permutation loads the uplinks"
        );
    }
}
