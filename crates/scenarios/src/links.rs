//! Fixed-path scenarios: satellite (Fig. 6), lossy links (Fig. 7), shallow
//! buffers (Fig. 9), and inter-data-center paths (Table 1).

use pcc_simnet::time::SimDuration;

use crate::protocol::Protocol;
use crate::setup::{run_single, LinkSetup, ScenarioResult};

/// Fig. 6 parameters: the WINDS satellite link — 800 ms RTT, 42 Mbps,
/// 0.74% random loss (§4.1.3).
pub const SATELLITE_RTT: SimDuration = SimDuration::from_millis(800);
/// Satellite capacity.
pub const SATELLITE_RATE_BPS: f64 = 42e6;
/// Satellite random loss.
pub const SATELLITE_LOSS: f64 = 0.0074;

/// The satellite path with a given bottleneck buffer (Fig. 6 sweeps
/// 1.5 KB – 1 MB).
pub fn satellite_setup(buffer_bytes: u64) -> LinkSetup {
    LinkSetup::new(SATELLITE_RATE_BPS, SATELLITE_RTT, buffer_bytes)
        .with_loss(SATELLITE_LOSS)
        .with_ack_loss(SATELLITE_LOSS)
}

/// Run one protocol on the satellite link (Fig. 6 data point).
pub fn run_satellite(
    protocol: Protocol,
    buffer_bytes: u64,
    duration: SimDuration,
    seed: u64,
) -> ScenarioResult {
    run_single(protocol, satellite_setup(buffer_bytes), duration, seed)
}

/// Fig. 7 parameters: 100 Mbps, 30 ms RTT, loss swept 0–6% on both
/// directions (§4.1.4).
pub fn lossy_setup(loss: f64) -> LinkSetup {
    LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000)
        .with_loss(loss)
        .with_ack_loss(loss)
}

/// Run one protocol on the lossy link (Fig. 7 data point).
pub fn run_lossy(
    protocol: Protocol,
    loss: f64,
    duration: SimDuration,
    seed: u64,
) -> ScenarioResult {
    run_single(protocol, lossy_setup(loss), duration, seed)
}

/// Fig. 9 parameters: 100 Mbps, 30 ms RTT, buffer swept 1.5 KB – 375 KB
/// (1 packet to 1×BDP), no random loss (§4.1.6).
pub fn shallow_setup(buffer_bytes: u64) -> LinkSetup {
    LinkSetup::new(100e6, SimDuration::from_millis(30), buffer_bytes)
}

/// Run one protocol against a shallow buffer (Fig. 9 data point).
pub fn run_shallow(
    protocol: Protocol,
    buffer_bytes: u64,
    duration: SimDuration,
    seed: u64,
) -> ScenarioResult {
    run_single(protocol, shallow_setup(buffer_bytes), duration, seed)
}

/// One Table-1 transmission pair: name and measured RTT (ms).
#[derive(Clone, Copy, Debug)]
pub struct InterDcPair {
    /// "Sender → receiver" label from the paper.
    pub name: &'static str,
    /// Path RTT in milliseconds.
    pub rtt_ms: f64,
}

/// The nine GENI site pairs of Table 1.
pub const INTERDC_PAIRS: &[InterDcPair] = &[
    InterDcPair {
        name: "GPO→NYSERNet",
        rtt_ms: 12.1,
    },
    InterDcPair {
        name: "GPO→Missouri",
        rtt_ms: 46.5,
    },
    InterDcPair {
        name: "GPO→Illinois",
        rtt_ms: 35.4,
    },
    InterDcPair {
        name: "NYSERNet→Missouri",
        rtt_ms: 47.4,
    },
    InterDcPair {
        name: "Wisconsin→Illinois",
        rtt_ms: 9.01,
    },
    InterDcPair {
        name: "GPO→Wisc.",
        rtt_ms: 38.0,
    },
    InterDcPair {
        name: "NYSERNet→Wisc.",
        rtt_ms: 38.3,
    },
    InterDcPair {
        name: "Missouri→Wisc.",
        rtt_ms: 20.9,
    },
    InterDcPair {
        name: "NYSERNet→Illinois",
        rtt_ms: 36.1,
    },
];

/// Table 1's reserved bandwidth: 800 Mbps end-to-end.
pub const INTERDC_RATE_BPS: f64 = 800e6;

/// The bandwidth-reserving rate limiter's small buffer (the paper
/// attributes TCP's collapse to it; §4.1.2). 100 KB ≈ 1/12 BDP at 36 ms.
pub const INTERDC_BUFFER_BYTES: u64 = 100_000;

/// The inter-DC path for one Table-1 pair.
pub fn interdc_setup(pair: &InterDcPair) -> LinkSetup {
    LinkSetup::new(
        INTERDC_RATE_BPS,
        SimDuration::from_secs_f64(pair.rtt_ms / 1000.0),
        INTERDC_BUFFER_BYTES,
    )
}

/// Run one protocol on one Table-1 pair.
pub fn run_interdc(
    protocol: Protocol,
    pair: &InterDcPair,
    duration: SimDuration,
    seed: u64,
) -> ScenarioResult {
    run_single(protocol, interdc_setup(pair), duration, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::time::SimTime;

    #[test]
    fn satellite_pcc_beats_hybla_shape() {
        // Scaled-down Fig. 6 check: with a 64 KB buffer, PCC must clearly
        // beat Hybla, which collapses under 0.74% random loss. PCC's
        // starting phase doubles once per MI (~1.6 s at 800 ms RTT), so it
        // needs ~20 s to ramp; measure steady state like the paper's 100 s
        // runs do.
        // The paper highlights the shallow-buffer point: PCC reaches 90%
        // of the satellite capacity with a 7.5 KB (5-packet) bottleneck
        // buffer, where every TCP collapses.
        let dur = SimDuration::from_secs(60);
        let pcc = run_satellite(Protocol::pcc_default(SATELLITE_RTT), 7_500, dur, 1);
        let hybla = run_satellite(Protocol::Tcp("hybla"), 7_500, dur, 1);
        let t_pcc = pcc.throughput_in(0, SimTime::from_secs(30), SimTime::from_secs(60));
        let t_hybla = hybla.throughput_in(0, SimTime::from_secs(30), SimTime::from_secs(60));
        assert!(
            t_pcc > 3.0 * t_hybla,
            "PCC {t_pcc} Mbps must dwarf Hybla {t_hybla} Mbps"
        );
        assert!(t_pcc > 25.0, "PCC near satellite capacity: {t_pcc}");
    }

    #[test]
    fn lossy_pcc_resilient_cubic_collapses() {
        // Fig. 7 shape at 1% loss: PCC near capacity, CUBIC collapsed.
        let dur = SimDuration::from_secs(15);
        let pcc = run_lossy(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            0.01,
            dur,
            2,
        );
        let cubic = run_lossy(Protocol::Tcp("cubic"), 0.01, dur, 2);
        let t_pcc = pcc.throughput_in(0, SimTime::from_secs(5), SimTime::from_secs(15));
        let t_cubic = cubic.throughput_in(0, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!(t_pcc > 70.0, "PCC holds capacity under 1% loss: {t_pcc}");
        assert!(
            t_cubic < t_pcc / 3.0,
            "CUBIC collapses: {t_cubic} vs {t_pcc}"
        );
    }

    #[test]
    fn lossy_bbr_holds_utilization_where_cubic_collapses() {
        // Fig.-7-style point for the model-based hybrid: loss-blind BBR
        // must keep ≥80% of the 100 Mbps bottleneck at 1% random loss —
        // the same conditions that collapse CUBIC — running unmodified on
        // the simulator datapath, resolved purely by registry name.
        let dur = SimDuration::from_secs(15);
        let bbr = run_lossy(Protocol::Named("bbr".into()), 0.01, dur, 4);
        let cubic = run_lossy(Protocol::Tcp("cubic"), 0.01, dur, 4);
        let t_bbr = bbr.throughput_in(0, SimTime::from_secs(5), SimTime::from_secs(15));
        let t_cubic = cubic.throughput_in(0, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!(t_bbr > 80.0, "BBR ≥80% utilization at 1% loss: {t_bbr}");
        assert!(
            t_bbr > 3.0 * t_cubic,
            "CUBIC collapses where BBR holds: {t_cubic} vs {t_bbr}"
        );
    }

    #[test]
    fn shallow_buffer_pcc_efficient() {
        // Fig. 9 shape: with a 9 KB (6-packet) buffer PCC reaches most of
        // capacity while CUBIC can't.
        let dur = SimDuration::from_secs(15);
        let pcc = run_shallow(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            9_000,
            dur,
            3,
        );
        let cubic = run_shallow(Protocol::Tcp("cubic"), 9_000, dur, 3);
        let t_pcc = pcc.throughput_in(0, SimTime::from_secs(5), SimTime::from_secs(15));
        let t_cubic = cubic.throughput_in(0, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!(t_pcc > 60.0, "PCC with 6-packet buffer: {t_pcc} Mbps");
        assert!(t_pcc > 2.0 * t_cubic, "CUBIC starves: {t_cubic} Mbps");
    }

    #[test]
    fn interdc_table_has_nine_pairs() {
        assert_eq!(INTERDC_PAIRS.len(), 9);
        assert!((interdc_setup(&INTERDC_PAIRS[0]).rtt.as_millis_f64() - 12.1).abs() < 1e-9);
    }
}
