//! Fig. 11 — rapidly changing network conditions (§4.1.7).
//!
//! Every `step` seconds the bottleneck's available bandwidth, latency, and
//! loss rate are re-drawn independently and uniformly (10–100 Mbps,
//! 10–100 ms, 0–1%). The paper tracks whether each protocol's *decided
//! sending rate* follows the optimal (available bandwidth) line.
//!
//! The generated environment is materialized as a [`LinkTrace`] — the
//! same substrate the bundled LTE/WiFi/satellite profiles use (see
//! [`crate::vary`]) — so Fig. 11 is just one member of the trace-driven
//! workload family, with a freshly synthesized trace per `env_seed`.

use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_simnet::trace::{LinkTrace, TracePoint};

use crate::protocol::Protocol;
use crate::setup::{run_dumbbell_scheduled, FlowPlan, LinkSetup, ScenarioResult};

/// One epoch of the generated environment.
#[derive(Clone, Copy, Debug)]
pub struct RapidEpoch {
    /// Epoch start.
    pub at: SimTime,
    /// Drawn bandwidth, bits/sec.
    pub rate_bps: f64,
    /// Drawn one-way forward delay.
    pub delay: SimDuration,
    /// Drawn loss rate.
    pub loss: f64,
}

/// The generated environment plus run results.
pub struct RapidResult {
    /// Scenario output (100 ms samples).
    pub inner: ScenarioResult,
    /// The environment's epochs (the "optimal" line of Fig. 11).
    pub epochs: Vec<RapidEpoch>,
    /// The same environment as a replayable trace (delays stored as the
    /// one-way forward component applied to the bottleneck).
    pub trace: LinkTrace,
}

impl RapidResult {
    /// Time-average of the optimal rate `bw·(1−loss)` in Mbit/s.
    pub fn optimal_mbps(&self, horizon: SimTime) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, e) in self.epochs.iter().enumerate() {
            let end = self
                .epochs
                .get(i + 1)
                .map(|n| n.at)
                .unwrap_or(horizon)
                .min(horizon);
            let dur = end.saturating_since(e.at).as_secs_f64();
            acc += e.rate_bps * (1.0 - e.loss) * dur;
        }
        acc / horizon.as_secs_f64() / 1e6
    }

    /// The protocol's average delivered throughput, Mbit/s.
    pub fn achieved_mbps(&self) -> f64 {
        self.inner.throughput_mbps(0)
    }
}

/// Generate the Fig. 11 environment and run one protocol over it.
///
/// Parameters are re-drawn every `step` (paper: 5 s) for `duration`
/// (paper: 500 s). `env_seed` fixes the environment independently of the
/// protocol's own randomness so every protocol faces the same network.
pub fn run_rapid_change(
    protocol: Protocol,
    step: SimDuration,
    duration: SimDuration,
    env_seed: u64,
    seed: u64,
) -> RapidResult {
    let mut env_rng = SimRng::new(env_seed);
    let mut epochs = Vec::new();
    let mut points = Vec::new();
    let mut at = SimTime::ZERO;
    let horizon = SimTime::ZERO + duration;
    // Initial epoch uses the same distribution.
    loop {
        let rate_bps = env_rng.range_f64(10e6, 100e6);
        let delay = SimDuration::from_secs_f64(env_rng.range_f64(0.010, 0.100) / 2.0);
        let loss = env_rng.range_f64(0.0, 0.01);
        epochs.push(RapidEpoch {
            at,
            rate_bps,
            delay: delay * 2,
            loss,
        });
        points.push(TracePoint {
            at: at.saturating_since(SimTime::ZERO),
            rate_bps,
            delay: Some(delay),
            loss: Some(loss),
        });
        at += step;
        if at >= horizon {
            break;
        }
    }
    let trace = LinkTrace::from_points("fig11", points, None)
        .expect("generated points are ordered and positive");
    let first = epochs[0];
    // Base RTT shims carry half the initial delay; the scheduled bottleneck
    // delay (expanded from the trace) carries the varying forward
    // component.
    let setup = LinkSetup::new(first.rate_bps, first.delay, 375_000).with_loss(first.loss);
    let inner = run_dumbbell_scheduled(
        setup,
        vec![FlowPlan::new(protocol, first.delay)],
        horizon,
        seed,
        trace.to_schedule(horizon),
        None,
    );
    RapidResult {
        inner,
        epochs,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_is_deterministic_per_seed() {
        let a = run_rapid_change(
            Protocol::pcc_default(SimDuration::from_millis(50)),
            SimDuration::from_secs(5),
            SimDuration::from_secs(20),
            9,
            1,
        );
        let b = run_rapid_change(
            Protocol::Tcp("cubic"),
            SimDuration::from_secs(5),
            SimDuration::from_secs(20),
            9,
            1,
        );
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.rate_bps.to_bits(), y.rate_bps.to_bits());
            assert_eq!(x.loss.to_bits(), y.loss.to_bits());
        }
    }

    #[test]
    fn epochs_cover_duration() {
        let r = run_rapid_change(
            Protocol::pcc_default(SimDuration::from_millis(50)),
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            11,
            1,
        );
        assert_eq!(r.epochs.len(), 6, "30 s / 5 s steps");
        let opt = r.optimal_mbps(SimTime::from_secs(30));
        assert!((10.0..100.0).contains(&opt), "optimal in range: {opt}");
    }

    #[test]
    fn trace_mirrors_epochs() {
        // Fig. 11's environment now *is* a LinkTrace: the materialized
        // trace must agree with the epoch list sample-for-sample, and
        // its deliverable-capacity average must equal the figure's
        // optimal line.
        let dur = SimDuration::from_secs(20);
        let r = run_rapid_change(
            Protocol::pcc_default(SimDuration::from_millis(50)),
            SimDuration::from_secs(5),
            dur,
            9,
            1,
        );
        assert_eq!(r.trace.points().len(), r.epochs.len());
        for (p, e) in r.trace.points().iter().zip(&r.epochs) {
            assert_eq!(p.rate_bps.to_bits(), e.rate_bps.to_bits());
            assert_eq!(p.delay, Some(e.delay / 2), "trace stores one-way");
            assert_eq!(p.loss.map(f64::to_bits), Some(e.loss.to_bits()));
        }
        let opt = r.optimal_mbps(SimTime::ZERO + dur);
        let avg = r.trace.avg_capacity_mbps(dur);
        assert!((opt - avg).abs() < 1e-9, "optimal {opt} vs trace avg {avg}");
    }

    #[test]
    fn pcc_tracks_better_than_cubic() {
        // Fig. 11 shape, scaled down: PCC's achieved fraction of optimal
        // must exceed CUBIC's.
        let step = SimDuration::from_secs(5);
        let dur = SimDuration::from_secs(60);
        let pcc = run_rapid_change(
            Protocol::pcc_default(SimDuration::from_millis(50)),
            step,
            dur,
            13,
            2,
        );
        let cubic = run_rapid_change(Protocol::Tcp("cubic"), step, dur, 13, 2);
        let opt = pcc.optimal_mbps(SimTime::ZERO + dur);
        let f_pcc = pcc.achieved_mbps() / opt;
        let f_cubic = cubic.achieved_mbps() / opt;
        assert!(
            f_pcc > 1.5 * f_cubic,
            "PCC tracks optimal: {:.2} vs CUBIC {:.2} (optimal {opt:.1} Mbps)",
            f_pcc,
            f_cubic
        );
        assert!(f_pcc > 0.5, "PCC achieves a solid fraction: {f_pcc:.2}");
    }
}
