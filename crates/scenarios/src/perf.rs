//! The shared perf-measurement workload.
//!
//! `pcc-bench --bench micro` (BENCH.json) and the standalone
//! `perf_probe` example quote the same "apples-to-apples" number; both
//! take the scenario list and the timing loop from here so the two can
//! never desynchronize.

use std::time::Instant;

use pcc_simnet::time::SimDuration;

use crate::protocol::Protocol;
use crate::setup::{run_single, LinkSetup};

/// The reference full-simulation scenarios: 5 simulated seconds each of
/// PCC, CUBIC, and BBR alone on the 100 Mbps / 30 ms / 3×BDP dumbbell.
pub fn reference_scenarios() -> Vec<(&'static str, Protocol)> {
    vec![
        (
            "full_sim_5s_pcc_100mbps",
            Protocol::pcc_default(SimDuration::from_millis(30)),
        ),
        ("full_sim_5s_cubic_100mbps", Protocol::Tcp("cubic")),
        ("full_sim_5s_bbr_100mbps", Protocol::Named("bbr".into())),
    ]
}

/// Simulated seconds each reference scenario runs for.
pub const REFERENCE_SIM_SECS: u64 = 5;

/// Time `proto` on the reference dumbbell for [`REFERENCE_SIM_SECS`]
/// simulated seconds: best-of-`runs` wall clock in milliseconds, plus
/// the (deterministic) simulator event count of one run.
pub fn time_reference_scenario(proto: &Protocol, runs: usize) -> (f64, u64) {
    let mut best_ms = f64::MAX;
    let mut events = 0u64;
    for _ in 0..runs.max(1) {
        let proto = proto.clone();
        let t0 = Instant::now();
        let r = run_single(
            proto,
            LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
            SimDuration::from_secs(REFERENCE_SIM_SECS),
            1,
        );
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
        events = r.report.events_processed;
    }
    (best_ms, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_workload_is_deterministic() {
        let (_, events_a) = time_reference_scenario(&Protocol::Tcp("cubic"), 1);
        let (_, events_b) = time_reference_scenario(&Protocol::Tcp("cubic"), 1);
        assert_eq!(events_a, events_b, "same seed, same event count");
        assert!(events_a > 0);
        assert_eq!(reference_scenarios().len(), 3);
    }
}
