//! The shared perf-measurement workload.
//!
//! `pcc-bench --bench micro` (BENCH.json) and the standalone
//! `perf_probe` example quote the same "apples-to-apples" number; both
//! take the scenario list and the timing loop from here so the two can
//! never desynchronize.

use std::time::Instant;

use pcc_simnet::shaper::ShaperConfig;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_simnet::trace::LinkTrace;
use pcc_transport::ReportMode;

use crate::dc::run_rack_incast;
use crate::protocol::Protocol;
use crate::setup::{run_dumbbell, run_single, FlowPlan, LinkSetup};
use crate::vary::{run_trace, trace_rtt};
use crate::workload::{churn_benchmark_config, run_churn};

/// The reference full-simulation scenarios: 5 simulated seconds each of
/// PCC, CUBIC, and BBR alone on the 100 Mbps / 30 ms / 3×BDP dumbbell.
pub fn reference_scenarios() -> Vec<(&'static str, Protocol)> {
    vec![
        (
            "full_sim_5s_pcc_100mbps",
            Protocol::pcc_default(SimDuration::from_millis(30)),
        ),
        ("full_sim_5s_cubic_100mbps", Protocol::Tcp("cubic")),
        ("full_sim_5s_bbr_100mbps", Protocol::Named("bbr".into())),
    ]
}

/// Simulated seconds each reference scenario runs for.
pub const REFERENCE_SIM_SECS: u64 = 5;

/// The trace-driven reference scenario: PCC over the bundled LTE-like
/// trace (schedule expansion + per-step link updates on the hot path),
/// timed exactly like the dumbbell scenarios.
pub fn trace_reference_scenario() -> (&'static str, Protocol) {
    let trace = LinkTrace::builtin("lte").expect("bundled");
    (
        "full_sim_5s_pcc_lte_trace",
        Protocol::pcc_default(trace_rtt(&trace)),
    )
}

/// Time `proto` over the bundled LTE trace for [`REFERENCE_SIM_SECS`]
/// simulated seconds: best-of-`runs` wall clock in milliseconds plus the
/// deterministic event count. Companion of [`time_reference_scenario`]
/// for the trace-driven workload.
pub fn time_trace_scenario(proto: &Protocol, runs: usize) -> (f64, u64) {
    let trace = LinkTrace::builtin("lte").expect("bundled");
    best_of(runs, || {
        run_trace(
            proto.clone(),
            &trace,
            SimDuration::from_secs(REFERENCE_SIM_SECS),
            1,
            ShaperConfig::default(),
        )
        .report
        .events_processed
    })
}

/// Time the multi-hop reference workload: an 8-to-1 rack-scale incast of
/// PCC on a k=4 fat-tree (the topology subsystem's routing, multi-hop
/// paths, and ToR queueing on the hot path). Returns `(best_wall_ms,
/// events, sim_secs)`; the simulated seconds are the (deterministic)
/// slowest flow completion, since the workload ends when the last block
/// lands rather than at a fixed horizon.
pub fn time_dc_incast_scenario(runs: usize) -> (f64, u64, f64) {
    let mut sim_secs = 0.0;
    let (wall_ms, events) = best_of(runs, || {
        let r = run_rack_incast(4, &|rtt| Protocol::pcc_default(rtt), 8, 256 * 1024, 1);
        sim_secs = r
            .run
            .report
            .flows
            .iter()
            .filter_map(|f| f.fct())
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max);
        r.run.report.events_processed
    });
    (wall_ms, events, sim_secs)
}

/// Flows the `churn_100k` benchmark scenario admits.
pub const CHURN_BENCH_FLOWS: u64 = 100_000;

/// Time the churn-heavy regime: [`CHURN_BENCH_FLOWS`] cache-follower
/// flows at 80% load through the recycling slot arena (the workload
/// generator, per-timestamp arrival batching, and slot recycling all on
/// the hot path). Returns `(best_wall_ms, events, sim_secs)`; the
/// simulated seconds are the (deterministic) horizon of the run. The
/// flow count is parameterized so tests can time a scaled-down churn
/// without waiting on the full benchmark regime.
pub fn time_churn_scenario(flows: u64, runs: usize) -> (f64, u64, f64) {
    let mut sim_secs = 0.0;
    let (wall_ms, events) = best_of(runs, || {
        let r = run_churn(churn_benchmark_config(flows, 1));
        assert_eq!(
            r.churn.arrivals,
            r.churn.completions + r.churn.stalls + r.churn.live_at_end,
            "churn conservation holds under benchmarking"
        );
        sim_secs = r.horizon_secs;
        r.events_processed
    });
    (wall_ms, events, sim_secs)
}

/// Time the complete reference workload — the three dumbbell scenarios,
/// the trace-driven one, the fat-tree incast, and the 100k-flow churn
/// regime — returning `(name, best_wall_ms, events, sim_secs)` per
/// scenario. The single list both `pcc-bench --bench micro` and the
/// `perf_probe` example iterate, so the two tools can never measure
/// different workloads.
pub fn time_all_scenarios(runs: usize) -> Vec<(&'static str, f64, u64, f64)> {
    let mut timed: Vec<(&'static str, f64, u64, f64)> = reference_scenarios()
        .into_iter()
        .map(|(name, proto)| {
            let (wall_ms, events) = time_reference_scenario(&proto, runs);
            (name, wall_ms, events, REFERENCE_SIM_SECS as f64)
        })
        .collect();
    let (trace_name, trace_proto) = trace_reference_scenario();
    let (wall_ms, events) = time_trace_scenario(&trace_proto, runs);
    timed.push((trace_name, wall_ms, events, REFERENCE_SIM_SECS as f64));
    let (wall_ms, events, sim_secs) = time_dc_incast_scenario(runs);
    timed.push(("dc_incast_ft4_pcc_8to1", wall_ms, events, sim_secs));
    let (wall_ms, events, sim_secs) = time_churn_scenario(CHURN_BENCH_FLOWS, runs);
    timed.push(("churn_100k", wall_ms, events, sim_secs));
    timed
}

/// Best-of-`runs` wall clock in milliseconds of `workload`, plus the
/// (deterministic) simulator event count it returns. The one timing
/// loop behind every reference number, so the methodology can never
/// diverge between scenarios.
fn best_of(runs: usize, mut workload: impl FnMut() -> u64) -> (f64, u64) {
    let mut best_ms = f64::MAX;
    let mut events = 0u64;
    for _ in 0..runs.max(1) {
        // lint: allow(L002) — this IS the benchmark clock: perf harness measures wall time of deterministic runs; the measured simulation never sees it
        let t0 = Instant::now();
        events = workload();
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
    }
    (best_ms, events)
}

/// Time `proto` on the reference dumbbell for [`REFERENCE_SIM_SECS`]
/// simulated seconds: best-of-`runs` wall clock in milliseconds, plus
/// the (deterministic) simulator event count of one run.
pub fn time_reference_scenario(proto: &Protocol, runs: usize) -> (f64, u64) {
    best_of(runs, || {
        run_single(
            proto.clone(),
            LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
            SimDuration::from_secs(REFERENCE_SIM_SECS),
            1,
        )
        .report
        .events_processed
    })
}

/// The off-path twin of [`time_reference_scenario`]: identical dumbbell,
/// identical protocol, but the engine withholds per-ACK callbacks and
/// feeds the algorithm 1-RTT batched reports. Benched side by side with
/// the per-ACK number, the pair quotes the engine-cost delta of the
/// off-path control plane on a full simulation.
pub fn time_batched_scenario(proto: &Protocol, runs: usize) -> (f64, u64) {
    let rtt = SimDuration::from_millis(30);
    best_of(runs, || {
        run_dumbbell(
            LinkSetup::new(100e6, rtt, 375_000),
            vec![FlowPlan::new(proto.clone(), rtt).reporting(ReportMode::batched_rtt())],
            SimTime::from_secs(REFERENCE_SIM_SECS),
            1,
        )
        .report
        .events_processed
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_incast_scenario_is_deterministic() {
        let (_, events_a, sim_a) = time_dc_incast_scenario(1);
        let (_, events_b, sim_b) = time_dc_incast_scenario(1);
        assert_eq!(events_a, events_b, "same seed, same event count");
        assert_eq!(sim_a.to_bits(), sim_b.to_bits(), "same completion time");
        assert!(sim_a > 0.0, "all incast flows complete");
    }

    #[test]
    fn churn_scenario_is_deterministic_at_small_n() {
        let (_, events_a, sim_a) = time_churn_scenario(150, 1);
        let (_, events_b, sim_b) = time_churn_scenario(150, 1);
        assert_eq!(events_a, events_b, "same seed, same event count");
        assert_eq!(sim_a.to_bits(), sim_b.to_bits(), "same horizon");
        assert!(events_a > 0);
    }

    #[test]
    fn reference_workload_is_deterministic() {
        let (_, events_a) = time_reference_scenario(&Protocol::Tcp("cubic"), 1);
        let (_, events_b) = time_reference_scenario(&Protocol::Tcp("cubic"), 1);
        assert_eq!(events_a, events_b, "same seed, same event count");
        assert!(events_a > 0);
        assert_eq!(reference_scenarios().len(), 3);
    }
}
