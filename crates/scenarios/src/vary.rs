//! Trace-driven time-varying link workloads — the "consistency" workload
//! family.
//!
//! The paper's §4.3 argues PCC's edge is *consistent* performance when
//! conditions change faster than a hardwired TCP mapping can track. Fig.
//! 11 probes that with one synthetic step-function environment; this
//! module generalizes it to replayable [`LinkTrace`]s (bundled LTE-like,
//! WiFi-like and satellite-handoff profiles, or any trace file), with
//! optional jitter/reordering/policing from the [`ShaperConfig`] stage.
//!
//! [`run_trace`] plays one protocol over one trace; the
//! `pcc-experiments vary` command sweeps every registered algorithm spec
//! over every bundled trace through this entry point.

use pcc_simnet::prelude::*;
use pcc_simnet::trace::LinkTrace;
use pcc_transport::{FlowSize, SackReceiver};

use crate::protocol::Protocol;

/// Result of one protocol run over one trace.
pub struct TraceRun {
    /// Full simulator report (100 ms samples).
    pub report: SimReport,
    /// The flow under test.
    pub flow: FlowId,
    /// The traced bottleneck link.
    pub bottleneck: LinkId,
    /// Time-average deliverable capacity `rate · (1 − loss)` over the
    /// run, Mbit/s — the optimal line.
    pub avg_capacity_mbps: f64,
    /// How long the run was.
    pub duration: SimDuration,
}

impl TraceRun {
    /// The protocol's whole-run average delivered throughput, Mbit/s.
    pub fn achieved_mbps(&self) -> f64 {
        self.report.flow_throughput_mbps(self.flow)
    }

    /// Fraction of the deliverable capacity achieved (`0..≈1`).
    pub fn utilization(&self) -> f64 {
        let cap = self.avg_capacity_mbps;
        if cap <= 0.0 {
            return 0.0;
        }
        self.achieved_mbps() / cap
    }

    /// Sender-observed loss rate.
    pub fn loss_rate(&self) -> f64 {
        self.report.flows[self.flow.index()].loss_rate()
    }

    /// Mean RTT in milliseconds.
    pub fn mean_rtt_ms(&self) -> f64 {
        self.report.flows[self.flow.index()]
            .mean_rtt()
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN)
    }
}

/// The buffer the traced bottleneck gets: 1.5× the bandwidth-delay
/// product of the trace's *average* capacity at the trace's initial RTT,
/// floored at 64 KB. Sizing from the average (not the peak) keeps deep
/// fades from hiding behind an over-provisioned queue.
pub fn trace_buffer_bytes(trace: &LinkTrace, duration: SimDuration) -> u64 {
    let avg_bps = trace.avg_capacity_mbps(duration) * 1e6;
    let rtt = trace_rtt(trace);
    ((avg_bps * rtt.as_secs_f64() / 8.0 * 1.5) as u64).max(64_000)
}

/// The base round-trip realized for flows over `trace`: twice the
/// trace's initial one-way delay (clamped to at least 2 ms), before any
/// scheduled delay changes move it.
pub fn trace_rtt(trace: &LinkTrace) -> SimDuration {
    let one_way = trace
        .initial()
        .delay
        .unwrap_or(SimDuration::from_millis(20));
    (one_way + one_way).max(SimDuration::from_millis(2))
}

/// Play `protocol` alone over `trace` for `duration`.
///
/// Topology: one traced bottleneck (initial rate/delay/loss from the
/// trace's first sample; the expanded [`LinkTrace::to_schedule`] varies
/// them), a pure-delay reverse shim at the initial one-way delay, and an
/// optional impairment stage (`shaper`) on the bottleneck. The trace
/// drives the *environment* deterministically; `seed` drives the
/// protocol's own randomness, so every protocol faces the identical
/// network.
pub fn run_trace(
    protocol: Protocol,
    trace: &LinkTrace,
    duration: SimDuration,
    seed: u64,
    shaper: ShaperConfig,
) -> TraceRun {
    let horizon = SimTime::ZERO + duration;
    let first = trace.initial();
    let rtt = trace_rtt(trace);
    let one_way = rtt / 2;
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: SimDuration::from_millis(100),
        seed,
    });
    let bottleneck = net.add_link(LinkConfig {
        rate_bps: Some(first.rate_bps),
        delay: one_way,
        loss: first.loss.unwrap_or(0.0),
        queue: Box::new(DropTail::bytes(trace_buffer_bytes(trace, duration))),
        schedule: trace.to_schedule(horizon),
        shaper,
    });
    let rev = net.add_link(LinkConfig::delay_only(rtt - one_way));
    let sender = protocol
        .build_sender_hinted(FlowSize::Infinite, 1500, rtt)
        .unwrap_or_else(|e| panic!("trace run references an unknown algorithm: {e}"));
    let flow = net.add_flow(FlowSpec {
        sender,
        receiver: Box::new(SackReceiver::new()),
        fwd_path: vec![bottleneck],
        rev_path: vec![rev],
        start_at: SimTime::ZERO,
    });
    let report = net.build().run_until(horizon);
    TraceRun {
        report,
        flow,
        bottleneck,
        avg_capacity_mbps: trace.avg_capacity_mbps(duration),
        duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lte() -> LinkTrace {
        LinkTrace::builtin("lte").expect("bundled")
    }

    #[test]
    fn trace_run_is_deterministic_per_seed() {
        let run = |seed| {
            let r = run_trace(
                Protocol::Tcp("cubic"),
                &lte(),
                SimDuration::from_secs(10),
                seed,
                ShaperConfig::default(),
            );
            (r.report.flows[0].delivered_bytes, r.report.events_processed)
        };
        assert_eq!(run(3), run(3), "same seed, identical run");
        assert_ne!(run(3), run(4), "loss draws differ across seeds");
    }

    #[test]
    fn pcc_doubles_cubic_utilization_on_the_lte_trace() {
        // The repo's headline consistency claim (ISSUE 5 acceptance):
        // on the LTE-like trace — capacity fades, delay wander, and a
        // non-congestive loss floor — PCC sustains at least twice
        // CUBIC's utilization, the paper's §4.3 story on a replayable
        // workload. `pcc-experiments vary` measures the same pair at
        // larger scale.
        let dur = SimDuration::from_secs(40);
        let pcc = run_trace(
            Protocol::pcc_default(trace_rtt(&lte())),
            &lte(),
            dur,
            11,
            ShaperConfig::default(),
        );
        let cubic = run_trace(
            Protocol::Tcp("cubic"),
            &lte(),
            dur,
            11,
            ShaperConfig::default(),
        );
        assert!(
            pcc.utilization() >= 2.0 * cubic.utilization(),
            "PCC {:.2} vs CUBIC {:.2} of {:.1} Mbps deliverable",
            pcc.utilization(),
            cubic.utilization(),
            pcc.avg_capacity_mbps,
        );
        assert!(
            pcc.utilization() > 0.4,
            "PCC achieves a solid fraction: {:.2}",
            pcc.utilization()
        );
    }

    #[test]
    fn impairments_compose_onto_a_trace() {
        // Jitter + bounded reordering + a policer tighter than the trace
        // rate, all on the traced bottleneck: the run completes, the
        // policer caps throughput, and reordering is observed.
        let shaper = ShaperConfig::default()
            .with_jitter(
                JitterConfig::uniform(SimDuration::from_millis(3)).with_reordering(0.05, 3),
            )
            .with_policer(PolicerConfig::new(5e6, 30_000));
        let r = run_trace(
            Protocol::pcc_default(trace_rtt(&lte())),
            &lte(),
            SimDuration::from_secs(15),
            2,
            shaper,
        );
        let stats = r.report.links[r.bottleneck.index()].stats;
        assert!(stats.policed > 0, "policer engaged");
        assert!(stats.reordered > 0, "reordering engaged");
        let tput = r.achieved_mbps();
        assert!(
            tput < 6.0,
            "5 Mbps policer caps a ~19 Mbps trace: {tput} Mbps"
        );
        assert!(tput > 1.0, "still moves data: {tput} Mbps");
    }

    #[test]
    fn every_bundled_trace_carries_a_flow() {
        for name in pcc_simnet::trace::builtin_names() {
            let trace = LinkTrace::builtin(name).unwrap();
            let r = run_trace(
                Protocol::pcc_default(trace_rtt(&trace)),
                &trace,
                SimDuration::from_secs(8),
                5,
                ShaperConfig::default(),
            );
            assert!(
                r.achieved_mbps() > 0.5,
                "{name}: data moves ({} Mbps)",
                r.achieved_mbps()
            );
            assert!(r.avg_capacity_mbps > 1.0, "{name} capacity sane");
        }
    }
}
