//! Chaos conformance scenarios: canonical fault scripts every registered
//! algorithm must survive.
//!
//! Four scripted injuries, spanning both the dumbbell and the
//! datacenter-fabric datapaths:
//!
//! * [`ChaosScript::LinkFlap`] — the bottleneck goes down mid-flow for
//!   half a second, then comes back (queue purged, in-flight dropped).
//! * [`ChaosScript::Blackout`] — an asymmetric ACK-path blackout long
//!   enough to cover at least three backed-off RTO fires: data keeps
//!   landing, nothing is heard back.
//! * [`ChaosScript::SpineFailure`] — a core switch of a `k=4` fat-tree
//!   dies under cross-pod traffic; registered flows re-route over the
//!   surviving spine via the fault plane's ECMP re-resolution.
//! * [`ChaosScript::CorruptStorm`] — a 40% corruption storm on the
//!   bottleneck for three seconds.
//!
//! Every script is compiled through [`FaultScript::parse`] — the chaos
//! battery deliberately exercises the plain-text parser on the production
//! path, not just in parser unit tests. Senders are built with a
//! dead-time budget ([`Protocol::build_sender_budgeted`]) so a wedged
//! flow becomes a typed `Stalled` outcome instead of silently burning
//! the horizon: the conformance contract is *completes or stalls*,
//! never hangs. Runs are seed-deterministic; [`ChaosOutcome::fingerprint`]
//! folds the run's counters into one value so reruns (serial or fanned
//! out on the parallel runner) can be asserted bit-identical.

use pcc_simnet::fault::{FaultPlane, FaultScript};
use pcc_simnet::prelude::*;
use pcc_simnet::topo::{ecmp_key, fat_tree, Topology};
use pcc_transport::{FlowSize, SackReceiver};

use crate::dc::dc_link;
use crate::protocol::Protocol;

/// Bottleneck rate of the dumbbell chaos scenarios.
pub const CHAOS_RATE_BPS: f64 = 20e6;
/// Path RTT of the dumbbell chaos scenarios.
pub const CHAOS_RTT: SimDuration = SimDuration::from_millis(30);
/// Bottleneck buffer of the dumbbell chaos scenarios.
pub const CHAOS_BUFFER_BYTES: u64 = 75_000;
/// Transfer size per flow: ~1.7 s at capacity, so every script lands
/// mid-flow.
pub const CHAOS_BYTES: u64 = 4 * 1024 * 1024;
/// Run horizon: generous enough for the slowest backed-off recovery and
/// for the dead-time budget to declare a genuine wedge.
pub const CHAOS_HORIZON: SimTime = SimTime::from_secs(30);
/// Dead-time budget handed to every chaos sender: longer than the worst
/// survivable dark gap the scripts produce (a 4 s blackout plus the
/// following backed-off RTO), shorter than the horizon.
pub const CHAOS_BUDGET: SimDuration = SimDuration::from_secs(12);

/// Per-flow transfer size of the spine-failure workload (~270 ms at the
/// fabric's 1 Gbps host rate, so the failure lands mid-flow).
pub const SPINE_BYTES: u64 = 32 * 1024 * 1024;

/// One of the canonical chaos scripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosScript {
    /// Mid-flow bottleneck flap: down at 1 s for 0.5 s.
    LinkFlap,
    /// Asymmetric ACK-path blackout: reverse shim down at 1 s for 4 s
    /// (covers RTO fires at 0.2/0.6/1.4/3.0 s of dark time — at least
    /// three backed-off timeouts before repair).
    Blackout,
    /// Core-switch failure on a `k=4` fat-tree under cross-pod traffic:
    /// down at 0.05 s for 1 s.
    SpineFailure,
    /// 40% corruption storm on the bottleneck: 1 s to 4 s.
    CorruptStorm,
}

impl ChaosScript {
    /// All scripts, battery order.
    pub fn all() -> [ChaosScript; 4] {
        [
            ChaosScript::LinkFlap,
            ChaosScript::Blackout,
            ChaosScript::SpineFailure,
            ChaosScript::CorruptStorm,
        ]
    }

    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            ChaosScript::LinkFlap => "flap",
            ChaosScript::Blackout => "blackout",
            ChaosScript::SpineFailure => "spine",
            ChaosScript::CorruptStorm => "corrupt",
        }
    }

    /// When the injected fault is repaired (recovery time is measured
    /// from here).
    pub fn repair_at(self) -> SimTime {
        match self {
            ChaosScript::LinkFlap => SimTime::from_millis(1500),
            ChaosScript::Blackout => SimTime::from_secs(5),
            ChaosScript::SpineFailure => SimTime::from_millis(1050),
            ChaosScript::CorruptStorm => SimTime::from_secs(4),
        }
    }
}

/// Outcome of one protocol under one chaos script.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOutcome {
    /// Every flow delivered all its bytes within the horizon.
    pub completed: bool,
    /// At least one flow aborted on the dead-time budget.
    pub stalled: bool,
    /// Aggregate goodput over the busy period, Mbit/s.
    pub goodput_mbps: f64,
    /// Time from fault repair to the first post-repair sample with
    /// forward progress, ms. `None` when the workload was already done
    /// (or stalled for good) before the repair.
    pub recovery_ms: Option<f64>,
    /// Order-independent digest of the run's counters; equal
    /// fingerprints mean bit-identical runs.
    pub fingerprint: u64,
}

/// SplitMix64 finalizer-based fold step.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold a report's deterministic counters into one digest: event count,
/// then per-flow delivery/loss/lifecycle counters in flow order.
pub fn report_fingerprint(report: &SimReport) -> u64 {
    let mut h = mix(0x43_48_41_4F_53, report.events_processed);
    for f in &report.flows {
        h = mix(h, f.delivered_bytes);
        h = mix(h, f.sent_packets);
        h = mix(h, f.delivered_packets);
        h = mix(h, f.detected_losses);
        h = mix(h, f.completed_at.map(|t| t.as_nanos()).unwrap_or(u64::MAX));
        match f.stalled {
            Some(s) => {
                h = mix(h, s.at.as_nanos());
                h = mix(h, s.dark.as_nanos());
                h = mix(h, s.timeouts);
            }
            None => h = mix(h, 0),
        }
    }
    h
}

/// Sampling interval of every chaos run (drives recovery-time
/// granularity).
const SAMPLE: SimDuration = SimDuration::from_millis(100);

/// First post-repair forward-progress instant across `flows`, as
/// milliseconds after `repair`. Skipped entirely when every flow was
/// finished (completed or stalled) before the repair.
fn recovery_ms(report: &SimReport, flows: &[FlowId], repair: SimTime) -> Option<f64> {
    let live_past_repair = flows.iter().any(|&id| {
        let f = &report.flows[id.index()];
        let done_at = f.completed_at.or(f.stalled.map(|s| s.at));
        done_at.is_none_or(|t| t > repair)
    });
    if !live_past_repair {
        return None;
    }
    let start = (repair.as_nanos() / SAMPLE.as_nanos()) as usize;
    let mut first: Option<usize> = None;
    for &id in flows {
        let series = &report.flows[id.index()].series.goodput_mbps;
        if let Some(i) = (start..series.len()).find(|&i| series[i] > 0.0) {
            first = Some(first.map_or(i, |f| f.min(i)));
        }
    }
    first.map(|i| {
        let sample_end = SAMPLE.as_millis_f64() * (i + 1) as f64;
        (sample_end - repair.as_secs_f64() * 1e3).max(0.0)
    })
}

fn outcome(
    report: &SimReport,
    flows: &[FlowId],
    total_bytes: u64,
    repair: SimTime,
) -> ChaosOutcome {
    let completed = flows
        .iter()
        .all(|&id| report.flows[id.index()].completed_at.is_some());
    let stalled = flows
        .iter()
        .any(|&id| report.flows[id.index()].stalled.is_some());
    let end = flows
        .iter()
        .filter_map(|&id| {
            let f = &report.flows[id.index()];
            f.completed_at.or(f.stalled.map(|s| s.at))
        })
        .max()
        .filter(|_| completed || stalled)
        .unwrap_or(report.ended_at);
    let delivered: u64 = flows
        .iter()
        .map(|&id| report.flows[id.index()].delivered_bytes.min(total_bytes))
        .sum();
    ChaosOutcome {
        completed,
        stalled,
        goodput_mbps: delivered as f64 * 8.0 / end.as_secs_f64().max(f64::MIN_POSITIVE) / 1e6,
        recovery_ms: recovery_ms(report, flows, repair),
        fingerprint: report_fingerprint(report),
    }
}

/// Run one flow of `protocol` through a dumbbell chaos script. The
/// dumbbell is the historical three-link layout (bottleneck `0`, forward
/// shim `1`, reverse shim `2`), which is what the script link indices
/// address.
fn run_dumbbell_chaos(protocol: &Protocol, text: &str, repair: SimTime, seed: u64) -> ChaosOutcome {
    let script = FaultScript::parse(text).expect("chaos scripts are well-formed");
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: SAMPLE,
        seed,
    });
    let mut topo = Topology::new();
    let src = topo.add_host();
    let mid = topo.add_switch();
    topo.add_link(
        src,
        mid,
        LinkConfig::bottleneck(CHAOS_RATE_BPS, SimDuration::ZERO, CHAOS_BUFFER_BYTES),
    );
    let recv = topo.add_host();
    let half = CHAOS_RTT / 2;
    topo.add_link(mid, recv, LinkConfig::delay_only(half));
    topo.add_link(recv, src, LinkConfig::delay_only(CHAOS_RTT - half));
    topo.install(&mut net);
    let path = topo.flow_path(src, recv, 0);
    let sender = protocol
        .build_sender_budgeted(
            FlowSize::Bytes(CHAOS_BYTES),
            1500,
            CHAOS_RTT,
            Some(CHAOS_BUDGET),
        )
        .unwrap_or_else(|e| panic!("chaos scenario references an unknown algorithm: {e}"));
    let flow = net.add_flow(FlowSpec {
        sender,
        receiver: Box::new(SackReceiver::new()),
        fwd_path: path.fwd,
        rev_path: path.rev,
        start_at: SimTime::ZERO,
    });
    net.set_fault_plane(FaultPlane::new(script));
    let report = net.build().run_until(CHAOS_HORIZON);
    outcome(&report, &[flow], CHAOS_BYTES, repair)
}

/// Run four cross-pod flows of `protocol` on a `k=4` fat-tree and kill
/// one core switch mid-transfer. Flows are registered with the fault
/// plane, so survivors of the dead spine re-route via ECMP re-resolution
/// over the surviving graph.
fn run_spine_failure(protocol: &Protocol, seed: u64) -> ChaosOutcome {
    let ft = fat_tree(4, dc_link(), dc_link());
    let dead_core = ft.cores[0];
    let text = format!("0.05 node_down {} 1", dead_core.index());
    let script = FaultScript::parse(&text).expect("chaos scripts are well-formed");
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: SAMPLE,
        seed,
    });
    let mut topo = ft.topo;
    topo.install(&mut net);
    let mut plane = FaultPlane::new(script);
    plane.attach_topology(&topo);
    let n = ft.hosts.len();
    let mut flows = Vec::new();
    for i in 0..4usize {
        let (src, dst) = (ft.hosts[i], ft.hosts[(i + n / 2) % n]);
        let key = ecmp_key(seed, i as u64);
        let path = topo.flow_path(src, dst, key);
        let rtt_hint = SimDuration::from_micros(20) * (path.fwd.len() + path.rev.len()) as u64;
        let sender = protocol
            .build_sender_budgeted(
                FlowSize::Bytes(SPINE_BYTES),
                1500,
                rtt_hint,
                Some(CHAOS_BUDGET),
            )
            .unwrap_or_else(|e| panic!("chaos scenario references an unknown algorithm: {e}"));
        let flow = net.add_flow(FlowSpec {
            sender,
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        plane.register_flow(flow, src, dst, key);
        flows.push(flow);
    }
    net.set_fault_plane(plane);
    let report = net.build().run_until(CHAOS_HORIZON);
    outcome(
        &report,
        &flows,
        SPINE_BYTES * flows.len() as u64,
        ChaosScript::SpineFailure.repair_at(),
    )
}

/// Run `protocol` through `script` with all randomness derived from
/// `seed`. Bit-deterministic: same inputs, same [`ChaosOutcome`] (and
/// fingerprint), at any runner parallelism.
pub fn run_chaos(protocol: &Protocol, script: ChaosScript, seed: u64) -> ChaosOutcome {
    let repair = script.repair_at();
    match script {
        ChaosScript::LinkFlap => run_dumbbell_chaos(protocol, "1 down 0 0.5", repair, seed),
        ChaosScript::Blackout => run_dumbbell_chaos(protocol, "1 down 2 4", repair, seed),
        ChaosScript::CorruptStorm => {
            run_dumbbell_chaos(protocol, "1 corrupt 0 3 0.4", repair, seed)
        }
        ChaosScript::SpineFailure => run_spine_failure(protocol, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_flap_delays_but_does_not_kill_cubic() {
        let o = run_chaos(&Protocol::Tcp("cubic"), ChaosScript::LinkFlap, 3);
        assert!(o.completed, "a half-second flap is survivable");
        assert!(!o.stalled);
        assert!(o.goodput_mbps > 1.0, "goodput sane: {}", o.goodput_mbps);
        let r = o.recovery_ms.expect("flow was mid-transfer at repair");
        assert!(r < 5_000.0, "recovery prompt: {r} ms");
    }

    #[test]
    fn ack_blackout_recovers_for_pcc() {
        let o = run_chaos(&Protocol::pcc_default(CHAOS_RTT), ChaosScript::Blackout, 3);
        assert!(o.completed, "the flow resumes after the ACK path heals");
        assert!(!o.stalled);
    }

    #[test]
    fn spine_failure_reroutes_and_completes() {
        let o = run_chaos(&Protocol::Tcp("cubic"), ChaosScript::SpineFailure, 3);
        assert!(o.completed, "cross-pod flows survive a dead core");
        assert!(!o.stalled);
    }

    #[test]
    fn chaos_runs_are_bit_identical() {
        for script in ChaosScript::all() {
            let a = run_chaos(&Protocol::Tcp("cubic"), script, 9);
            let b = run_chaos(&Protocol::Tcp("cubic"), script, 9);
            assert_eq!(
                a.fingerprint,
                b.fingerprint,
                "{} rerun identical",
                script.label()
            );
        }
    }

    #[test]
    fn permanent_blackout_is_a_typed_stall_not_a_wedge() {
        // A repair-less variant of the ACK blackout: the budget must turn
        // the wedge into a recorded stall with partial progress.
        let o = run_dumbbell_chaos(
            &Protocol::Tcp("cubic"),
            "1 down 2",
            SimTime::from_secs(1),
            5,
        );
        assert!(!o.completed);
        assert!(o.stalled, "the dead-time budget fired");
        assert!(o.goodput_mbps > 0.0, "partial progress is reported");
    }
}
