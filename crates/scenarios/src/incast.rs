//! Fig. 10 — TCP incast in a data center (§4.1.8).
//!
//! `n` senders simultaneously push a fixed block each to one receiver
//! through a 1 Gbps, shallow-buffered top-of-rack port. TCP collapses:
//! synchronized tail drops leave whole windows lost, and with few packets
//! in flight recovery needs a 200 ms minimum RTO — orders of magnitude
//! above the ~100 µs RTT. Goodput = total unique bytes / time until the
//! last flow completes.

use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::FlowSize;

use crate::protocol::Protocol;
use crate::setup::{run_dumbbell, FlowPlan, LinkSetup};

/// Data-center port speed (Fig. 10's goodput axis tops at 1000 Mbps).
pub const INCAST_RATE_BPS: f64 = 1e9;
/// Intra-rack RTT.
pub const INCAST_RTT: SimDuration = SimDuration::from_micros(200);
/// Switch buffer per port: deep enough to absorb small-N slow-start
/// bursts (no collapse below ~8 senders, as in the paper), shallow enough
/// that synchronized incast overwhelms it.
pub const INCAST_BUFFER_BYTES: u64 = 256_000;

/// Result of one incast round.
#[derive(Clone, Copy, Debug)]
pub struct IncastResult {
    /// Aggregate goodput in Mbit/s (total unique data over the time the
    /// slowest flow took).
    pub goodput_mbps: f64,
    /// Number of flows that completed within the horizon.
    pub completed: usize,
    /// The slowest flow's completion time.
    pub max_fct: Option<SimDuration>,
}

/// Run one incast round: `n` senders, `block_bytes` each, synchronized
/// start.
pub fn run_incast(
    mk_protocol: impl Fn() -> Protocol,
    n: usize,
    block_bytes: u64,
    seed: u64,
) -> IncastResult {
    let setup = LinkSetup::new(INCAST_RATE_BPS, INCAST_RTT, INCAST_BUFFER_BYTES);
    let plans = (0..n)
        .map(|_| FlowPlan::new(mk_protocol(), INCAST_RTT).sized(FlowSize::Bytes(block_bytes)))
        .collect();
    // Generous horizon: even a collapsed TCP round finishes in seconds.
    let horizon = SimTime::from_secs(30);
    let r = run_dumbbell(setup, plans, horizon, seed);
    let mut max_fct: Option<SimDuration> = None;
    let mut completed = 0;
    for i in 0..n {
        if let Some(fct) = r.fct(i) {
            completed += 1;
            max_fct = Some(match max_fct {
                Some(m) => m.max(fct),
                None => fct,
            });
        }
    }
    let goodput_mbps = if completed == n {
        let total_bits = (block_bytes * n as u64) as f64 * 8.0;
        total_bits / max_fct.expect("all completed").as_secs_f64() / 1e6
    } else {
        // Count unfinished rounds as the horizon (strongly penalized).
        let total_bits = (block_bytes * n as u64) as f64 * 8.0;
        total_bits / horizon.as_secs_f64() / 1e6
    };
    IncastResult {
        goodput_mbps,
        completed,
        max_fct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_senders_no_collapse() {
        // 2 senders' bursts fit the switch buffer; TCP finishes in a few
        // RTTs at high goodput.
        let r = run_incast(|| Protocol::Tcp("newreno"), 2, 256 * 1024, 1);
        assert_eq!(r.completed, 2);
        assert!(r.goodput_mbps > 300.0, "no collapse: {}", r.goodput_mbps);
    }

    #[test]
    fn tcp_collapses_with_many_senders() {
        let few = run_incast(|| Protocol::Tcp("newreno"), 2, 256 * 1024, 2);
        let many = run_incast(|| Protocol::Tcp("newreno"), 24, 256 * 1024, 2);
        assert!(
            many.goodput_mbps < few.goodput_mbps / 5.0,
            "incast collapse: {} (24 senders) vs {} (2)",
            many.goodput_mbps,
            few.goodput_mbps
        );
    }

    #[test]
    fn pcc_sustains_goodput_under_incast() {
        let rtt = INCAST_RTT;
        let pcc = run_incast(|| Protocol::pcc_default(rtt), 24, 256 * 1024, 3);
        let tcp = run_incast(|| Protocol::Tcp("newreno"), 24, 256 * 1024, 3);
        assert_eq!(pcc.completed, 24, "all PCC flows complete");
        assert!(
            pcc.goodput_mbps > 100.0,
            "PCC sustains real goodput: {} Mbps",
            pcc.goodput_mbps
        );
        assert!(
            pcc.goodput_mbps > 5.0 * tcp.goodput_mbps,
            "PCC {} Mbps ≫ TCP {} Mbps at 24 senders",
            pcc.goodput_mbps,
            tcp.goodput_mbps
        );
    }
}
