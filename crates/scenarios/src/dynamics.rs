//! Multi-flow dynamics scenarios: RTT fairness (Fig. 8), convergence
//! (Figs. 12–13), TCP friendliness (Fig. 14), and the
//! stability/reactiveness trade-off (Fig. 16).

use pcc_simnet::prelude::*;
use pcc_simnet::stats::{convergence_time, jain_index_at_scale, std_dev};

use crate::protocol::Protocol;
use crate::setup::{run_dumbbell, FlowPlan, LinkSetup, ScenarioResult};

// ---------------------------------------------------------------------------
// Fig. 8 — RTT fairness
// ---------------------------------------------------------------------------

/// Fig. 8: a 10 ms flow and a long-RTT flow share a 100 Mbps bottleneck
/// whose buffer equals the short flow's BDP; the long flow starts first,
/// the short one joins 5 s later. Returns the ratio of the long-RTT flow's
/// throughput to the short-RTT flow's over the contention window.
pub fn rtt_fairness_ratio(
    mk_protocol: impl Fn(SimDuration) -> Protocol,
    long_rtt: SimDuration,
    contention: SimDuration,
    seed: u64,
) -> f64 {
    let short_rtt = SimDuration::from_millis(10);
    // Buffer = BDP of the short-RTT flow (125 KB at 100 Mbps × 10 ms).
    let setup = LinkSetup::new(100e6, short_rtt, 125_000);
    let t_join = SimTime::from_secs(5);
    let horizon = t_join + contention;
    let r = run_dumbbell(
        setup,
        vec![
            FlowPlan::new(mk_protocol(long_rtt), long_rtt),
            FlowPlan::new(mk_protocol(short_rtt), short_rtt).starting_at(t_join),
        ],
        horizon,
        seed,
    );
    // Measure over the second half of the contention period.
    let from = t_join + contention.mul_f64(0.5);
    let long = r.throughput_in(0, from, horizon);
    let short = r.throughput_in(1, from, horizon);
    if short <= 0.0 {
        return f64::INFINITY;
    }
    long / short
}

// ---------------------------------------------------------------------------
// Figs. 12 & 13 — convergence and fairness of staggered flows
// ---------------------------------------------------------------------------

/// Result of the staggered-convergence scenario.
pub struct ConvergenceResult {
    /// Underlying scenario result (1 s samples).
    pub inner: ScenarioResult,
    /// Stagger between consecutive flow starts.
    pub stagger: SimDuration,
    /// Per-flow lifetime.
    pub lifetime: SimDuration,
}

/// Figs. 12–13 topology: `n` flows over a 100 Mbps / 30 ms bottleneck with
/// a BDP buffer; flow `i` starts at `i·stagger` and stops implicitly at the
/// horizon (the paper runs each for 2000 s with 500 s staggering; callers
/// scale).
pub fn run_convergence(
    mk_protocol: impl Fn() -> Protocol,
    n: usize,
    stagger: SimDuration,
    lifetime: SimDuration,
    seed: u64,
) -> ConvergenceResult {
    let rtt = SimDuration::from_millis(30);
    let setup = LinkSetup::new(100e6, rtt, 375_000);
    let plans = (0..n)
        .map(|i| FlowPlan::new(mk_protocol(), rtt).starting_at(SimTime::ZERO + stagger * i as u64))
        .collect();
    let horizon = SimTime::ZERO + lifetime;
    let inner = crate::setup::run_dumbbell_scheduled(
        setup,
        plans,
        horizon,
        seed,
        Default::default(),
        Some(SimDuration::from_secs(1)),
    );
    ConvergenceResult {
        inner,
        stagger,
        lifetime,
    }
}

impl ConvergenceResult {
    /// Jain's index at a given time-scale (in samples = seconds), computed
    /// over the window where all flows are active (Fig. 13).
    pub fn jain_at_scale(&self, scale: usize) -> f64 {
        let n = self.inner.flows.len();
        let all_active_from = (self.stagger * (n as u64 - 1)).as_secs_f64() as usize + 2;
        let series: Vec<&[f64]> = self
            .inner
            .flows
            .iter()
            .map(|f| {
                let s = &self.inner.report.flows[f.index()].series.throughput_mbps;
                let lo = all_active_from.min(s.len());
                &s[lo..]
            })
            .collect();
        jain_index_at_scale(&series, scale)
    }

    /// Mean per-flow throughput stddev over the all-active window — the
    /// "rate variance" the paper contrasts in Fig. 12.
    pub fn mean_stddev(&self) -> f64 {
        let n = self.inner.flows.len();
        let from = (self.stagger * (n as u64 - 1)).as_secs_f64() as usize + 2;
        let devs: Vec<f64> = self
            .inner
            .flows
            .iter()
            .map(|f| {
                let s = &self.inner.report.flows[f.index()].series.throughput_mbps;
                std_dev(&s[from.min(s.len())..])
            })
            .collect();
        devs.iter().sum::<f64>() / devs.len().max(1) as f64
    }
}

// ---------------------------------------------------------------------------
// Fig. 14 — TCP friendliness
// ---------------------------------------------------------------------------

/// What a "selfish" entity is in Fig. 14.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selfish {
    /// A bundle of 10 parallel New Reno flows ("TCP-Selfish", the common
    /// download-accelerator practice).
    TcpBundle,
    /// A single PCC flow.
    Pcc,
}

/// Average throughput of one normal TCP flow competing with `k` selfish
/// entities on `rate_bps`/`rtt` (Fig. 14 measures the ratio between the
/// [`Selfish::Pcc`] and [`Selfish::TcpBundle`] values of this).
pub fn normal_tcp_throughput(
    selfish: Selfish,
    k: usize,
    rate_bps: f64,
    rtt: SimDuration,
    duration: SimDuration,
    seed: u64,
) -> f64 {
    let bdp = (rate_bps * rtt.as_secs_f64() / 8.0) as u64;
    let setup = LinkSetup::new(rate_bps, rtt, bdp.max(30_000));
    let mut plans = vec![FlowPlan::new(Protocol::Tcp("newreno"), rtt)];
    for _ in 0..k {
        match selfish {
            Selfish::TcpBundle => {
                for _ in 0..10 {
                    plans.push(FlowPlan::new(Protocol::Tcp("newreno"), rtt));
                }
            }
            Selfish::Pcc => plans.push(FlowPlan::new(Protocol::pcc_default(rtt), rtt)),
        }
    }
    let horizon = SimTime::ZERO + duration;
    let r = run_dumbbell(setup, plans, horizon, seed);
    r.throughput_in(0, SimTime::ZERO + duration.mul_f64(0.2), horizon)
}

// ---------------------------------------------------------------------------
// Fig. 16 — stability/reactiveness trade-off
// ---------------------------------------------------------------------------

/// One point in the Fig. 16 trade-off space.
#[derive(Clone, Copy, Debug)]
pub struct TradeoffPoint {
    /// Forward-looking convergence time of the joining flow, seconds.
    pub convergence_secs: f64,
    /// Stddev of its throughput over the 60 s after convergence, Mbit/s.
    pub stddev_mbps: f64,
    /// Whether the flow converged at all within the horizon.
    pub converged: bool,
}

/// Fig. 16 setup: flow A starts at 0 on a 100 Mbps / 30 ms link; flow B
/// joins at 20 s. Convergence time is the paper's forward-looking
/// definition: the earliest `t` where every 1 s sample in `[t, t+5)` is
/// within ±25% of the 50 Mbps fair share; stability is B's throughput
/// stddev over the `stability_window` seconds after convergence.
pub fn run_tradeoff(
    mk_protocol: impl Fn() -> Protocol,
    stability_window: u64,
    seed: u64,
) -> TradeoffPoint {
    let rtt = SimDuration::from_millis(30);
    let setup = LinkSetup::new(100e6, rtt, 375_000);
    let join = 20u64;
    let horizon_secs = join + 120 + stability_window;
    let r = crate::setup::run_dumbbell_scheduled(
        setup,
        vec![
            FlowPlan::new(mk_protocol(), rtt),
            FlowPlan::new(mk_protocol(), rtt).starting_at(SimTime::from_secs(join)),
        ],
        SimTime::from_secs(horizon_secs),
        seed,
        Default::default(),
        Some(SimDuration::from_secs(1)),
    );
    let series = &r.report.flows[r.flows[1].index()].series.throughput_mbps;
    let b_series = &series[join as usize..];
    match convergence_time(b_series, 50.0, 0.25, 5) {
        Some(t) => {
            let lo = t + 5;
            let hi = (lo + stability_window as usize).min(b_series.len());
            TradeoffPoint {
                convergence_secs: t as f64,
                stddev_mbps: std_dev(&b_series[lo.min(b_series.len())..hi]),
                converged: true,
            }
        }
        None => TradeoffPoint {
            convergence_secs: f64::INFINITY,
            stddev_mbps: std_dev(b_series),
            converged: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UtilityKind;
    use pcc_core::PccConfig;

    #[test]
    fn rtt_fairness_pcc_beats_newreno() {
        // Fig. 8 shape: at 60 ms vs 10 ms, New Reno's long-RTT flow is
        // starved far below PCC's.
        let contention = SimDuration::from_secs(30);
        let pcc = rtt_fairness_ratio(
            Protocol::pcc_default,
            SimDuration::from_millis(60),
            contention,
            5,
        );
        let reno = rtt_fairness_ratio(
            |_| Protocol::Tcp("newreno"),
            SimDuration::from_millis(60),
            contention,
            5,
        );
        assert!(
            pcc > 2.0 * reno,
            "PCC long/short ratio {pcc:.3} must beat New Reno {reno:.3}"
        );
        assert!(pcc > 0.35, "PCC long flow not starved: {pcc:.3}");
    }

    #[test]
    fn convergence_fairness_pcc() {
        // The joiner needs a long time to claim its share (±1% decision
        // steps; the paper staggers flows by 500 s and reports 30-60 s
        // convergence; a joiner squeezed behind a full buffer can need a
        // few minutes). Judge fairness after the transient.
        let r = run_convergence(
            || Protocol::pcc_default(SimDuration::from_millis(30)),
            2,
            SimDuration::from_secs(20),
            SimDuration::from_secs(260),
            6,
        );
        let series: Vec<&[f64]> = r
            .inner
            .flows
            .iter()
            .map(|f| {
                let s = &r.inner.report.flows[f.index()].series.throughput_mbps;
                &s[200.min(s.len())..]
            })
            .collect();
        let jain = pcc_simnet::stats::jain_index_at_scale(&series, 5);
        assert!(jain > 0.85, "2 PCC flows near-fair: {jain:.3}");
    }

    #[test]
    fn pcc_more_stable_than_cubic() {
        // Compare post-convergence rate variance (Fig. 12's point); the
        // first ~40 s are the convergence transient for both.
        let post_stddev = |r: &super::ConvergenceResult| {
            let devs: Vec<f64> = r
                .inner
                .flows
                .iter()
                .map(|f| {
                    let s = &r.inner.report.flows[f.index()].series.throughput_mbps;
                    pcc_simnet::stats::std_dev(&s[200.min(s.len())..])
                })
                .collect();
            pcc_simnet::stats::mean(&devs)
        };
        let pcc = run_convergence(
            || Protocol::pcc_default(SimDuration::from_millis(30)),
            2,
            SimDuration::from_secs(20),
            SimDuration::from_secs(260),
            7,
        );
        let cubic = run_convergence(
            || Protocol::Tcp("cubic"),
            2,
            SimDuration::from_secs(20),
            SimDuration::from_secs(260),
            7,
        );
        assert!(
            post_stddev(&pcc) < post_stddev(&cubic),
            "PCC stddev {:.2} < CUBIC {:.2}",
            post_stddev(&pcc),
            post_stddev(&cubic)
        );
    }

    #[test]
    fn tradeoff_point_sane() {
        let p = run_tradeoff(
            || {
                Protocol::Pcc(
                    PccConfig::paper().with_rtt_hint(SimDuration::from_millis(30)),
                    UtilityKind::Safe,
                )
            },
            60,
            8,
        );
        assert!(p.converged, "PCC converges in the tradeoff scenario");
        // Joiners squeezed behind a standing queue can need ~2 minutes to
        // reach the ±25% band (the paper's Fig. 16 default sits at 30-60 s
        // under gentler contention).
        assert!(p.convergence_secs < 130.0, "t={}", p.convergence_secs);
        assert!(p.stddev_mbps.is_finite());
    }
}
