//! Production-traffic workload engine: flow churn at scale.
//!
//! Everything the paper's steady-state figures leave out: real traffic is
//! not four infinite flows, it is thousands of finite flows arriving,
//! transferring a heavy-tailed number of bytes, and leaving. This module
//! generates that workload deterministically and drives it through the
//! simulator's churn rails ([`pcc_simnet::sim::ChurnDriver`]):
//!
//! * [`SizeCdf`] — a flow-size distribution loaded from a plain-text
//!   `size_cdf` file (bundled `web-search` and `cache-follower` profiles,
//!   parsed with line-attributed errors like `LinkTrace`), sampled via
//!   inverse-CDF with linear interpolation on a derived [`SimRng`] stream.
//! * [`Arrival`] — the arrival process: open-loop Poisson (the classic
//!   M/G model) or deterministic intervals.
//! * [`run_churn`] — wires both into a shared-bottleneck dumbbell and runs
//!   an open-loop churn experiment: flows are admitted lazily one arrival
//!   ahead, recycled through the simulator's slot arena, and harvested
//!   into a [`ChurnReport`] of FCT percentiles by flow-size bucket.
//!
//! ## `size_cdf` file format
//!
//! Plain text, one CDF breakpoint per line:
//!
//! ```text
//! # pcc-scenarios flow-size CDF v1
//! # columns: bytes cum_prob
//! 1000     0.35
//! 10000    0.85
//! 1000000  1.0
//! ```
//!
//! `#` starts a comment; blank lines are ignored. Byte sizes must be
//! strictly increasing and positive; cumulative probabilities must be in
//! `(0, 1]`, non-decreasing, and end at exactly `1.0`. The first
//! breakpoint carries a point mass (`P(size ≤ b₀) = p₀` maps the whole
//! mass to `b₀`); between breakpoints the CDF is linearly interpolated.
//!
//! ## Determinism
//!
//! Arrival gaps and flow sizes are drawn from two streams derived off the
//! scenario seed (`derive` is consumption-independent), so the workload
//! sequence is a pure function of `(seed, arrival, cdf, flows)` — the
//! same flows arrive at the same instants with the same sizes regardless
//! of what the transport layer does, and the whole report is bit-identical
//! at any parallelism.

use std::cell::RefCell;
use std::rc::Rc;

use pcc_simnet::link::LinkSchedule;
use pcc_simnet::prelude::*;
use pcc_transport::{FlowSize, SackReceiver};

use crate::protocol::Protocol;
use crate::setup::LinkSetup;

/// RNG stream tag for arrival gaps ("WLAR"): disjoint from the engine's
/// per-slot, per-link, and per-churn-arrival derivations.
const ARRIVAL_STREAM: u64 = 0x574C_4152_0000_0000;
/// RNG stream tag for flow sizes ("WLSZ").
const SIZE_STREAM: u64 = 0x574C_535A_0000_0000;

/// A `size_cdf` file that failed to parse: the offending line and why
/// (line 0 means the file as a whole).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CdfError {
    /// 1-based line number in the input (0 for whole-file errors).
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for CdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "size_cdf line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CdfError {}

fn err(line: usize, reason: impl Into<String>) -> CdfError {
    CdfError {
        line,
        reason: reason.into(),
    }
}

const BUILTIN: &[(&str, &str)] = &[
    (
        "web-search",
        include_str!("../workloads/web-search.size_cdf"),
    ),
    (
        "cache-follower",
        include_str!("../workloads/cache-follower.size_cdf"),
    ),
];

/// Names of the bundled flow-size distributions, in presentation order.
pub fn builtin_names() -> Vec<&'static str> {
    BUILTIN.iter().map(|(n, _)| *n).collect()
}

/// A named flow-size distribution: an empirical CDF over flow sizes in
/// bytes, sampled by inverse transform with linear interpolation.
#[derive(Clone, Debug, PartialEq)]
pub struct SizeCdf {
    name: String,
    points: Vec<(u64, f64)>,
}

impl SizeCdf {
    /// Build a CDF from `(bytes, cum_prob)` breakpoints (files go through
    /// [`SizeCdf::parse`]). Sizes must be strictly increasing and
    /// positive; probabilities non-decreasing in `(0, 1]`, ending at
    /// exactly `1.0`.
    pub fn from_points(name: &str, points: Vec<(u64, f64)>) -> Result<SizeCdf, CdfError> {
        if points.is_empty() {
            return Err(err(0, "distribution has no breakpoints"));
        }
        for &(bytes, prob) in &points {
            if bytes == 0 {
                return Err(err(0, "flow sizes must be positive"));
            }
            if !prob.is_finite() || prob <= 0.0 || prob > 1.0 {
                return Err(err(0, "cum_prob must be in (0, 1]"));
            }
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(err(0, "byte sizes must be strictly increasing"));
            }
            if w[1].1 < w[0].1 {
                return Err(err(0, "cum_prob must be non-decreasing"));
            }
        }
        if points[points.len() - 1].1 != 1.0 {
            return Err(err(0, "last cum_prob must be exactly 1.0"));
        }
        Ok(SizeCdf {
            name: name.to_string(),
            points,
        })
    }

    /// Parse the plain-text `size_cdf` format (see the module docs).
    /// Returns the first offending line on failure, never panics.
    pub fn parse(name: &str, text: &str) -> Result<SizeCdf, CdfError> {
        let mut points: Vec<(u64, f64)> = Vec::new();
        let mut last_line = 0;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut cols = line.split_whitespace();
            let bytes_tok = cols.next().unwrap_or("");
            let Some(prob_tok) = cols.next() else {
                return Err(err(lineno, "expected two columns: `bytes cum_prob`"));
            };
            if cols.next().is_some() {
                return Err(err(lineno, "too many columns (expected `bytes cum_prob`)"));
            }
            let bytes: u64 = bytes_tok
                .parse()
                .map_err(|_| err(lineno, format!("bad byte count `{bytes_tok}`")))?;
            let prob: f64 = prob_tok
                .parse()
                .map_err(|_| err(lineno, format!("bad probability `{prob_tok}`")))?;
            if bytes == 0 {
                return Err(err(lineno, "flow sizes must be positive"));
            }
            if !prob.is_finite() || prob <= 0.0 || prob > 1.0 {
                return Err(err(lineno, "cum_prob must be in (0, 1]"));
            }
            if let Some(&(pb, pp)) = points.last() {
                if bytes <= pb {
                    return Err(err(lineno, "byte sizes must be strictly increasing"));
                }
                if prob < pp {
                    return Err(err(lineno, "cum_prob must be non-decreasing"));
                }
            }
            points.push((bytes, prob));
            last_line = lineno;
        }
        if points.is_empty() {
            return Err(err(0, "distribution has no breakpoints"));
        }
        if points[points.len() - 1].1 != 1.0 {
            return Err(err(last_line, "last cum_prob must be exactly 1.0"));
        }
        Ok(SizeCdf {
            name: name.to_string(),
            points,
        })
    }

    /// Load a bundled distribution by name (see [`builtin_names`]).
    pub fn builtin(name: &str) -> Option<SizeCdf> {
        let (_, text) = BUILTIN.iter().find(|(n, _)| *n == name)?;
        Some(SizeCdf::parse(name, text).expect("bundled size CDFs parse"))
    }

    /// The distribution's name (file stem or builtin id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CDF breakpoints `(bytes, cum_prob)`, size-ordered.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Render back to the `size_cdf` text format (round-trips through
    /// [`SizeCdf::parse`] exactly: Rust's float `Display` is shortest
    /// round-trip).
    pub fn render(&self) -> String {
        let mut out = String::from("# pcc-scenarios flow-size CDF v1\n# columns: bytes cum_prob\n");
        for &(bytes, prob) in &self.points {
            out.push_str(&format!("{bytes} {prob}\n"));
        }
        out
    }

    /// The quantile function (inverse CDF) at `u ∈ [0, 1)`: the first
    /// breakpoint carries a point mass, segments between breakpoints are
    /// linearly interpolated, and zero-mass (flat) segments map to their
    /// right endpoint.
    pub fn quantile(&self, u: f64) -> u64 {
        let pts = &self.points;
        if u <= pts[0].1 {
            return pts[0].0;
        }
        for w in pts.windows(2) {
            let (b0, p0) = w[0];
            let (b1, p1) = w[1];
            if u <= p1 {
                if p1 <= p0 {
                    return b1;
                }
                let f = (u - p0) / (p1 - p0);
                return b0 + ((b1 - b0) as f64 * f).round() as u64;
            }
        }
        pts[pts.len() - 1].0
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        self.quantile(rng.uniform())
    }

    /// Mean flow size implied by the interpolated CDF: the first
    /// breakpoint's point mass plus a trapezoid per segment.
    pub fn mean_bytes(&self) -> f64 {
        let mut mean = self.points[0].1 * self.points[0].0 as f64;
        for w in self.points.windows(2) {
            let (b0, p0) = w[0];
            let (b1, p1) = w[1];
            mean += (p1 - p0) * (b0 as f64 + b1 as f64) / 2.0;
        }
        mean
    }

    /// Smallest possible sampled size.
    pub fn min_bytes(&self) -> u64 {
        self.points[0].0
    }

    /// Largest possible sampled size.
    pub fn max_bytes(&self) -> u64 {
        self.points[self.points.len() - 1].0
    }
}

/// The flow arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Open-loop Poisson arrivals at `rate_hz` flows per second
    /// (exponential inter-arrival gaps).
    Poisson {
        /// Mean arrival rate, flows per second.
        rate_hz: f64,
    },
    /// One arrival every `interval`, exactly.
    Deterministic {
        /// The fixed inter-arrival gap.
        interval: SimDuration,
    },
}

impl Arrival {
    /// Poisson arrivals at `rate_hz` flows per second.
    pub fn poisson(rate_hz: f64) -> Arrival {
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        Arrival::Poisson { rate_hz }
    }

    /// Poisson arrivals sized to offer `load` (fraction of `rate_bps`)
    /// given a mean flow size: `λ = load·C / (8·mean_bytes)`.
    pub fn poisson_for_load(load: f64, rate_bps: f64, mean_flow_bytes: f64) -> Arrival {
        assert!(load > 0.0 && rate_bps > 0.0 && mean_flow_bytes > 0.0);
        Arrival::poisson(load * rate_bps / (8.0 * mean_flow_bytes))
    }

    /// Deterministic arrivals, one every `interval`.
    pub fn every(interval: SimDuration) -> Arrival {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        Arrival::Deterministic { interval }
    }

    /// Draw the next inter-arrival gap in seconds.
    pub fn gap_secs(&self, rng: &mut SimRng) -> f64 {
        match self {
            Arrival::Poisson { rate_hz } => rng.exponential(1.0 / rate_hz),
            Arrival::Deterministic { interval } => interval.as_secs_f64(),
        }
    }

    /// Mean inter-arrival gap in seconds.
    pub fn mean_gap_secs(&self) -> f64 {
        match self {
            Arrival::Poisson { rate_hz } => 1.0 / rate_hz,
            Arrival::Deterministic { interval } => interval.as_secs_f64(),
        }
    }
}

/// FCT distribution summary — the one flow-completion-time type shared by
/// the churn engine and the Fig. 15 short-flow scenario.
#[derive(Clone, Debug, Default)]
pub struct FctSummary {
    /// All completion times, seconds, in harvest order.
    pub fcts: Vec<f64>,
    /// Flows that did not complete (stalled or truncated by the horizon).
    pub incomplete: usize,
}

impl FctSummary {
    /// Number of completed flows summarized.
    pub fn count(&self) -> usize {
        self.fcts.len()
    }

    /// Mean FCT in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        mean(&self.fcts) * 1000.0
    }

    /// Median FCT in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.p50_ms()
    }

    /// Median (p50) FCT in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        percentile(&self.fcts, 50.0) * 1000.0
    }

    /// 95th-percentile FCT in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        percentile(&self.fcts, 95.0) * 1000.0
    }

    /// 99th-percentile FCT in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        percentile(&self.fcts, 99.0) * 1000.0
    }

    /// 99.9th-percentile FCT in milliseconds.
    pub fn p999_ms(&self) -> f64 {
        percentile(&self.fcts, 99.9) * 1000.0
    }
}

/// Flow-size buckets the churn report groups FCTs by: `(label, max
/// bytes inclusive)`.
pub const SIZE_BUCKETS: &[(&str, u64)] = &[
    ("<=10KB", 10_000),
    ("<=100KB", 100_000),
    ("<=1MB", 1_000_000),
    (">1MB", u64::MAX),
];

/// One harvested churn flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSample {
    /// The flow's size in bytes (the driver's churn tag).
    pub bytes: u64,
    /// Completion time in seconds, `None` if the flow stalled out.
    pub fct: Option<f64>,
    /// Unique bytes the receiver accepted.
    pub goodput: u64,
}

/// Per-size-bucket FCT summary.
#[derive(Clone, Debug)]
pub struct ChurnBucket {
    /// Bucket label from [`SIZE_BUCKETS`].
    pub label: &'static str,
    /// Flows whose size fell in this bucket.
    pub flows: usize,
    /// FCT summary over the bucket's completed flows.
    pub fct: FctSummary,
}

/// Everything a churn run produces.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Per-flow harvests, in retirement order.
    pub samples: Vec<ChurnSample>,
    /// Engine-level churn accounting (conservation, recycling, peaks).
    pub churn: ChurnStats,
    /// FCT summary over all completed flows.
    pub overall: FctSummary,
    /// FCT summaries grouped by [`SIZE_BUCKETS`].
    pub buckets: Vec<ChurnBucket>,
    /// Aggregate goodput over the run, Mbit/s.
    pub goodput_mbps: f64,
    /// Offered arrival rate realized by the generator, flows/sec.
    pub arrival_rate_hz: f64,
    /// Completion rate over the full horizon, flows/sec.
    pub completion_rate_hz: f64,
    /// Simulated horizon, seconds.
    pub horizon_secs: f64,
    /// Total simulator events processed.
    pub events_processed: u64,
}

impl ChurnReport {
    /// Order-sensitive fingerprint over every harvested flow and the
    /// engine counters — two runs are behaviorally identical iff their
    /// fingerprints match (FNV-1a over the sample stream).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for s in &self.samples {
            mix(&mut h, s.bytes);
            mix(&mut h, s.fct.map_or(u64::MAX, f64::to_bits));
            mix(&mut h, s.goodput);
        }
        for v in [
            self.churn.arrivals,
            self.churn.completions,
            self.churn.stalls,
            self.churn.live_at_end,
            self.churn.peak_live,
            self.churn.recycled,
            self.churn.stale_packets,
            self.churn.stale_timers,
            self.events_processed,
        ] {
            mix(&mut h, v);
        }
        h
    }
}

/// Configuration for an open-loop churn run.
pub struct ChurnConfig {
    /// The protocol driving every flow's sender.
    pub protocol: Protocol,
    /// The shared bottleneck path.
    pub link: LinkSetup,
    /// Flow-size distribution.
    pub cdf: SizeCdf,
    /// Arrival process.
    pub arrival: Arrival,
    /// Total flows to admit.
    pub flows: u64,
    /// Scenario seed (drives arrivals, sizes, and the simulator).
    pub seed: u64,
    /// Extra horizon after the last arrival for in-flight flows to drain.
    pub drain: SimDuration,
    /// Dead-time budget per sender: a flow making no progress for this
    /// long aborts as a typed stall instead of wedging the run.
    pub dead_time_budget: Option<SimDuration>,
    /// Optional fault script (the [`crate::chaos`] plain-text format)
    /// injected into the run — churn under failures.
    pub fault_script: Option<String>,
    /// Stats sampling interval.
    pub sample_interval: SimDuration,
}

impl ChurnConfig {
    /// A churn run with drain 10 s, a 10 s dead-time budget, no faults,
    /// and 1 s sampling.
    pub fn new(
        protocol: Protocol,
        link: LinkSetup,
        cdf: SizeCdf,
        arrival: Arrival,
        flows: u64,
        seed: u64,
    ) -> ChurnConfig {
        ChurnConfig {
            protocol,
            link,
            cdf,
            arrival,
            flows,
            seed,
            drain: SimDuration::from_secs(10),
            dead_time_budget: Some(SimDuration::from_secs(10)),
            fault_script: None,
            sample_interval: SimDuration::from_secs(1),
        }
    }

    /// Inject a fault script (see [`crate::chaos`] for the format).
    pub fn with_fault_script(mut self, script: impl Into<String>) -> ChurnConfig {
        self.fault_script = Some(script.into());
        self
    }
}

/// The benchmark churn regime: `flows` cache-follower flows at 80% load
/// on a 1 Gbps / 10 ms dumbbell under CUBIC — `churn_100k` in
/// `perf::time_all_scenarios` runs this with `flows = 100_000` (~29 s of
/// simulated time; O(100k) flows through a handful of arena slots).
pub fn churn_benchmark_config(flows: u64, seed: u64) -> ChurnConfig {
    let cdf = SizeCdf::builtin("cache-follower").expect("bundled CDF");
    let rate_bps = 1e9;
    let arrival = Arrival::poisson_for_load(0.8, rate_bps, cdf.mean_bytes());
    let link = LinkSetup::new(rate_bps, SimDuration::from_millis(10), 1_250_000);
    ChurnConfig::new(Protocol::Tcp("cubic"), link, cdf, arrival, flows, seed)
}

/// The workload generator as a churn driver: lazy one-arrival look-ahead,
/// sizes and gaps from derived RNG streams, harvests into a shared
/// collector.
struct WorkloadDriver {
    protocol: Protocol,
    rtt: SimDuration,
    fwd_path: Vec<LinkId>,
    rev_path: Vec<LinkId>,
    arr_rng: SimRng,
    size_rng: SimRng,
    arrival: Arrival,
    cdf: SizeCdf,
    remaining: u64,
    clock_secs: f64,
    dead_time_budget: Option<SimDuration>,
    samples: Rc<RefCell<Vec<ChurnSample>>>,
}

impl ChurnDriver for WorkloadDriver {
    fn next_arrival(&mut self, _now: SimTime) -> Option<(SimTime, ChurnFlow)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock_secs += self.arrival.gap_secs(&mut self.arr_rng);
        let bytes = self.cdf.sample(&mut self.size_rng);
        let sender = self
            .protocol
            .build_sender_budgeted(
                FlowSize::Bytes(bytes),
                1500,
                self.rtt,
                self.dead_time_budget,
            )
            .unwrap_or_else(|e| panic!("churn config references an unknown algorithm: {e}"));
        Some((
            SimTime::from_secs_f64(self.clock_secs),
            ChurnFlow {
                sender,
                receiver: Box::new(SackReceiver::new()),
                fwd_path: self.fwd_path.clone(),
                rev_path: self.rev_path.clone(),
                tag: bytes,
            },
        ))
    }

    fn on_flow_complete(&mut self, tag: u64, stats: &FlowStats, _now: SimTime) {
        self.samples.borrow_mut().push(ChurnSample {
            bytes: tag,
            fct: stats.fct().map(|d| d.as_secs_f64()),
            goodput: stats.goodput_bytes,
        });
    }
}

/// Replay the arrival-gap stream to find when the last flow arrives —
/// `derive` is consumption-independent, so this probe stream is identical
/// to the one the driver will consume.
fn last_arrival_secs(cfg: &ChurnConfig) -> f64 {
    let mut probe = SimRng::new(cfg.seed).derive(ARRIVAL_STREAM);
    let mut t = 0.0;
    for _ in 0..cfg.flows {
        t += cfg.arrival.gap_secs(&mut probe);
    }
    t
}

/// Run an open-loop churn experiment: admit `cfg.flows` flows over a
/// shared dumbbell bottleneck through the simulator's recycling slot
/// arena, then summarize FCTs by size bucket.
pub fn run_churn(cfg: ChurnConfig) -> ChurnReport {
    let last_arrival = last_arrival_secs(&cfg);
    let horizon = SimTime::from_secs_f64(last_arrival) + cfg.drain;

    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: cfg.sample_interval,
        seed: cfg.seed,
    });
    // One shared path for every flow: src → (bottleneck) → mid → recv and
    // back, with the RTT split across delay shims exactly like
    // `run_dumbbell` — but one receiver host total, not one per flow.
    let setup = cfg.link;
    let mut topo = Topology::new();
    let src = topo.add_host();
    let mid = topo.add_switch();
    topo.add_link(
        src,
        mid,
        LinkConfig {
            rate_bps: Some(setup.rate_bps),
            delay: SimDuration::ZERO,
            loss: setup.loss,
            queue: setup.queue.build(setup.buffer_bytes),
            schedule: LinkSchedule::new(),
            shaper: setup.shaper(),
        },
    );
    let half = setup.rtt / 2;
    let recv = topo.add_host();
    topo.add_link(mid, recv, LinkConfig::delay_only(half));
    topo.add_link(
        recv,
        src,
        LinkConfig::delay_only(setup.rtt - half).with_loss(setup.ack_loss),
    );
    topo.install(&mut net);
    let path = topo.flow_path(src, recv, 0);

    if let Some(text) = &cfg.fault_script {
        let script = FaultScript::parse(text).expect("churn fault scripts are well-formed");
        net.set_fault_plane(FaultPlane::new(script));
    }

    let samples: Rc<RefCell<Vec<ChurnSample>>> = Rc::new(RefCell::new(Vec::new()));
    let master = SimRng::new(cfg.seed);
    net.set_churn_driver(Box::new(WorkloadDriver {
        protocol: cfg.protocol,
        rtt: setup.rtt,
        fwd_path: path.fwd,
        rev_path: path.rev,
        arr_rng: master.derive(ARRIVAL_STREAM),
        size_rng: master.derive(SIZE_STREAM),
        arrival: cfg.arrival,
        cdf: cfg.cdf,
        remaining: cfg.flows,
        clock_secs: 0.0,
        dead_time_budget: cfg.dead_time_budget,
        samples: Rc::clone(&samples),
    }));
    // O(100k) flows: keep aggregates and FCTs, skip per-flow series.
    net.set_record_series(false);

    let report = net.build().run_until(horizon);

    let samples = Rc::try_unwrap(samples)
        .expect("driver dropped with the simulation")
        .into_inner();
    summarize(samples, &report, last_arrival, horizon)
}

fn summarize(
    samples: Vec<ChurnSample>,
    report: &SimReport,
    last_arrival: f64,
    horizon: SimTime,
) -> ChurnReport {
    let mut overall = FctSummary::default();
    let mut buckets: Vec<ChurnBucket> = SIZE_BUCKETS
        .iter()
        .map(|&(label, _)| ChurnBucket {
            label,
            flows: 0,
            fct: FctSummary::default(),
        })
        .collect();
    let mut goodput_bytes = 0u64;
    for s in &samples {
        goodput_bytes += s.goodput;
        let b = SIZE_BUCKETS
            .iter()
            .position(|&(_, max)| s.bytes <= max)
            .expect("buckets end at u64::MAX");
        buckets[b].flows += 1;
        match s.fct {
            Some(fct) => {
                overall.fcts.push(fct);
                buckets[b].fct.fcts.push(fct);
            }
            None => {
                overall.incomplete += 1;
                buckets[b].fct.incomplete += 1;
            }
        }
    }
    let horizon_secs = horizon.as_secs_f64();
    let churn = report.churn;
    ChurnReport {
        overall,
        buckets,
        goodput_mbps: goodput_bytes as f64 * 8.0 / horizon_secs / 1e6,
        arrival_rate_hz: if last_arrival > 0.0 {
            churn.arrivals as f64 / last_arrival
        } else {
            0.0
        },
        completion_rate_hz: churn.completions as f64 / horizon_secs,
        horizon_secs,
        events_processed: report.events_processed,
        churn,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_parse_and_report_sane_means() {
        for name in builtin_names() {
            let cdf = SizeCdf::builtin(name).expect("listed builtin loads");
            assert_eq!(cdf.name(), name);
            assert!(cdf.points().len() >= 3);
            let mean = cdf.mean_bytes();
            assert!(
                mean > cdf.min_bytes() as f64 && mean < cdf.max_bytes() as f64,
                "{name}: mean {mean} inside support"
            );
        }
        // The documented shapes: cache-follower ~24 KB, web-search ~1.7 MB.
        let cache = SizeCdf::builtin("cache-follower").unwrap().mean_bytes();
        assert!((20_000.0..30_000.0).contains(&cache), "{cache}");
        let web = SizeCdf::builtin("web-search").unwrap().mean_bytes();
        assert!((1.2e6..2.2e6).contains(&web), "{web}");
    }

    #[test]
    fn builtins_round_trip_through_render() {
        for name in builtin_names() {
            let cdf = SizeCdf::builtin(name).unwrap();
            let back = SizeCdf::parse(name, &cdf.render()).expect("rendered text parses");
            assert_eq!(cdf, back, "{name} round-trips");
        }
    }

    #[test]
    fn parse_errors_are_line_attributed() {
        let cases: &[(&str, usize)] = &[
            ("", 0),                            // empty file
            ("# only comments\n", 0),           // no breakpoints
            ("1000\n", 1),                      // missing column
            ("1000 0.5 extra\n", 1),            // too many columns
            ("abc 0.5\n", 1),                   // bad byte count
            ("1000 xyz\n", 1),                  // bad probability
            ("0 0.5\n", 1),                     // zero size
            ("1000 0.0\n", 1),                  // prob out of range
            ("1000 1.5\n", 1),                  // prob out of range
            ("1000 nan\n", 1),                  // non-finite prob
            ("1000 0.5\n500 1.0\n", 2),         // sizes not increasing
            ("1000 0.5\n2000 0.4\n", 2),        // probs decreasing
            ("1000 0.5\n2000 0.9\n", 2),        // does not end at 1.0
            ("# c\n1000 0.5\n\n2000 0.9\n", 4), // line numbers count raw lines
        ];
        for (text, line) in cases {
            let e = SizeCdf::parse("junk", text).expect_err("must fail");
            assert_eq!(e.line, *line, "input {text:?} → {e}");
        }
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let cdf = SizeCdf::builtin("web-search").unwrap();
        let mut last = 0;
        for i in 0..=1000 {
            let u = i as f64 / 1000.0 * 0.999_999;
            let q = cdf.quantile(u);
            assert!(q >= last, "quantile monotone at u={u}");
            assert!(q >= cdf.min_bytes() && q <= cdf.max_bytes());
            last = q;
        }
    }

    #[test]
    fn poisson_interarrival_mean_within_ci() {
        // 20k exponential gaps at λ = 250/s: the sample mean lands within
        // 3σ/√n ≈ 2.1% of 1/λ for a correct generator at this fixed seed.
        let arrival = Arrival::poisson(250.0);
        let mut rng = SimRng::new(7).derive(ARRIVAL_STREAM);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| arrival.gap_secs(&mut rng)).sum();
        let m = sum / n as f64;
        let want = arrival.mean_gap_secs();
        assert!(
            (m - want).abs() / want < 0.03,
            "sample mean {m} vs 1/λ {want}"
        );
    }

    #[test]
    fn sampled_sizes_reproduce_cdf_at_breakpoints() {
        // KS-style check: with interpolated inverse-CDF sampling the
        // empirical CDF at every breakpoint must match the spec within
        // sampling noise (20k draws → tolerance 0.02 ≫ 3·√(p(1−p)/n)).
        for name in builtin_names() {
            let cdf = SizeCdf::builtin(name).unwrap();
            let mut rng = SimRng::new(11).derive(SIZE_STREAM);
            let n = 20_000;
            let draws: Vec<u64> = (0..n).map(|_| cdf.sample(&mut rng)).collect();
            for &(bytes, prob) in cdf.points() {
                let emp = draws.iter().filter(|&&d| d <= bytes).count() as f64 / n as f64;
                assert!(
                    (emp - prob).abs() < 0.02,
                    "{name} @ {bytes}: empirical {emp} vs {prob}"
                );
            }
        }
    }

    #[test]
    fn deterministic_arrivals_are_exact() {
        let arrival = Arrival::every(SimDuration::from_millis(10));
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(arrival.gap_secs(&mut rng), 0.010);
        }
    }

    #[test]
    fn churn_run_conserves_and_recycles() {
        let cdf = SizeCdf::builtin("cache-follower").unwrap();
        let link = LinkSetup::new(100e6, SimDuration::from_millis(20), 250_000);
        let arrival = Arrival::poisson_for_load(0.5, 100e6, cdf.mean_bytes());
        let cfg = ChurnConfig::new(Protocol::Tcp("cubic"), link, cdf, arrival, 400, 42);
        let r = run_churn(cfg);
        let c = r.churn;
        assert_eq!(c.arrivals, 400);
        assert_eq!(
            c.arrivals,
            c.completions + c.stalls + c.live_at_end,
            "conservation: {c:?}"
        );
        assert_eq!(c.completions, 400, "all flows drain: {c:?}");
        // Allocation-free steady state: a few dozen live slots serve 400
        // flows, so the arena recycles heavily.
        assert!(c.peak_live < 100, "peak live slots {} ≪ 400", c.peak_live);
        assert!(c.recycled > 300, "slots recycled: {}", c.recycled);
        assert_eq!(r.samples.len(), 400);
        assert_eq!(r.overall.count(), 400);
        assert!(r.overall.p50_ms() > 0.0);
        assert!(r.overall.p999_ms() >= r.overall.p50_ms());
        // Every bucket flow count sums back to the total.
        let n: usize = r.buckets.iter().map(|b| b.flows).sum();
        assert_eq!(n, 400);
    }

    #[test]
    fn churn_report_is_reproducible() {
        let mk = || {
            let cdf = SizeCdf::builtin("web-search").unwrap();
            let link = LinkSetup::new(200e6, SimDuration::from_millis(10), 250_000);
            let arrival = Arrival::poisson_for_load(0.4, 200e6, cdf.mean_bytes());
            ChurnConfig::new(Protocol::Tcp("cubic"), link, cdf, arrival, 60, 9)
        };
        let a = run_churn(mk());
        let b = run_churn(mk());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.events_processed, b.events_processed);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on junk: any input either parses into
        /// a valid CDF or yields a line-attributed error.
        #[test]
        fn parse_never_panics(
            bytes in collection::vec(0u8..128, 0..200)
        ) {
            let text: String = bytes.into_iter().map(|b| b as char).collect();
            match SizeCdf::parse("fuzz", &text) {
                Ok(cdf) => {
                    prop_assert!(!cdf.points().is_empty());
                    prop_assert_eq!(cdf.points().last().unwrap().1, 1.0);
                }
                Err(e) => prop_assert!(!e.reason.is_empty()),
            }
        }

        /// Structured junk: random lines of numbers, still never panics,
        /// and any accepted CDF is internally consistent (monotone with a
        /// normalized tail).
        #[test]
        fn parse_structured_junk(
            rows in proptest::collection::vec((0u64..5000, -1.0f64..2.0), 0..12)
        ) {
            let text: String = rows
                .iter()
                .map(|(b, p)| format!("{b} {p}\n"))
                .collect();
            if let Ok(cdf) = SizeCdf::parse("fuzz", &text) {
                let pts = cdf.points();
                for w in pts.windows(2) {
                    prop_assert!(w[1].0 > w[0].0);
                    prop_assert!(w[1].1 >= w[0].1);
                }
                prop_assert_eq!(pts.last().unwrap().1, 1.0);
                // And sampling from it stays in-support.
                let mut rng = SimRng::new(3);
                for _ in 0..32 {
                    let s = cdf.sample(&mut rng);
                    prop_assert!(s >= cdf.min_bytes() && s <= cdf.max_bytes());
                }
            }
        }
    }
}
