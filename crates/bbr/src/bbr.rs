//! The BBR-style state machine: Startup → Drain → ProbeBW ⇄ ProbeRTT,
//! driven by the [`crate::model`] path model, requesting *both* effects —
//! `set_rate(pacing_gain · btl_bw)` and `set_cwnd(cwnd_gain · BDP)` — on
//! every control decision.

use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::cc::{AckEvent, CongestionControl, Ctx, LossEvent, LossKind, SentEvent};
use pcc_transport::registry::CcParams;
use pcc_transport::report::MeasurementReport;

use crate::model::{DeliverySampler, MaxBwFilter, MinRttTracker};

/// Startup pacing/cwnd gain, `2/ln 2` ≈ 2.885: the smallest gain that
/// still doubles the sending rate every round while the pipe is unfilled.
pub const STARTUP_GAIN: f64 = 2.0 / std::f64::consts::LN_2;
/// Drain pacing gain, the inverse of [`STARTUP_GAIN`]: one round at
/// `ln 2 / 2` removes exactly the queue Startup's overshoot built.
pub const DRAIN_GAIN: f64 = std::f64::consts::LN_2 / 2.0;
/// ProbeBW's eight-slot pacing-gain cycle: probe up ¼, drain the probe's
/// queue, then cruise six rounds at the estimate.
pub const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Steady-state cwnd gain: twice the BDP absorbs delayed/aggregated ACKs.
pub const CWND_GAIN: f64 = 2.0;
/// Never let the window collapse below this (BBR's MinPipeCwnd).
pub const MIN_CWND_PKTS: f64 = 4.0;
/// Quantization slack added to the cwnd target.
const CWND_SLACK_PKTS: f64 = 3.0;
/// Bottleneck-bandwidth filter window, in packet-timed round trips.
pub const BW_WINDOW_ROUNDS: u64 = 10;
/// Min-RTT estimate lifetime before a deliberate re-probe.
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Time spent near-idle re-measuring the propagation RTT.
pub const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Startup exits after this many rounds without ≥25% bandwidth growth.
const FULL_BW_ROUNDS: u32 = 3;
/// "Still growing" threshold for the Startup exit check.
const FULL_BW_GROWTH: f64 = 1.25;
/// The sender's initial window (packets), also the pre-sample BDP guess.
const INITIAL_CWND_PKTS: f64 = 10.0;

/// Control states (§BBR: one four-phase machine).
#[derive(Clone, Copy, Debug, PartialEq)]
enum State {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Remove the queue Startup built.
    Drain,
    /// Steady state: cycle pacing gains around the estimate, slot `phase`.
    ProbeBw { phase: usize, phase_start: SimTime },
    /// Near-idle re-measurement of the propagation RTT. `min_seen` holds
    /// only RTTs *sampled during the probe* — seeding it from the (by
    /// definition stale) pre-probe estimate would let the probe conclude
    /// by re-installing exactly the value it set out to re-measure.
    ProbeRtt {
        until: SimTime,
        min_seen: Option<SimDuration>,
    },
}

/// A BBR-style model-based congestion controller — the workspace's
/// reference *hybrid* algorithm: every control decision requests a pacing
/// rate *and* a congestion window, so the engine (simulated
/// [`pcc_transport::CcSender`] or the real-UDP sender) enforces both
/// simultaneously.
///
/// Faithful to BBR v1's architecture (windowed max-bandwidth filter,
/// windowed min-RTT with deliberate ProbeRTT refresh, the four-phase gain
/// machine, loss-blindness in steady state); simplified in ways that do
/// not affect the paper-comparison role: no app-limited accounting (the
/// evaluation's flows are backlogged), no packet-conservation recovery
/// phase (a timeout clamps the window to [`MIN_CWND_PKTS`] for one round
/// instead), and ProbeBW's 1.25-slot advances on time rather than on
/// inflight feedback.
pub struct Bbr {
    mss: u32,
    rtt_hint: SimDuration,
    bw: MaxBwFilter,
    min_rtt: MinRttTracker,
    /// Steady-state cwnd gain (spec key `cwnd_gain`; default
    /// [`CWND_GAIN`]).
    cwnd_gain: f64,
    sampler: DeliverySampler,
    /// Packet-timed round trips observed.
    round: u64,
    /// `delivered` level that, once carried by an acked packet's send
    /// record, marks the start of the next round.
    next_round_delivered: u64,
    /// Startup concluded the pipe is full.
    filled_pipe: bool,
    full_bw: f64,
    full_bw_count: u32,
    state: State,
    /// Post-RTO packet conservation: clamp cwnd until the next round.
    conservation: bool,
    /// Generation tag for the ProbeRTT exit timer.
    timer_gen: u64,
}

impl Bbr {
    /// Build from registry construction parameters. MSS and RTT hint
    /// seed the pre-sample model; the validated spec bag may override the
    /// ProbeRTT refresh interval (`probe_rtt_ms`) and the steady-state
    /// cwnd gain (`cwnd_gain`) — see [`crate::BBR_SCHEMA`].
    pub fn new(params: &CcParams) -> Self {
        let min_rtt_window = params
            .spec
            .u64("probe_rtt_ms")
            .map(SimDuration::from_millis)
            .unwrap_or(MIN_RTT_WINDOW);
        Bbr {
            mss: params.mss.max(1),
            rtt_hint: params.rtt_hint,
            bw: MaxBwFilter::new(BW_WINDOW_ROUNDS),
            min_rtt: MinRttTracker::new(min_rtt_window),
            cwnd_gain: params.spec.f64("cwnd_gain").unwrap_or(CWND_GAIN),
            sampler: DeliverySampler::new(),
            round: 0,
            next_round_delivered: 0,
            filled_pipe: false,
            full_bw: 0.0,
            full_bw_count: 0,
            state: State::Startup,
            conservation: false,
            timer_gen: 0,
        }
    }

    /// Current bottleneck-bandwidth estimate, bits/sec (pre-sample: the
    /// initial window spread over the RTT hint).
    pub fn btl_bw_bps(&self) -> f64 {
        self.bw.get().unwrap_or_else(|| {
            INITIAL_CWND_PKTS * self.mss as f64 * 8.0 / self.rtt_hint.as_secs_f64().max(1e-6)
        })
    }

    /// Current propagation-RTT estimate (pre-sample: the hint).
    pub fn min_rtt_estimate(&self) -> SimDuration {
        self.min_rtt.get().unwrap_or(self.rtt_hint)
    }

    /// Bandwidth-delay product in packets under the current model.
    pub fn bdp_pkts(&self) -> f64 {
        let bits = self.btl_bw_bps() * self.min_rtt_estimate().as_secs_f64();
        (bits / (self.mss as f64 * 8.0)).max(1.0)
    }

    /// Human-readable state name (tests, traces).
    pub fn phase_name(&self) -> &'static str {
        match self.state {
            State::Startup => "startup",
            State::Drain => "drain",
            State::ProbeBw { .. } => "probe-bw",
            State::ProbeRtt { .. } => "probe-rtt",
        }
    }

    /// True once Startup has measured a bandwidth plateau.
    pub fn filled_pipe(&self) -> bool {
        self.filled_pipe
    }

    /// The ProbeRTT refresh interval this instance runs with (default
    /// [`MIN_RTT_WINDOW`]; spec key `probe_rtt_ms`).
    pub fn min_rtt_window(&self) -> SimDuration {
        self.min_rtt.window()
    }

    /// The steady-state cwnd gain this instance runs with (default
    /// [`CWND_GAIN`]; spec key `cwnd_gain`).
    pub fn steady_cwnd_gain(&self) -> f64 {
        self.cwnd_gain
    }

    fn pacing_gain(&self) -> f64 {
        match self.state {
            State::Startup => STARTUP_GAIN,
            State::Drain => DRAIN_GAIN,
            State::ProbeBw { phase, .. } => CYCLE_GAINS[phase],
            State::ProbeRtt { .. } => 1.0,
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.state {
            State::Startup | State::Drain => STARTUP_GAIN,
            State::ProbeBw { .. } => self.cwnd_gain,
            State::ProbeRtt { .. } => 1.0,
        }
    }

    /// Push the current operating point — always *both* effects.
    fn control(&mut self, ctx: &mut Ctx) {
        let bw = self.btl_bw_bps();
        ctx.set_rate(self.pacing_gain() * bw);
        let cwnd = if matches!(self.state, State::ProbeRtt { .. }) || self.conservation {
            MIN_CWND_PKTS
        } else {
            (self.cwnd_gain() * self.bdp_pkts() + CWND_SLACK_PKTS).max(MIN_CWND_PKTS)
        };
        ctx.set_cwnd(cwnd);
    }

    fn enter_probe_bw(&mut self, ctx: &mut Ctx) {
        // Random initial slot, excluding the 0.75 drain slot (index 1), so
        // competing BBR flows don't synchronize their probes.
        let idx = ctx.rng.range_u64(0, 7);
        let phase = if idx >= 1 { idx as usize + 1 } else { 0 };
        self.state = State::ProbeBw {
            phase,
            phase_start: ctx.now,
        };
    }

    fn enter_probe_rtt(&mut self, sample: Option<SimDuration>, ctx: &mut Ctx) {
        let until = ctx.now + PROBE_RTT_DURATION.max(self.min_rtt_estimate());
        self.state = State::ProbeRtt {
            until,
            min_seen: sample,
        };
        self.timer_gen += 1;
        ctx.set_timer(until, self.timer_gen);
    }

    fn exit_probe_rtt(&mut self, ctx: &mut Ctx) {
        if let State::ProbeRtt { min_seen, .. } = self.state {
            // Install what the probe measured. If not a single clean
            // sample arrived (a near-dead path), keep the old value but
            // refresh its stamp — re-entering ProbeRTT immediately would
            // starve the flow for no information gain.
            self.min_rtt
                .reset(min_seen.unwrap_or_else(|| self.min_rtt_estimate()), ctx.now);
        }
        if self.filled_pipe {
            self.enter_probe_bw(ctx);
        } else {
            self.state = State::Startup;
        }
    }

    /// Startup's plateau detector, evaluated once per round.
    fn check_full_pipe(&mut self) {
        let Some(bw) = self.bw.get() else {
            return;
        };
        if bw >= self.full_bw * FULL_BW_GROWTH {
            self.full_bw = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= FULL_BW_ROUNDS {
            self.filled_pipe = true;
        }
    }

    /// One step of the four-phase machine, fed by values rather than a
    /// specific event shape so both feedback granularities (per-ACK and
    /// batched [`MeasurementReport`]s) drive the same transitions.
    /// `sampled_rtt` is a genuine propagation sample from the feedback
    /// that triggered this step, if one exists.
    fn advance_machine(
        &mut self,
        in_flight: u64,
        sampled_rtt: Option<SimDuration>,
        round_advanced: bool,
        ctx: &mut Ctx,
    ) {
        match self.state {
            State::Startup => {
                if round_advanced {
                    self.check_full_pipe();
                }
                if self.filled_pipe {
                    self.state = State::Drain;
                }
            }
            State::Drain => {
                if (in_flight as f64) <= self.bdp_pkts() {
                    self.enter_probe_bw(ctx);
                }
            }
            State::ProbeBw { phase, phase_start } => {
                if ctx.now.saturating_since(phase_start) >= self.min_rtt_estimate() {
                    self.state = State::ProbeBw {
                        phase: (phase + 1) % CYCLE_GAINS.len(),
                        phase_start: ctx.now,
                    };
                }
            }
            State::ProbeRtt { until, min_seen } => {
                if let Some(rtt) = sampled_rtt {
                    self.state = State::ProbeRtt {
                        until,
                        min_seen: Some(min_seen.map_or(rtt, |m| m.min(rtt))),
                    };
                }
                if ctx.now >= until {
                    self.exit_probe_rtt(ctx);
                }
            }
        }
        // A stale propagation estimate forces a deliberate re-probe, from
        // any state but ProbeRTT itself. Only a genuine sample may seed
        // the probe's minimum; an unsampled trigger (e.g. the ACK of a
        // retransmission) starts it empty.
        if !matches!(self.state, State::ProbeRtt { .. }) && self.min_rtt.expired(ctx.now) {
            self.enter_probe_rtt(sampled_rtt, ctx);
        }
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        // Pre-sample operating point: Startup gains over the initial
        // window spread across the RTT hint. Both effects from the first
        // decision on.
        self.control(ctx);
    }

    fn on_sent(&mut self, ev: &SentEvent, _ctx: &mut Ctx) {
        self.sampler.on_sent(ev.seq, ev.now, ev.retx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
        if ack.sampled {
            self.min_rtt.update(ack.rtt, ctx.now);
        }
        let sample = self.sampler.on_ack(
            ack.seq,
            ack.cum_ack,
            ack.newly_acked,
            ack.of_retx,
            self.mss,
            ctx.now,
        );
        let mut round_advanced = false;
        if let Some(s) = sample {
            if s.delivered_at_send >= self.next_round_delivered {
                self.round += 1;
                self.next_round_delivered = self.sampler.delivered();
                round_advanced = true;
                self.conservation = false;
            }
            self.bw.update(self.round, s.bw_bps);
        }
        self.advance_machine(
            ack.in_flight,
            ack.sampled.then_some(ack.rtt),
            round_advanced,
            ctx,
        );
        self.control(ctx);
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
        self.sampler.on_loss(loss.seqs);
        // BBR's model is loss-blind by design (the property Fig. 7 leans
        // on); only a timeout — evidence the whole flight died — clamps
        // the window to the floor until a fresh round confirms delivery.
        if loss.kind == LossKind::Timeout {
            self.conservation = true;
        }
        self.control(ctx);
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut Ctx) {
        // Batched feedback: one report ≈ one packet-timed round trip (the
        // engine's default cadence is `Rtts(1.0)`), so the report sequence
        // itself clocks the round counter and the bandwidth filter — the
        // per-packet `DeliverySampler` never sees batched traffic.
        if rep.rtt_samples > 0 {
            if let Some(min) = rep.rtt_min {
                self.min_rtt.update(min, ctx.now);
            }
        }
        if rep.acked_pkts > 0 {
            self.round += 1;
            self.conservation = false;
            let bw = rep.delivery_rate_bps();
            if bw > 0.0 {
                self.bw.update(self.round, bw);
            }
        }
        if rep.timeouts > 0 {
            // Same policy as the per-ACK path: only whole-flight death
            // clamps the window; detected losses leave the model alone.
            self.conservation = true;
        }
        self.advance_machine(rep.in_flight, rep.rtt_min, rep.acked_pkts > 0, ctx);
        self.control(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token != self.timer_gen {
            return; // stale generation
        }
        if let State::ProbeRtt { until, .. } = self.state {
            if ctx.now >= until {
                self.exit_probe_rtt(ctx);
            }
        }
        self.control(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::rng::SimRng;
    use pcc_transport::cc::Effects;

    /// Minimal harness driving the controller with a virtual clock — the
    /// same pattern `PccController`'s unit suite uses.
    struct Harness {
        cc: Bbr,
        rng: SimRng,
        fx: Effects,
        now: SimTime,
        rate: f64,
        cwnd: f64,
        timers: Vec<(SimTime, u64)>,
        next_seq: u64,
        /// Every `(rate, cwnd)` pair as of each applied decision.
        decisions: Vec<(Option<f64>, Option<f64>)>,
    }

    const MSS: u32 = 1500;

    impl Harness {
        fn new(rtt_hint_ms: u64) -> Self {
            let params = CcParams::default()
                .with_mss(MSS)
                .with_rtt_hint(SimDuration::from_millis(rtt_hint_ms));
            Harness {
                cc: Bbr::new(&params),
                rng: SimRng::new(5),
                fx: Effects::default(),
                now: SimTime::ZERO,
                rate: 0.0,
                cwnd: 0.0,
                timers: Vec::new(),
                next_seq: 0,
                decisions: Vec::new(),
            }
        }

        fn drain(&mut self) {
            let d = self.fx.drain();
            if d.rate.is_some() || d.cwnd.is_some() {
                self.decisions.push((d.rate, d.cwnd));
            }
            if let Some(r) = d.rate {
                self.rate = r;
            }
            if let Some(w) = d.cwnd {
                self.cwnd = w;
            }
            self.timers.extend(d.timers);
        }

        fn start(&mut self) {
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_start(&mut ctx);
            }
            self.drain();
        }

        fn advance_to(&mut self, t: SimTime) {
            loop {
                self.timers.sort_by_key(|&(at, _)| at);
                let Some(&(at, token)) = self.timers.first() else {
                    break;
                };
                if at > t {
                    break;
                }
                self.timers.remove(0);
                self.now = at;
                {
                    let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                    self.cc.on_timer(token, &mut ctx);
                }
                self.drain();
            }
            self.now = t;
        }

        /// One traffic round: send `n` packets now, then ack them all one
        /// flight-time later, spaced at the "link rate" `pps`, each ACK
        /// carrying `rtt`. Produces genuine delivery-rate samples.
        fn round_trip(&mut self, n: u64, rtt: SimDuration, pps: f64, in_flight: u64) {
            let base = self.next_seq;
            for i in 0..n {
                let ev = SentEvent {
                    now: self.now,
                    seq: base + i,
                    bytes: MSS,
                    retx: false,
                    in_flight: i + 1,
                };
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_sent(&ev, &mut ctx);
            }
            let sent_at = self.now;
            for i in 0..n {
                let seq = base + i;
                let at = sent_at + rtt + SimDuration::from_secs_f64(i as f64 / pps);
                self.advance_to(at);
                let ack = AckEvent {
                    now: self.now,
                    seq,
                    rtt,
                    sampled: true,
                    srtt: rtt,
                    min_rtt: rtt,
                    max_rtt: rtt,
                    recv_at: self.now,
                    probe_train: None,
                    of_retx: false,
                    cum_ack: seq + 1,
                    newly_acked: 1,
                    in_flight,
                    mss: MSS,
                    in_recovery: false,
                };
                {
                    let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                    self.cc.on_ack(&ack, &mut ctx);
                }
                self.drain();
            }
            self.next_seq = base + n;
        }

        /// Deliver one ACK of a retransmission: `sampled = false`, no
        /// delivery record — the shape both engines emit after recovery.
        fn unsampled_ack(&mut self) {
            let ack = AckEvent {
                now: self.now,
                seq: 0,
                rtt: SimDuration::from_millis(1),
                sampled: false,
                srtt: RTT,
                min_rtt: RTT,
                max_rtt: RTT,
                recv_at: self.now,
                probe_train: None,
                of_retx: true,
                cum_ack: self.next_seq,
                newly_acked: 1,
                in_flight: 1,
                mss: MSS,
                in_recovery: false,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_ack(&ack, &mut ctx);
            }
            self.drain();
        }

        fn loss(&mut self, seqs: &[u64], kind: LossKind) {
            let ev = LossEvent {
                now: self.now,
                seqs,
                kind,
                new_episode: true,
                in_flight: 0,
                mss: MSS,
            };
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_loss(&ev, &mut ctx);
            }
            self.drain();
        }
    }

    const RTT: SimDuration = SimDuration::from_millis(30);

    /// Acks arriving at ~20 Mbps in 1500 B packets.
    const PPS_20MBPS: f64 = 20e6 / (1500.0 * 8.0);

    /// Drive enough identical-bandwidth rounds to exit Startup and Drain.
    fn to_probe_bw(h: &mut Harness) {
        for _ in 0..8 {
            h.round_trip(40, RTT, PPS_20MBPS, 1);
            if h.cc.phase_name() == "probe-bw" {
                break;
            }
        }
        assert_eq!(h.cc.phase_name(), "probe-bw", "reached steady state");
    }

    #[test]
    fn starts_with_startup_gains_on_the_hint() {
        let mut h = Harness::new(30);
        h.start();
        // 2/ln2 × 10 pkts × 1500 B × 8 / 30 ms.
        let expect = STARTUP_GAIN * 10.0 * 1500.0 * 8.0 / 0.030;
        assert!((h.rate - expect).abs() < 1.0, "rate {} vs {expect}", h.rate);
        assert!(h.cwnd >= MIN_CWND_PKTS, "cwnd set: {}", h.cwnd);
        assert_eq!(h.cc.phase_name(), "startup");
    }

    #[test]
    fn every_decision_sets_both_effects() {
        let mut h = Harness::new(30);
        h.start();
        for _ in 0..6 {
            h.round_trip(30, RTT, PPS_20MBPS, 1);
        }
        h.loss(&[9999], LossKind::Detected);
        assert!(!h.decisions.is_empty());
        for (i, (rate, cwnd)) in h.decisions.iter().enumerate() {
            assert!(
                rate.is_some() && cwnd.is_some(),
                "decision {i} must set rate AND cwnd: {:?}",
                (rate, cwnd)
            );
        }
    }

    #[test]
    fn bandwidth_plateau_exits_startup_through_drain() {
        let mut h = Harness::new(30);
        h.start();
        assert_eq!(h.cc.phase_name(), "startup");
        // Same measured bandwidth round after round: the 25%-growth check
        // fails three times and the machine moves on.
        to_probe_bw(&mut h);
        assert!(h.cc.filled_pipe());
        // The model converged on the best delivery-rate sample the
        // harness's batch shape can produce — all 40 packets of a round
        // delivered over one flight-plus-serialization span — not on the
        // startup overshoot.
        let bw = h.cc.btl_bw_bps();
        let expect = 40.0 * 1500.0 * 8.0 / (RTT.as_secs_f64() + 39.0 / PPS_20MBPS);
        assert!(
            (bw - expect).abs() / expect < 0.2,
            "btl_bw tracks delivery: {bw:.0} vs {expect:.0}"
        );
        // Steady-state window is ~2×BDP, far below startup's.
        let bdp = h.cc.bdp_pkts();
        assert!(
            (h.cwnd - (CWND_GAIN * bdp + 3.0)).abs() < 1.0,
            "cwnd {} vs 2×BDP {bdp}",
            h.cwnd
        );
    }

    #[test]
    fn probe_bw_cycles_through_the_gain_slots() {
        let mut h = Harness::new(30);
        h.start();
        to_probe_bw(&mut h);
        let mut gains = Vec::new();
        // Single-packet rounds: one ACK per min-RTT, so the cycle advances
        // exactly one slot per round and sampling can't alias past the
        // probe/drain slots. The pacing-rate/estimate ratio IS the slot
        // gain, whatever the bandwidth filter currently holds.
        for _ in 0..12 {
            h.round_trip(1, RTT, PPS_20MBPS, 1);
            gains.push(h.rate / h.cc.btl_bw_bps());
        }
        let hi = gains.iter().cloned().fold(0.0_f64, f64::max);
        let lo = gains.iter().cloned().fold(f64::MAX, f64::min);
        assert!((hi - 1.25).abs() < 0.01, "probe slot seen: {hi}");
        assert!((lo - 0.75).abs() < 0.01, "drain slot seen: {lo}");
        let cruise = gains.iter().filter(|g| (**g - 1.0).abs() < 0.01).count();
        assert!(cruise >= 6, "cruise slots dominate: {gains:?}");
    }

    #[test]
    fn stale_min_rtt_triggers_probe_rtt_with_cwnd_floor() {
        let mut h = Harness::new(30);
        h.start();
        to_probe_bw(&mut h);
        assert_eq!(h.cc.min_rtt_estimate(), RTT);
        // RTT inflates to 36 ms: the 30 ms minimum never refreshes, and
        // after 10 s the machine must deliberately re-probe.
        let inflated = SimDuration::from_millis(36);
        let mut rounds = 0;
        while h.cc.phase_name() != "probe-rtt" && rounds < 400 {
            h.round_trip(40, inflated, PPS_20MBPS, 1);
            rounds += 1;
        }
        assert_eq!(h.cc.phase_name(), "probe-rtt", "after {rounds} rounds");
        assert!(
            h.now.as_secs_f64() > 10.0,
            "probe waited out the window: {:?}",
            h.now
        );
        assert_eq!(h.cwnd, MIN_CWND_PKTS, "ProbeRTT floors the window");
        // The exit timer returns the machine to ProbeBW with the fresh
        // (inflated) propagation estimate installed.
        h.advance_to(h.now + SimDuration::from_secs(1));
        assert_eq!(h.cc.phase_name(), "probe-bw");
        assert_eq!(h.cc.min_rtt_estimate(), inflated);
        assert!(h.cwnd > MIN_CWND_PKTS, "window restored: {}", h.cwnd);
    }

    #[test]
    fn probe_rtt_entered_unsampled_remeasures_rather_than_reinstalling_stale_min() {
        let mut h = Harness::new(30);
        h.start();
        to_probe_bw(&mut h);
        assert_eq!(h.cc.min_rtt_estimate(), RTT);
        // The min-RTT window expires quietly; the expiry is then noticed
        // by a retransmission ACK, which carries no usable RTT sample, so
        // the probe must start with an *empty* minimum.
        h.advance_to(h.now + SimDuration::from_secs(11));
        h.unsampled_ack();
        assert_eq!(h.cc.phase_name(), "probe-rtt");
        // Everything actually measured during the probe says 70 ms.
        let inflated = SimDuration::from_millis(70);
        h.round_trip(5, inflated, PPS_20MBPS, 1);
        h.advance_to(h.now + SimDuration::from_secs(1));
        assert_eq!(h.cc.phase_name(), "probe-bw");
        assert_eq!(
            h.cc.min_rtt_estimate(),
            inflated,
            "the probe installs what it measured, not the stale 30 ms"
        );
    }

    #[test]
    fn detected_loss_leaves_the_model_alone() {
        let mut h = Harness::new(30);
        h.start();
        to_probe_bw(&mut h);
        let (rate, cwnd) = (h.rate, h.cwnd);
        h.loss(&[h.next_seq + 1], LossKind::Detected);
        assert!(
            (h.rate - rate).abs() / rate < 1e-9,
            "rate unchanged by detected loss"
        );
        assert!((h.cwnd - cwnd).abs() < 1e-9, "cwnd unchanged");
    }

    #[test]
    fn timeout_clamps_cwnd_until_the_next_round() {
        let mut h = Harness::new(30);
        h.start();
        to_probe_bw(&mut h);
        assert!(h.cwnd > MIN_CWND_PKTS);
        h.loss(&[h.next_seq, h.next_seq + 1], LossKind::Timeout);
        assert_eq!(h.cwnd, MIN_CWND_PKTS, "conservation window");
        let rate_after = h.rate;
        assert!(rate_after > 1.0, "pacing continues at the model rate");
        // A full new round of delivery lifts the clamp.
        h.round_trip(40, RTT, PPS_20MBPS, 1);
        assert!(h.cwnd > MIN_CWND_PKTS, "restored: {}", h.cwnd);
    }

    /// One synthetic report spanning `span` with `acked` packets fully
    /// delivered at RTT; the interval-average delivery rate is then
    /// `acked · MSS · 8 / span`.
    fn mk_report(start: SimTime, end: SimTime, acked: u64, in_flight: u64) -> MeasurementReport {
        MeasurementReport {
            start,
            end,
            sent_pkts: acked,
            sent_bytes: acked * MSS as u64,
            acked_pkts: acked,
            acked_bytes: acked * MSS as u64,
            rtt_min: (acked > 0).then_some(RTT),
            rtt_max: (acked > 0).then_some(RTT),
            rtt_sum_ns: RTT.as_nanos() as u128 * acked as u128,
            rtt_samples: acked,
            srtt: RTT,
            min_rtt: RTT,
            in_flight,
            mss: MSS,
            ..MeasurementReport::default()
        }
    }

    impl Harness {
        fn report(&mut self, rep: &MeasurementReport) {
            self.now = rep.end;
            {
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.fx);
                self.cc.on_report(rep, &mut ctx);
            }
            self.drain();
        }
    }

    #[test]
    fn batched_reports_drive_startup_through_drain_to_probe_bw() {
        let mut h = Harness::new(30);
        h.start();
        assert_eq!(h.cc.phase_name(), "startup");
        // Ten back-to-back one-RTT reports, each carrying the same 20 Mbps
        // interval-average delivery rate: the plateau detector must fire
        // off report-clocked rounds exactly as it does off ACK-clocked
        // ones, and Drain must exit on the report's in-flight snapshot.
        let pkts_per_rtt = (20e6 * RTT.as_secs_f64() / (MSS as f64 * 8.0)) as u64;
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let end = t + RTT;
            h.report(&mk_report(t, end, pkts_per_rtt, 1));
            t = end;
            if h.cc.phase_name() == "probe-bw" {
                break;
            }
        }
        assert_eq!(h.cc.phase_name(), "probe-bw");
        assert!(h.cc.filled_pipe());
        let bw = h.cc.btl_bw_bps();
        assert!(
            (bw - 20e6).abs() / 20e6 < 0.05,
            "report-fed filter converges on the interval rate: {bw:.0}"
        );
        assert!(h.rate > 1.0 && h.cwnd >= MIN_CWND_PKTS, "both effects live");
    }

    #[test]
    fn batched_timeout_report_clamps_until_a_delivering_report() {
        let mut h = Harness::new(30);
        h.start();
        let pkts_per_rtt = (20e6 * RTT.as_secs_f64() / (MSS as f64 * 8.0)) as u64;
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let end = t + RTT;
            h.report(&mk_report(t, end, pkts_per_rtt, 1));
            t = end;
        }
        assert!(h.cwnd > MIN_CWND_PKTS);
        // An all-timeout report (the engine's urgent flush after an RTO)
        // clamps the window to the floor…
        let end = t + RTT;
        let mut dead = mk_report(t, end, 0, 0);
        dead.timeouts = 1;
        dead.lost_pkts = 2;
        dead.lost_bytes = 2 * MSS as u64;
        dead.loss_events = 1;
        dead.new_loss_episode = true;
        h.report(&dead);
        t = end;
        assert_eq!(h.cwnd, MIN_CWND_PKTS, "conservation window");
        // …and the next report that carries acknowledged data lifts it.
        let end = t + RTT;
        h.report(&mk_report(t, end, pkts_per_rtt, 1));
        assert!(h.cwnd > MIN_CWND_PKTS, "restored: {}", h.cwnd);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let run = || {
            let mut h = Harness::new(30);
            h.start();
            for _ in 0..10 {
                h.round_trip(25, RTT, PPS_20MBPS, 2);
            }
            (h.rate, h.cwnd, h.cc.phase_name())
        };
        assert_eq!(run(), run());
    }
}
