//! The path model a BBR-style algorithm maintains: a windowed-max filter
//! over bottleneck-bandwidth samples, a windowed-min RTT tracker, and the
//! per-packet delivery-rate sampler that produces the bandwidth samples.
//!
//! The sampler is the part that makes the model robust: instead of the
//! naive `newly_acked / rtt` (which collapses under aggregated or thinned
//! ACKs), each transmitted packet records how much data had been delivered
//! when it left. When its ACK returns, the *delivery rate* over that
//! packet's flight —
//! `(delivered_now − delivered_at_send) / (now − sent_at)` — measures the
//! rate the network actually sustained, independent of how ACKs were
//! batched on the return path.

use std::collections::{BTreeMap, VecDeque};

use pcc_simnet::time::{SimDuration, SimTime};

/// Windowed maximum filter keyed by round-trip count: reports the largest
/// sample seen in the last `window` rounds. Implemented as a monotonic
/// deque, so `update` is amortized O(1).
#[derive(Clone, Debug)]
pub struct MaxBwFilter {
    window: u64,
    /// `(round, sample)` pairs with strictly decreasing samples.
    samples: VecDeque<(u64, f64)>,
}

impl MaxBwFilter {
    /// Filter over the last `window` rounds.
    pub fn new(window: u64) -> Self {
        MaxBwFilter {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Insert a bandwidth sample observed in `round`.
    pub fn update(&mut self, round: u64, sample_bps: f64) {
        while self
            .samples
            .front()
            .is_some_and(|&(r, _)| r + self.window <= round)
        {
            self.samples.pop_front();
        }
        while self.samples.back().is_some_and(|&(_, s)| s <= sample_bps) {
            self.samples.pop_back();
        }
        self.samples.push_back((round, sample_bps));
    }

    /// The windowed maximum, if any sample is live.
    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, s)| s)
    }
}

/// Minimum-RTT tracker with an explicit expiry window (10 s in BBR): the
/// minimum only *tightens* inside the window; when no equal-or-lower
/// sample has arrived for `window`, the estimate is stale and the
/// algorithm must deliberately re-probe (ProbeRTT) rather than silently
/// trust an inflated value.
#[derive(Clone, Copy, Debug)]
pub struct MinRttTracker {
    window: SimDuration,
    value: Option<SimDuration>,
    stamp: SimTime,
}

impl MinRttTracker {
    /// Tracker whose estimate expires after `window` without refresh.
    pub fn new(window: SimDuration) -> Self {
        MinRttTracker {
            window,
            value: None,
            stamp: SimTime::ZERO,
        }
    }

    /// Feed an RTT sample. Equal samples refresh the stamp, so a flow
    /// sitting at the propagation delay never needlessly probes.
    pub fn update(&mut self, sample: SimDuration, now: SimTime) {
        if self.value.is_none_or(|v| sample <= v) {
            self.value = Some(sample);
            self.stamp = now;
        }
    }

    /// Replace the estimate outright (ProbeRTT concluded a re-measurement).
    pub fn reset(&mut self, value: SimDuration, now: SimTime) {
        self.value = Some(value);
        self.stamp = now;
    }

    /// Current estimate.
    pub fn get(&self) -> Option<SimDuration> {
        self.value
    }

    /// The configured expiry window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// True when the estimate has gone `window` without a refresh.
    pub fn expired(&self, now: SimTime) -> bool {
        self.value.is_some() && now.saturating_since(self.stamp) > self.window
    }
}

/// Per-packet send record: total packets delivered when this packet left,
/// and when it left.
#[derive(Clone, Copy, Debug)]
struct SendRecord {
    delivered: u64,
    sent_at: SimTime,
}

/// One delivery-rate measurement.
#[derive(Clone, Copy, Debug)]
pub struct RateSample {
    /// Measured delivery rate, bits/sec.
    pub bw_bps: f64,
    /// Total packets delivered when the measured packet was *sent* — the
    /// round-trip marker ("packet.delivered" in BBR's pseudocode).
    pub delivered_at_send: u64,
}

/// Delivery-rate sampler over packet-granularity sequence numbers.
#[derive(Clone, Debug, Default)]
pub struct DeliverySampler {
    delivered: u64,
    records: BTreeMap<u64, SendRecord>,
}

impl DeliverySampler {
    /// Fresh sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// A packet left the sender. Retransmissions are not recorded: an ACK
    /// of a retransmitted sequence is ambiguous about which flight it
    /// measures.
    pub fn on_sent(&mut self, seq: u64, now: SimTime, retx: bool) {
        if !retx {
            self.records.insert(
                seq,
                SendRecord {
                    delivered: self.delivered,
                    sent_at: now,
                },
            );
        }
    }

    /// An ACK advanced delivery by `newly_acked` packets; if `seq` has an
    /// unambiguous send record, return the delivery-rate sample it
    /// completes. `mss` converts packets to wire bits.
    pub fn on_ack(
        &mut self,
        seq: u64,
        cum_ack: u64,
        newly_acked: u32,
        of_retx: bool,
        mss: u32,
        now: SimTime,
    ) -> Option<RateSample> {
        self.delivered += u64::from(newly_acked);
        // Take the acked record *before* pruning: the cumulative ack
        // usually covers `seq` itself.
        let rec = self.records.remove(&seq);
        // Everything below the cumulative ack can never be sampled again.
        self.records = self.records.split_off(&cum_ack);
        let rec = rec?;
        if of_retx {
            return None;
        }
        let interval = now.saturating_since(rec.sent_at);
        if interval.is_zero() {
            return None;
        }
        let pkts = self.delivered.saturating_sub(rec.delivered) as f64;
        Some(RateSample {
            bw_bps: pkts * mss as f64 * 8.0 / interval.as_secs_f64(),
            delivered_at_send: rec.delivered,
        })
    }

    /// Sequences were declared lost: their records can no longer produce a
    /// clean sample (any later ACK will be for a retransmission).
    pub fn on_loss(&mut self, seqs: &[u64]) {
        for seq in seqs {
            self.records.remove(seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_filter_reports_window_max_and_expires() {
        let mut f = MaxBwFilter::new(3);
        f.update(0, 10.0);
        f.update(1, 30.0);
        f.update(2, 20.0);
        assert_eq!(f.get(), Some(30.0));
        // Round 4: the round-1 peak leaves the window; 20.0 remains.
        f.update(4, 5.0);
        assert_eq!(f.get(), Some(20.0));
        // Round 5: 20.0 (round 2) expires too.
        f.update(5, 6.0);
        assert_eq!(f.get(), Some(6.0));
    }

    #[test]
    fn min_rtt_tightens_and_expires() {
        let win = SimDuration::from_secs(10);
        let mut m = MinRttTracker::new(win);
        m.update(SimDuration::from_millis(30), SimTime::from_secs(1));
        m.update(SimDuration::from_millis(40), SimTime::from_secs(2));
        assert_eq!(m.get(), Some(SimDuration::from_millis(30)));
        assert!(!m.expired(SimTime::from_secs(11)));
        assert!(m.expired(SimTime::from_secs(12)));
        // An equal sample refreshes the stamp.
        m.update(SimDuration::from_millis(30), SimTime::from_secs(5));
        assert!(!m.expired(SimTime::from_secs(14)));
    }

    #[test]
    fn delivery_rate_is_batching_independent() {
        // 10 packets delivered over 10 ms reads 12 Mbps at MSS 1500
        // whether the ACKs arrive singly or in one cumulative burst.
        let mss = 1500u32;
        let mut s = DeliverySampler::new();
        for seq in 0..10u64 {
            s.on_sent(seq, SimTime::ZERO, false);
        }
        // One aggregated ACK for seq 9 carrying newly_acked = 10.
        let sample = s
            .on_ack(9, 10, 10, false, mss, SimTime::from_millis(10))
            .expect("sampled");
        let expect = 10.0 * 1500.0 * 8.0 / 0.010;
        assert!((sample.bw_bps - expect).abs() < 1.0, "{}", sample.bw_bps);
        assert_eq!(sample.delivered_at_send, 0);
    }

    #[test]
    fn retransmissions_never_produce_samples() {
        let mut s = DeliverySampler::new();
        s.on_sent(0, SimTime::ZERO, false);
        s.on_loss(&[0]);
        s.on_sent(0, SimTime::from_millis(5), true);
        assert!(s
            .on_ack(0, 1, 1, true, 1500, SimTime::from_millis(9))
            .is_none());
        // Delivery still counted: the data did arrive.
        assert_eq!(s.delivered(), 1);
    }

    #[test]
    fn records_pruned_below_cum_ack() {
        let mut s = DeliverySampler::new();
        for seq in 0..100u64 {
            s.on_sent(seq, SimTime::ZERO, false);
        }
        s.on_ack(99, 100, 100, false, 1500, SimTime::from_millis(1));
        // All records at or below the cumulative ack are gone.
        assert!(s
            .on_ack(50, 100, 0, false, 1500, SimTime::from_millis(2))
            .is_none());
    }
}
