//! # pcc-bbr — a BBR-style model-based congestion controller
//!
//! The first genuine *hybrid* on the workspace's unified
//! [`pcc_transport::CongestionControl`] API (the modern baseline the
//! paper's evaluation is compared against; see "An Evaluation of BBR and
//! its variants" in PAPERS.md). Where PCC learns its rate empirically
//! from utility measurements and the TCPs react to loss, BBR builds an
//! explicit *model* of the path — a windowed-max filter over
//! delivery-rate samples estimates the bottleneck bandwidth, a
//! windowed-min filter estimates the propagation RTT — and drives a
//! four-phase state machine over it:
//!
//! * **Startup**: pacing gain `2/ln 2` doubles the rate each round until
//!   the bandwidth estimate plateaus (three rounds below 25% growth);
//! * **Drain**: the inverse gain removes the queue Startup built;
//! * **ProbeBW**: an eight-slot gain cycle (`1.25, 0.75, 1 × 6`) probes
//!   for more bandwidth and immediately drains what the probe queued;
//! * **ProbeRTT**: when the min-RTT estimate goes 10 s without a refresh,
//!   the window drops to 4 packets for ~200 ms to re-measure the
//!   propagation delay honestly.
//!
//! Every control decision requests **both** effects —
//! `set_rate(pacing_gain · btl_bw)` *and* `set_cwnd(cwnd_gain · BDP)` —
//! so the engine ([`pcc_transport::CcSender`] in simulation, `pcc-udp` on
//! real sockets) enforces pacing and window simultaneously: the cap the
//! rate-based machinery needs plus the inflight bound that keeps a wrong
//! bandwidth estimate from flooding the path.
//!
//! [`register_algorithms`] installs it as `bbr` in the workspace-wide
//! [`pcc_transport::registry`], which makes it constructible by name from
//! the scenario builders, the conformance suite, the experiments binary,
//! and the real-UDP datapath with zero per-harness code.

mod bbr;
pub mod model;

pub use bbr::{
    Bbr, BW_WINDOW_ROUNDS, CWND_GAIN, CYCLE_GAINS, DRAIN_GAIN, MIN_CWND_PKTS, MIN_RTT_WINDOW,
    PROBE_RTT_DURATION, STARTUP_GAIN,
};

use pcc_transport::registry;
use pcc_transport::spec::{ParamKind, ParamSpec, Schema};

/// BBR's spec parameters (`bbr:probe_rtt_ms=5000,cwnd_gain=2.5`): the
/// ProbeRTT refresh interval and the steady-state cwnd gain — the two
/// knobs the BBR-variant evaluation literature sweeps most.
pub const BBR_SCHEMA: Schema = &[
    ParamSpec {
        key: "probe_rtt_ms",
        kind: ParamKind::Int {
            min: 100,
            max: 120_000,
        },
        doc: "min-RTT estimate lifetime before a ProbeRTT re-probe, ms (default 10000)",
    },
    ParamSpec {
        key: "cwnd_gain",
        kind: ParamKind::Float { min: 1.0, max: 8.0 },
        doc: "steady-state cwnd gain over the BDP (default 2)",
    },
];

/// Register `bbr` (with [`BBR_SCHEMA`]) in the workspace-wide
/// [`pcc_transport::registry`]. Idempotent.
pub fn register_algorithms() {
    registry::register_with_schema(
        "bbr",
        BBR_SCHEMA,
        Box::new(|params| Box::new(Bbr::new(params))),
    );
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use pcc_simnet::time::SimDuration;
    use pcc_transport::registry::CcParams;
    use pcc_transport::spec;

    #[test]
    fn bbr_registers() {
        register_algorithms();
        let cc = registry::by_name("bbr", &CcParams::default()).expect("registered");
        assert_eq!(cc.name(), "bbr");
    }

    #[test]
    fn spec_tunes_probe_rtt_and_cwnd_gain() {
        let raw = vec![
            ("probe_rtt_ms".to_string(), "5000".to_string()),
            ("cwnd_gain".to_string(), "2.5".to_string()),
        ];
        let params =
            CcParams::default().with_spec(spec::validate("bbr", BBR_SCHEMA, &raw).expect("valid"));
        let bbr = Bbr::new(&params);
        assert_eq!(bbr.min_rtt_window(), SimDuration::from_millis(5000));
        assert_eq!(bbr.steady_cwnd_gain(), 2.5);
        // Defaults when the bag is empty.
        let bbr = Bbr::new(&CcParams::default());
        assert_eq!(bbr.min_rtt_window(), MIN_RTT_WINDOW);
        assert_eq!(bbr.steady_cwnd_gain(), CWND_GAIN);
    }

    #[test]
    fn registry_rejects_bad_bbr_specs() {
        register_algorithms();
        let err = match registry::by_name("bbr:probe_rtt_ms=1", &CcParams::default()) {
            Ok(_) => panic!("must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("probe_rtt_ms=<"), "{err}");
        assert!(registry::by_name("bbr:probe_rtt_ms=5000", &CcParams::default()).is_ok());
    }
}
