//! End-to-end simulation tests: the same `Bbr` object that passed the
//! unit harness must fill real (simulated) pipes through the one
//! `CcSender` engine, with both machineries — pacing and window — live.

use pcc_bbr::Bbr;
use pcc_simnet::prelude::*;
use pcc_transport::registry::CcParams;
use pcc_transport::{CcSender, CcSenderConfig, SackReceiver};

fn run_bbr(link_mbps: f64, rtt_ms: u64, buffer: u64, loss: f64, secs: u64) -> (SimReport, FlowId) {
    let mut net = NetworkBuilder::new(SimConfig {
        sample_interval: SimDuration::from_millis(100),
        seed: 21,
    });
    let mut db = Dumbbell::new(
        &mut net,
        BottleneckSpec::new(link_mbps * 1e6, buffer).with_loss(loss),
    );
    let path = db.attach_flow(&mut net, SimDuration::from_millis(rtt_ms));
    let params = CcParams::default().with_rtt_hint(SimDuration::from_millis(rtt_ms));
    let flow = net.add_flow(FlowSpec {
        sender: Box::new(CcSender::new(
            CcSenderConfig::default(),
            Box::new(Bbr::new(&params)),
        )),
        receiver: Box::new(SackReceiver::new()),
        fwd_path: path.fwd,
        rev_path: path.rev,
        start_at: SimTime::ZERO,
    });
    (net.build().run_until(SimTime::from_secs(secs)), flow)
}

#[test]
fn fills_a_clean_pipe() {
    let (report, flow) = run_bbr(50.0, 30, 375_000, 0.0, 10);
    let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(2), SimTime::from_secs(10));
    assert!(tput > 42.0, "BBR fills 50 Mbps: {tput:.1}");
}

#[test]
fn holds_throughput_at_one_percent_loss() {
    // The loss-blindness property: random loss doesn't collapse the model.
    let (report, flow) = run_bbr(50.0, 30, 375_000, 0.01, 15);
    let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(5), SimTime::from_secs(15));
    assert!(tput > 40.0, "BBR at 1% loss: {tput:.1}");
}

#[test]
fn deterministic_across_runs() {
    let a = run_bbr(20.0, 20, 75_000, 0.005, 8).0;
    let b = run_bbr(20.0, 20, 75_000, 0.005, 8).0;
    assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
    assert_eq!(a.events_processed, b.events_processed);
}
