//! L004 fixture: poison-blind lock acquisition.
use std::sync::{Mutex, RwLock};

fn bad(m: &Mutex<u32>, rw: &RwLock<u32>) {
    let a = *m.lock().unwrap();
    let b = *rw.read().expect("poisoned");
    let c = *rw
        .write()
        .unwrap();
    let _ = (a, b, c);
}

fn good(m: &Mutex<u32>, f: &mut impl std::io::Read) {
    // The canonical recovery idiom never fires.
    let _ = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // An io::Read with arguments is not a lock acquisition.
    let mut buf = [0u8; 4];
    let _ = f.read(&mut buf).unwrap();
}
