//! L000 fixture: suppressions must carry reasons and known ids.
// lint: allow(L001)
use std::collections::HashMap;
// lint: allow(L999) — the id does not exist
fn f(m: HashMap<u32, u32>) -> usize {
    m.len()
}
