//! L007 fixture: partial order unwrapped inside sort comparators.
fn bad(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.sort_by(|a, b| a.partial_cmp(&b.abs().max(1.0)).expect("no NaNs"));
}

fn good(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
    // A bare partial_cmp handed to a combinator is fine.
    let _ = v[0].partial_cmp(&v[1]);
}
