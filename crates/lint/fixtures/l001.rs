//! L001 fixture: default-hasher collections in a deterministic crate.
use std::collections::HashMap;
use std::collections::HashSet;

fn decoys() {
    let a = "HashMap in a string is invisible";
    // HashMap in a comment is invisible
    let b = r#"HashSet in a raw string is invisible"#;
    let _ = (a, b);
}

// lint: allow(L001) — fixture: a reasoned allow must suppress the hit on the next code line
fn suppressed(m: HashMap<u32, u32>) -> usize {
    m.len()
}
