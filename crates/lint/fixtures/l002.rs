//! L002 fixture: wall-clock reads in a deterministic crate.
use std::time::Instant;

fn bad() {
    let t0 = Instant::now();
    let epoch = std::time::SystemTime::UNIX_EPOCH;
    let _ = (t0, epoch);
}

fn decoys() {
    let s = "Instant::now() and SystemTime in a string";
    // Instant::now() in a comment
    let _ = s;
}
