//! L005 fixture A: the simulator-side registry (the full set).
pub fn install_registry() {
    pcc_core::register_algorithms();
    pcc_tcp::register_algorithms();
    register_alias("reno", "newreno");
}
