// L009 fixture: a real-datapath timeout site with no backoff/budget
// state anywhere in the file must fire; decoys in strings/comments and
// non-timeout loss kinds must not. (A witness ident like `rto_backoff`
// would exempt the whole file, so this fixture deliberately has none.)
fn classify(whole_window: bool) -> LossKind {
    if whole_window {
        LossKind::Timeout
    } else {
        LossKind::Detected
    }
}

fn decoys() {
    let _s = "LossKind::Timeout"; // string, not code
    // LossKind::Timeout in a comment is invisible too.
}

fn allowed() -> LossKind {
    // lint: allow(L009) — this loop is bounded by the caller's deadline
    LossKind::Timeout
}
