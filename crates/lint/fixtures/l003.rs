//! L003 fixture: RNGs constructed from ambient entropy.
fn bad() {
    let mut rng = thread_rng();
    let state = RandomState::new();
    let os = OsRng;
    let _ = (rng.next(), state, os);
}

fn good(seed: u64) -> u64 {
    // The sanctioned plumbing: SimRng::new(seed) / rng.derive(tag).
    let rng = SimRng::new(seed).derive(7);
    rng.next_u64()
}
