//! L005 fixture B: the udp side, missing the tcp family and the alias.
pub fn install_registry() {
    pcc_core::register_algorithms();
}
