//! Negative fixture: every lint trigger appears only where the lexer
//! must refuse to see it. Zero diagnostics expected.
// HashMap HashSet Instant::now() SystemTime thread_rng() OsRng
/* m.lock().unwrap(); a.partial_cmp(b).unwrap(); RandomState */
fn clean() -> &'static str {
    let s = "HashMap Instant::now() thread_rng()";
    let r = r##"SystemTime "# RandomState .lock().unwrap()"##;
    let c = 'H';
    let lt: &'static str = "partial_cmp(x).unwrap() as text";
    let b = b"HashSet .read().expect(\"x\")";
    let map = std::collections::BTreeMap::<u32, u32>::new();
    let _ = (s, r, c, lt, b, map.len());
    s
}
