//! Diagnostics: the one output type every lint produces, with human
//! (`path:line:col: Lxxx message`) and machine (JSON array) renderings.

use std::fmt::Write as _;

/// One lint finding, anchored to a file position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Catalog id (`"L001"` … `"L007"`, or `"L000"` for a malformed
    /// suppression).
    pub id: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the anchor token.
    pub line: u32,
    /// 1-based column of the anchor token.
    pub col: u32,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it (rendered as a `help:` line), if the lint has a
    /// canonical idiom to suggest.
    pub help: Option<String>,
}

impl Diagnostic {
    /// `path:line:col: Lxxx message` plus an optional indented help line.
    pub fn render_human(&self) -> String {
        let mut s = format!(
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.id, self.message
        );
        if let Some(h) = &self.help {
            let _ = write!(s, "\n    help: {h}");
        }
        s
    }
}

/// Render diagnostics as a JSON array (hand-rolled: the workspace builds
/// without network access, so no serde).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(
            out,
            "\"id\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}",
            json_str(d.id),
            json_str(&d.path),
            d.line,
            d.col,
            json_str(&d.message)
        );
        if let Some(h) = &d.help {
            let _ = write!(out, ",\"help\":{}", json_str(h));
        }
        out.push('}');
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic {
            id: "L001",
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "a \"quoted\" problem".into(),
            help: Some("use BTreeMap".into()),
        }
    }

    #[test]
    fn human_format() {
        assert_eq!(
            d().render_human(),
            "crates/x/src/lib.rs:3:9: L001 a \"quoted\" problem\n    help: use BTreeMap"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let j = render_json(&[d()]);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"id\":\"L001\""));
        assert!(j.contains("a \\\"quoted\\\" problem"));
        assert_eq!(render_json(&[]), "[]");
    }
}
