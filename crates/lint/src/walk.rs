//! Workspace discovery: find every member crate's sources and manifests
//! from the root `Cargo.toml`, with a deterministic (sorted) file order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One `.rs` file attributed to its crate.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Package name from the owning crate's manifest (e.g. `pcc-core`).
    pub crate_name: String,
    /// File contents.
    pub src: String,
}

/// One `Cargo.toml`.
pub struct ManifestFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// File contents.
    pub src: String,
}

/// Everything the linter scans.
pub struct Workspace {
    /// All member (and root-package) sources, sorted by path.
    pub sources: Vec<SourceFile>,
    /// Root + member manifests, sorted by path.
    pub manifests: Vec<ManifestFile>,
}

/// Directories never scanned: build output and the lint fixture corpus
/// (which exists to *contain* violations).
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Load the workspace rooted at `root` (must contain a `Cargo.toml` with
/// a `[workspace]` table).
pub fn load(root: &Path) -> io::Result<Workspace> {
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = fs::read_to_string(&root_manifest_path)?;
    let mut manifests = vec![ManifestFile {
        rel_path: "Cargo.toml".to_string(),
        src: root_manifest.clone(),
    }];
    let mut sources = Vec::new();

    // The root package (if any) owns the top-level src/tests/examples.
    if let Some(name) = package_name(&root_manifest) {
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(root, &root.join(sub), &name, &mut sources)?;
        }
    }

    for member in members(&root_manifest) {
        let dir = root.join(&member);
        let manifest_path = dir.join("Cargo.toml");
        let manifest = match fs::read_to_string(&manifest_path) {
            Ok(m) => m,
            Err(_) => continue, // stale member entry; cargo would fail first
        };
        let name = package_name(&manifest).unwrap_or_else(|| member.clone());
        manifests.push(ManifestFile {
            rel_path: rel(root, &manifest_path),
            src: manifest,
        });
        collect_rs(root, &dir, &name, &mut sources)?;
    }

    sources.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    manifests.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(Workspace { sources, manifests })
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(src) = fs::read_to_string(&manifest) {
            if src.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// `members = [ "crates/a", ... ]` from a workspace manifest.
fn members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("members") {
            if rest.trim_start().starts_with('=') {
                in_members = true;
            }
        }
        if in_members {
            for piece in line.split(',') {
                let piece = piece.trim();
                if let Some(q) = piece.find('"') {
                    if let Some(q2) = piece[q + 1..].find('"') {
                        out.push(piece[q + 1..q + 1 + q2].to_string());
                    }
                }
            }
            if line.contains(']') {
                break;
            }
        }
    }
    out
}

/// `name = "..."` from the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir` (which may not exist).
fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(root, &path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(SourceFile {
                rel_path: rel(root, &path),
                crate_name: crate_name.to_string(),
                src: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parses_the_root_manifest_shape() {
        let m =
            "[workspace]\nresolver = \"2\"\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n";
        assert_eq!(members(m), vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn package_name_reads_only_the_package_section() {
        let m = "[workspace]\n\n[package]\nname = \"pcc\"\n\n[dependencies]\nname = \"decoy\"\n";
        assert_eq!(package_name(m), Some("pcc".to_string()));
        assert_eq!(package_name("[workspace]\n"), None);
    }
}
